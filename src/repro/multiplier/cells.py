"""The multiplier leaf-cell library as a sample layout (Figures 5.3/5.5).

The paper's cells are nMOS layouts drawn in HPEDIT (Appendices D/E);
here they are synthetic equivalents with the same structural roles:

* ``basiccell`` — 20x20 lambda, input inverters/full-adder geometry
  abstracted to buses and an active area, with sum/carry ports;
* mask cells (``type1``, ``type2``, clock masks ``phi1_1..phi1_4`` and
  ``phi2_1..phi2_4``, carry-interface masks ``car1``/``car2``) — small
  cells that land *inside* the basic cell's bounding box, exactly the
  personalisation-by-superposition mechanism of section 2.3;
* ``reg`` — a 20x8 register cell for the peripheral skew stacks;
* direction masks ``goboth``/``goin``/``goout``/``sgoin``/``sgoout`` for
  the bidirectional right-edge register stacks of Appendix B.

Every interface the design file uses is defined *by example* in the
sample text: two instances called together plus a numeric label
(Figure 5.5's "one merely provides an example of the interface").
"""

from __future__ import annotations

from ..core.operators import Rsg
from ..layout.sample import loads_sample

__all__ = [
    "MULTIPLIER_SAMPLE",
    "load_multiplier_library",
    "CELL_PITCH",
    "REG_PITCH",
]

CELL_PITCH = 20
REG_PITCH = 8

MULTIPLIER_SAMPLE = """\
# Multiplier leaf-cell library (sample layout).
# Cells first, then interfaces by example.

cell basiccell
  box metal1 0 16 20 18      # sum bus
  box metal1 0 8 20 10       # carry bus
  box poly 4 0 6 20          # multiplicand bit column
  box poly 14 0 16 20        # multiplier bit column
  box diff 8 2 12 14         # full-adder active area
  port sin 10 20 metal1
  port sout 10 0 metal1
  port cin 20 9 metal1
  port cout 0 9 metal1
end

cell type1
  box implant 0 0 2 2
end

cell type2
  box implant 0 0 2 2
end

cell phi1_1
  box contact 0 0 2 2
end
cell phi1_2
  box contact 0 0 2 2
end
cell phi1_3
  box contact 0 0 2 2
end
cell phi1_4
  box contact 0 0 2 2
end
cell phi2_1
  box contact 0 0 2 2
end
cell phi2_2
  box contact 0 0 2 2
end
cell phi2_3
  box contact 0 0 2 2
end
cell phi2_4
  box contact 0 0 2 2
end

cell car1
  box contact 0 0 2 2
end
cell car2
  box contact 0 0 2 2
end

cell reg
  box metal1 0 3 20 5
  box poly 9 0 11 8
  port din 10 0 poly
  port dout 10 8 poly
end

cell goboth
  box marker 0 0 2 2
end
cell goin
  box marker 0 0 2 2
end
cell goout
  box marker 0 0 2 2
end
cell sgoin
  box marker 0 0 2 2
end
cell sgoout
  box marker 0 0 2 2
end

# ---- interfaces by example -------------------------------------------

# 1: basiccell beside basiccell (horizontal array pitch)
example
  inst basiccell 0 0 north
  inst basiccell 20 0 north
  label 1 20 10
end

# 2: basiccell below basiccell (vertical array pitch, rows grow downward)
example
  inst basiccell 0 0 north
  inst basiccell 0 -20 north
  label 2 10 0
end

# type masks sit inside the basic cell
example
  inst basiccell 0 0 north
  inst type1 7 3 north
  label 1 8 4
end
example
  inst basiccell 0 0 north
  inst type2 11 3 north
  label 1 12 4
end

# clock masks: phi1 set at the cell corners, phi2 set shifted inward
example
  inst basiccell 0 0 north
  inst phi1_1 1 1 north
  label 1 2 2
end
example
  inst basiccell 0 0 north
  inst phi1_2 1 17 north
  label 1 2 18
end
example
  inst basiccell 0 0 north
  inst phi1_3 17 1 north
  label 1 18 2
end
example
  inst basiccell 0 0 north
  inst phi1_4 17 17 north
  label 1 18 18
end
example
  inst basiccell 0 0 north
  inst phi2_1 3 1 north
  label 1 4 2
end
example
  inst basiccell 0 0 north
  inst phi2_2 3 17 north
  label 1 4 18
end
example
  inst basiccell 0 0 north
  inst phi2_3 15 1 north
  label 1 16 2
end
example
  inst basiccell 0 0 north
  inst phi2_4 15 17 north
  label 1 16 18
end

# carry-interface masks on the carry bus
example
  inst basiccell 0 0 north
  inst car1 0 11 north
  label 1 1 12
end
example
  inst basiccell 0 0 north
  inst car2 0 5 north
  label 1 1 6
end

# register beside register (horizontal chain)
example
  inst reg 0 0 north
  inst reg 20 0 north
  label 1 20 4
end
# register stacked upward (top skew stacks)
example
  inst reg 0 0 north
  inst reg 0 8 north
  label 2 10 8
end
# register stacked downward (bottom deskew stacks)
example
  inst reg 0 0 north
  inst reg 0 -8 north
  label 3 10 0
end
# register rows at the array's vertical pitch (right-edge rows); the
# cells do not abut — interfaces carry the placement, not bounding boxes
example
  inst reg 0 0 north
  inst reg 0 -20 north
  label 4 10 0
end

# basic cell to register: above (1), below (2), and to the right (3) —
# a family of interfaces between the same cell pair (Figure 2.3)
example
  inst basiccell 0 0 north
  inst reg 0 20 north
  label 1 10 20
end
example
  inst basiccell 0 0 north
  inst reg 0 -8 north
  label 2 10 0
end
example
  inst basiccell 0 0 north
  inst reg 20 0 north
  label 3 20 4
end

# direction masks on the register cell
example
  inst reg 0 0 north
  inst goboth 9 3 north
  label 1 10 4
end
example
  inst reg 0 0 north
  inst goin 9 3 north
  label 1 10 4
end
example
  inst reg 0 0 north
  inst goout 9 3 north
  label 1 10 4
end
example
  inst reg 0 0 north
  inst sgoin 9 3 north
  label 1 10 4
end
example
  inst reg 0 0 north
  inst sgoout 9 3 north
  label 1 10 4
end
"""


def load_multiplier_library(rsg: Rsg = None) -> Rsg:
    """Load the multiplier leaf-cell sample into a workspace."""
    if rsg is None:
        rsg = Rsg()
    loads_sample(MULTIPLIER_SAMPLE, rsg)
    return rsg
