"""Register configuration tables (chapter 5's closing suggestion).

"Register placement can be easily achieved by requiring that the user
provide a register configuration table in the parameter file.
Ultimately a subprogram to perform the retiming can be embedded in the
multiplier design file.  The program would take as input the parameter
beta which specifies the degree of pipelining and produce as output a
register configuration table consistent with the multiplier size."

This module is that subprogram.  The peripheral stack heights follow the
cut-set staging ``stage(v) = ceil(depth(v) / beta)``: at beta = 1 they
reduce to Appendix B's formulas exactly (top stacks 1..n, bottom stacks
n..1), and larger beta shrinks the skew triangles proportionally.

The table is emitted as *indexed parameter-file bindings* — the design
file reads them back as ``topcount.i`` etc., so the retiming decision
lives entirely in the parameter domain, as the paper proposes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Tuple

__all__ = ["RegisterConfiguration", "register_configuration"]


def _ceil_div(a: int, b: int) -> int:
    return -(-a // b)


@dataclass
class RegisterConfiguration:
    """Peripheral register stack heights for one (size, beta) case."""

    xsize: int
    ysize: int
    beta: int
    #: column (1-based) -> top skew stack height
    top: Dict[int, int] = field(default_factory=dict)
    #: column (1-based) -> bottom deskew stack height
    bottom: Dict[int, int] = field(default_factory=dict)
    #: right-edge register row length
    right_length: int = 0

    def total_registers(self) -> int:
        return (
            sum(self.top.values())
            + sum(self.bottom.values())
            + self.ysize * self.right_length
        )

    def as_parameter_bindings(self) -> Dict[Tuple[str, Tuple[int, ...]], int]:
        """Indexed bindings for the global environment / parameter file."""
        bindings: Dict[Tuple[str, Tuple[int, ...]], int] = {}
        for column, height in self.top.items():
            bindings[("topcount", (column,))] = height
        for column, height in self.bottom.items():
            bindings[("bottomcount", (column,))] = height
        bindings[("rightlen", (1,))] = self.right_length
        return bindings

    def as_parameter_text(self) -> str:
        """The same table in parameter-file syntax."""
        lines = [f"# register configuration, beta={self.beta}"]
        for column in sorted(self.top):
            lines.append(f"topcount.{column}={self.top[column]}")
        for column in sorted(self.bottom):
            lines.append(f"bottomcount.{column}={self.bottom[column]}")
        lines.append(f"rightlen.1={self.right_length}")
        return "\n".join(lines)


def register_configuration(
    xsize: int, ysize: int, beta: int = 1
) -> RegisterConfiguration:
    """Compute the register configuration table for a given beta.

    Stack heights are the beta-staged versions of Appendix B's
    bit-systolic profile: ``top_i = ceil(i / beta)``,
    ``bottom_i = ceil((xsize + 1 - i) / beta)``, and the right rows hold
    ``ceil(((3*ysize + 1) + 1) / 2 / beta)`` registers.
    """
    if beta < 1:
        raise ValueError("beta must be at least 1")
    config = RegisterConfiguration(xsize, ysize, beta)
    for column in range(1, xsize + 1):
        config.top[column] = max(1, _ceil_div(column, beta))
        config.bottom[column] = max(1, _ceil_div(xsize + 1 - column, beta))
    regnum = 3 * ysize + 1
    config.right_length = max(1, _ceil_div((regnum + 1) // 2, beta))
    return config
