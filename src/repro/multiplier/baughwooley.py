"""Baugh-Wooley two's-complement array multipliers (paper chapter 5).

Figure 5.1 of the paper: an m x n carry-save array of two cell types
(each an AND gate plus full adder) followed by a carry-propagate row.
Type I cells add the bit product ``a_i * b_j``; type II cells add its
complement.  Type II cells sit where exactly one index is the sign bit;
correction ones are injected at unused edge inputs.

Derivation (m-bit A times n-bit B, two's complement):

    A*B mod 2^(m+n) = S + 2^(m-1) + 2^(n-1) + 2^(m+n-1)

where S is the sum of the (selectively complemented) partial products.
The three correction ones are the "ones assigned to the unused inputs
along the top and left edges" that the paper lists among the edge
effects.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from .netlist import Netlist, Ref

__all__ = [
    "build_baugh_wooley",
    "reference_product",
    "to_signed",
    "to_bits",
    "from_bits",
    "multiply",
    "cell_type_grid",
]


def to_signed(value: int, bits: int) -> int:
    """Interpret ``value mod 2^bits`` as a two's-complement integer."""
    value &= (1 << bits) - 1
    if value >= 1 << (bits - 1):
        value -= 1 << bits
    return value


def to_bits(value: int, bits: int) -> List[int]:
    """Little-endian bit vector of a (possibly negative) integer."""
    value &= (1 << bits) - 1
    return [(value >> index) & 1 for index in range(bits)]


def from_bits(bits: List[int]) -> int:
    """Assemble little-endian bits into an unsigned integer."""
    result = 0
    for index, bit in enumerate(bits):
        result |= (bit & 1) << index
    return result


def reference_product(a: int, b: int, m: int, n: int) -> int:
    """Golden two's-complement product of an m-bit and an n-bit operand."""
    return to_signed(to_signed(a, m) * to_signed(b, n), m + n)


def _sum3(x: int, y: int, z: int) -> int:
    return (x + y + z) & 1


def _carry3(x: int, y: int, z: int) -> int:
    return 1 if (x + y + z) >= 2 else 0


def cell_type_grid(m: int, n: int) -> List[List[str]]:
    """Cell type of every carry-save position: 'I' or 'II'.

    Type II exactly where one (not both) of the indices is the sign bit —
    the paper's "left and bottom edges ... except for the cell at the
    lower left corner".
    """
    grid = []
    for j in range(n):
        row = []
        for i in range(m):
            sign_a = i == m - 1
            sign_b = j == n - 1
            row.append("II" if sign_a != sign_b else "I")
        grid.append(row)
    return grid


def build_baugh_wooley(m: int, n: int) -> Netlist:
    """Build the structural netlist of an m x n Baugh-Wooley multiplier.

    Inputs ``a0..a{m-1}`` and ``b0..b{n-1}``; outputs ``p0..p{m+n-1}``.
    Carry-save cells are named ``cs_{i}_{j}`` with ``kind`` ``"csI"`` or
    ``"csII"``; the carry-propagate row is ``cpa_{i}`` with kind
    ``"cpa"``.  Per-weight structure follows Figure 5.1: sums move
    diagonally (one row down, one column toward bit 0), carries move
    straight down, and the final row ripples.
    """
    if m < 2 or n < 2:
        raise ValueError("operand widths must be at least 2 bits")
    netlist = Netlist()
    a_refs = [netlist.add_input(f"a{i}") for i in range(m)]
    b_refs = [netlist.add_input(f"b{j}") for j in range(n)]

    types = cell_type_grid(m, n)
    sum_ref: Dict[Tuple[int, int], Ref] = {}
    carry_ref: Dict[Tuple[int, int], Ref] = {}

    def and_gate(x: int, y: int) -> int:
        return x & y

    def nand_gate(x: int, y: int) -> int:
        return 1 - (x & y)

    for j in range(n):
        for i in range(m):
            # Sum input: diagonal from (i+1, j-1); top/left edges get
            # constants (the correction ones live here).
            if j >= 1 and i + 1 < m:
                s_in = sum_ref[(i + 1, j - 1)]
            elif j == 0 and i == n - 1 and n - 1 < m:
                s_in = Netlist.const(1)  # +2^(n-1)
            elif i == m - 1 and j == n - m and m <= n and j != 0:
                s_in = Netlist.const(1)  # +2^(n-1) when it falls mid-column
            else:
                s_in = Netlist.const(0)
            # Carry input: straight down from (i, j-1); row 0 edge gets
            # the +2^(m-1) correction at the sign column.
            if j >= 1:
                c_in = carry_ref[(i, j - 1)]
            elif i == m - 1:
                c_in = Netlist.const(1)  # +2^(m-1)
            else:
                c_in = Netlist.const(0)

            gate = nand_gate if types[j][i] == "II" else and_gate
            product = netlist.add_cell(
                f"pp_{i}_{j}", gate, [a_refs[i], b_refs[j]], kind="pp"
            )
            kind = "csII" if types[j][i] == "II" else "csI"
            sum_ref[(i, j)] = netlist.add_cell(
                f"cs_{i}_{j}", _sum3, [product, s_in, c_in], kind=kind
            )
            carry_ref[(i, j)] = netlist.add_cell(
                f"cc_{i}_{j}", _carry3, [product, s_in, c_in], kind=kind + "c"
            )

    # Low product bits peel off the i = 0 column.
    for k in range(n):
        netlist.set_output(f"p{k}", sum_ref[(0, k)])

    # Carry-propagate row: weight n+i combines the last row's carry at
    # column i with the last row's sum at column i+1; the +2^(m+n-1)
    # correction enters as the missing sum operand of the last CPA cell.
    ripple: Ref = Netlist.const(0)
    for i in range(m):
        x = carry_ref[(i, n - 1)]
        y = sum_ref[(i + 1, n - 1)] if i + 1 < m else Netlist.const(1)
        sum_out = netlist.add_cell(f"cpa_{i}", _sum3, [x, y, ripple], kind="cpa")
        ripple = netlist.add_cell(f"cpc_{i}", _carry3, [x, y, ripple], kind="cpac")
        netlist.set_output(f"p{n + i}", sum_out)
    return netlist


def multiply(netlist: Netlist, a: int, b: int, m: int, n: int) -> int:
    """Run the array combinationally and return the signed product."""
    values: Dict[str, int] = {}
    for index, bit in enumerate(to_bits(a, m)):
        values[f"a{index}"] = bit
    for index, bit in enumerate(to_bits(b, n)):
        values[f"b{index}"] = bit
    outputs = netlist.evaluate(values)
    raw = from_bits([outputs[f"p{k}"] for k in range(m + n)])
    return to_signed(raw, m + n)
