"""The multiplier design file and parameter file (Appendices B and C).

``DESIGN_FILE`` is a cleaned-up transcription of Appendix B in this
reproduction's design-file language: ``mcell`` personalises a basic cell
(type mask by array position, clock masks by column parity, carry mask by
row), ``mline``/``m2darray`` build the inner array hierarchically,
``mstack``/``mrow``/``mtopregs``/``mbottomregs``/``mrightregs`` build the
peripheral register stacks, ``assdirection`` assigns the bidirectional
register masks, and ``mall`` assembles everything through inherited
interfaces — with "absolutely no need to enter the graphics domain".

``PARAMETER_FILE`` mirrors Appendix C: interface index numbers, the
design-file-to-sample-layout name personalisation (``corecell =
basiccell``), and the size parameters.
"""

from __future__ import annotations

from typing import Optional, Tuple

from ..core.cell import CellDefinition
from ..core.operators import Rsg
from ..lang.interpreter import Interpreter
from ..lang.param_file import parse_parameters
from .cells import load_multiplier_library

__all__ = ["DESIGN_FILE", "PARAMETER_FILE", "generate_via_language"]

DESIGN_FILE = """\
; Pipelined array multiplier design file (after Appendix B).

(macro mcell (xsize ysize xloc yloc)
  (locals c temp)
  (mk_instance c corecell)
  ; Cell type personalisation: type II on the outer column and the last
  ; carry-save row, except their shared corner; the carry-propagate row
  ; (yloc = ysize + 1) is all type I.
  (cond ((= (+ ysize 1) yloc) (connect c (mk_instance temp typei) t1inum))
        ((= xsize xloc)
         (cond ((= ysize yloc) (connect c (mk_instance temp typei) t1inum))
               (true (connect c (mk_instance temp typeii) t2inum))))
        (true
         (cond ((= ysize yloc) (connect c (mk_instance temp typeii) t2inum))
               (true (connect c (mk_instance temp typei) t1inum)))))
  ; Clock assignment by column parity: four masks per cell.
  (cond ((= (mod xloc 2) 0)
         (prog (connect c (mk_instance temp clk1a) clk1inum)
               (connect c (mk_instance temp clk1b) clk1inum)
               (connect c (mk_instance temp clk1c) clk1inum)
               (connect c (mk_instance temp clk1d) clk1inum)))
        (true
         (prog (connect c (mk_instance temp clk2a) clk2inum)
               (connect c (mk_instance temp clk2b) clk2inum)
               (connect c (mk_instance temp clk2c) clk2inum)
               (connect c (mk_instance temp clk2d) clk2inum))))
  ; Carry-interface personalisation.
  (cond ((= yloc ysize) (connect c (mk_instance temp carii) car2inum))
        ((= yloc (+ ysize 1))
         (cond ((= xloc xsize) (connect c (mk_instance temp cari) car1inum))
               (true (connect c (mk_instance temp carii) car2inum))))
        (true (connect c (mk_instance temp cari) car1inum))))

(macro mline (xsize ysize currentline)
  (locals ref)
  (assign l.1 (mcell xsize ysize 1 currentline))
  (setq ref (subcell l.1 c))
  (do (i 2 (+ 1 i) (> i xsize))
    (assign l.i (mcell xsize ysize i currentline))
    (connect (subcell l.(- i 1) c) (subcell l.i c) hinum)))

(macro m2darray (xsize ysize)
  (locals topright bottomright rowend)
  (assign cl.1 (mline xsize ysize 1))
  (setq topright (subcell cl.1 ref))
  (do (i 2 (+ 1 i) (> i (+ ysize 1)))
    (assign cl.i (mline xsize ysize i))
    (connect (subcell cl.(- i 1) ref) (subcell cl.i ref) vinum))
  (setq bottomright (subcell cl.(+ ysize 1) ref))
  (setq rowend (subcell (subcell cl.1 l.xsize) c))
  (mk_cell mularrayname topright))

; A vertical stack of `count` registers; `base` is the array-adjacent
; register, `top` the outermost.
(macro mstack (count dirnum)
  (locals base top)
  (mk_instance s.1 regcell)
  (setq base s.1)
  (setq top s.1)
  (do (i 2 (+ 1 i) (> i count))
    (mk_instance s.i regcell)
    (connect s.(- i 1) s.i dirnum)
    (setq top s.i)))

; A horizontal row of `count` registers; `base` is the leftmost.
(macro mrow (count)
  (locals base)
  (mk_instance s.1 regcell)
  (setq base s.1)
  (do (i 2 (+ 1 i) (> i count))
    (mk_instance s.i regcell)
    (connect s.(- i 1) s.i reghnum)))

(macro mtopregs (xsize)
  (locals ref)
  (assign stk.1 (mstack 1 regupnum))
  (setq ref (subcell stk.1 base))
  (do (i 2 (+ 1 i) (> i xsize))
    (assign stk.i (mstack i regupnum))
    (connect (subcell stk.(- i 1) base) (subcell stk.i base) reghnum))
  (mk_cell topregisters ref))

(macro mbottomregs (xsize)
  (locals ref)
  (assign stk.1 (mstack xsize regdownnum))
  (setq ref (subcell stk.1 base))
  (do (i 2 (+ 1 i) (> i xsize))
    (assign stk.i (mstack (+ (- xsize i) 1) regdownnum))
    (connect (subcell stk.(- i 1) base) (subcell stk.i base) reghnum))
  (mk_cell bottomregisters ref))

; Direction-mask assignment for a right-edge register row (Appendix B's
; assdirection): the first `bi` registers are bidirectional, the next is
; a single register, the rest are double registers, where the counts
; depend on how many signals travel inward versus outward at this row.
(defun assdirection (rarray length regnum index)
  (locals ins outs bi temp dcell scell)
  (setq ins (* index 2))
  (setq outs (- regnum ins))
  (setq bi (min ins outs))
  (cond ((> bi length) (setq bi length)))
  (cond ((> ins outs) (prog (setq dcell inward) (setq scell sinward)))
        (true (prog (setq dcell outward) (setq scell soutward))))
  (do (i 1 (+ 1 i) (> i length))
    (cond ((<= i bi)
           (connect (subcell rarray s.i) (mk_instance temp bidirectional)
                    rtoregsinum))
          ((= i (+ bi 1))
           (connect (subcell rarray s.i) (mk_instance temp scell)
                    rtoregsinum))
          (true
           (connect (subcell rarray s.i) (mk_instance temp dcell)
                    rtoregsinum)))))

(macro mrightregs (ysize)
  (locals ref length regnum)
  (setq regnum (+ 1 (* 3 ysize)))
  (setq length (// (+ regnum 1) 2))
  (assign row.1 (mrow length))
  (setq ref (subcell row.1 base))
  (assdirection row.1 length regnum 1)
  (do (i 2 (+ 1 i) (> i ysize))
    (assign row.i (mrow length))
    (assdirection row.i length regnum i)
    (connect (subcell row.(- i 1) base) (subcell row.i base) regrowpitchnum))
  (mk_cell rightregisters ref))

(macro mall (xsize ysize)
  (locals innerarray tregs bregs rregs tri arrayi bri rri)
  (setq rregs (mrightregs ysize))
  (setq bregs (mbottomregs xsize))
  (setq innerarray (m2darray xsize ysize))
  (setq tregs (mtopregs xsize))
  (declare_interface topregistername arrayname 1
    (subcell tregs ref) (subcell innerarray topright) celltotopreginum)
  (connect (mk_instance tri topregistername)
           (mk_instance arrayi arrayname) 1)
  (declare_interface arrayname bottomregistername 1
    (subcell innerarray bottomright) (subcell bregs ref) celltobottomreginum)
  (connect arrayi (mk_instance bri bottomregistername) 1)
  (declare_interface arrayname rightregistername 1
    (subcell innerarray rowend) (subcell rregs ref) celltorightreginum)
  (connect arrayi (mk_instance rri rightregistername) 1)
  (mk_cell "thewholething" arrayi))

(mall xsize ysize)
"""

PARAMETER_FILE = """\
# Multiplier parameter file (after Appendix C).
vinum=2
hinum=1
t1inum=1
t2inum=1
mularrayname="array"
arrayname=array
corecell=basiccell
typei=type1
typeii=type2
clk1inum=1
clk2inum=1
clk1a=phi1_1
clk1b=phi1_2
clk1c=phi1_3
clk1d=phi1_4
clk2a=phi2_1
clk2b=phi2_2
clk2c=phi2_3
clk2d=phi2_4
cari=car1
carii=car2
car1inum=1
car2inum=1
regcell=reg
reghnum=1
regupnum=2
regdownnum=3
regrowpitchnum=4
topregisters="topregs"
topregistername=topregs
bottomregisters="bottomregs"
bottomregistername=bottomregs
rightregisters="rightregs"
rightregistername=rightregs
celltotopreginum=1
celltobottomreginum=2
celltorightreginum=3
rtoregsinum=1
bidirectional=goboth
inward=goin
outward=goout
sinward=sgoin
soutward=sgoout
xsize=6
ysize=6
"""


# The retimed variant: the peripheral-stack macros read their heights
# from the register configuration table in the parameter file
# (indexed bindings topcount.i / bottomcount.i / rightlen.1) instead of
# hard-coding the bit-systolic profile — the chapter-5 suggestion that
# "the user provide a register configuration table in the parameter
# file", with the retiming subprogram in repro.multiplier.regconfig.
RETIMED_MACROS = """\
(macro mtopregs (xsize)
  (locals ref)
  (assign stk.1 (mstack topcount.1 regupnum))
  (setq ref (subcell stk.1 base))
  (do (i 2 (+ 1 i) (> i xsize))
    (assign stk.i (mstack topcount.i regupnum))
    (connect (subcell stk.(- i 1) base) (subcell stk.i base) reghnum))
  (mk_cell topregisters ref))

(macro mbottomregs (xsize)
  (locals ref)
  (assign stk.1 (mstack bottomcount.1 regdownnum))
  (setq ref (subcell stk.1 base))
  (do (i 2 (+ 1 i) (> i xsize))
    (assign stk.i (mstack bottomcount.i regdownnum))
    (connect (subcell stk.(- i 1) base) (subcell stk.i base) reghnum))
  (mk_cell bottomregisters ref))

(macro mrightregs (ysize)
  (locals ref length regnum)
  (setq regnum (+ 1 (* 3 ysize)))
  (setq length rightlen.1)
  (assign row.1 (mrow length))
  (setq ref (subcell row.1 base))
  (assdirection row.1 length regnum 1)
  (do (i 2 (+ 1 i) (> i ysize))
    (assign row.i (mrow length))
    (assdirection row.i length regnum i)
    (connect (subcell row.(- i 1) base) (subcell row.i base) regrowpitchnum))
  (mk_cell rightregisters ref))
"""

DESIGN_FILE_RETIMED = (
    DESIGN_FILE.replace("(mall xsize ysize)\n", "")
    + "\n"
    + RETIMED_MACROS
    + "\n(mall xsize ysize)\n"
)


def generate_retimed_multiplier(
    xsize: int,
    ysize: int,
    beta: int = 1,
    rsg: Optional[Rsg] = None,
) -> Tuple[CellDefinition, Interpreter]:
    """Generate a multiplier whose register stacks follow a register
    configuration table computed for pipelining degree ``beta``.
    """
    from .regconfig import register_configuration

    if rsg is None:
        rsg = load_multiplier_library()
    interpreter = Interpreter(rsg)
    parameters = parse_parameters(PARAMETER_FILE)
    parameters.bindings["xsize"] = xsize
    parameters.bindings["ysize"] = ysize
    configuration = register_configuration(xsize, ysize, beta)
    parameters.bindings.update(configuration.as_parameter_bindings())
    interpreter.set_parameters(parameters.bindings)
    interpreter.run(DESIGN_FILE_RETIMED)
    return rsg.cells.lookup("thewholething"), interpreter


def generate_via_language(
    xsize: int,
    ysize: int,
    rsg: Optional[Rsg] = None,
) -> Tuple[CellDefinition, Interpreter]:
    """Run the full RSG pipeline through the design-file language.

    Loads the sample library, executes the parameter file with the given
    size overrides, then the design file; returns the generated top cell
    (``thewholething``) and the interpreter (whose workspace holds all
    intermediate cells).
    """
    if rsg is None:
        rsg = load_multiplier_library()
    interpreter = Interpreter(rsg)
    parameters = parse_parameters(PARAMETER_FILE)
    parameters.bindings["xsize"] = xsize
    parameters.bindings["ysize"] = ysize
    interpreter.set_parameters(parameters.bindings)
    interpreter.run(DESIGN_FILE)
    return rsg.cells.lookup("thewholething"), interpreter
