"""The pipelined Baugh-Wooley array multiplier case study (chapter 5)."""

from .baughwooley import (
    build_baugh_wooley,
    cell_type_grid,
    from_bits,
    multiply,
    reference_product,
    to_bits,
    to_signed,
)
from .cells import CELL_PITCH, MULTIPLIER_SAMPLE, REG_PITCH, load_multiplier_library
from .designfile import (
    DESIGN_FILE,
    DESIGN_FILE_RETIMED,
    PARAMETER_FILE,
    generate_retimed_multiplier,
    generate_via_language,
)
from .regconfig import RegisterConfiguration, register_configuration
from .generator import (
    MultiplierReport,
    generate_multiplier,
    intended_multiplier_netlist,
    report_for,
)
from .netlist import Cell, Netlist
from .retiming import PipelinedSimulator, RegisterAssignment, retime

__all__ = [
    "build_baugh_wooley",
    "intended_multiplier_netlist",
    "multiply",
    "reference_product",
    "cell_type_grid",
    "to_signed",
    "to_bits",
    "from_bits",
    "Netlist",
    "Cell",
    "retime",
    "RegisterAssignment",
    "PipelinedSimulator",
    "MULTIPLIER_SAMPLE",
    "load_multiplier_library",
    "CELL_PITCH",
    "REG_PITCH",
    "DESIGN_FILE",
    "DESIGN_FILE_RETIMED",
    "generate_retimed_multiplier",
    "RegisterConfiguration",
    "register_configuration",
    "PARAMETER_FILE",
    "generate_via_language",
    "generate_multiplier",
    "report_for",
    "MultiplierReport",
]
