"""Python-API multiplier generator (the same construction as Appendix B,
driven through :class:`~repro.core.operators.Rsg` directly).

``generate_multiplier`` mirrors the design file step for step — inner
array with per-cell personalisation, peripheral register stacks attached
through inherited interfaces — so the two paths can be cross-checked for
layout equality (an integration test the paper could not run, since it
had only one front end).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, List, Optional, Tuple

if TYPE_CHECKING:  # pragma: no cover - annotation-only import
    from ..compact.pipeline import HierarchicalCompactor

from ..core.cell import CellDefinition
from ..core.graph import Node
from ..core.operators import Rsg
from ..layout.database import FlatLayout, flatten_cell
from ..verify.netlist import SwitchNetlist
from .cells import CELL_PITCH, REG_PITCH, load_multiplier_library

__all__ = [
    "generate_multiplier",
    "MultiplierReport",
    "report_for",
    "intended_multiplier_netlist",
]

# Interface index numbers, matching PARAMETER_FILE.
H_INUM = 1
V_INUM = 2
MASK_INUM = 1
REG_H = 1
REG_UP = 2
REG_DOWN = 3
REG_ROWPITCH = 4
CELL_TO_TOPREG = 1
CELL_TO_BOTTOMREG = 2
CELL_TO_RIGHTREG = 3
R_TO_REGS = 1

_PHI1 = ("phi1_1", "phi1_2", "phi1_3", "phi1_4")
_PHI2 = ("phi2_1", "phi2_2", "phi2_3", "phi2_4")


def _personalise_cell(rsg: Rsg, xsize: int, ysize: int, xloc: int, yloc: int) -> Node:
    """The mcell macro: personalise one basic cell by array position."""
    node = rsg.mk_instance("basiccell")
    # Type mask.
    if yloc == ysize + 1:
        type_cell = "type1"
    elif xloc == xsize:
        type_cell = "type1" if yloc == ysize else "type2"
    else:
        type_cell = "type2" if yloc == ysize else "type1"
    rsg.connect(node, rsg.mk_instance(type_cell), MASK_INUM)
    # Clock masks by column parity.
    for mask in (_PHI1 if xloc % 2 == 0 else _PHI2):
        rsg.connect(node, rsg.mk_instance(mask), MASK_INUM)
    # Carry-interface mask.
    if yloc == ysize:
        carry = "car2"
    elif yloc == ysize + 1:
        carry = "car1" if xloc == xsize else "car2"
    else:
        carry = "car1"
    rsg.connect(node, rsg.mk_instance(carry), MASK_INUM)
    return node


def _build_array(rsg: Rsg, xsize: int, ysize: int, name: str) -> Dict[str, Node]:
    """m2darray: the inner array plus carry-propagate row as one cell.

    Returns handles: ``topright`` (first cell, row 1), ``bottomright``
    (first cell, CPA row), ``rowend`` (last cell, row 1) — the nodes the
    design file exposes through its returned environments.
    """
    rows: List[List[Node]] = []
    for yloc in range(1, ysize + 2):
        row = [
            _personalise_cell(rsg, xsize, ysize, xloc, yloc)
            for xloc in range(1, xsize + 1)
        ]
        rsg.chain(row, H_INUM)
        if rows:
            rsg.connect(rows[-1][0], row[0], V_INUM)
        rows.append(row)
    rsg.mk_cell(name, rows[0][0])
    return {
        "topright": rows[0][0],
        "bottomright": rows[-1][0],
        "rowend": rows[0][-1],
    }


def _build_stack(rsg: Rsg, count: int, dirnum: int) -> List[Node]:
    """mstack: a vertical chain of `count` registers."""
    nodes = [rsg.mk_instance("reg") for _ in range(count)]
    rsg.chain(nodes, dirnum)
    return nodes


def _build_top_registers(rsg: Rsg, xsize: int, name: str) -> Node:
    """mtopregs: stacks of height 1..xsize (the input skew triangle)."""
    bases: List[Node] = []
    for column in range(1, xsize + 1):
        bases.append(_build_stack(rsg, column, REG_UP)[0])
    rsg.chain(bases, REG_H)
    rsg.mk_cell(name, bases[0])
    return bases[0]


def _build_bottom_registers(rsg: Rsg, xsize: int, name: str) -> Node:
    """mbottomregs: stacks of height xsize..1 (output deskew triangle)."""
    bases: List[Node] = []
    for column in range(1, xsize + 1):
        bases.append(_build_stack(rsg, xsize + 1 - column, REG_DOWN)[0])
    rsg.chain(bases, REG_H)
    rsg.mk_cell(name, bases[0])
    return bases[0]


def _assign_directions(
    rsg: Rsg, row: List[Node], regnum: int, index: int
) -> None:
    """assdirection: bidirectional/single/double register masks."""
    ins = index * 2
    outs = regnum - ins
    bi = min(ins, outs, len(row))
    if ins > outs:
        double, single = "goin", "sgoin"
    else:
        double, single = "goout", "sgoout"
    for position, node in enumerate(row, start=1):
        if position <= bi:
            mask = "goboth"
        elif position == bi + 1:
            mask = single
        else:
            mask = double
        rsg.connect(node, rsg.mk_instance(mask), R_TO_REGS)


def _build_right_registers(rsg: Rsg, ysize: int, name: str) -> Node:
    """mrightregs: one register row per array row, with direction masks."""
    regnum = 3 * ysize + 1
    length = (regnum + 1) // 2
    bases: List[Node] = []
    for index in range(1, ysize + 1):
        row = [rsg.mk_instance("reg") for _ in range(length)]
        rsg.chain(row, REG_H)
        _assign_directions(rsg, row, regnum, index)
        bases.append(row[0])
    rsg.chain(bases, REG_ROWPITCH)
    rsg.mk_cell(name, bases[0])
    return bases[0]


def generate_multiplier(
    xsize: int,
    ysize: int,
    rsg: Optional[Rsg] = None,
    top_name: str = "thewholething",
    compactor: Optional["HierarchicalCompactor"] = None,
) -> CellDefinition:
    """Generate the complete pipelined-multiplier layout (the mall macro).

    ``xsize`` x ``ysize`` carry-save array plus carry-propagate row, with
    top/bottom/right register stacks attached through interfaces
    inherited from the single basiccell-to-reg examples in the sample
    layout.

    ``compactor`` (a
    :class:`~repro.compact.pipeline.HierarchicalCompactor`) runs the
    compact-once/stamp-many pass over the result: each distinct leaf
    cell is compacted exactly once — through the compactor's cache and
    job pool — and every instance is re-stamped; the compacted cell
    replaces ``top_name`` in the workspace.
    """
    if xsize < 1 or ysize < 1:
        raise ValueError("multiplier size must be at least 1x1")
    if rsg is None:
        rsg = load_multiplier_library()

    right_ref = _build_right_registers(rsg, ysize, "rightregs")
    bottom_ref = _build_bottom_registers(rsg, xsize, "bottomregs")
    handles = _build_array(rsg, xsize, ysize, "array")
    top_ref = _build_top_registers(rsg, xsize, "topregs")

    rsg.declare_interface(
        "topregs", "array", 1, top_ref, handles["topright"], CELL_TO_TOPREG
    )
    tri = rsg.mk_instance("topregs")
    arrayi = rsg.mk_instance("array")
    rsg.connect(tri, arrayi, 1)

    rsg.declare_interface(
        "array", "bottomregs", 1, handles["bottomright"], bottom_ref, CELL_TO_BOTTOMREG
    )
    rsg.connect(arrayi, rsg.mk_instance("bottomregs"), 1)

    rsg.declare_interface(
        "array", "rightregs", 1, handles["rowend"], right_ref, CELL_TO_RIGHTREG
    )
    rsg.connect(arrayi, rsg.mk_instance("rightregs"), 1)

    cell = rsg.mk_cell(top_name, arrayi)
    if compactor is not None:
        cell = compactor.compact(cell)
        rsg.cells.define(cell, replace=True)
    return cell


def intended_multiplier_netlist(xsize: int, ysize: int) -> SwitchNetlist:
    """Golden cell-level netlist of an ``xsize`` x ``ysize`` multiplier.

    Encodes the architecture of Figure 5.1 / Appendix B directly —
    independently of the generator, interface tables and graph
    expansion: the carry-save array plus carry-propagate row on the
    20-lambda grid, sum seams straight down and carry seams to the
    left neighbour, the input-skew and output-deskew register
    triangles, and the bidirectional right-edge register rows with
    their direction masks.  Device kinds fold in the personalisation
    masks exactly as :func:`repro.verify.cellgraph.cell_graph_netlist`
    reads them back, so LVS between the two checks every placement and
    personalisation decision the generator makes.
    """
    if xsize < 1 or ysize < 1:
        raise ValueError("multiplier size must be at least 1x1")
    netlist = SwitchNetlist()
    net_at: Dict[Tuple[int, int], int] = {}

    def net(position: Tuple[int, int]) -> int:
        found = net_at.get(position)
        if found is None:
            found = netlist.add_net()
            net_at[position] = found
            netlist.net_positions[found] = position
        return found

    def add(kind_parts: List[str], pins: List[Tuple[str, Tuple[int, int]]]) -> None:
        head, masks = kind_parts[0], sorted(kind_parts[1:])
        netlist.add_device(
            "/".join([head] + masks),
            [(name, net(position)) for name, position in pins],
        )

    pitch, reg_pitch = CELL_PITCH, REG_PITCH
    for yloc in range(1, ysize + 2):
        for xloc in range(1, xsize + 1):
            x = pitch * (xloc - 1)
            y = -pitch * (yloc - 1)
            if yloc == ysize + 1:
                type_mask = "type1"
            elif xloc == xsize:
                type_mask = "type1" if yloc == ysize else "type2"
            else:
                type_mask = "type2" if yloc == ysize else "type1"
            phi = "phi1" if xloc % 2 == 0 else "phi2"
            if yloc == ysize:
                car = "car2"
            elif yloc == ysize + 1:
                car = "car1" if xloc == xsize else "car2"
            else:
                car = "car1"
            add(
                ["basiccell", type_mask, phi, car],
                [
                    ("sin", (x + 10, y + 20)),
                    ("sout", (x + 10, y)),
                    ("cin", (x + 20, y + 9)),
                    ("cout", (x, y + 9)),
                ],
            )
    # Input-skew triangle: column c carries c registers, stacked upward
    # from directly above array row 1.
    for column in range(1, xsize + 1):
        x = pitch * (column - 1)
        for step in range(column):
            y = pitch + reg_pitch * step
            add(
                ["reg"],
                [("din", (x + 10, y)), ("dout", (x + 10, y + reg_pitch))],
            )
    # Output-deskew triangle: column c carries xsize+1-c registers,
    # stacked downward from directly below the carry-propagate row.
    cpa_y = -pitch * ysize
    for column in range(1, xsize + 1):
        x = pitch * (column - 1)
        for step in range(xsize + 1 - column):
            y = cpa_y - reg_pitch * (step + 1)
            add(
                ["reg"],
                [("din", (x + 10, y)), ("dout", (x + 10, y + reg_pitch))],
            )
    # Right-edge register rows with bidirectional direction masks.
    regnum = 3 * ysize + 1
    length = (regnum + 1) // 2
    for index in range(1, ysize + 1):
        ins = index * 2
        outs = regnum - ins
        bi = min(ins, outs, length)
        if ins > outs:
            double, single = "goin", "sgoin"
        else:
            double, single = "goout", "sgoout"
        y = -pitch * (index - 1)
        for position in range(1, length + 1):
            if position <= bi:
                mask = "goboth"
            elif position == bi + 1:
                mask = single
            else:
                mask = double
            x = pitch * xsize + pitch * (position - 1)
            add(
                ["reg", mask],
                [("din", (x + 10, y)), ("dout", (x + 10, y + reg_pitch))],
            )
    return netlist


@dataclass
class MultiplierReport:
    """Layout statistics for a generated multiplier (Figure 5.6 metrics)."""

    xsize: int
    ysize: int
    basic_cells: int = 0
    type1_masks: int = 0
    type2_masks: int = 0
    clock_masks: int = 0
    carry_masks: int = 0
    registers: int = 0
    direction_masks: int = 0
    total_instances: int = 0
    bounding_box: Optional[Tuple[int, int, int, int]] = None
    mask_box_count: int = 0
    layer_area: Dict[str, int] = field(default_factory=dict)


def report_for(cell: CellDefinition, xsize: int, ysize: int) -> MultiplierReport:
    """Count personalisation features in a generated multiplier layout."""
    report = MultiplierReport(xsize, ysize)

    def walk(node: CellDefinition) -> None:
        for instance in node.instances:
            name = instance.celltype
            report.total_instances += 1
            if name == "basiccell":
                report.basic_cells += 1
            elif name == "type1":
                report.type1_masks += 1
            elif name == "type2":
                report.type2_masks += 1
            elif name.startswith("phi"):
                report.clock_masks += 1
            elif name.startswith("car"):
                report.carry_masks += 1
            elif name == "reg":
                report.registers += 1
            elif name.startswith(("go", "sgo")):
                report.direction_masks += 1
            walk(instance.definition)

    walk(cell)
    flat: FlatLayout = flatten_cell(cell)
    bbox = flat.bounding_box()
    if bbox is not None:
        report.bounding_box = (bbox.xmin, bbox.ymin, bbox.xmax, bbox.ymax)
    report.mask_box_count = flat.box_count()
    report.layer_area = flat.area_by_layer()
    return report
