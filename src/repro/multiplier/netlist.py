"""A small structural netlist substrate for the multiplier study.

Chapter 5 of the paper evaluates the RSG on pipelined array multipliers;
the authors verified their layouts with EXCL extraction and SPICE.  We
substitute a register-level netlist simulator: cells are combinational
bit functions wired into a DAG, edges can carry register chains, and the
simulator is cycle accurate.  This is the substrate both the functional
check (does the generated array multiply?) and the retiming study
(latency/register count versus pipelining degree beta) run on.
"""

from __future__ import annotations

from collections import deque
from typing import Callable, Dict, List, Optional, Sequence, Tuple

__all__ = ["Ref", "Cell", "Netlist"]

# A signal reference: ("input", name) | ("cell", cellname) | ("const", 0|1)
Ref = Tuple[str, object]


class Cell:
    """A combinational node: ``output = function(*input values)``."""

    __slots__ = ("name", "function", "inputs", "kind")

    def __init__(
        self,
        name: str,
        function: Callable[..., int],
        inputs: Sequence[Ref],
        kind: str = "",
    ) -> None:
        self.name = name
        self.function = function
        self.inputs = list(inputs)
        self.kind = kind

    def __repr__(self) -> str:
        return f"Cell({self.name!r}, kind={self.kind!r}, fan_in={len(self.inputs)})"


class Netlist:
    """A DAG of combinational cells with named primary inputs/outputs."""

    def __init__(self) -> None:
        self.cells: Dict[str, Cell] = {}
        self.inputs: List[str] = []
        self.outputs: Dict[str, Ref] = {}
        self._order: Optional[List[str]] = None

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    def add_input(self, name: str) -> Ref:
        if name in self.inputs:
            raise ValueError(f"duplicate input {name!r}")
        self.inputs.append(name)
        return ("input", name)

    def add_cell(
        self,
        name: str,
        function: Callable[..., int],
        inputs: Sequence[Ref],
        kind: str = "",
    ) -> Ref:
        if name in self.cells:
            raise ValueError(f"duplicate cell {name!r}")
        self.cells[name] = Cell(name, function, inputs, kind)
        self._order = None
        return ("cell", name)

    def set_output(self, name: str, ref: Ref) -> None:
        self.outputs[name] = ref

    @staticmethod
    def const(value: int) -> Ref:
        return ("const", 1 if value else 0)

    # ------------------------------------------------------------------
    # Analysis
    # ------------------------------------------------------------------
    def topological_order(self) -> List[str]:
        """Cell names in dependency order; raises on combinational cycles."""
        if self._order is not None:
            return self._order
        state: Dict[str, int] = {}
        order: List[str] = []

        def visit(name: str, stack: List[str]) -> None:
            mark = state.get(name, 0)
            if mark == 2:
                return
            if mark == 1:
                raise ValueError(
                    "combinational cycle through " + " -> ".join(stack + [name])
                )
            state[name] = 1
            for kind, target in self.cells[name].inputs:
                if kind == "cell":
                    visit(target, stack + [name])
            state[name] = 2
            order.append(name)

        for name in self.cells:
            visit(name, [])
        self._order = order
        return order

    def depths(self) -> Dict[str, int]:
        """Combinational depth of every cell (unit delay per cell).

        Primary inputs and constants have depth 0; a cell's depth is one
        more than the maximum depth of its inputs.
        """
        depth: Dict[str, int] = {}
        for name in self.topological_order():
            best = 0
            for kind, target in self.cells[name].inputs:
                if kind == "cell":
                    best = max(best, depth[target])
            depth[name] = best + 1
        return depth

    def critical_path(self) -> int:
        depths = self.depths()
        return max(depths.values(), default=0)

    # ------------------------------------------------------------------
    # Combinational evaluation
    # ------------------------------------------------------------------
    def evaluate(self, input_values: Dict[str, int]) -> Dict[str, int]:
        """Evaluate combinationally; returns output name -> bit."""
        values: Dict[str, int] = {}

        def fetch(ref: Ref) -> int:
            kind, target = ref
            if kind == "const":
                return target  # type: ignore[return-value]
            if kind == "input":
                return input_values[target]  # type: ignore[index]
            return values[target]  # type: ignore[index]

        for name in self.topological_order():
            cell = self.cells[name]
            values[name] = cell.function(*(fetch(ref) for ref in cell.inputs))
        return {name: fetch(ref) for name, ref in self.outputs.items()}

    def count_kind(self, kind: str) -> int:
        return sum(1 for cell in self.cells.values() if cell.kind == kind)

    def __repr__(self) -> str:
        return (
            f"Netlist(inputs={len(self.inputs)}, cells={len(self.cells)},"
            f" outputs={len(self.outputs)})"
        )
