"""Retiming / pipelining of array-multiplier netlists (chapter 5).

"Using retiming transformations, the multiplier can be pipelined to any
degree" — Figure 5.2 shows the bit-systolic case (beta = 1, at most one
full-adder delay between registers) and a beta = 2 version.  The paper
leaves the retiming subprogram as future work ("ultimately a subprogram
to perform the retiming can be embedded in the multiplier design file");
we implement it.

The scheme is cut-set pipelining on the unit-delay DAG: every cell gets a
stage number ``stage(v) = ceil(depth(v) / beta)``; an edge u -> v carries
``stage(v) - stage(u)`` registers, a primary-input edge carries
``stage(v)`` registers (the input skew triangles along the top/left
periphery), and every output is deskewed up to the global latency
``L = max stage`` (the output register stacks).  All quantities are
exactly the "integers near dots" of Figure 5.2.
"""

from __future__ import annotations

from collections import deque
from typing import Dict, List, Optional, Tuple

from .netlist import Netlist, Ref

__all__ = ["RegisterAssignment", "retime", "PipelinedSimulator"]


class RegisterAssignment:
    """Register counts for a netlist pipelined to degree ``beta``."""

    def __init__(self, netlist: Netlist, beta: Optional[int]) -> None:
        self.netlist = netlist
        self.beta = beta
        self.stage: Dict[str, int] = {}
        #: (cell name, input position) -> register count
        self.edge_registers: Dict[Tuple[str, int], int] = {}
        #: output name -> deskew register count
        self.output_registers: Dict[str, int] = {}
        self.latency = 0

    def total_registers(self) -> int:
        return sum(self.edge_registers.values()) + sum(
            self.output_registers.values()
        )

    def internal_registers(self) -> int:
        """Registers on cell-to-cell edges only (the inner array)."""
        return sum(
            count
            for (name, position), count in self.edge_registers.items()
            if self.netlist.cells[name].inputs[position][0] == "cell"
        )

    def peripheral_registers(self) -> int:
        """Input-skew plus output-deskew registers (the edge effects)."""
        return self.total_registers() - self.internal_registers()

    def max_combinational_run(self) -> int:
        """Longest register-free cell chain — must not exceed beta."""
        run: Dict[str, int] = {}
        for name in self.netlist.topological_order():
            best = 0
            for position, (kind, target) in enumerate(
                self.netlist.cells[name].inputs
            ):
                if self.edge_registers.get((name, position), 0) > 0:
                    continue
                if kind == "cell":
                    best = max(best, run[target])
            run[name] = best + 1
        return max(run.values(), default=0)

    def __repr__(self) -> str:
        return (
            f"RegisterAssignment(beta={self.beta}, latency={self.latency},"
            f" registers={self.total_registers()})"
        )


def retime(netlist: Netlist, beta: Optional[int]) -> RegisterAssignment:
    """Pipeline ``netlist`` so no register-free path exceeds ``beta`` cells.

    ``beta=None`` (or any value >= the critical path) yields the purely
    combinational multiplier: zero registers, zero latency.
    """
    assignment = RegisterAssignment(netlist, beta)
    depths = netlist.depths()
    if beta is None or beta >= max(depths.values(), default=0):
        for name, cell in netlist.cells.items():
            for position in range(len(cell.inputs)):
                assignment.edge_registers[(name, position)] = 0
        for output in netlist.outputs:
            assignment.output_registers[output] = 0
        assignment.stage = {name: 0 for name in netlist.cells}
        assignment.latency = 0
        return assignment
    if beta < 1:
        raise ValueError("beta must be at least 1")

    stage = {name: -(-depths[name] // beta) for name in netlist.cells}
    assignment.stage = stage
    # Stage-1 cells read primary inputs combinationally, so a path through
    # the pipeline crosses (max stage - 1) register boundaries.
    latency = max(stage.values()) - 1
    assignment.latency = latency
    for name, cell in netlist.cells.items():
        for position, (kind, target) in enumerate(cell.inputs):
            if kind == "cell":
                count = stage[name] - stage[target]
            elif kind == "input":
                count = stage[name] - 1
            else:  # constants are timeless
                count = 0
            if count < 0:
                raise AssertionError("negative register count: retiming bug")
            assignment.edge_registers[(name, position)] = count
    for output, (kind, target) in netlist.outputs.items():
        if kind == "cell":
            assignment.output_registers[output] = latency - (stage[target] - 1)
        else:
            assignment.output_registers[output] = latency
    return assignment


class PipelinedSimulator:
    """Cycle-accurate simulator of a retimed netlist.

    Registered edges are modelled as FIFO queues.  Feed one input vector
    per cycle with :meth:`step`; outputs assembled at cycle ``t`` reflect
    the inputs of cycle ``t - latency + 1``... precisely: the input
    vector applied at step ``t`` appears on the outputs returned by step
    ``t + latency``.
    """

    def __init__(self, assignment: RegisterAssignment) -> None:
        self.assignment = assignment
        self.netlist = assignment.netlist
        self.order = self.netlist.topological_order()
        self._edge_queues: Dict[Tuple[str, int], deque] = {}
        self._output_queues: Dict[str, deque] = {}
        for key, count in assignment.edge_registers.items():
            if count > 0:
                self._edge_queues[key] = deque([0] * count, maxlen=count)
        for output, count in assignment.output_registers.items():
            if count > 0:
                self._output_queues[output] = deque([0] * count, maxlen=count)

    @property
    def latency(self) -> int:
        return self.assignment.latency

    def step(self, input_values: Dict[str, int]) -> Dict[str, int]:
        """Advance one clock cycle; returns the current output values."""
        values: Dict[str, int] = {}

        def raw(ref: Ref) -> int:
            kind, target = ref
            if kind == "const":
                return target  # type: ignore[return-value]
            if kind == "input":
                return input_values[target]  # type: ignore[index]
            return values[target]  # type: ignore[index]

        for name in self.order:
            cell = self.netlist.cells[name]
            operands = []
            for position, ref in enumerate(cell.inputs):
                queue = self._edge_queues.get((name, position))
                operands.append(queue[0] if queue is not None else raw(ref))
            values[name] = cell.function(*operands)

        outputs: Dict[str, int] = {}
        for output, ref in self.netlist.outputs.items():
            queue = self._output_queues.get(output)
            outputs[output] = queue[0] if queue is not None else raw(ref)

        # Clock edge: shift every register chain.
        for (name, position), queue in self._edge_queues.items():
            queue.popleft()
            queue.append(raw(self.netlist.cells[name].inputs[position]))
        for output, queue in self._output_queues.items():
            queue.popleft()
            queue.append(raw(self.netlist.outputs[output]))
        return outputs

    def run_stream(
        self, input_stream: List[Dict[str, int]], flush: Optional[int] = None
    ) -> List[Dict[str, int]]:
        """Feed a stream and return the aligned output stream.

        The returned list has one entry per input vector, already
        compensated for latency (``flush`` extra idle cycles default to
        the latency).
        """
        if flush is None:
            flush = self.latency
        idle = {name: 0 for name in self.netlist.inputs}
        collected: List[Dict[str, int]] = []
        for vector in input_stream:
            collected.append(self.step(vector))
        for _ in range(flush):
            collected.append(self.step(idle))
        return collected[self.latency:self.latency + len(input_stream)]
