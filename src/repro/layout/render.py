"""Rendering flattened layouts as ASCII art or SVG (cf. paper Figure 5.6).

The ASCII renderer is meant for terminals and doctests; the SVG renderer
produces a colour plot with one translucent group per layer, good enough
to eyeball the generated multiplier against Figure 5.6.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Union

from ..core.cell import CellDefinition
from ..geometry import batch
from .database import FlatLayout, flatten_cell

__all__ = ["ascii_render", "svg_render", "DEFAULT_PALETTE"]

DEFAULT_PALETTE = [
    "#1f77b4",
    "#ff7f0e",
    "#2ca02c",
    "#d62728",
    "#9467bd",
    "#8c564b",
    "#e377c2",
    "#7f7f7f",
    "#bcbd22",
    "#17becf",
]


def _as_flat(layout: Union[FlatLayout, CellDefinition]) -> FlatLayout:
    if isinstance(layout, CellDefinition):
        return flatten_cell(layout)
    return layout


def ascii_render(
    layout: Union[FlatLayout, CellDefinition],
    max_width: int = 100,
    max_height: int = 50,
    layer_chars: Optional[Dict[str, str]] = None,
) -> str:
    """Render a layout as character art, one character per grid block.

    Layers are drawn in sorted order; later layers overwrite earlier ones.
    When the layout exceeds ``max_width``/``max_height`` it is decimated
    by an integer factor.
    """
    flat = _as_flat(layout)
    bbox = flat.bounding_box()
    if bbox is None:
        return "(empty layout)"
    step = max(
        1,
        (bbox.width + max_width - 1) // max_width,
        (bbox.height + max_height - 1) // max_height,
    )
    columns = max(1, (bbox.width + step - 1) // step)
    rows = max(1, (bbox.height + step - 1) // step)
    grid = [[" "] * columns for _ in range(rows)]

    default_chars = "#*+ox%@&=~"
    layers = sorted(flat.layers)
    chars = layer_chars or {
        layer: default_chars[index % len(default_chars)]
        for index, layer in enumerate(layers)
    }
    for layer in layers:
        mark = chars.get(layer, "?")
        for box in flat.layers[layer]:
            c0 = max(0, (box.xmin - bbox.xmin) // step)
            c1 = min(columns - 1, max(c0, (box.xmax - bbox.xmin - 1) // step))
            r0 = max(0, (box.ymin - bbox.ymin) // step)
            r1 = min(rows - 1, max(r0, (box.ymax - bbox.ymin - 1) // step))
            for row in range(r0, r1 + 1):
                for column in range(c0, c1 + 1):
                    grid[row][column] = mark
    legend = "  ".join(f"{chars.get(layer, '?')}={layer}" for layer in layers)
    body = "\n".join("".join(row) for row in reversed(grid))
    return f"{body}\n[{legend}] scale 1:{step}"


def svg_render(
    layout: Union[FlatLayout, CellDefinition],
    scale: float = 4.0,
    palette: Optional[List[str]] = None,
    show_labels: bool = False,
) -> str:
    """Render a layout as an SVG document string.

    With ``show_labels`` the layout's flattened labels are drawn as
    text — routed composites label every net at its first wire, so this
    is the quickest way to eyeball a :func:`repro.route.compose.compose`
    result.
    """
    flat = _as_flat(layout)
    bbox = flat.bounding_box()
    if bbox is None:
        return '<svg xmlns="http://www.w3.org/2000/svg"/>'
    palette = palette or DEFAULT_PALETTE
    width = bbox.width * scale
    height = bbox.height * scale
    parts = [
        f'<svg xmlns="http://www.w3.org/2000/svg" width="{width:.0f}"'
        f' height="{height:.0f}" viewBox="0 0 {width:.0f} {height:.0f}">',
        f'<rect width="{width:.0f}" height="{height:.0f}" fill="white"/>',
    ]
    use_batch = batch.use_numpy()
    for index, layer in enumerate(sorted(flat.layers)):
        color = palette[index % len(palette)]
        parts.append(f'<g fill="{color}" fill-opacity="0.55" stroke="{color}">')
        boxes = flat.layers[layer]
        if boxes and use_batch:
            # Batch the rect arithmetic: the coordinates are exactly
            # representable in float64, so the column products format
            # identically to the per-box Python expressions.
            arrays = batch.boxes_to_arrays(boxes)
            xs = ((arrays.xmin - bbox.xmin) * scale).tolist()
            # SVG y axis points down; flip.
            ys = ((bbox.ymax - arrays.ymax) * scale).tolist()
            widths = ((arrays.xmax - arrays.xmin) * scale).tolist()
            heights = ((arrays.ymax - arrays.ymin) * scale).tolist()
            parts.extend(
                f'<rect x="{x:.1f}" y="{y:.1f}" width="{w:.1f}"'
                f' height="{h:.1f}"/>'
                for x, y, w, h in zip(xs, ys, widths, heights)
            )
        else:
            for box in boxes:
                x = (box.xmin - bbox.xmin) * scale
                # SVG y axis points down; flip.
                y = (bbox.ymax - box.ymax) * scale
                parts.append(
                    f'<rect x="{x:.1f}" y="{y:.1f}" width="{box.width * scale:.1f}"'
                    f' height="{box.height * scale:.1f}"/>'
                )
        parts.append("</g>")
    if show_labels and flat.labels:
        parts.append('<g fill="black" font-size="10" font-family="monospace">')
        for label in flat.labels:
            x = (label.position.x - bbox.xmin) * scale
            y = (bbox.ymax - label.position.y) * scale
            parts.append(f'<text x="{x:.1f}" y="{y:.1f}">{label.text}</text>')
        parts.append("</g>")
    parts.append("</svg>")
    return "\n".join(parts)
