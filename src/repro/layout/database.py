"""The layout database: flattening, merging, and area statistics.

The RSG "maintains its own database and as such is layout file format
independent" (section 4.5).  This module gives the flattened view of a
hierarchical cell: per-layer box lists, optional merging of overlapping
boxes into maximal horizontal strips (the preprocessing step discussed in
section 6.4.1), bounding boxes and utilisation statistics.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Dict, List, Optional, Tuple

from ..core.cell import CellDefinition, Label, LayerBox, Port
from ..geometry import Box, Transform, batch, slab_decompose

__all__ = [
    "FlatLayout",
    "flatten_cell",
    "merge_boxes",
    "merge_boxes_python",
    "merge_boxes_reference",
]


def _coalesce_slabs(
    slabs: List[Tuple[int, int, Tuple[Tuple[int, int], ...]]]
) -> List[Box]:
    """Coalesce consecutive slabs with identical x spans into boxes."""
    result: List[Box] = []
    open_spans: Dict[Tuple[int, int], int] = {}
    previous_y1: Optional[int] = None
    for y0, y1, spans in slabs:
        continued = previous_y1 == y0
        next_open: Dict[Tuple[int, int], int] = {}
        for span in spans:
            if continued and span in open_spans:
                next_open[span] = open_spans.pop(span)
            else:
                next_open[span] = y0
        for span, start in open_spans.items():
            result.append(Box(span[0], start, span[1], y0 if continued else previous_y1))
        open_spans = next_open
        previous_y1 = y1
    for span, start in open_spans.items():
        result.append(Box(span[0], start, span[1], previous_y1))
    result.sort(key=lambda b: (b.ymin, b.xmin, b.ymax, b.xmax))
    return result


def merge_boxes(boxes: List[Box]) -> List[Box]:
    """Merge overlapping/abutting boxes into maximal horizontal strips.

    This is the box-merging preprocessing of section 6.4.1: the result
    covers exactly the same area with no hidden or partially hidden
    vertical edges inside any strip row.  The decomposition slices the
    union region at every distinct y coordinate and merges x intervals
    within each slab, then coalesces vertically identical spans.

    Dispatches on the ``REPRO_KERNEL`` switch: the numpy batch merge
    (:func:`repro.geometry.batch.merge_boxes_batch`) by default, the
    interpreted sweep build (:func:`merge_boxes_python`) otherwise.
    Output is identical either way.
    """
    if batch.use_numpy():
        return batch.merge_boxes_batch(boxes)
    return merge_boxes_python(boxes)


def merge_boxes_python(boxes: List[Box]) -> List[Box]:
    """The interpreted sweep-kernel strip merger.

    The slab runs come from the sweep kernel
    (:func:`repro.geometry.slab_decompose`): one y-event sweep carries
    the active intervals, so the cost is event maintenance plus
    output-sensitive run merging instead of the ``O(slabs x boxes)``
    rescan of :func:`merge_boxes_reference`.  Serves as the equivalence
    oracle for the batch kernel's merge.
    """
    if not boxes:
        return []
    slabs: List[Tuple[int, int, Tuple[Tuple[int, int], ...]]] = []
    for y0, y1, runs in slab_decompose({"": boxes}):
        spans = runs[""]
        if spans:
            slabs.append((y0, y1, tuple(spans)))
    return _coalesce_slabs(slabs)


def merge_boxes_reference(boxes: List[Box]) -> List[Box]:
    """The pre-kernel strip merger, retained as an equivalence oracle.

    Rebuilds every slab's intervals by scanning *all* boxes per slab —
    quadratic on real cells — and must produce the identical box list
    to :func:`merge_boxes` on any input.
    """
    if not boxes:
        return []
    ys = sorted({box.ymin for box in boxes} | {box.ymax for box in boxes})
    slabs: List[Tuple[int, int, Tuple[Tuple[int, int], ...]]] = []
    for y0, y1 in zip(ys, ys[1:]):
        if y0 == y1:
            continue
        intervals: List[Tuple[int, int]] = []
        for box in boxes:
            if box.ymin <= y0 and box.ymax >= y1 and box.xmax > box.xmin:
                intervals.append((box.xmin, box.xmax))
        if not intervals:
            continue
        intervals.sort()
        merged = [list(intervals[0])]
        for x0, x1 in intervals[1:]:
            if x0 <= merged[-1][1]:
                merged[-1][1] = max(merged[-1][1], x1)
            else:
                merged.append([x0, x1])
        slabs.append((y0, y1, tuple((a, b) for a, b in merged)))
    return _coalesce_slabs(slabs)


class FlatLayout:
    """A flattened layout: boxes grouped per layer, plus flattened ports."""

    def __init__(self, name: str) -> None:
        self.name = name
        self.layers: Dict[str, List[Box]] = defaultdict(list)
        self.ports: List[Port] = []
        self.labels: List[Label] = []

    def add(self, layer: str, box: Box) -> None:
        self.layers[layer].append(box)

    def box_count(self) -> int:
        return sum(len(boxes) for boxes in self.layers.values())

    def bounding_box(self) -> Optional[Box]:
        result: Optional[Box] = None
        for boxes in self.layers.values():
            for box in boxes:
                result = box if result is None else result.union(box)
        return result

    def merged(self) -> "FlatLayout":
        """Return a copy with per-layer boxes merged into maximal strips."""
        out = FlatLayout(self.name)
        for layer, boxes in self.layers.items():
            out.layers[layer] = merge_boxes(boxes)
        out.ports = list(self.ports)
        out.labels = list(self.labels)
        return out

    def area_by_layer(self) -> Dict[str, int]:
        """Exact covered area per layer (computed on merged geometry)."""
        merged = self.merged()
        return {
            layer: sum(box.area for box in boxes)
            for layer, boxes in merged.layers.items()
        }

    def utilisation(self) -> float:
        """Total covered layer area over bounding-box area (>1 possible)."""
        bbox = self.bounding_box()
        if bbox is None or bbox.area == 0:
            return 0.0
        return sum(self.area_by_layer().values()) / bbox.area

    def same_geometry(self, other: "FlatLayout") -> bool:
        """Layer-by-layer equality of covered regions (order independent)."""
        layers = set(self.layers) | set(other.layers)
        for layer in layers:
            mine = merge_boxes(self.layers.get(layer, []))
            theirs = merge_boxes(other.layers.get(layer, []))
            if mine != theirs:
                return False
        return True

    def __repr__(self) -> str:
        return f"FlatLayout({self.name!r}, layers={len(self.layers)}, boxes={self.box_count()})"


def flatten_cell(cell: CellDefinition, merge: bool = False) -> FlatLayout:
    """Flatten a hierarchical cell into a :class:`FlatLayout`."""
    flat = FlatLayout(cell.name)
    layer_box: LayerBox
    for layer_box in cell.flatten(Transform()):
        flat.add(layer_box.layer, layer_box.box)
    flat.ports = list(cell.flatten_ports(Transform()))
    flat.labels = list(cell.flatten_labels(Transform()))
    return flat.merged() if merge else flat
