"""Port-level connectivity extraction (the EXCL substitute).

The paper verified generated multiplier layouts with EXCL circuit
extraction.  Our cells carry named ports; when the RSG places two
instances so that ports coincide (same position, compatible layer), the
signals are connected.  This module extracts that port graph from a
placed hierarchy and reports nets — enough to check that interfaces
really carry the connectivity the architecture intends (e.g. each cell's
``sout`` lands on its lower neighbour's ``sin``).
"""

from __future__ import annotations

from collections import defaultdict
from typing import Dict, List, Optional, Set, Tuple

from ..core.cell import CellDefinition, Port
from ..geometry import Transform, Vec2

__all__ = ["PortNetlist", "extract_ports"]


class PortNetlist:
    """Flattened ports grouped into nets by coincidence.

    A port-name -> net-index dict is maintained alongside ``nets`` so
    :meth:`net_of` and :meth:`connected` are O(1) dict lookups instead
    of an O(nets x ports) scan — extraction-heavy callers (the routing
    round-trip, the multiplier seam checks) query thousands of times.
    Wildcard (layerless) ports can appear on several nets; the index
    records the first, matching the old scan's answer.
    """

    def __init__(self) -> None:
        #: hierarchical port name -> position
        self.ports: Dict[str, Vec2] = {}
        #: net id -> sorted list of hierarchical port names
        self.nets: List[List[str]] = []
        #: port name -> index into ``nets`` (first net holding the port)
        self._net_index: Dict[str, int] = {}

    def add_net(self, names: List[str]) -> int:
        """Append one net (sorted port names) and index it; returns its id."""
        index = len(self.nets)
        self.nets.append(names)
        for name in names:
            self._net_index.setdefault(name, index)
        return index

    def net_of(self, port_name: str) -> Optional[int]:
        """Index of the (first) net holding ``port_name``, or None."""
        return self._net_index.get(port_name)

    def connected(self, a: str, b: str) -> bool:
        """True when ports a and b share a net."""
        net = self.net_of(a)
        if net is None:
            return False
        if b in self.nets[net]:
            return True
        # Wildcard ports may sit on several nets; fall back to b's net.
        other = self.net_of(b)
        return other is not None and a in self.nets[other]

    def merge(self, other: "PortNetlist") -> "PortNetlist":
        """Append another netlist's ports and nets into this one.

        Nets are renumbered after this netlist's own; ports present in
        both keep this netlist's position and their *first* net index,
        matching the wildcard convention (the index records the first
        net holding a port).  Returns ``self`` for chaining.
        """
        for name, position in other.ports.items():
            self.ports.setdefault(name, position)
        for net in other.nets:
            self.add_net(list(net))
        return self

    def multi_terminal_nets(self) -> List[List[str]]:
        return [net for net in self.nets if len(net) >= 2]

    def dangling_ports(self) -> List[str]:
        """Ports alone on their net (unconnected terminals)."""
        return [net[0] for net in self.nets if len(net) == 1]

    def __repr__(self) -> str:
        return (
            f"PortNetlist({len(self.ports)} ports,"
            f" {len(self.multi_terminal_nets())} connected nets)"
        )


def extract_ports(cell: CellDefinition) -> PortNetlist:
    """Extract the coincidence port netlist of a placed hierarchy.

    Ports connect when they occupy the same grid point and either share
    a layer or at least one of them is layerless.
    """
    netlist = PortNetlist()
    by_position: Dict[Tuple[int, int], List[Tuple[str, str]]] = defaultdict(list)
    for port in cell.flatten_ports(Transform()):
        netlist.ports[port.name] = port.position
        by_position[(port.position.x, port.position.y)].append(
            (port.name, port.layer)
        )
    for _, items in sorted(by_position.items()):
        # Partition by layer compatibility: layerless ports join any group.
        groups: Dict[str, List[str]] = defaultdict(list)
        wildcards: List[str] = []
        for name, layer in items:
            if layer:
                groups[layer].append(name)
            else:
                wildcards.append(name)
        if groups:
            for layer, names in sorted(groups.items()):
                netlist.add_net(sorted(names + wildcards))
        else:
            netlist.add_net(sorted(wildcards))
    return netlist
