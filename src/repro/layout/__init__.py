"""Layout database, sample-layout ingestion, CIF I/O, rendering."""

from .cif import cif_text, read_cif, write_cif
from .connectivity import PortNetlist, extract_ports
from .database import FlatLayout, flatten_cell, merge_boxes, merge_boxes_reference
from .render import ascii_render, svg_render
from .sample import SampleSummary, dump_sample, load_sample, loads_sample

__all__ = [
    "PortNetlist",
    "extract_ports",
    "FlatLayout",
    "flatten_cell",
    "merge_boxes",
    "merge_boxes_reference",
    "load_sample",
    "loads_sample",
    "dump_sample",
    "SampleSummary",
    "write_cif",
    "read_cif",
    "cif_text",
    "ascii_render",
    "svg_render",
]
