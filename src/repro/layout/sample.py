"""Sample-layout files: the graphical half of the design (section 2.3).

A sample layout supplies (a) the definitions of all primitive cells and
(b) interfaces between them, *by example*: calling two cells together in
a higher-order example cell with the appropriate relative placement
defines an interface.  A numerical label placed in the overlap region
names the interface index (paper Figure 5.5).

File format (line oriented, ``#`` comments)::

    cell <name>
      box <layer> <xmin> <ymin> <xmax> <ymax>
      port <name> <x> <y> [layer]
    end

    example [<name>]
      inst <cellname> <x> <y> <orientation>
      inst <cellname> <x> <y> <orientation>
      label <index> <x> <y>
    end

Within an ``example`` block each ``label`` declares one interface.  The
pair of instances it refers to are those whose bounding boxes contain the
label point; when more than two qualify, the two *earliest listed* are
taken.  The earlier-listed instance of the pair is the **reference
instance** (the paper's A1 of Figure 3.7) — this is the graphical
discrimination section 3.4 calls for, made deterministic by listing
order.  If the label point is ambiguous (fewer than two containing
instances and not exactly two instances in the block), a
:class:`~repro.core.errors.ParseError` is raised.
"""

from __future__ import annotations

import io
from typing import List, Optional, TextIO, Tuple, Union

from ..core.cell import CellDefinition, Instance
from ..core.errors import ParseError
from ..core.interface import derive_interface
from ..core.operators import Rsg
from ..geometry import Orientation, Vec2

__all__ = ["load_sample", "loads_sample", "dump_sample", "SampleSummary"]


class SampleSummary:
    """What a sample layout contributed to the workspace."""

    def __init__(self) -> None:
        self.cells: List[str] = []
        self.interfaces: List[Tuple[str, str, int]] = []

    def __repr__(self) -> str:
        return (
            f"SampleSummary(cells={len(self.cells)},"
            f" interfaces={len(self.interfaces)})"
        )


def _parse_int(token: str, line_number: int) -> int:
    try:
        return int(token)
    except ValueError:
        raise ParseError(f"line {line_number}: expected integer, got {token!r}") from None


def _instances_containing(
    instances: List[Instance], point: Vec2
) -> List[Instance]:
    hits = []
    for instance in instances:
        bbox = instance.bounding_box()
        if bbox is not None and bbox.contains_point(point):
            hits.append(instance)
    return hits


def loads_sample(text: str, rsg: Rsg, replace: bool = False) -> SampleSummary:
    """Parse sample-layout text into the workspace (see module docstring)."""
    return load_sample(io.StringIO(text), rsg, replace=replace)


def load_sample(stream: Union[TextIO, str], rsg: Rsg, replace: bool = False) -> SampleSummary:
    """Load a sample layout from a file path or text stream into ``rsg``.

    Primitive cells go into the cell table; each example-block label adds
    an interface to the interface table.  Returns a summary.
    """
    if isinstance(stream, str):
        with open(stream, "r", encoding="utf-8") as handle:
            return load_sample(handle, rsg, replace=replace)

    summary = SampleSummary()
    current: Optional[CellDefinition] = None
    in_example = False
    example_instances: List[Instance] = []
    example_labels: List[Tuple[int, Vec2, int]] = []
    example_count = 0

    def finish_example(line_number: int) -> None:
        nonlocal example_instances, example_labels
        if not example_labels:
            raise ParseError(
                f"line {line_number}: example block declares no interface labels"
            )
        for index, point, label_line in example_labels:
            hits = _instances_containing(example_instances, point)
            if len(hits) >= 2:
                ref, other = hits[0], hits[1]
            elif len(example_instances) == 2:
                ref, other = example_instances
            else:
                raise ParseError(
                    f"line {label_line}: interface label {index} at"
                    f" ({point.x}, {point.y}) does not identify two instances"
                )
            interface = derive_interface(
                ref.location, ref.orientation, other.location, other.orientation
            )
            rsg.interfaces.declare(
                ref.celltype, other.celltype, index, interface, replace=replace
            )
            summary.interfaces.append((ref.celltype, other.celltype, index))
        example_instances = []
        example_labels = []

    for line_number, raw in enumerate(stream, start=1):
        line = raw.split("#", 1)[0].strip()
        if not line:
            continue
        tokens = line.split()
        keyword = tokens[0].lower()

        if keyword == "cell":
            if current is not None or in_example:
                raise ParseError(f"line {line_number}: nested block")
            if len(tokens) != 2:
                raise ParseError(f"line {line_number}: cell needs exactly one name")
            current = rsg.define_cell(tokens[1], replace=replace)
            summary.cells.append(tokens[1])
        elif keyword == "example":
            if current is not None or in_example:
                raise ParseError(f"line {line_number}: nested block")
            in_example = True
            example_count += 1
        elif keyword == "end":
            if current is not None:
                current = None
            elif in_example:
                finish_example(line_number)
                in_example = False
            else:
                raise ParseError(f"line {line_number}: end outside a block")
        elif keyword == "box":
            if current is None:
                raise ParseError(f"line {line_number}: box outside a cell block")
            if len(tokens) != 6:
                raise ParseError(f"line {line_number}: box needs layer + 4 coords")
            current.add_box(
                tokens[1],
                *(_parse_int(token, line_number) for token in tokens[2:6]),
            )
        elif keyword == "port":
            if current is None:
                raise ParseError(f"line {line_number}: port outside a cell block")
            if len(tokens) not in (4, 5):
                raise ParseError(f"line {line_number}: port needs name x y [layer]")
            layer = tokens[4] if len(tokens) == 5 else ""
            current.add_port(
                tokens[1],
                _parse_int(tokens[2], line_number),
                _parse_int(tokens[3], line_number),
                layer,
            )
        elif keyword == "inst":
            if not in_example:
                raise ParseError(f"line {line_number}: inst outside an example block")
            if len(tokens) != 5:
                raise ParseError(f"line {line_number}: inst needs cell x y orientation")
            definition = rsg.cells.lookup(tokens[1])
            try:
                orientation = Orientation.from_name(tokens[4])
            except ValueError as exc:
                raise ParseError(f"line {line_number}: {exc}") from None
            instance = Instance(
                definition,
                Vec2(
                    _parse_int(tokens[2], line_number),
                    _parse_int(tokens[3], line_number),
                ),
                orientation,
            )
            example_instances.append(instance)
        elif keyword == "label":
            if not in_example:
                raise ParseError(f"line {line_number}: label outside an example block")
            if len(tokens) != 4:
                raise ParseError(f"line {line_number}: label needs index x y")
            example_labels.append(
                (
                    _parse_int(tokens[1], line_number),
                    Vec2(
                        _parse_int(tokens[2], line_number),
                        _parse_int(tokens[3], line_number),
                    ),
                    line_number,
                )
            )
        else:
            raise ParseError(f"line {line_number}: unknown keyword {keyword!r}")

    if current is not None or in_example:
        raise ParseError("unterminated block at end of file")
    return summary


def dump_sample(rsg: Rsg, cell_names: List[str]) -> str:
    """Serialise primitive cells back to sample-file syntax.

    Interfaces are not round-tripped (they would need example blocks with
    synthetic placements); this is the cell-library half only, used when
    emitting a *new* sample layout after leaf-cell compaction
    (section 6.3).
    """
    lines: List[str] = []
    for name in cell_names:
        cell = rsg.cells.lookup(name)
        lines.append(f"cell {cell.name}")
        for layer_box in cell.boxes:
            box = layer_box.box
            lines.append(
                f"  box {layer_box.layer} {box.xmin} {box.ymin} {box.xmax} {box.ymax}"
            )
        for port in cell.ports:
            suffix = f" {port.layer}" if port.layer else ""
            lines.append(f"  port {port.name} {port.position.x} {port.position.y}{suffix}")
        lines.append("end")
        lines.append("")
    return "\n".join(lines)
