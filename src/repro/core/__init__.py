"""Core RSG machinery: cells, interfaces, connectivity graphs, operators."""

from .cell import CellDefinition, CellTable, Instance, Label, LayerBox, Port
from .errors import (
    CellError,
    CompactionError,
    DisconnectedGraphError,
    DuplicateCellError,
    DuplicateInterfaceError,
    EvalError,
    GraphError,
    InconsistentGraphError,
    InfeasibleConstraintsError,
    InterfaceError,
    LanguageError,
    ParseError,
    RsgError,
    UnboundVariableError,
    UnknownCellError,
    UnknownInterfaceError,
)
from .graph import Edge, Node, collect_graph, expand_graph
from .interface import (
    Interface,
    derive_interface,
    inherit_interface,
    propagate_placement,
)
from .interface_table import InterfaceTable
from .operators import Rsg

__all__ = [
    "CellDefinition",
    "CellTable",
    "Instance",
    "Label",
    "LayerBox",
    "Port",
    "Edge",
    "Node",
    "collect_graph",
    "expand_graph",
    "Interface",
    "derive_interface",
    "inherit_interface",
    "propagate_placement",
    "InterfaceTable",
    "Rsg",
    "RsgError",
    "CellError",
    "DuplicateCellError",
    "UnknownCellError",
    "InterfaceError",
    "UnknownInterfaceError",
    "DuplicateInterfaceError",
    "GraphError",
    "InconsistentGraphError",
    "DisconnectedGraphError",
    "LanguageError",
    "ParseError",
    "EvalError",
    "UnboundVariableError",
    "CompactionError",
    "InfeasibleConstraintsError",
]
