"""The interface table (paper section 2.4).

The table maps triples ``(cellname1, cellname2, interface index)`` to
interfaces ``(vector, orientation)``.  Whenever ``I_ab`` is loaded the
corresponding ``I_ba`` is loaded too — the *bilaterality* that lets graph
expansion derive either endpoint's placement from the other (section 2.4).

For a pair of *identical* cell names the inverse may collide with the
forward entry under the same key; section 3.4 resolves the resulting
ambiguity with directed graph edges, and the table simply records which of
``I_aa``/``I_aa^-1`` the user designated as the reference direction.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Tuple

from .errors import DuplicateInterfaceError, UnknownInterfaceError
from .interface import Interface

__all__ = ["InterfaceTable"]

Key = Tuple[str, str, int]


class InterfaceTable:
    """Bilateral mapping from (cellA, cellB, index) to interfaces."""

    def __init__(self) -> None:
        self._table: Dict[Key, Interface] = {}

    # ------------------------------------------------------------------
    # Loading
    # ------------------------------------------------------------------
    def declare(
        self,
        cell_a: str,
        cell_b: str,
        index: int,
        interface: Interface,
        replace: bool = False,
    ) -> None:
        """Load ``I_ab`` under ``(cell_a, cell_b, index)`` and its inverse
        under ``(cell_b, cell_a, index)``.

        For ``cell_a == cell_b`` the forward interface is the reference
        direction; the inverse is recoverable via :meth:`lookup_reverse`.
        """
        key = (cell_a, cell_b, index)
        if not replace and key in self._table:
            raise DuplicateInterfaceError(
                f"interface #{index} between {cell_a!r} and {cell_b!r} already loaded"
            )
        self._table[key] = interface
        if cell_a != cell_b:
            self._table[(cell_b, cell_a, index)] = interface.inverse()

    # ------------------------------------------------------------------
    # Lookup
    # ------------------------------------------------------------------
    def lookup(self, cell_a: str, cell_b: str, index: int) -> Interface:
        """Return ``I_ab`` for the given triple.

        Raises :class:`UnknownInterfaceError` when absent.
        """
        try:
            return self._table[(cell_a, cell_b, index)]
        except KeyError:
            raise UnknownInterfaceError(
                f"no interface #{index} between {cell_a!r} and {cell_b!r}"
            ) from None

    def lookup_reverse(self, cell_a: str, cell_b: str, index: int) -> Interface:
        """Return ``I_ba`` given the key of ``I_ab``.

        Needed for same-celltype edges traversed against their direction.
        """
        return self.lookup(cell_a, cell_b, index).inverse()

    def has(self, cell_a: str, cell_b: str, index: int) -> bool:
        return (cell_a, cell_b, index) in self._table

    def indices_between(self, cell_a: str, cell_b: str) -> List[int]:
        """All interface index numbers loaded for the ordered cell pair."""
        return sorted(
            index for (a, b, index) in self._table if a == cell_a and b == cell_b
        )

    def next_index(self, cell_a: str, cell_b: str) -> int:
        """Smallest positive index not yet used for this ordered pair."""
        used = set(self.indices_between(cell_a, cell_b))
        index = 1
        while index in used:
            index += 1
        return index

    def __len__(self) -> int:
        return len(self._table)

    def __iter__(self) -> Iterator[Tuple[Key, Interface]]:
        return iter(self._table.items())

    def cells(self) -> Tuple[str, ...]:
        """All cell names appearing in any loaded interface."""
        seen = set()
        for a, b, _ in self._table:
            seen.add(a)
            seen.add(b)
        return tuple(sorted(seen))
