"""Cells, instances, and the layout objects they contain.

Paper section 2.1: a cell consists of objects whose locations are defined
in a local coordinate system — boxes of various layers, points (we call
them ports, and give them names so netlists can reference them), and
instances of other cells.  An instance is the triplet
``(point of call, orientation, cell definition)``.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional, Tuple

from ..geometry import Box, NORTH, Orientation, Transform, Vec2
from .errors import DuplicateCellError, UnknownCellError

__all__ = ["LayerBox", "Port", "Label", "Instance", "CellDefinition", "CellTable"]


class LayerBox:
    """A rectangle of mask material on a named layer."""

    __slots__ = ("layer", "box")

    def __init__(self, layer: str, box: Box) -> None:
        self.layer = layer
        self.box = box

    def transformed(self, transform: Transform) -> "LayerBox":
        return LayerBox(self.layer, transform.apply_box(self.box))

    def __eq__(self, other) -> bool:
        if not isinstance(other, LayerBox):
            return NotImplemented
        return self.layer == other.layer and self.box == other.box

    def __hash__(self) -> int:
        return hash((self.layer, self.box))

    def __repr__(self) -> str:
        return f"LayerBox({self.layer!r}, {self.box!r})"


class Port:
    """A named point in a cell, used for connectivity and netlist extraction."""

    __slots__ = ("name", "position", "layer")

    def __init__(self, name: str, position: Vec2, layer: str = "") -> None:
        self.name = name
        self.position = position
        self.layer = layer

    def transformed(self, transform: Transform) -> "Port":
        return Port(self.name, transform.apply(self.position), self.layer)

    def __eq__(self, other) -> bool:
        if not isinstance(other, Port):
            return NotImplemented
        return (
            self.name == other.name
            and self.position == other.position
            and self.layer == other.layer
        )

    def __hash__(self) -> int:
        return hash((self.name, self.position, self.layer))

    def __repr__(self) -> str:
        return f"Port({self.name!r}, {self.position!r}, {self.layer!r})"


class Label:
    """A free-text annotation at a point (interface labels in sample files)."""

    __slots__ = ("text", "position")

    def __init__(self, text: str, position: Vec2) -> None:
        self.text = text
        self.position = position

    def transformed(self, transform: Transform) -> "Label":
        return Label(self.text, transform.apply(self.position))

    def __eq__(self, other) -> bool:
        if not isinstance(other, Label):
            return NotImplemented
        return self.text == other.text and self.position == other.position

    def __hash__(self) -> int:
        return hash((self.text, self.position))

    def __repr__(self) -> str:
        return f"Label({self.text!r}, {self.position!r})"


class Instance:
    """A placed call of a cell: ``(point of call, orientation, definition)``.

    The location/orientation may be unset (``None``) while the instance is
    still a *partial instance* inside a connectivity graph; ``mk_cell``
    fills them in during graph expansion (paper section 4.4.3).
    """

    __slots__ = ("definition", "location", "orientation", "name")

    def __init__(
        self,
        definition: "CellDefinition",
        location: Optional[Vec2] = None,
        orientation: Optional[Orientation] = None,
        name: str = "",
    ) -> None:
        self.definition = definition
        self.location = location
        self.orientation = orientation
        self.name = name

    @property
    def celltype(self) -> str:
        return self.definition.name

    @property
    def is_placed(self) -> bool:
        return self.location is not None and self.orientation is not None

    def place(self, location: Vec2, orientation: Orientation) -> None:
        self.location = location
        self.orientation = orientation

    @property
    def transform(self) -> Transform:
        if not self.is_placed:
            raise ValueError(f"instance of {self.celltype!r} is not placed")
        return Transform(self.location, self.orientation)

    def bounding_box(self) -> Optional[Box]:
        inner = self.definition.bounding_box()
        if inner is None or not self.is_placed:
            return inner
        return self.transform.apply_box(inner)

    def __repr__(self) -> str:
        where = (
            f"@{self.location!r} {self.orientation!r}" if self.is_placed else "(unplaced)"
        )
        return f"Instance({self.celltype!r} {where})"


class CellDefinition:
    """A named cell: a list of boxes, ports, labels, and sub-instances."""

    def __init__(self, name: str) -> None:
        self.name = name
        self.boxes: List[LayerBox] = []
        self.ports: List[Port] = []
        self.labels: List[Label] = []
        self.instances: List[Instance] = []

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    def add_box(self, layer: str, xmin: int, ymin: int, xmax: int, ymax: int) -> LayerBox:
        item = LayerBox(layer, Box(xmin, ymin, xmax, ymax))
        self.boxes.append(item)
        return item

    def add_port(self, name: str, x: int, y: int, layer: str = "") -> Port:
        port = Port(name, Vec2(x, y), layer)
        self.ports.append(port)
        return port

    def add_label(self, text: str, x: int, y: int) -> Label:
        label = Label(text, Vec2(x, y))
        self.labels.append(label)
        return label

    def add_instance(
        self,
        definition: "CellDefinition",
        location: Optional[Vec2] = None,
        orientation: Optional[Orientation] = None,
        name: str = "",
    ) -> Instance:
        if orientation is None and location is not None:
            orientation = NORTH
        instance = Instance(definition, location, orientation, name)
        self.instances.append(instance)
        return instance

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def port(self, name: str) -> Port:
        for port in self.ports:
            if port.name == name:
                return port
        raise KeyError(f"cell {self.name!r} has no port {name!r}")

    def bounding_box(self) -> Optional[Box]:
        """Bounding box over own geometry and placed sub-instances."""
        result: Optional[Box] = None
        for layer_box in self.boxes:
            result = layer_box.box if result is None else result.union(layer_box.box)
        for instance in self.instances:
            if not instance.is_placed:
                continue
            sub = instance.bounding_box()
            if sub is not None:
                result = sub if result is None else result.union(sub)
        return result

    def flatten(self, transform: Transform = Transform()) -> Iterator[LayerBox]:
        """Yield every mask box with hierarchy fully expanded."""
        for layer_box in self.boxes:
            yield layer_box.transformed(transform)
        for instance in self.instances:
            if not instance.is_placed:
                continue
            yield from instance.definition.flatten(transform.compose(instance.transform))

    def flatten_ports(self, transform: Transform = Transform(), prefix: str = "") -> Iterator[Port]:
        """Yield ports with hierarchical names ``inst/.../port``."""
        for port in self.ports:
            item = port.transformed(transform)
            item.name = prefix + port.name
            yield item
        for index, instance in enumerate(self.instances):
            if not instance.is_placed:
                continue
            tag = instance.name or f"{instance.celltype}#{index}"
            yield from instance.definition.flatten_ports(
                transform.compose(instance.transform), prefix=f"{prefix}{tag}/"
            )

    def flatten_labels(self, transform: Transform = Transform()) -> Iterator[Label]:
        """Yield every label with hierarchy fully expanded."""
        for label in self.labels:
            yield label.transformed(transform)
        for instance in self.instances:
            if not instance.is_placed:
                continue
            yield from instance.definition.flatten_labels(
                transform.compose(instance.transform)
            )

    def count_instances(self, recursive: bool = False) -> int:
        """Number of sub-instances (transitively when ``recursive``)."""
        if not recursive:
            return len(self.instances)
        total = 0
        for instance in self.instances:
            total += 1 + instance.definition.count_instances(recursive=True)
        return total

    def layers(self) -> Tuple[str, ...]:
        """Sorted tuple of layers present anywhere under this cell."""
        seen = set()
        for layer_box in self.flatten():
            seen.add(layer_box.layer)
        return tuple(sorted(seen))

    def __repr__(self) -> str:
        return (
            f"CellDefinition({self.name!r}, boxes={len(self.boxes)},"
            f" instances={len(self.instances)})"
        )


class CellTable:
    """The table of available cell definitions (paper Figure 4.1).

    Variable lookup in the design-file interpreter falls through to this
    table, so cell names behave like ordinary identifiers.
    """

    def __init__(self) -> None:
        self._cells: Dict[str, CellDefinition] = {}

    def define(self, cell: CellDefinition, replace: bool = False) -> CellDefinition:
        if cell.name in self._cells and not replace:
            raise DuplicateCellError(f"cell {cell.name!r} already defined")
        self._cells[cell.name] = cell
        return cell

    def new_cell(self, name: str, replace: bool = False) -> CellDefinition:
        return self.define(CellDefinition(name), replace=replace)

    def lookup(self, name: str) -> CellDefinition:
        try:
            return self._cells[name]
        except KeyError:
            raise UnknownCellError(f"unknown cell {name!r}") from None

    def get(self, name: str) -> Optional[CellDefinition]:
        return self._cells.get(name)

    def __contains__(self, name: str) -> bool:
        return name in self._cells

    def __iter__(self) -> Iterator[CellDefinition]:
        return iter(self._cells.values())

    def __len__(self) -> int:
        return len(self._cells)

    def names(self) -> Tuple[str, ...]:
        return tuple(self._cells)
