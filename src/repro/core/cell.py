"""Cells, instances, and the layout objects they contain.

Paper section 2.1: a cell consists of objects whose locations are defined
in a local coordinate system — boxes of various layers, points (we call
them ports, and give them names so netlists can reference them), and
instances of other cells.  An instance is the triplet
``(point of call, orientation, cell definition)``.

Flattening and bounding boxes are *array-aware*: a definition's fully
flattened geometry is computed once per orientation it is used in and
then every instance is stamped by an integer translation, so an n-cell
array of one leaf pays O(distinct cells) transform work plus O(n)
translations instead of O(n) recursive transform compositions.  The
memos invalidate through mutation stamps: every ``add_box`` /
``add_instance`` / ``adopt`` / ``place`` (or direct assignment to an
instance's ``location``/``orientation``) bumps the owning definition's
stamp, and a cached value is reused only while the maximum stamp over
the definition's subtree is unchanged.  The pre-memo recursive walkers
are retained as ``*_reference`` equivalence oracles, mirroring the sweep
kernel's pattern.  Mutations must go through this API — appending to
``boxes``/``instances`` directly bypasses invalidation.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional, Tuple

from ..geometry import Box, NORTH, Orientation, Transform, Vec2
from .errors import DuplicateCellError, UnknownCellError

__all__ = ["LayerBox", "Port", "Label", "Instance", "CellDefinition", "CellTable"]


class LayerBox:
    """A rectangle of mask material on a named layer."""

    __slots__ = ("layer", "box")

    def __init__(self, layer: str, box: Box) -> None:
        self.layer = layer
        self.box = box

    def transformed(self, transform: Transform) -> "LayerBox":
        return LayerBox(self.layer, transform.apply_box(self.box))

    def __eq__(self, other) -> bool:
        if not isinstance(other, LayerBox):
            return NotImplemented
        return self.layer == other.layer and self.box == other.box

    def __hash__(self) -> int:
        return hash((self.layer, self.box))

    def __repr__(self) -> str:
        return f"LayerBox({self.layer!r}, {self.box!r})"


class Port:
    """A named point in a cell, used for connectivity and netlist extraction."""

    __slots__ = ("name", "position", "layer")

    def __init__(self, name: str, position: Vec2, layer: str = "") -> None:
        self.name = name
        self.position = position
        self.layer = layer

    def transformed(self, transform: Transform) -> "Port":
        return Port(self.name, transform.apply(self.position), self.layer)

    def __eq__(self, other) -> bool:
        if not isinstance(other, Port):
            return NotImplemented
        return (
            self.name == other.name
            and self.position == other.position
            and self.layer == other.layer
        )

    def __hash__(self) -> int:
        return hash((self.name, self.position, self.layer))

    def __repr__(self) -> str:
        return f"Port({self.name!r}, {self.position!r}, {self.layer!r})"


class Label:
    """A free-text annotation at a point (interface labels in sample files)."""

    __slots__ = ("text", "position")

    def __init__(self, text: str, position: Vec2) -> None:
        self.text = text
        self.position = position

    def transformed(self, transform: Transform) -> "Label":
        return Label(self.text, transform.apply(self.position))

    def __eq__(self, other) -> bool:
        if not isinstance(other, Label):
            return NotImplemented
        return self.text == other.text and self.position == other.position

    def __hash__(self) -> int:
        return hash((self.text, self.position))

    def __repr__(self) -> str:
        return f"Label({self.text!r}, {self.position!r})"


class Instance:
    """A placed call of a cell: ``(point of call, orientation, definition)``.

    The location/orientation may be unset (``None``) while the instance is
    still a *partial instance* inside a connectivity graph; ``mk_cell``
    fills them in during graph expansion (paper section 4.4.3).

    ``owners`` lists every :class:`CellDefinition` whose instance list
    holds this instance (maintained by ``add_instance``/``adopt``; an
    instance shared by several cells — e.g. a ``mk_cell(replace=True)``
    re-expansion while the old cell object survives in a parent — lists
    them all).  Assigning ``definition``/``location``/``orientation`` —
    including through ``place`` — bumps every owner's mutation stamp so
    each one's cached bounding box and flatten memos invalidate.
    """

    __slots__ = ("_definition", "_location", "_orientation", "name", "owners")

    def __init__(
        self,
        definition: "CellDefinition",
        location: Optional[Vec2] = None,
        orientation: Optional[Orientation] = None,
        name: str = "",
    ) -> None:
        self._definition = definition
        self._location = location
        self._orientation = orientation
        self.name = name
        self.owners: Tuple["CellDefinition", ...] = ()

    def _touch_owners(self) -> None:
        for owner in self.owners:
            owner._touch()

    @property
    def definition(self) -> "CellDefinition":
        return self._definition

    @definition.setter
    def definition(self, value: "CellDefinition") -> None:
        self._definition = value
        self._touch_owners()

    @property
    def location(self) -> Optional[Vec2]:
        return self._location

    @location.setter
    def location(self, value: Optional[Vec2]) -> None:
        self._location = value
        self._touch_owners()

    @property
    def orientation(self) -> Optional[Orientation]:
        return self._orientation

    @orientation.setter
    def orientation(self, value: Optional[Orientation]) -> None:
        self._orientation = value
        self._touch_owners()

    @property
    def celltype(self) -> str:
        return self.definition.name

    @property
    def is_placed(self) -> bool:
        return self._location is not None and self._orientation is not None

    def place(self, location: Vec2, orientation: Orientation) -> None:
        self._location = location
        self._orientation = orientation
        self._touch_owners()

    @property
    def transform(self) -> Transform:
        if not self.is_placed:
            raise ValueError(f"instance of {self.celltype!r} is not placed")
        return Transform(self._location, self._orientation)

    def bounding_box(self) -> Optional[Box]:
        inner = self.definition.bounding_box()
        if inner is None or not self.is_placed:
            return inner
        return self.transform.apply_box(inner)

    def __repr__(self) -> str:
        where = (
            f"@{self.location!r} {self.orientation!r}" if self.is_placed else "(unplaced)"
        )
        return f"Instance({self.celltype!r} {where})"


class CellDefinition:
    """A named cell: a list of boxes, ports, labels, and sub-instances."""

    #: Process-wide mutation counter.  Bumped by every geometry mutation
    #: anywhere; subtree-stamp memos are validated against it so an
    #: unchanged counter means every cached value is still good without
    #: walking anything.
    _mutation_counter: int = 0

    def __init__(self, name: str) -> None:
        self.name = name
        self.boxes: List[LayerBox] = []
        self.ports: List[Port] = []
        self.labels: List[Label] = []
        self.instances: List[Instance] = []
        self._stamp = self._next_stamp()
        # (counter at computation, max stamp over subtree)
        self._subtree_memo: Tuple[int, int] = (-1, 0)
        # (subtree stamp, bbox) — None until first query
        self._bbox_memo: Optional[Tuple[int, Optional[Box]]] = None
        # orientation -> (subtree stamp, flattened tuple)
        self._flat_memo: Dict[Orientation, Tuple[int, Tuple[LayerBox, ...]]] = {}
        self._port_memo: Dict[Orientation, Tuple[int, Tuple[Port, ...]]] = {}
        self._label_memo: Dict[Orientation, Tuple[int, Tuple[Label, ...]]] = {}

    # ------------------------------------------------------------------
    # Mutation stamps (memo invalidation)
    # ------------------------------------------------------------------
    @classmethod
    def _next_stamp(cls) -> int:
        CellDefinition._mutation_counter += 1
        return CellDefinition._mutation_counter

    def _touch(self) -> None:
        """Record a mutation of this definition's own geometry."""
        self._stamp = self._next_stamp()

    def subtree_stamp(self) -> int:
        """Maximum mutation stamp over this definition and its subtree.

        O(1) while the process-wide mutation counter is unchanged; after
        a mutation anywhere, the next query revalidates with one walk
        over the definition DAG (memoized per counter value, so shared
        sub-definitions are visited once).
        """
        counter = CellDefinition._mutation_counter
        cached_at, value = self._subtree_memo
        if cached_at == counter:
            return value
        value = self._stamp
        for instance in self.instances:
            child = instance.definition.subtree_stamp()
            if child > value:
                value = child
        self._subtree_memo = (counter, value)
        return value

    def __getstate__(self):
        """Drop memo caches from pickles (workers rebuild them lazily)."""
        state = self.__dict__.copy()
        state["_subtree_memo"] = (-1, 0)
        state["_bbox_memo"] = None
        state["_flat_memo"] = {}
        state["_port_memo"] = {}
        state["_label_memo"] = {}
        return state

    def __setstate__(self, state) -> None:
        """Re-stamp against the live process counter after unpickling.

        Pickled stamps came from another process's counter; keeping them
        could leave a stale stamp above the local counter and defeat
        invalidation, so every unpickled definition gets a fresh stamp.
        """
        self.__dict__.update(state)
        self._stamp = self._next_stamp()

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    def add_box(self, layer: str, xmin: int, ymin: int, xmax: int, ymax: int) -> LayerBox:
        item = LayerBox(layer, Box(xmin, ymin, xmax, ymax))
        self.boxes.append(item)
        self._touch()
        return item

    def add_port(self, name: str, x: int, y: int, layer: str = "") -> Port:
        port = Port(name, Vec2(x, y), layer)
        self.ports.append(port)
        self._touch()
        return port

    def add_label(self, text: str, x: int, y: int) -> Label:
        label = Label(text, Vec2(x, y))
        self.labels.append(label)
        self._touch()
        return label

    def add_instance(
        self,
        definition: "CellDefinition",
        location: Optional[Vec2] = None,
        orientation: Optional[Orientation] = None,
        name: str = "",
    ) -> Instance:
        if orientation is None and location is not None:
            orientation = NORTH
        return self.adopt(Instance(definition, location, orientation, name))

    def adopt(self, instance: Instance) -> Instance:
        """Append an existing :class:`Instance` (graph expansion path).

        Adds this definition to the instance's ``owners`` backlinks so
        later placement changes invalidate this definition's caches —
        *alongside* any previous owner, which keeps tracking too — and
        bumps the mutation stamp for the append itself.
        """
        if all(owner is not self for owner in instance.owners):
            instance.owners = instance.owners + (self,)
        self.instances.append(instance)
        self._touch()
        return instance

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def port(self, name: str) -> Port:
        for port in self.ports:
            if port.name == name:
                return port
        raise KeyError(f"cell {self.name!r} has no port {name!r}")

    def bounding_box(self) -> Optional[Box]:
        """Bounding box over own geometry and placed sub-instances.

        Cached per definition and invalidated by the subtree stamp, so
        the hot callers (``compose()``, routing, rendering) pay the
        hierarchical walk once instead of on every query.
        """
        stamp = self.subtree_stamp()
        memo = self._bbox_memo
        if memo is not None and memo[0] == stamp:
            return memo[1]
        result: Optional[Box] = None
        for layer_box in self.boxes:
            result = layer_box.box if result is None else result.union(layer_box.box)
        for instance in self.instances:
            if not instance.is_placed:
                continue
            sub = instance.bounding_box()
            if sub is not None:
                result = sub if result is None else result.union(sub)
        self._bbox_memo = (stamp, result)
        return result

    def bounding_box_reference(self) -> Optional[Box]:
        """Uncached recursive bounding box (equivalence oracle)."""
        result: Optional[Box] = None
        for layer_box in self.boxes:
            result = layer_box.box if result is None else result.union(layer_box.box)
        for instance in self.instances:
            if not instance.is_placed:
                continue
            sub = instance.definition.bounding_box_reference()
            if sub is not None:
                sub = instance.transform.apply_box(sub)
                result = sub if result is None else result.union(sub)
        return result

    # ------------------------------------------------------------------
    # Flattening (memoized stamping) and the reference walkers
    # ------------------------------------------------------------------
    def _flat_boxes(self, orientation: Orientation) -> Tuple[LayerBox, ...]:
        """Fully flattened boxes of this definition under ``orientation``.

        Equal to ``flatten(Transform(Vec2(0, 0), orientation))``; built
        once per (definition, orientation) and reused until the subtree
        mutates.  Sub-instances are stamped by translating the child's
        own memoized flat list — the orientation math happens once per
        distinct (child, composed orientation), not once per box per
        instance.
        """
        stamp = self.subtree_stamp()
        memo = self._flat_memo.get(orientation)
        if memo is not None and memo[0] == stamp:
            return memo[1]
        items: List[LayerBox] = []
        for layer_box in self.boxes:
            items.append(
                LayerBox(layer_box.layer, layer_box.box.transformed(orientation))
            )
        for instance in self.instances:
            if not instance.is_placed:
                continue
            child_orientation = orientation.compose(instance.orientation)
            offset = instance.location.transformed(orientation)
            for item in instance.definition._flat_boxes(child_orientation):
                items.append(LayerBox(item.layer, item.box.translated(offset)))
        result = tuple(items)
        self._flat_memo[orientation] = (stamp, result)
        return result

    def _flat_ports(self, orientation: Orientation) -> Tuple[Port, ...]:
        """Memoized flattened ports with subtree-relative ``inst/...`` names."""
        stamp = self.subtree_stamp()
        memo = self._port_memo.get(orientation)
        if memo is not None and memo[0] == stamp:
            return memo[1]
        items: List[Port] = []
        for port in self.ports:
            items.append(
                Port(port.name, port.position.transformed(orientation), port.layer)
            )
        for index, instance in enumerate(self.instances):
            if not instance.is_placed:
                continue
            tag = instance.name or f"{instance.celltype}#{index}"
            child_orientation = orientation.compose(instance.orientation)
            offset = instance.location.transformed(orientation)
            for item in instance.definition._flat_ports(child_orientation):
                items.append(
                    Port(f"{tag}/{item.name}", item.position + offset, item.layer)
                )
        result = tuple(items)
        self._port_memo[orientation] = (stamp, result)
        return result

    def _flat_labels(self, orientation: Orientation) -> Tuple[Label, ...]:
        """Memoized flattened labels under ``orientation``."""
        stamp = self.subtree_stamp()
        memo = self._label_memo.get(orientation)
        if memo is not None and memo[0] == stamp:
            return memo[1]
        items: List[Label] = []
        for label in self.labels:
            items.append(Label(label.text, label.position.transformed(orientation)))
        for instance in self.instances:
            if not instance.is_placed:
                continue
            child_orientation = orientation.compose(instance.orientation)
            offset = instance.location.transformed(orientation)
            for item in instance.definition._flat_labels(child_orientation):
                items.append(Label(item.text, item.position + offset))
        result = tuple(items)
        self._label_memo[orientation] = (stamp, result)
        return result

    def flatten(self, transform: Transform = Transform()) -> Iterator[LayerBox]:
        """Yield every mask box with hierarchy fully expanded.

        Streams at the queried root — own boxes transformed directly,
        each instance stamped by translating its definition's memoized
        flat list — so the root's full flattening is never *retained*,
        only the per-definition memos below it (which hierarchical
        reuse keeps small: one entry per distinct definition and
        orientation, however many times it is stamped).
        """
        orientation = transform.orientation
        offset = transform.offset
        for layer_box in self.boxes:
            yield LayerBox(layer_box.layer, layer_box.box.transformed(orientation, offset))
        for instance in self.instances:
            if not instance.is_placed:
                continue
            child_orientation = orientation.compose(instance.orientation)
            child_offset = instance.location.transformed(orientation) + offset
            for item in instance.definition._flat_boxes(child_orientation):
                yield LayerBox(item.layer, item.box.translated(child_offset))

    def flatten_ports(self, transform: Transform = Transform(), prefix: str = "") -> Iterator[Port]:
        """Yield ports with hierarchical names ``inst/.../port``."""
        orientation = transform.orientation
        offset = transform.offset
        for port in self.ports:
            yield Port(
                prefix + port.name,
                port.position.transformed(orientation) + offset,
                port.layer,
            )
        for index, instance in enumerate(self.instances):
            if not instance.is_placed:
                continue
            tag = instance.name or f"{instance.celltype}#{index}"
            child_orientation = orientation.compose(instance.orientation)
            child_offset = instance.location.transformed(orientation) + offset
            for item in instance.definition._flat_ports(child_orientation):
                yield Port(
                    f"{prefix}{tag}/{item.name}",
                    item.position + child_offset,
                    item.layer,
                )

    def flatten_labels(self, transform: Transform = Transform()) -> Iterator[Label]:
        """Yield every label with hierarchy fully expanded."""
        orientation = transform.orientation
        offset = transform.offset
        for label in self.labels:
            yield Label(label.text, label.position.transformed(orientation) + offset)
        for instance in self.instances:
            if not instance.is_placed:
                continue
            child_orientation = orientation.compose(instance.orientation)
            child_offset = instance.location.transformed(orientation) + offset
            for item in instance.definition._flat_labels(child_orientation):
                yield Label(item.text, item.position + child_offset)

    def flatten_reference(self, transform: Transform = Transform()) -> Iterator[LayerBox]:
        """The pre-memo recursive flatten, retained as an oracle.

        Composes a :class:`Transform` per instance and applies it to
        every box of the subtree — instance-proportional transform work,
        but straight-line enough to trust.  Must yield the identical box
        sequence to :meth:`flatten` on any input.
        """
        for layer_box in self.boxes:
            yield layer_box.transformed(transform)
        for instance in self.instances:
            if not instance.is_placed:
                continue
            yield from instance.definition.flatten_reference(
                transform.compose(instance.transform)
            )

    def flatten_ports_reference(
        self, transform: Transform = Transform(), prefix: str = ""
    ) -> Iterator[Port]:
        """The pre-memo recursive port walker (equivalence oracle)."""
        for port in self.ports:
            item = port.transformed(transform)
            item.name = prefix + port.name
            yield item
        for index, instance in enumerate(self.instances):
            if not instance.is_placed:
                continue
            tag = instance.name or f"{instance.celltype}#{index}"
            yield from instance.definition.flatten_ports_reference(
                transform.compose(instance.transform), prefix=f"{prefix}{tag}/"
            )

    def flatten_labels_reference(self, transform: Transform = Transform()) -> Iterator[Label]:
        """The pre-memo recursive label walker (equivalence oracle)."""
        for label in self.labels:
            yield label.transformed(transform)
        for instance in self.instances:
            if not instance.is_placed:
                continue
            yield from instance.definition.flatten_labels_reference(
                transform.compose(instance.transform)
            )

    def count_instances(self, recursive: bool = False) -> int:
        """Number of sub-instances (transitively when ``recursive``)."""
        if not recursive:
            return len(self.instances)
        total = 0
        for instance in self.instances:
            total += 1 + instance.definition.count_instances(recursive=True)
        return total

    def layers(self) -> Tuple[str, ...]:
        """Sorted tuple of layers present anywhere under this cell."""
        seen = set()
        for layer_box in self.flatten():
            seen.add(layer_box.layer)
        return tuple(sorted(seen))

    def __repr__(self) -> str:
        return (
            f"CellDefinition({self.name!r}, boxes={len(self.boxes)},"
            f" instances={len(self.instances)})"
        )


class CellTable:
    """The table of available cell definitions (paper Figure 4.1).

    Variable lookup in the design-file interpreter falls through to this
    table, so cell names behave like ordinary identifiers.
    """

    def __init__(self) -> None:
        self._cells: Dict[str, CellDefinition] = {}

    def define(self, cell: CellDefinition, replace: bool = False) -> CellDefinition:
        if cell.name in self._cells and not replace:
            raise DuplicateCellError(f"cell {cell.name!r} already defined")
        self._cells[cell.name] = cell
        return cell

    def new_cell(self, name: str, replace: bool = False) -> CellDefinition:
        return self.define(CellDefinition(name), replace=replace)

    def lookup(self, name: str) -> CellDefinition:
        try:
            return self._cells[name]
        except KeyError:
            raise UnknownCellError(f"unknown cell {name!r}") from None

    def get(self, name: str) -> Optional[CellDefinition]:
        return self._cells.get(name)

    def __contains__(self, name: str) -> bool:
        return name in self._cells

    def __iter__(self) -> Iterator[CellDefinition]:
        return iter(self._cells.values())

    def __len__(self) -> int:
        return len(self._cells)

    def names(self) -> Tuple[str, ...]:
        return tuple(self._cells)
