"""The RSG workspace: the public Python API mirroring section 4.4.

``Rsg`` bundles the cell table and interface table and exposes the three
primitive connectivity-graph operators — ``mk_instance``, ``connect``,
``mk_cell`` — plus ``declare_interface`` (interface inheritance, section
2.5) and ``interface_by_example`` (derive an interface from two placements,
the design-by-example mechanism of section 2.3).
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Union

from ..geometry import NORTH, Orientation, Vec2
from .cell import CellDefinition, CellTable, Instance
from .errors import GraphError
from .graph import Node, collect_graph, expand_graph
from .interface import Interface, derive_interface, inherit_interface
from .interface_table import InterfaceTable

__all__ = ["Rsg"]

CellRef = Union[str, CellDefinition]


class Rsg:
    """A Regular Structure Generator workspace.

    Holds the mutable state of a generation session: the table of cell
    definitions (primitive cells from a sample layout plus cells built by
    ``mk_cell``) and the interface table.
    """

    def __init__(self) -> None:
        self.cells = CellTable()
        self.interfaces = InterfaceTable()

    # ------------------------------------------------------------------
    # Cell definition
    # ------------------------------------------------------------------
    def define_cell(self, name: str, replace: bool = False) -> CellDefinition:
        """Create and register an empty cell definition."""
        return self.cells.new_cell(name, replace=replace)

    def _resolve(self, cell: CellRef) -> CellDefinition:
        if isinstance(cell, CellDefinition):
            return cell
        return self.cells.lookup(cell)

    # ------------------------------------------------------------------
    # Graph operators (section 4.4)
    # ------------------------------------------------------------------
    def mk_instance(self, cell: CellRef, name: str = "") -> Node:
        """Create a partial-instance node for ``cell`` (section 4.4.1)."""
        return Node(self._resolve(cell), name=name)

    def connect(self, source: Node, target: Node, index: int) -> Node:
        """Join two nodes with a directed edge (section 4.4.2).

        ``source`` is the interface's reference instance.  Returns
        ``source`` so calls chain naturally, matching the design-file
        convention that ``connect`` returns its first argument.
        """
        self.interfaces.lookup(source.celltype, target.celltype, index)
        source.connect(target, index)
        return source

    def mk_cell(
        self,
        name: str,
        root: Node,
        root_location: Vec2 = Vec2(0, 0),
        root_orientation: Orientation = NORTH,
        replace: bool = False,
    ) -> CellDefinition:
        """Expand the graph reachable from ``root`` into a new cell
        (section 4.4.3) and register it in the cell table.
        """
        order = expand_graph(root, self.interfaces, root_location, root_orientation)
        cell = self.cells.new_cell(name, replace=replace)
        for node in order:
            # adopt (not a raw append) so the new cell's geometry caches
            # invalidate if a node's instance is ever re-placed later.
            cell.adopt(node.instance)
        return cell

    # ------------------------------------------------------------------
    # Interface definition
    # ------------------------------------------------------------------
    def interface_by_example(
        self,
        cell_a: CellRef,
        location_a: Vec2,
        orientation_a: Orientation,
        cell_b: CellRef,
        location_b: Vec2,
        orientation_b: Orientation,
        index: Optional[int] = None,
        replace: bool = False,
    ) -> int:
        """Declare an interface from an example placement (section 2.3).

        The two placements are read as instances called together in one
        coordinate system; the derived ``I_ab`` is loaded into the table.
        Returns the interface index used.
        """
        name_a = self._resolve(cell_a).name
        name_b = self._resolve(cell_b).name
        if index is None:
            index = self.interfaces.next_index(name_a, name_b)
        interface = derive_interface(location_a, orientation_a, location_b, orientation_b)
        self.interfaces.declare(name_a, name_b, index, interface, replace=replace)
        return index

    def declare_interface(
        self,
        cell_c: CellRef,
        cell_d: CellRef,
        new_index: int,
        subnode_a: Union[Node, Instance],
        subnode_b: Union[Node, Instance],
        existing_index: int,
        replace: bool = False,
    ) -> Interface:
        """Interface inheritance (section 2.5 / the design file's
        ``declare_interface``).

        ``subnode_a`` is a placed instance of some cell A inside C and
        ``subnode_b`` a placed instance of some cell B inside D; the
        existing interface ``I_ab`` with index ``existing_index`` induces
        a new ``I_cd`` loaded under ``new_index``.
        """
        instance_a = subnode_a.instance if isinstance(subnode_a, Node) else subnode_a
        instance_b = subnode_b.instance if isinstance(subnode_b, Node) else subnode_b
        if not (instance_a.is_placed and instance_b.is_placed):
            raise GraphError(
                "declare_interface requires placed subcell instances;"
                " call mk_cell on their graphs first"
            )
        interface_ab = self.interfaces.lookup(
            instance_a.celltype, instance_b.celltype, existing_index
        )
        inherited = inherit_interface(
            interface_ab,
            instance_a.location,
            instance_a.orientation,
            instance_b.location,
            instance_b.orientation,
        )
        name_c = self._resolve(cell_c).name
        name_d = self._resolve(cell_d).name
        self.interfaces.declare(name_c, name_d, new_index, inherited, replace=replace)
        return inherited

    # ------------------------------------------------------------------
    # Convenience
    # ------------------------------------------------------------------
    def chain(self, nodes: Iterable[Node], index: int) -> List[Node]:
        """Connect consecutive nodes with the same interface index.

        A convenience for the ubiquitous linear-array pattern; returns the
        node list.
        """
        items = list(nodes)
        for left, right in zip(items, items[1:]):
            self.connect(left, right, index)
        return items

    def graph_nodes(self, root: Node) -> List[Node]:
        """All nodes reachable from ``root`` (diagnostic helper)."""
        return collect_graph(root)
