"""The interface calculus (paper chapter 2).

An interface between cells A and B captures their relative placement when
called in a common coordinate system:

    I_ab = (V_ab, O_ab)

``V_ab`` is the vector from A's point of call to B's point of call after
the calling cell has been reoriented so the instance of A sits at North
(the identity); ``O_ab`` is B's orientation after that same reorientation
(equations 2.1 and 2.2):

    O_ab = (O_a)^-1 o O_b
    V_ab = (O_a)^-1 (L_b - L_a)

The module provides derivation from placements, inversion (eq. 2.3/2.4),
placement propagation (eq. 3.1/3.2), and interface inheritance
(eq. 2.11/2.12).
"""

from __future__ import annotations

from typing import Tuple

from ..geometry import Orientation, Vec2

__all__ = [
    "Interface",
    "derive_interface",
    "propagate_placement",
    "inherit_interface",
]


class Interface:
    """The ordered pair ``(V_ab, O_ab)``; note ``I_ab != I_ba`` in general."""

    __slots__ = ("vector", "orientation")

    def __init__(self, vector: Vec2, orientation: Orientation) -> None:
        object.__setattr__(self, "vector", vector)
        object.__setattr__(self, "orientation", orientation)

    def __setattr__(self, name: str, value) -> None:
        raise AttributeError("Interface is immutable")

    def inverse(self) -> "Interface":
        """Return ``I_ba`` from ``I_ab`` (equations 2.3 and 2.4).

        O_ba = (O_ab)^-1 ;  V_ba = -(O_ab)^-1 V_ab
        """
        inv = self.orientation.inverse()
        return Interface((-self.vector).transformed(inv), inv)

    def is_self_inverse(self) -> bool:
        """True when ``I_ab == I_ba`` — the symmetric same-celltype case.

        For such interfaces the directed-edge disambiguation of section
        3.4 is moot: both edge directions expand to identical placements.
        """
        return self == self.inverse()

    def __eq__(self, other) -> bool:
        if not isinstance(other, Interface):
            return NotImplemented
        return self.vector == other.vector and self.orientation == other.orientation

    def __hash__(self) -> int:
        return hash((self.vector, self.orientation))

    def __reduce__(self):
        return (Interface, (self.vector, self.orientation))

    def __copy__(self):
        return self

    def __deepcopy__(self, memo):
        return self

    def __repr__(self) -> str:
        return f"Interface({self.vector!r}, {self.orientation!r})"


def derive_interface(
    location_a: Vec2,
    orientation_a: Orientation,
    location_b: Vec2,
    orientation_b: Orientation,
) -> Interface:
    """Compute ``I_ab`` from two placements in a common coordinate system.

    Implements equations 2.1 and 2.2: deskew B's orientation and the
    separation vector by the inverse of A's orientation.
    """
    deskew = orientation_a.inverse()
    return Interface(
        (location_b - location_a).transformed(deskew),
        deskew.compose(orientation_b),
    )


def propagate_placement(
    location_a: Vec2,
    orientation_a: Orientation,
    interface_ab: Interface,
) -> Tuple[Vec2, Orientation]:
    """Given A's placement and ``I_ab``, return B's placement.

    Implements equations 3.1 and 3.2:

        O_b = O_a o O_ab ;  L_b = O_a(V_ab) + L_a
    """
    orientation_b = orientation_a.compose(interface_ab.orientation)
    location_b = interface_ab.vector.transformed(orientation_a) + location_a
    return (location_b, orientation_b)


def inherit_interface(
    interface_ab: Interface,
    location_a_in_c: Vec2,
    orientation_a_in_c: Orientation,
    location_b_in_d: Vec2,
    orientation_b_in_d: Orientation,
) -> Interface:
    """Compute the inherited interface ``I_cd`` (equations 2.11 and 2.12).

    A is a subcell of C at ``(L_a^c, O_a^c)``; B is a subcell of D at
    ``(L_b^d, O_b^d)``.  ``I_cd`` is the interface C and D inherit when
    their subcells A and B are related by ``I_ab``:

        O_cd = O_a^c o O_ab o (O_b^d)^-1
        V_cd = O_a^c(V_ab) + L_a^c - O_cd(L_b^d)
    """
    orientation_cd = orientation_a_in_c.compose(interface_ab.orientation).compose(
        orientation_b_in_d.inverse()
    )
    vector_cd = (
        interface_ab.vector.transformed(orientation_a_in_c)
        + location_a_in_c
        - location_b_in_d.transformed(orientation_cd)
    )
    return Interface(vector_cd, orientation_cd)
