"""Exception hierarchy for the RSG reproduction."""

from __future__ import annotations

__all__ = [
    "RsgError",
    "CellError",
    "DuplicateCellError",
    "UnknownCellError",
    "InterfaceError",
    "UnknownInterfaceError",
    "DuplicateInterfaceError",
    "GraphError",
    "InconsistentGraphError",
    "DisconnectedGraphError",
    "LanguageError",
    "ParseError",
    "EvalError",
    "UnboundVariableError",
    "CompactionError",
    "InfeasibleConstraintsError",
    "SolverConfigurationError",
    "VerificationError",
    "ServiceError",
    "QueueFullError",
]


class RsgError(Exception):
    """Base class for all errors raised by this library."""


class CellError(RsgError):
    """Problems with cell definitions or the cell table."""


class DuplicateCellError(CellError):
    """A cell with this name already exists in the table."""


class UnknownCellError(CellError):
    """A cell name did not resolve in the cell table."""


class InterfaceError(RsgError):
    """Problems with interfaces or the interface table."""


class UnknownInterfaceError(InterfaceError):
    """No interface with the requested (cells, index) triple is loaded."""


class DuplicateInterfaceError(InterfaceError):
    """An interface with this (cells, index) triple is already loaded."""


class GraphError(RsgError):
    """Problems building or expanding connectivity graphs."""


class InconsistentGraphError(GraphError):
    """A cycle in the connectivity graph implies contradictory placements."""


class DisconnectedGraphError(GraphError):
    """The connectivity graph is not a single connected component."""


class LanguageError(RsgError):
    """Problems in the design-file language front end."""


class ParseError(LanguageError):
    """Syntax error in a design or parameter file."""


class EvalError(LanguageError):
    """Runtime error while executing a design file."""


class UnboundVariableError(EvalError):
    """A variable resolved in neither environment, globals, nor cell table."""


class CompactionError(RsgError):
    """Problems in the compactor."""


class InfeasibleConstraintsError(CompactionError):
    """The constraint system admits no solution (positive cycle / LP infeasible)."""


class SolverConfigurationError(CompactionError):
    """A solver backend name did not resolve in the solver registry."""


class VerificationError(RsgError):
    """A requested verification ran and the layout failed it."""


class ServiceError(RsgError):
    """A malformed or unserviceable layout-service request."""


class QueueFullError(ServiceError):
    """The service queue is at capacity; retry after ``retry_after`` seconds.

    The store raises this from ``submit`` when backpressure is
    configured (``max_queue_depth``) and the queue is full; the HTTP
    layer maps it to ``429`` with a ``Retry-After`` header.
    """

    def __init__(self, message: str, retry_after: float = 1.0) -> None:
        super().__init__(message)
        self.retry_after = retry_after
