"""Connectivity graphs (paper chapter 3).

A connectivity graph describes a new cell as *partial instances* (celltype
known, placement unknown) joined by edges that name interfaces.  The graph
need only be a spanning tree; expansion places a root arbitrarily and walks
the graph applying equations 3.1/3.2.

Data-structure requirements from section 3.4:

* edges are **bilateral** — each endpoint holds an edge record pointing at
  the other, because the traversal root is not known while the graph is
  being built;
* edges are **directed** — a direction bit records which endpoint is the
  reference instance of the interface, resolving the ``I_aa`` versus
  ``I_aa^-1`` ambiguity for edges between nodes of the same celltype.

Cycle edges are permitted but checked: when a non-tree edge is encountered
during expansion, the placement it implies must agree with the placement
already assigned, otherwise :class:`InconsistentGraphError` is raised (the
paper calls cycle information "redundant"; we verify the redundancy).
"""

from __future__ import annotations

from collections import deque
from typing import Iterator, List, Optional, Tuple

from ..geometry import NORTH, Orientation, Vec2
from .cell import CellDefinition, Instance
from .errors import DisconnectedGraphError, GraphError, InconsistentGraphError
from .interface import propagate_placement
from .interface_table import InterfaceTable

__all__ = ["Node", "Edge", "expand_graph", "collect_graph"]


class Edge:
    """A directed, bilateral edge carrying an interface index number.

    ``source`` is the reference instance (deskewed to North in the
    interface definition); ``target`` the placed-relative instance.
    """

    __slots__ = ("source", "target", "index")

    def __init__(self, source: "Node", target: "Node", index: int) -> None:
        self.source = source
        self.target = target
        self.index = index

    def other(self, node: "Node") -> "Node":
        if node is self.source:
            return self.target
        if node is self.target:
            return self.source
        raise GraphError("node is not an endpoint of this edge")

    def emanates_from(self, node: "Node") -> bool:
        """True when the edge's direction bit is 1 at ``node``."""
        return node is self.source

    def __repr__(self) -> str:
        return (
            f"Edge({self.source.celltype!r} -> {self.target.celltype!r},"
            f" #{self.index})"
        )


class Node:
    """A connectivity-graph node wrapping a (possibly partial) instance."""

    __slots__ = ("instance", "edges", "name")

    def __init__(self, definition: CellDefinition, name: str = "") -> None:
        self.instance = Instance(definition, name=name)
        self.edges: List[Edge] = []
        self.name = name

    @property
    def celltype(self) -> str:
        return self.instance.celltype

    @property
    def is_placed(self) -> bool:
        return self.instance.is_placed

    def connect(self, other: "Node", index: int) -> Edge:
        """Create a directed edge ``self -> other`` with interface ``index``.

        The edge record is appended to both endpoints' edge lists
        (bilateral data structure), with ``self`` as the reference
        instance (section 3.4's privileged direction).
        """
        edge = Edge(self, other, index)
        self.edges.append(edge)
        if other is not self:
            other.edges.append(edge)
        return edge

    def degree(self) -> int:
        return len(self.edges)

    def __repr__(self) -> str:
        return f"Node({self.celltype!r}, degree={self.degree()})"


def collect_graph(root: Node) -> List[Node]:
    """Return every node reachable from ``root`` (breadth-first order)."""
    seen = {id(root): root}
    order = [root]
    queue = deque([root])
    while queue:
        node = queue.popleft()
        for edge in node.edges:
            neighbor = edge.other(node)
            if id(neighbor) not in seen:
                seen[id(neighbor)] = neighbor
                order.append(neighbor)
                queue.append(neighbor)
    return order


def _placement_across(
    edge: Edge, placed: Node, table: InterfaceTable
) -> Tuple[Vec2, Orientation]:
    """Placement of the unplaced endpoint of ``edge`` from the placed one.

    Traversal along the edge direction uses the table interface directly;
    traversal against it uses the inverse — this is where the direction
    bit earns its keep for same-celltype edges.
    """
    other = edge.other(placed)
    interface = table.lookup(edge.source.celltype, edge.target.celltype, edge.index)
    if not edge.emanates_from(placed):
        interface = interface.inverse()
    return propagate_placement(
        placed.instance.location, placed.instance.orientation, interface
    )


def expand_graph(
    root: Node,
    table: InterfaceTable,
    root_location: Vec2 = Vec2(0, 0),
    root_orientation: Orientation = NORTH,
    expected_nodes: Optional[List[Node]] = None,
) -> List[Node]:
    """Expand a connectivity graph into placed instances (section 3.1).

    The root is placed at ``(root_location, root_orientation)``; every
    other reachable node receives the placement implied by the spanning
    tree of the breadth-first traversal.  Non-tree (cycle) edges are
    verified for consistency.

    ``expected_nodes`` (optional) asserts that the reachable component
    covers exactly those nodes, raising
    :class:`DisconnectedGraphError` otherwise.

    Returns the list of nodes in traversal order.
    """
    for node in collect_graph(root):
        node.instance.location = None
        node.instance.orientation = None

    root.instance.place(root_location, root_orientation)
    order = [root]
    queue = deque([root])
    while queue:
        node = queue.popleft()
        for edge in node.edges:
            neighbor = edge.other(node)
            location, orientation = _placement_across(edge, node, table)
            if neighbor.is_placed:
                if (
                    neighbor.instance.location != location
                    or neighbor.instance.orientation != orientation
                ):
                    raise InconsistentGraphError(
                        f"cycle edge {edge!r} implies placement"
                        f" ({location!r}, {orientation!r}) but node already"
                        f" placed at ({neighbor.instance.location!r},"
                        f" {neighbor.instance.orientation!r})"
                    )
                continue
            neighbor.instance.place(location, orientation)
            order.append(neighbor)
            queue.append(neighbor)

    if expected_nodes is not None:
        reachable = {id(node) for node in order}
        missing = [node for node in expected_nodes if id(node) not in reachable]
        if missing:
            raise DisconnectedGraphError(
                f"{len(missing)} node(s) unreachable from the root,"
                f" first: {missing[0]!r}"
            )
    return order


def iter_edges(nodes: List[Node]) -> Iterator[Edge]:
    """Yield each edge of the graph exactly once."""
    seen = set()
    for node in nodes:
        for edge in node.edges:
            if id(edge) not in seen:
                seen.add(id(edge))
                yield edge
