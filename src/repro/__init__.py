"""repro — a reproduction of Bamji's Design-by-Example Regular Structure
Generator (MIT RLE TR 507 / DAC 1985).

The package implements the full RSG stack:

* :mod:`repro.geometry` — integer-grid geometry and the D4 orientation
  group (paper section 2.6);
* :mod:`repro.core` — cells, instances, the interface calculus and table
  (chapter 2), connectivity graphs and expansion (chapter 3);
* :mod:`repro.lang` — the Lisp-subset design-file language, parameter
  files, and interpreter (chapter 4, appendix A);
* :mod:`repro.layout` — sample-layout ingestion (design by example), the
  layout database, CIF input/output, rendering;
* :mod:`repro.multiplier` — the pipelined Baugh-Wooley array multiplier
  case study (chapter 5, appendices B-E);
* :mod:`repro.pla` — a PLA generator built on the RSG plus an HPLA-style
  relocation baseline (section 1.2.2);
* :mod:`repro.compact` — the leaf-cell compactor study (chapter 6).

Quickstart::

    from repro import Rsg, Vec2, NORTH

    rsg = Rsg()
    cell = rsg.define_cell("tile")
    cell.add_box("metal", 0, 0, 10, 10)
    rsg.interface_by_example("tile", Vec2(0, 0), NORTH,
                             "tile", Vec2(12, 0), NORTH, index=1)
    nodes = [rsg.mk_instance("tile") for _ in range(8)]
    rsg.chain(nodes, index=1)
    row = rsg.mk_cell("row", nodes[0])
"""

from .core import (
    CellDefinition,
    CellTable,
    Instance,
    Interface,
    InterfaceTable,
    Node,
    Rsg,
    RsgError,
    derive_interface,
    inherit_interface,
    propagate_placement,
)
from .geometry import (
    EAST,
    FLIP_EAST,
    FLIP_NORTH,
    FLIP_SOUTH,
    FLIP_WEST,
    NORTH,
    SOUTH,
    WEST,
    Box,
    Orientation,
    Transform,
    Vec2,
)

def _resolve_version() -> str:
    """Package version from installed metadata, with a source fallback.

    Deployed copies (``pip install``) report the version recorded by
    packaging metadata; a source checkout without metadata falls back
    to the pyproject default so ``repro --version`` always answers.
    """
    try:
        from importlib.metadata import PackageNotFoundError, version
    except ImportError:  # pragma: no cover - Python < 3.8 only
        return "1.0.0"
    try:
        return version("repro-rsg")
    except PackageNotFoundError:
        return "1.0.0"


__version__ = _resolve_version()

__all__ = [
    "Rsg",
    "CellDefinition",
    "CellTable",
    "Instance",
    "Interface",
    "InterfaceTable",
    "Node",
    "RsgError",
    "derive_interface",
    "inherit_interface",
    "propagate_placement",
    "Box",
    "Orientation",
    "Transform",
    "Vec2",
    "NORTH",
    "EAST",
    "SOUTH",
    "WEST",
    "FLIP_NORTH",
    "FLIP_EAST",
    "FLIP_SOUTH",
    "FLIP_WEST",
    "__version__",
]
