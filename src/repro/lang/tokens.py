"""Tokenizer for the RSG design-file language (Appendix A).

The language is an S-expression syntax with one extension: the dot
operator for indexed variables (``l.i``, ``c.(- i 1)``, ``a.i.j``).  The
dot is a delimiter token of its own so that the parser can attach
arbitrary index *statements* after it.  Numbers are integers only — the
language lives on the integer layout grid.
"""

from __future__ import annotations

from typing import Iterator, List, NamedTuple

from ..core.errors import ParseError

__all__ = ["Token", "tokenize"]


class Token(NamedTuple):
    kind: str  # "lparen" | "rparen" | "dot" | "int" | "string" | "symbol"
    text: str
    line: int
    column: int


_SYMBOL_BREAKERS = set("().;\" \t\r\n")


def tokenize(text: str) -> List[Token]:
    """Split design-file text into tokens.

    Comments run from ``;`` to end of line.  Raises :class:`ParseError`
    on unterminated strings.
    """
    tokens: List[Token] = []
    line = 1
    column = 1
    index = 0
    length = len(text)

    def advance(count: int = 1) -> None:
        nonlocal index, line, column
        for _ in range(count):
            if index < length and text[index] == "\n":
                line += 1
                column = 1
            else:
                column += 1
            index += 1

    while index < length:
        ch = text[index]
        if ch in " \t\r\n":
            advance()
            continue
        if ch == ";":
            while index < length and text[index] != "\n":
                advance()
            continue
        if ch == "(":
            tokens.append(Token("lparen", "(", line, column))
            advance()
            continue
        if ch == ")":
            tokens.append(Token("rparen", ")", line, column))
            advance()
            continue
        if ch == ".":
            tokens.append(Token("dot", ".", line, column))
            advance()
            continue
        if ch == '"':
            start_line, start_column = line, column
            advance()
            chars: List[str] = []
            while index < length and text[index] != '"':
                chars.append(text[index])
                advance()
            if index >= length:
                raise ParseError(
                    f"line {start_line}: unterminated string literal"
                )
            advance()  # closing quote
            tokens.append(Token("string", "".join(chars), start_line, start_column))
            continue
        # Integer (possibly negative) or symbol.
        start_line, start_column = line, column
        chars = []
        while index < length and text[index] not in _SYMBOL_BREAKERS:
            chars.append(text[index])
            advance()
        word = "".join(chars)
        if not word:
            raise ParseError(f"line {line}: unexpected character {ch!r}")
        if word.lstrip("-").isdigit() and word not in ("-",):
            tokens.append(Token("int", word, start_line, start_column))
        else:
            tokens.append(Token("symbol", word, start_line, start_column))
    return tokens


def iter_tokens(text: str) -> Iterator[Token]:
    return iter(tokenize(text))
