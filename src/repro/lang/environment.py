"""Environments and the scoping discipline of Figure 4.1.

The paper uses a flat form of lexical scoping: a variable lookup searches
(1) the executing procedure's own frame, (2) the global environment, and
(3) the table of available cells.  Parameter-file bindings live in the
global environment; a binding whose value is an :class:`Alias` (a bare
identifier such as ``corecell = basiccell``) is chased through the same
three-stage lookup, which is how the parameter file personalises design
files to sample-layout cell names.

Macros return their :class:`Environment`; ``subcell env name`` reads a
binding out of a returned environment (section 4.2).
"""

from __future__ import annotations

from typing import Any, Dict, Optional, Tuple, Union

from ..core.cell import CellTable
from ..core.errors import UnboundVariableError

__all__ = ["Alias", "Environment", "GlobalEnvironment", "BindingKey"]

# Simple variables key by name; indexed variables by (name, (i,)) or
# (name, (i, j)).
BindingKey = Union[str, Tuple[str, Tuple[int, ...]]]


class Alias:
    """A deferred name binding, e.g. ``corecell = basiccell``.

    Resolution re-enters the environment/global/cell-table chain with the
    aliased name (Figure 4.1's lookup sequence).
    """

    __slots__ = ("name",)

    def __init__(self, name: str) -> None:
        self.name = name

    def __eq__(self, other) -> bool:
        if isinstance(other, Alias):
            return self.name == other.name
        return NotImplemented

    def __hash__(self) -> int:
        return hash(("alias", self.name))

    def __repr__(self) -> str:
        return f"Alias({self.name!r})"


class Environment:
    """A procedure frame: bindings plus a link to the global environment.

    Unlike classical Lisp frames these may outlive the procedure call —
    macros return them — so they are plain dictionaries with no parent
    chain other than the global environment (the paper's lexical-scoping
    simplification).
    """

    __slots__ = ("bindings", "globals", "procedure_name")

    def __init__(self, globals_: "GlobalEnvironment", procedure_name: str = "") -> None:
        self.bindings: Dict[BindingKey, Any] = {}
        self.globals = globals_
        self.procedure_name = procedure_name

    # ------------------------------------------------------------------
    def bind(self, key: BindingKey, value: Any) -> None:
        self.bindings[key] = value

    def has_local(self, key: BindingKey) -> bool:
        return key in self.bindings

    def local(self, key: BindingKey) -> Any:
        """Read a binding from this frame only (the ``subcell`` accessor)."""
        try:
            return self.bindings[key]
        except KeyError:
            raise UnboundVariableError(
                f"{_describe(key)} is not bound in the environment of"
                f" {self.procedure_name or '<anonymous>'}"
            ) from None

    def lookup(self, key: BindingKey, _depth: int = 0) -> Any:
        """Full three-stage lookup with alias chasing (Figure 4.1)."""
        if _depth > 32:
            raise UnboundVariableError(
                f"alias chain too deep while resolving {_describe(key)}"
            )
        if key in self.bindings:
            value = self.bindings[key]
        else:
            value = self.globals.lookup_raw(key)
        if isinstance(value, Alias):
            return self.lookup(value.name, _depth + 1)
        return value

    def __repr__(self) -> str:
        return f"Environment({self.procedure_name!r}, {len(self.bindings)} bindings)"


class GlobalEnvironment:
    """The global environment plus the cell-table fallback."""

    __slots__ = ("bindings", "cell_table")

    def __init__(self, cell_table: Optional[CellTable] = None) -> None:
        self.bindings: Dict[BindingKey, Any] = {}
        self.cell_table = cell_table

    def bind(self, key: BindingKey, value: Any) -> None:
        self.bindings[key] = value

    def lookup_raw(self, key: BindingKey) -> Any:
        """Global bindings, then the cell table (no alias chasing)."""
        if key in self.bindings:
            return self.bindings[key]
        if (
            isinstance(key, str)
            and self.cell_table is not None
            and key in self.cell_table
        ):
            return self.cell_table.lookup(key)
        raise UnboundVariableError(f"unbound variable {_describe(key)}")

    def frame(self, procedure_name: str = "") -> Environment:
        return Environment(self, procedure_name)


def _describe(key: BindingKey) -> str:
    if isinstance(key, str):
        return repr(key)
    name, indices = key
    return repr(name + "." + ".".join(str(i) for i in indices))
