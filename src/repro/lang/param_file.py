"""Parameter files (Appendix C).

A parameter file provides the size and functional specification for a
particular generation run.  Syntax, line oriented:

* ``.directive:value`` — file directives (``.example_file``,
  ``.concept_file``, ``.output_file``, ``.format`` ...);
* ``name = value`` — a global-environment binding, where ``value`` is an
  integer, a double-quoted string, or a bare identifier.  A bare
  identifier becomes an :class:`~repro.lang.environment.Alias`, the
  deferred-name mechanism that personalises design-file variable names to
  sample-layout cell names (``corecell = basiccell`` in Figure 4.1);
* ``name.i = value`` / ``name.i.j = value`` — indexed bindings (integer
  indices, integer values), the *register configuration table* mechanism
  of chapter 5: the design file reads them back as indexed variables
  (``topcount.i``).

Comments start with ``#`` or ``;``.
"""

from __future__ import annotations

import re
from typing import Any, Dict, Tuple

from ..core.errors import ParseError
from .environment import Alias

__all__ = ["parse_parameters", "ParameterSet"]

_BINDING = re.compile(r"^([A-Za-z_][A-Za-z0-9_]*)\s*=\s*(.+)$")
_INDEXED_BINDING = re.compile(
    r"^([A-Za-z_][A-Za-z0-9_]*)((?:\.\d+){1,2})\s*=\s*(.+)$"
)
_DIRECTIVE = re.compile(r"^\.([A-Za-z_][A-Za-z0-9_]*)\s*:\s*(.*)$")
_IDENT = re.compile(r"^[A-Za-z_][A-Za-z0-9_]*$")


class ParameterSet:
    """Parsed parameter file: directives plus global bindings."""

    def __init__(self) -> None:
        self.directives: Dict[str, str] = {}
        self.bindings: Dict[str, Any] = {}

    def __repr__(self) -> str:
        return (
            f"ParameterSet({len(self.directives)} directives,"
            f" {len(self.bindings)} bindings)"
        )


def _parse_value(text: str, line_number: int) -> Any:
    text = text.strip()
    if text.lstrip("-").isdigit():
        return int(text)
    if len(text) >= 2 and text[0] == '"' and text[-1] == '"':
        return text[1:-1]
    if _IDENT.match(text):
        return Alias(text)
    raise ParseError(
        f"line {line_number}: bad parameter value {text!r}"
        " (expected integer, quoted string, or identifier)"
    )


def parse_parameters(text: str) -> ParameterSet:
    """Parse parameter-file text into a :class:`ParameterSet`."""
    result = ParameterSet()
    for line_number, raw in enumerate(text.splitlines(), start=1):
        line = raw.strip()
        if not line or line.startswith("#") or line.startswith(";"):
            continue
        directive = _DIRECTIVE.match(line)
        if directive:
            result.directives[directive.group(1)] = directive.group(2).strip()
            continue
        indexed = _INDEXED_BINDING.match(line)
        if indexed:
            value_text = indexed.group(3).split("#", 1)[0].split(";", 1)[0].strip()
            if not value_text.lstrip("-").isdigit():
                raise ParseError(
                    f"line {line_number}: indexed bindings take integer"
                    f" values, got {value_text!r}"
                )
            indices = tuple(int(part) for part in indexed.group(2)[1:].split("."))
            result.bindings[(indexed.group(1), indices)] = int(value_text)
            continue
        binding = _BINDING.match(line)
        if binding:
            # Strip trailing comments from unquoted values.
            value_text = binding.group(2)
            if not value_text.lstrip().startswith('"'):
                value_text = value_text.split("#", 1)[0].split(";", 1)[0]
            result.bindings[binding.group(1)] = _parse_value(value_text, line_number)
            continue
        raise ParseError(f"line {line_number}: unrecognised parameter line {line!r}")
    return result
