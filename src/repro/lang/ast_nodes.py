"""AST node types for the design-file language.

The parse tree stays close to the S-expression surface: a program is a
list of *statements*; a statement is an integer, a string, a symbol, an
indexed variable, or a form (a list of statements).  Special forms
(``defun``, ``macro``, ``cond``, ``do``, ...) are recognised by the
interpreter, not by the parser, matching the paper's Lisp heritage.
"""

from __future__ import annotations

from typing import List, Tuple, Union

__all__ = ["Symbol", "IndexedVar", "Form", "Statement"]


class Symbol:
    """A bare identifier."""

    __slots__ = ("name", "line")

    def __init__(self, name: str, line: int = 0) -> None:
        self.name = name
        self.line = line

    def __eq__(self, other) -> bool:
        if isinstance(other, Symbol):
            return self.name == other.name
        return NotImplemented

    def __hash__(self) -> int:
        return hash(self.name)

    def __repr__(self) -> str:
        return f"Symbol({self.name!r})"


class IndexedVar:
    """An indexed variable reference ``base.index[.index2]``.

    ``indices`` holds one or two unevaluated statements; the interpreter
    evaluates them to integers to build the binding key
    ``(base, (i,))`` or ``(base, (i, j))``.
    """

    __slots__ = ("base", "indices", "line")

    def __init__(self, base: str, indices: List["Statement"], line: int = 0) -> None:
        self.base = base
        self.indices = indices
        self.line = line

    def __repr__(self) -> str:
        return f"IndexedVar({self.base!r}, {self.indices!r})"


class Form:
    """A parenthesised list of statements ``(head arg1 arg2 ...)``."""

    __slots__ = ("items", "line")

    def __init__(self, items: List["Statement"], line: int = 0) -> None:
        self.items = items
        self.line = line

    def __len__(self) -> int:
        return len(self.items)

    def __getitem__(self, index):
        return self.items[index]

    def __iter__(self):
        return iter(self.items)

    def __repr__(self) -> str:
        return f"Form({self.items!r})"


Statement = Union[int, str, Symbol, IndexedVar, Form]
