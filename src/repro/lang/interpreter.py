"""The design-file interpreter (chapter 4).

Executes the Lisp-subset language of Appendix A against an
:class:`~repro.core.operators.Rsg` workspace:

* ``defun`` defines functions (return the value of their last statement);
* ``macro`` defines macros, which are identical except that they return
  their evaluation :class:`Environment` — macro names must begin with
  ``m`` so call sites are classifiable ahead of time (section 4.2);
* ``subcell env var`` selects a binding out of a returned environment;
* ``mk_instance`` / ``connect`` / ``mk_cell`` / ``declare_interface`` are
  the connectivity-graph primitives of section 4.4;
* variable lookup follows Figure 4.1: procedure frame, then global
  environment, then the cell table, chasing parameter-file aliases;
* procedures are *not* first class (they live in a separate procedure
  table and cannot be passed as values).
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List, Optional, Sequence, Union

from ..core.cell import CellDefinition, Instance
from ..core.errors import EvalError, UnknownCellError
from ..core.graph import Node
from ..core.operators import Rsg
from .ast_nodes import Form, IndexedVar, Statement, Symbol
from .environment import Alias, BindingKey, Environment, GlobalEnvironment
from .parser import parse_program

__all__ = ["Interpreter", "Procedure"]


class Procedure:
    """A user-defined function or macro (not a first-class value)."""

    __slots__ = ("name", "formals", "locals", "body", "is_macro")

    def __init__(
        self,
        name: str,
        formals: List[str],
        locals_: List[str],
        body: List[Statement],
        is_macro: bool,
    ) -> None:
        self.name = name
        self.formals = formals
        self.locals = locals_
        self.body = body
        self.is_macro = is_macro

    def __repr__(self) -> str:
        kind = "macro" if self.is_macro else "defun"
        return f"Procedure({kind} {self.name} ({' '.join(self.formals)}))"


def _truthy(value: Any) -> bool:
    """Lisp truth: nil (None) and false are false; everything else true."""
    return value is not None and value is not False


_ARITH: Dict[str, Callable[..., Any]] = {}


def _register_arith() -> None:
    def fold(op: Callable[[int, int], int], unit: Optional[int] = None):
        def call(*args: int) -> int:
            if not args:
                if unit is None:
                    raise EvalError("operator needs at least one argument")
                return unit
            result = args[0]
            for value in args[1:]:
                result = op(result, value)
            return result

        return call

    _ARITH["+"] = fold(lambda a, b: a + b, 0)
    _ARITH["*"] = fold(lambda a, b: a * b, 1)

    def minus(*args: int) -> int:
        if not args:
            raise EvalError("'-' needs at least one argument")
        if len(args) == 1:
            return -args[0]
        result = args[0]
        for value in args[1:]:
            result -= value
        return result

    _ARITH["-"] = minus

    def divide(*args: int) -> int:
        if len(args) != 2:
            raise EvalError("'//' needs exactly two arguments")
        if args[1] == 0:
            raise EvalError("division by zero")
        quotient = abs(args[0]) // abs(args[1])
        return quotient if (args[0] >= 0) == (args[1] >= 0) else -quotient

    _ARITH["//"] = divide
    _ARITH["/"] = divide

    def mod(*args: int) -> int:
        if len(args) != 2:
            raise EvalError("'mod' needs exactly two arguments")
        if args[1] == 0:
            raise EvalError("mod by zero")
        return args[0] % args[1] if args[1] > 0 else -((-args[0]) % (-args[1]))

    _ARITH["mod"] = mod

    def compare(op: Callable[[Any, Any], bool]):
        def call(*args: Any) -> bool:
            if len(args) < 2:
                raise EvalError("comparison needs two arguments")
            return all(op(a, b) for a, b in zip(args, args[1:]))

        return call

    _ARITH["="] = compare(lambda a, b: a == b)
    _ARITH["/="] = compare(lambda a, b: a != b)
    _ARITH[">"] = compare(lambda a, b: a > b)
    _ARITH["<"] = compare(lambda a, b: a < b)
    _ARITH[">="] = compare(lambda a, b: a >= b)
    _ARITH["<="] = compare(lambda a, b: a <= b)
    _ARITH["min"] = lambda *args: min(args)
    _ARITH["max"] = lambda *args: max(args)
    _ARITH["abs"] = lambda value: abs(value)

    def logical_not(value: Any) -> bool:
        return not _truthy(value)

    _ARITH["not"] = logical_not


_register_arith()

def _register_table_builtins(builtins: Dict[str, Callable[..., Any]]) -> None:
    """Encoding-table accessors (1-based indices, matching `do` loops).

    Tables are any objects with the :class:`repro.pla.TruthTable`
    protocol, bound into the global environment from Python or the
    parameter layer.
    """

    def table_terms(table) -> int:
        return table.num_terms

    def table_inputs(table) -> int:
        return table.num_inputs

    def table_outputs(table) -> int:
        return table.num_outputs

    def table_literal(table, term: int, column: int) -> int:
        """1 for a true literal, 0 for complemented, -1 for absent."""
        literal = table.and_plane[term - 1][column - 1]
        return {"1": 1, "0": 0, "-": -1}[literal]

    def table_output(table, term: int, column: int) -> int:
        return 1 if table.or_plane[term - 1][column - 1] == "1" else 0

    builtins["table_terms"] = table_terms
    builtins["table_inputs"] = table_inputs
    builtins["table_outputs"] = table_outputs
    builtins["table_literal"] = table_literal
    builtins["table_output"] = table_output


_SPECIAL_FORMS = frozenset(
    {
        "defun",
        "macro",
        "cond",
        "do",
        "assign",
        "setq",
        "prog",
        "and",
        "or",
        "subcell",
        "mk_instance",
        "mkinstance",
        "connect",
        "mk_cell",
        "mkcell",
        "declare_interface",
        "declareinterface",
        "print",
        "read",
        "quote",
    }
)


class Interpreter:
    """Evaluator for design files, bound to an RSG workspace."""

    def __init__(self, rsg: Optional[Rsg] = None, max_depth: int = 120) -> None:
        self.rsg = rsg if rsg is not None else Rsg()
        self.globals = GlobalEnvironment(cell_table=self.rsg.cells)
        self.procedures: Dict[str, Procedure] = {}
        self.output: List[Any] = []
        self.input_queue: List[Any] = []
        self.max_depth = max_depth
        self._depth = 0
        self.globals.bind("true", True)
        self.globals.bind("false", False)
        self.globals.bind("nil", None)
        #: extra primitive functions, e.g. the encoding-table accessors
        #: ("primitives for manipulating encoding tables (such as PLA
        #: truth tables) have also been added", section 4).
        self.builtins: Dict[str, Callable[..., Any]] = {}
        _register_table_builtins(self.builtins)

    def register_builtin(self, name: str, function: Callable[..., Any]) -> None:
        """Add a primitive function callable from design files.

        The name must not collide with special forms or arithmetic
        primitives, and must not start with ``m`` (so call sites remain
        classifiable, section 4.2).
        """
        if name in _SPECIAL_FORMS or name in _ARITH:
            raise EvalError(f"{name!r} is already a primitive")
        if name.startswith("m"):
            raise EvalError("builtin names may not begin with 'm'")
        self.builtins[name] = function

    # ------------------------------------------------------------------
    # Entry points
    # ------------------------------------------------------------------
    def run(self, text: str) -> Any:
        """Parse and execute design-file text; return the last value."""
        program = parse_program(text)
        frame = self.globals.frame("__toplevel__")
        result: Any = None
        for statement in program:
            result = self.eval(statement, frame)
        return result

    def run_file(self, path: str) -> Any:
        with open(path, "r", encoding="utf-8") as handle:
            return self.run(handle.read())

    def set_parameter(self, name: str, value: Any) -> None:
        """Bind a parameter-file value in the global environment."""
        self.globals.bind(name, value)

    def set_parameters(self, bindings: Dict[str, Any]) -> None:
        for name, value in bindings.items():
            self.set_parameter(name, value)

    def call(self, name: str, *args: Any) -> Any:
        """Invoke a defined procedure from Python."""
        procedure = self.procedures.get(name)
        if procedure is None:
            raise EvalError(f"no procedure named {name!r}")
        return self._apply(procedure, list(args))

    # ------------------------------------------------------------------
    # Evaluation
    # ------------------------------------------------------------------
    def eval(self, statement: Statement, env: Environment) -> Any:
        if isinstance(statement, int) or isinstance(statement, str):
            return statement
        if isinstance(statement, Symbol):
            return env.lookup(statement.name)
        if isinstance(statement, IndexedVar):
            return env.lookup(self._index_key(statement, env))
        if isinstance(statement, Form):
            return self._eval_form(statement, env)
        raise EvalError(f"cannot evaluate {statement!r}")

    def _index_key(self, var: IndexedVar, env: Environment) -> BindingKey:
        indices = []
        for index_statement in var.indices:
            value = self.eval(index_statement, env)
            if not isinstance(value, int):
                raise EvalError(
                    f"line {var.line}: index of {var.base!r} must be an"
                    f" integer, got {value!r}"
                )
            indices.append(value)
        return (var.base, tuple(indices))

    def _eval_form(self, form: Form, env: Environment) -> Any:
        if len(form) == 0:
            return None
        head = form[0]
        if not isinstance(head, Symbol):
            raise EvalError(f"line {form.line}: form head must be a name")
        name = head.name

        if name in _SPECIAL_FORMS:
            return getattr(self, "_form_" + name.replace("mkinstance", "mk_instance")
                           .replace("mkcell", "mk_cell")
                           .replace("declareinterface", "declare_interface"))(form, env)
        if name in _ARITH:
            args = [self.eval(item, env) for item in form[1:]]
            return _ARITH[name](*args)
        if name in self.builtins:
            args = [self.eval(item, env) for item in form[1:]]
            try:
                return self.builtins[name](*args)
            except EvalError:
                raise
            except Exception as exc:
                raise EvalError(f"line {form.line}: {name}: {exc}") from exc
        if name in self.procedures:
            args = [self.eval(item, env) for item in form[1:]]
            return self._apply(self.procedures[name], args)
        raise EvalError(f"line {form.line}: unknown procedure {name!r}")

    def _apply(self, procedure: Procedure, args: List[Any]) -> Any:
        if len(args) != len(procedure.formals):
            raise EvalError(
                f"{procedure.name} expects {len(procedure.formals)}"
                f" argument(s), got {len(args)}"
            )
        if self._depth >= self.max_depth:
            raise EvalError(f"recursion depth exceeded in {procedure.name}")
        frame = self.globals.frame(procedure.name)
        for formal, value in zip(procedure.formals, args):
            frame.bind(formal, value)
        for local in procedure.locals:
            frame.bind(local, None)
        self._depth += 1
        try:
            result: Any = None
            for statement in procedure.body:
                result = self.eval(statement, frame)
        finally:
            self._depth -= 1
        return frame if procedure.is_macro else result

    # ------------------------------------------------------------------
    # Special forms: definitions
    # ------------------------------------------------------------------
    def _define(self, form: Form, env: Environment, is_macro: bool) -> None:
        keyword = "macro" if is_macro else "defun"
        if len(form) < 3:
            raise EvalError(f"line {form.line}: malformed {keyword}")
        name_node = form[1]
        if not isinstance(name_node, Symbol):
            raise EvalError(f"line {form.line}: {keyword} name must be a symbol")
        name = name_node.name
        if is_macro and not name.startswith("m"):
            raise EvalError(
                f"line {form.line}: macro name {name!r} must begin with 'm'"
                " (section 4.2)"
            )
        if not is_macro and name.startswith("m"):
            raise EvalError(
                f"line {form.line}: function name {name!r} may not begin"
                " with 'm' — the interpreter classifies call sites by the"
                " leading letter (section 4.2)"
            )
        formals_node = form[2]
        if not isinstance(formals_node, Form):
            raise EvalError(f"line {form.line}: {keyword} needs a formals list")
        formals = [self._formal_name(item, form) for item in formals_node]
        body = list(form.items[3:])
        locals_: List[str] = []
        if body and isinstance(body[0], Form) and len(body[0]) >= 1:
            first = body[0]
            if isinstance(first[0], Symbol) and first[0].name in ("locals", "local"):
                locals_ = [self._formal_name(item, form) for item in first.items[1:]]
                body = body[1:]
        self.procedures[name] = Procedure(name, formals, locals_, body, is_macro)

    @staticmethod
    def _formal_name(item: Statement, form: Form) -> str:
        if not isinstance(item, Symbol):
            raise EvalError(f"line {form.line}: formal/local must be a symbol")
        return item.name

    def _form_defun(self, form: Form, env: Environment) -> None:
        self._define(form, env, is_macro=False)

    def _form_macro(self, form: Form, env: Environment) -> None:
        self._define(form, env, is_macro=True)

    # ------------------------------------------------------------------
    # Special forms: control
    # ------------------------------------------------------------------
    def _form_cond(self, form: Form, env: Environment) -> Any:
        for clause in form.items[1:]:
            if not isinstance(clause, Form) or len(clause) < 1:
                raise EvalError(f"line {form.line}: malformed cond clause")
            if _truthy(self.eval(clause[0], env)):
                result: Any = None
                for statement in clause.items[1:]:
                    result = self.eval(statement, env)
                return result
        return None

    def _form_do(self, form: Form, env: Environment) -> Any:
        if len(form) < 2 or not isinstance(form[1], Form) or len(form[1]) != 4:
            raise EvalError(
                f"line {form.line}: do needs (var initial next exit) header"
            )
        header = form[1]
        var = header[0]
        if not isinstance(var, Symbol):
            raise EvalError(f"line {form.line}: do variable must be a symbol")
        env.bind(var.name, self.eval(header[1], env))
        result: Any = None
        iterations = 0
        while not _truthy(self.eval(header[3], env)):
            for statement in form.items[2:]:
                result = self.eval(statement, env)
            env.bind(var.name, self.eval(header[2], env))
            iterations += 1
            if iterations > 10_000_000:
                raise EvalError(f"line {form.line}: runaway do loop")
        return result

    def _form_prog(self, form: Form, env: Environment) -> Any:
        result: Any = None
        for statement in form.items[1:]:
            result = self.eval(statement, env)
        return result

    def _form_and(self, form: Form, env: Environment) -> Any:
        value: Any = True
        for statement in form.items[1:]:
            value = self.eval(statement, env)
            if not _truthy(value):
                return False
        return value

    def _form_or(self, form: Form, env: Environment) -> Any:
        for statement in form.items[1:]:
            value = self.eval(statement, env)
            if _truthy(value):
                return value
        return False

    def _form_quote(self, form: Form, env: Environment) -> Any:
        if len(form) != 2:
            raise EvalError(f"line {form.line}: quote needs one argument")
        item = form[1]
        if isinstance(item, Symbol):
            return item.name
        return item

    # ------------------------------------------------------------------
    # Special forms: assignment and environment access
    # ------------------------------------------------------------------
    def _assign_target(self, target: Statement, env: Environment) -> BindingKey:
        if isinstance(target, Symbol):
            return target.name
        if isinstance(target, IndexedVar):
            return self._index_key(target, env)
        raise EvalError("assignment target must be a variable")

    def _form_assign(self, form: Form, env: Environment) -> Any:
        if len(form) != 3:
            raise EvalError(f"line {form.line}: assign needs target and value")
        value = self.eval(form[2], env)
        env.bind(self._assign_target(form[1], env), value)
        return value

    _form_setq = _form_assign

    def _form_subcell(self, form: Form, env: Environment) -> Any:
        if len(form) != 3:
            raise EvalError(f"line {form.line}: subcell needs env and variable")
        target_env = self.eval(form[1], env)
        if not isinstance(target_env, Environment):
            raise EvalError(
                f"line {form.line}: subcell's first argument must be a macro"
                f" environment, got {type(target_env).__name__}"
            )
        key_node = form[2]
        if isinstance(key_node, Symbol):
            key: BindingKey = key_node.name
        elif isinstance(key_node, IndexedVar):
            # Index expressions evaluate in the *caller's* environment.
            key = self._index_key(key_node, env)
        else:
            raise EvalError(f"line {form.line}: subcell variable must be a name")
        return target_env.local(key)

    # ------------------------------------------------------------------
    # Special forms: graph primitives (section 4.4)
    # ------------------------------------------------------------------
    def _resolve_cell(self, value: Any, line: int) -> CellDefinition:
        if isinstance(value, CellDefinition):
            return value
        if isinstance(value, str):
            try:
                return self.rsg.cells.lookup(value)
            except UnknownCellError as exc:
                raise EvalError(f"line {line}: {exc}") from None
        raise EvalError(
            f"line {line}: expected a cell, got {type(value).__name__}"
        )

    def _form_mk_instance(self, form: Form, env: Environment) -> Node:
        if len(form) != 3:
            raise EvalError(f"line {form.line}: mk_instance needs variable and cell")
        cell = self._resolve_cell(self.eval(form[2], env), form.line)
        node = self.rsg.mk_instance(cell)
        env.bind(self._assign_target(form[1], env), node)
        return node

    def _form_connect(self, form: Form, env: Environment) -> Node:
        if len(form) != 4:
            raise EvalError(
                f"line {form.line}: connect needs two nodes and an interface number"
            )
        source = self.eval(form[1], env)
        target = self.eval(form[2], env)
        index = self.eval(form[3], env)
        if not isinstance(source, Node) or not isinstance(target, Node):
            raise EvalError(f"line {form.line}: connect arguments must be instances")
        if not isinstance(index, int):
            raise EvalError(f"line {form.line}: interface number must be an integer")
        return self.rsg.connect(source, target, index)

    def _form_mk_cell(self, form: Form, env: Environment) -> CellDefinition:
        if len(form) != 3:
            raise EvalError(f"line {form.line}: mk_cell needs a name and a node")
        name = self.eval(form[1], env)
        if not isinstance(name, str):
            raise EvalError(f"line {form.line}: cell name must be a string")
        root = self.eval(form[2], env)
        if not isinstance(root, Node):
            raise EvalError(f"line {form.line}: mk_cell root must be an instance")
        return self.rsg.mk_cell(name, root)

    def _form_declare_interface(self, form: Form, env: Environment) -> Any:
        if len(form) != 7:
            raise EvalError(
                f"line {form.line}: declare_interface needs"
                " cellC cellD newindex instA instB existingindex"
            )
        cell_c = self._resolve_cell(self.eval(form[1], env), form.line)
        cell_d = self._resolve_cell(self.eval(form[2], env), form.line)
        new_index = self.eval(form[3], env)
        inst_a = self.eval(form[4], env)
        inst_b = self.eval(form[5], env)
        existing_index = self.eval(form[6], env)
        if not isinstance(new_index, int) or not isinstance(existing_index, int):
            raise EvalError(f"line {form.line}: interface numbers must be integers")
        if not isinstance(inst_a, (Node, Instance)) or not isinstance(
            inst_b, (Node, Instance)
        ):
            raise EvalError(
                f"line {form.line}: declare_interface subcells must be instances"
            )
        return self.rsg.declare_interface(
            cell_c, cell_d, new_index, inst_a, inst_b, existing_index
        )

    # ------------------------------------------------------------------
    # Special forms: I/O
    # ------------------------------------------------------------------
    def _form_print(self, form: Form, env: Environment) -> Any:
        value: Any = None
        for statement in form.items[1:]:
            value = self.eval(statement, env)
            self.output.append(value)
        return value

    def _form_read(self, form: Form, env: Environment) -> Any:
        if not self.input_queue:
            raise EvalError(f"line {form.line}: read with empty input queue")
        return self.input_queue.pop(0)
