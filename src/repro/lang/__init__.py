"""The design-file language: tokenizer, parser, environments, interpreter."""

from .ast_nodes import Form, IndexedVar, Statement, Symbol
from .environment import Alias, Environment, GlobalEnvironment
from .interpreter import Interpreter, Procedure
from .param_file import ParameterSet, parse_parameters
from .parser import parse_program, parse_statement
from .tokens import Token, tokenize

__all__ = [
    "tokenize",
    "Token",
    "parse_program",
    "parse_statement",
    "Form",
    "IndexedVar",
    "Symbol",
    "Statement",
    "Alias",
    "Environment",
    "GlobalEnvironment",
    "Interpreter",
    "Procedure",
    "ParameterSet",
    "parse_parameters",
]
