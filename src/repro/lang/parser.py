"""Recursive-descent parser for the design-file language (Appendix A).

Produces the AST of :mod:`repro.lang.ast_nodes`.  The only syntax beyond
plain S-expressions is the dot operator: ``name.stmt`` and
``name.stmt.stmt`` parse to :class:`IndexedVar` with one or two index
statements, where each index statement is an atom or a parenthesised
form, e.g. ``l.(- i 1)``.
"""

from __future__ import annotations

from typing import List, Optional

from ..core.errors import ParseError
from .ast_nodes import Form, IndexedVar, Statement, Symbol
from .tokens import Token, tokenize

__all__ = ["parse_program", "parse_statement"]


class _Parser:
    def __init__(self, tokens: List[Token]) -> None:
        self.tokens = tokens
        self.position = 0

    def peek(self) -> Optional[Token]:
        if self.position < len(self.tokens):
            return self.tokens[self.position]
        return None

    def next(self) -> Token:
        token = self.peek()
        if token is None:
            raise ParseError("unexpected end of input")
        self.position += 1
        return token

    def parse_statement(self) -> Statement:
        token = self.next()
        if token.kind == "int":
            return self._maybe_indexed(int(token.text), token)
        if token.kind == "string":
            return token.text
        if token.kind == "symbol":
            return self._maybe_indexed(Symbol(token.text, token.line), token)
        if token.kind == "lparen":
            items: List[Statement] = []
            while True:
                look = self.peek()
                if look is None:
                    raise ParseError(
                        f"line {token.line}: unterminated form opened here"
                    )
                if look.kind == "rparen":
                    self.next()
                    break
                items.append(self.parse_statement())
            return Form(items, token.line)
        if token.kind == "rparen":
            raise ParseError(f"line {token.line}: unexpected ')'")
        raise ParseError(f"line {token.line}: unexpected token {token.text!r}")

    def _maybe_indexed(self, atom, token: Token) -> Statement:
        """Attach ``.index`` suffixes to a symbol (or reject them on ints)."""
        look = self.peek()
        if look is None or look.kind != "dot":
            return atom
        if not isinstance(atom, Symbol):
            raise ParseError(
                f"line {token.line}: only variables can be indexed with '.'"
            )
        indices: List[Statement] = []
        while True:
            look = self.peek()
            if look is None or look.kind != "dot":
                break
            self.next()  # consume the dot
            indices.append(self._parse_index())
            if len(indices) > 2:
                raise ParseError(
                    f"line {token.line}: at most two indices are supported"
                )
        return IndexedVar(atom.name, indices, token.line)

    def _parse_index(self) -> Statement:
        """An index is an atom or a parenthesised form (no nested dots)."""
        token = self.next()
        if token.kind == "int":
            return int(token.text)
        if token.kind == "symbol":
            return Symbol(token.text, token.line)
        if token.kind == "lparen":
            self.position -= 1
            return self.parse_statement()
        raise ParseError(
            f"line {token.line}: bad index token {token.text!r} after '.'"
        )


def parse_program(text: str) -> List[Statement]:
    """Parse design-file text into a list of top-level statements."""
    parser = _Parser(tokenize(text))
    program: List[Statement] = []
    while parser.peek() is not None:
        program.append(parser.parse_statement())
    return program


def parse_statement(text: str) -> Statement:
    """Parse a single statement; raises if trailing input remains."""
    parser = _Parser(tokenize(text))
    statement = parser.parse_statement()
    if parser.peek() is not None:
        raise ParseError("trailing input after statement")
    return statement
