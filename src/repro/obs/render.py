"""Trace artifact codec (JSONL) and the indented-tree renderer.

Completed jobs persist their span tree as a ``trace.jsonl`` artifact —
one :meth:`repro.obs.trace.Span.to_dict` record per line — which is
digest-verified like every other artifact.  ``repro trace
<fingerprint>`` downloads it and renders the tree shown here.

Spans whose parent id is absent from the artifact are treated as roots:
a deduplicated resubmission legitimately attaches a second client span
tree to a job whose worker spans were recorded earlier, so the renderer
tolerates a forest without complaint.
"""

import json
from typing import Any, Dict, Iterable, List, Sequence

from repro.obs.trace import Span

__all__ = ["render_trace", "spans_from_jsonl", "spans_to_jsonl"]


def spans_to_jsonl(spans: Iterable[Span]) -> bytes:
    """Serialise spans as UTF-8 JSONL, one record per line."""
    lines = [
        json.dumps(s.to_dict(), sort_keys=True, separators=(",", ":"))
        for s in spans
    ]
    return ("\n".join(lines) + "\n" if lines else "").encode("utf-8")


def spans_from_jsonl(payload: bytes) -> List[Span]:
    """Parse a JSONL trace artifact back into spans (blank lines skipped)."""
    spans: List[Span] = []
    for line in payload.decode("utf-8").splitlines():
        line = line.strip()
        if line:
            spans.append(Span.from_dict(json.loads(line)))
    return spans


_SHOWN_ATTRIBUTES = (
    "kernel",
    "backend",
    "passes",
    "relaxations",
    "variables",
    "retries",
    "state",
    "deduplicated",
    "stage",
    "worker_pid",
    "http_status",
)


def _attribute_text(attributes: Dict[str, Any]) -> str:
    """Render the whitelisted attributes as a compact ``k=v`` suffix."""
    shown = [
        f"{key}={attributes[key]}" for key in _SHOWN_ATTRIBUTES if key in attributes
    ]
    return f"  [{' '.join(shown)}]" if shown else ""


def render_trace(spans: Sequence[Span]) -> str:
    """Render spans as an indented tree with millisecond durations.

    Children sort by wall-clock start; any span whose parent is not in
    ``spans`` renders as a root.  Returns a newline-joined string.
    """
    if not spans:
        return "(empty trace)"
    by_id = {s.span_id: s for s in spans}
    children: Dict[str, List[Span]] = {}
    roots: List[Span] = []
    for s in spans:
        if s.parent_id and s.parent_id in by_id:
            children.setdefault(s.parent_id, []).append(s)
        else:
            roots.append(s)
    for kids in children.values():
        kids.sort(key=lambda s: (s.start_s, s.span_id))
    roots.sort(key=lambda s: (s.start_s, s.span_id))

    lines: List[str] = [f"trace {spans[0].trace_id}  ({len(spans)} spans)"]

    def walk(node: Span, depth: int) -> None:
        status = "" if node.status == "ok" else f"  !{node.status}"
        lines.append(
            f"{'  ' * depth}{node.name}  {node.duration_s * 1000.0:.2f} ms"
            f"{status}{_attribute_text(node.attributes)}"
        )
        for child in children.get(node.span_id, ()):
            walk(child, depth + 1)

    for root in roots:
        walk(root, 1)
    return "\n".join(lines)
