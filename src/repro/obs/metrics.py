"""Mergeable counters, gauges, and histograms with Prometheus output.

The instruments follow the shape of ``CacheStats`` — plain mergeable
dataclasses — so fleet-wide aggregation is a fold.  A
:class:`MetricsRegistry` keys instruments by ``(name, labels)`` and
renders the whole collection either as Prometheus text exposition
format 0.0.4 (served at ``GET /metrics``) or as a JSON-friendly dict
(folded into ``/stats``).

Histograms use a fixed bucket ladder chosen for stage latencies
(1 ms … 10 s), which keeps them mergeable across processes without
negotiation: same buckets everywhere, merge is element-wise addition.
"""

import math
from dataclasses import dataclass, field
from typing import Any, Dict, List, Mapping, Optional, Tuple

__all__ = [
    "Counter",
    "DEFAULT_BUCKETS",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
]

DEFAULT_BUCKETS: Tuple[float, ...] = (
    0.001,
    0.005,
    0.01,
    0.05,
    0.1,
    0.25,
    0.5,
    1.0,
    2.5,
    5.0,
    10.0,
)


@dataclass
class Counter:
    """A monotonically increasing count."""

    value: float = 0.0

    def inc(self, amount: float = 1.0) -> None:
        """Add ``amount`` (must be >= 0) to the counter."""
        if amount < 0:
            raise ValueError("counters only go up")
        self.value += amount

    def merge(self, other: "Counter") -> "Counter":
        """Fold another counter into this one; returns ``self``."""
        self.value += other.value
        return self


@dataclass
class Gauge:
    """A point-in-time value that can go up or down."""

    value: float = 0.0

    def set(self, value: float) -> None:
        """Replace the gauge's value."""
        self.value = value

    def merge(self, other: "Gauge") -> "Gauge":
        """Fold another gauge in by summation (fleet totals); returns ``self``."""
        self.value += other.value
        return self


@dataclass
class Histogram:
    """A fixed-bucket cumulative histogram of observations."""

    buckets: Tuple[float, ...] = DEFAULT_BUCKETS
    counts: List[int] = field(default_factory=list)
    total: float = 0.0
    count: int = 0

    def __post_init__(self):
        """Initialise the per-bucket counts (one extra for +Inf)."""
        if not self.counts:
            self.counts = [0] * (len(self.buckets) + 1)

    def observe(self, value: float) -> None:
        """Record one observation."""
        index = len(self.buckets)
        for i, bound in enumerate(self.buckets):
            if value <= bound:
                index = i
                break
        self.counts[index] += 1
        self.total += value
        self.count += 1

    def merge(self, other: "Histogram") -> "Histogram":
        """Fold another same-shaped histogram in; returns ``self``."""
        if other.buckets != self.buckets:
            raise ValueError("cannot merge histograms with different buckets")
        self.counts = [a + b for a, b in zip(self.counts, other.counts)]
        self.total += other.total
        self.count += other.count
        return self

    def mean(self) -> float:
        """Arithmetic mean of all observations (0.0 when empty)."""
        return self.total / self.count if self.count else 0.0


def _escape_label(value: str) -> str:
    """Escape a label value per the Prometheus text format rules."""
    return value.replace("\\", r"\\").replace("\n", r"\n").replace('"', r'\"')


def _format_value(value: float) -> str:
    """Format a sample value; integers render without a trailing .0."""
    if math.isinf(value):
        return "+Inf" if value > 0 else "-Inf"
    if float(value).is_integer():
        return str(int(value))
    return repr(float(value))


def _labels_text(labels: Mapping[str, str], extra: str = "") -> str:
    """Render a ``{k="v",...}`` label block ('' when empty and no extra)."""
    parts = [f'{k}="{_escape_label(str(v))}"' for k, v in sorted(labels.items())]
    if extra:
        parts.append(extra)
    return "{" + ",".join(parts) + "}" if parts else ""


class MetricsRegistry:
    """A collection of named, labelled instruments."""

    def __init__(self):
        """Create an empty registry."""
        self._metrics: Dict[
            Tuple[str, Tuple[Tuple[str, str], ...]], Any
        ] = {}
        self._help: Dict[str, str] = {}
        self._type: Dict[str, str] = {}

    def _get(
        self,
        kind: str,
        factory,
        name: str,
        help_text: str,
        labels: Optional[Mapping[str, str]],
    ):
        key = (name, tuple(sorted((labels or {}).items())))
        instrument = self._metrics.get(key)
        if instrument is None:
            instrument = self._metrics[key] = factory()
            self._help.setdefault(name, help_text)
            self._type.setdefault(name, kind)
        return instrument

    def counter(
        self, name: str, help_text: str = "", labels: Optional[Mapping[str, str]] = None
    ) -> Counter:
        """Get or create the counter ``name`` with ``labels``."""
        return self._get("counter", Counter, name, help_text, labels)

    def gauge(
        self, name: str, help_text: str = "", labels: Optional[Mapping[str, str]] = None
    ) -> Gauge:
        """Get or create the gauge ``name`` with ``labels``."""
        return self._get("gauge", Gauge, name, help_text, labels)

    def histogram(
        self,
        name: str,
        help_text: str = "",
        labels: Optional[Mapping[str, str]] = None,
        buckets: Tuple[float, ...] = DEFAULT_BUCKETS,
    ) -> Histogram:
        """Get or create the histogram ``name`` with ``labels``."""
        return self._get(
            "histogram", lambda: Histogram(buckets=buckets), name, help_text, labels
        )

    def to_prometheus(self) -> str:
        """Render every instrument as Prometheus text exposition 0.0.4."""
        by_name: Dict[str, List[Tuple[Dict[str, str], Any]]] = {}
        for (name, label_items), instrument in sorted(self._metrics.items()):
            by_name.setdefault(name, []).append((dict(label_items), instrument))

        lines: List[str] = []
        for name, series in by_name.items():
            help_text = self._help.get(name, "")
            if help_text:
                lines.append(f"# HELP {name} {help_text}")
            lines.append(f"# TYPE {name} {self._type.get(name, 'untyped')}")
            for labels, instrument in series:
                if isinstance(instrument, Histogram):
                    cumulative = 0
                    bounds = list(instrument.buckets) + [math.inf]
                    for bound, bucket_count in zip(bounds, instrument.counts):
                        cumulative += bucket_count
                        le = _labels_text(labels, f'le="{_format_value(bound)}"')
                        lines.append(f"{name}_bucket{le} {cumulative}")
                    lines.append(
                        f"{name}_sum{_labels_text(labels)}"
                        f" {_format_value(instrument.total)}"
                    )
                    lines.append(
                        f"{name}_count{_labels_text(labels)} {instrument.count}"
                    )
                else:
                    lines.append(
                        f"{name}{_labels_text(labels)}"
                        f" {_format_value(instrument.value)}"
                    )
        return "\n".join(lines) + "\n" if lines else ""

    def to_dict(self) -> Dict[str, Any]:
        """Render every instrument as a JSON-friendly nested dict."""
        out: Dict[str, Any] = {}
        for (name, label_items), instrument in sorted(self._metrics.items()):
            entry: Dict[str, Any] = {"type": self._type.get(name, "untyped")}
            if label_items:
                entry["labels"] = dict(label_items)
            if isinstance(instrument, Histogram):
                entry["count"] = instrument.count
                entry["sum"] = instrument.total
                entry["mean"] = instrument.mean()
                entry["buckets"] = {
                    _format_value(bound): c
                    for bound, c in zip(
                        list(instrument.buckets) + [math.inf], instrument.counts
                    )
                }
            else:
                entry["value"] = instrument.value
            key = name if not label_items else f"{name}{_labels_text(dict(label_items))}"
            out[key] = entry
        return out
