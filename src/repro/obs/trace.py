"""Hierarchical trace spans with cross-process propagation.

A :class:`Span` is one timed operation: a name, a trace id shared by
every span in the same request, its own span id, the span id of its
parent (or ``None`` for a root), a wall-clock start, a monotonic
duration, free-form attributes, and a status.  Spans are produced by a
:class:`Tracer`, which keeps a per-thread stack so nested ``with
span(...)`` blocks parent correctly, and a process-local list of
finished spans that the service drains into the job ledger.

Propagation across the client → HTTP → store → worker boundary uses a
token of the form ``"<trace_id>:<span_id>"`` carried in the
:data:`TRACE_HEADER` request header and in a column of the job row, so
a worker process can root its spans under the submitting client's.

The module-level helpers (:func:`span`, :func:`annotate`) act on the
*activated* tracer.  When no tracer is activated they return a shared
no-op object — a dict lookup plus an identity call — so instrumented
hot paths cost effectively nothing when tracing is off.  The
``REPRO_TRACE`` environment variable only steers *policy* at entry
points (:func:`service_enabled`, :func:`local_enabled`); the hooks
themselves key off activation, never off the environment.
"""

import contextlib
import os
import threading
import time
from dataclasses import dataclass, field
from typing import Any, Dict, Iterator, List, Optional, Tuple

__all__ = [
    "TRACE_HEADER",
    "Span",
    "Tracer",
    "activated",
    "active",
    "annotate",
    "is_enabled",
    "local_enabled",
    "new_id",
    "parse_token",
    "propagation_token",
    "service_enabled",
    "span",
]

TRACE_HEADER = "X-Repro-Trace-Id"


def new_id(nbytes: int = 8) -> str:
    """Return a random lowercase-hex identifier of ``2 * nbytes`` chars."""
    return os.urandom(nbytes).hex()


@dataclass
class Span:
    """One timed operation inside a trace tree."""

    name: str
    trace_id: str
    span_id: str = field(default_factory=new_id)
    parent_id: Optional[str] = None
    start_s: float = 0.0
    duration_s: float = 0.0
    attributes: Dict[str, Any] = field(default_factory=dict)
    status: str = "ok"
    _t0: float = field(default=0.0, repr=False, compare=False)

    def begin(self) -> "Span":
        """Stamp the wall-clock start and the monotonic reference point."""
        self.start_s = time.time()
        self._t0 = time.perf_counter()
        return self

    def finish(self, status: Optional[str] = None) -> "Span":
        """Stamp the monotonic duration and optionally override status."""
        self.duration_s = time.perf_counter() - self._t0
        if status is not None:
            self.status = status
        return self

    def set(self, **attributes: Any) -> "Span":
        """Attach structured attributes to the span; returns ``self``."""
        self.attributes.update(attributes)
        return self

    def to_dict(self) -> Dict[str, Any]:
        """Return the JSON-serialisable record persisted in trace artifacts."""
        record: Dict[str, Any] = {
            "name": self.name,
            "trace_id": self.trace_id,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "start_s": self.start_s,
            "duration_s": self.duration_s,
            "status": self.status,
        }
        if self.attributes:
            record["attributes"] = self.attributes
        return record

    @classmethod
    def from_dict(cls, record: Dict[str, Any]) -> "Span":
        """Rebuild a span from a :meth:`to_dict` record."""
        return cls(
            name=record["name"],
            trace_id=record["trace_id"],
            span_id=record["span_id"],
            parent_id=record.get("parent_id"),
            start_s=record.get("start_s", 0.0),
            duration_s=record.get("duration_s", 0.0),
            attributes=dict(record.get("attributes", {})),
            status=record.get("status", "ok"),
        )


class Tracer:
    """Process-local span collector with per-thread parenting stacks."""

    def __init__(self, trace_id: Optional[str] = None):
        """Create a tracer; a fresh trace id is minted when none is given."""
        self.trace_id = trace_id or new_id()
        self._local = threading.local()
        self._lock = threading.Lock()
        self._finished: List[Span] = []

    def _stack(self) -> List[Span]:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = self._local.stack = []
        return stack

    def current(self) -> Optional[Span]:
        """Return the innermost open span on this thread, if any."""
        stack = self._stack()
        return stack[-1] if stack else None

    def open(self, name: str, parent_id: Optional[str] = None, **attributes: Any) -> Span:
        """Open a span without entering it as a context manager.

        The caller owns the span and must pass it to :meth:`add` (after
        ``finish()``) for it to be collected.  Used for manually-managed
        root spans such as the worker's synthesized ``store.claim``.
        """
        current = self.current()
        if parent_id is None and current is not None:
            parent_id = current.span_id
        opened = Span(name=name, trace_id=self.trace_id, parent_id=parent_id)
        if attributes:
            opened.set(**attributes)
        return opened.begin()

    def add(self, finished_span: Span) -> None:
        """Collect a finished span produced by :meth:`open`."""
        with self._lock:
            self._finished.append(finished_span)

    @contextlib.contextmanager
    def span(
        self, name: str, parent_id: Optional[str] = None, **attributes: Any
    ) -> Iterator[Span]:
        """Context manager: open, push, time, pop, and collect a span."""
        opened = self.open(name, parent_id=parent_id, **attributes)
        stack = self._stack()
        stack.append(opened)
        try:
            yield opened
            opened.finish()
        except BaseException:
            opened.finish(status="error")
            raise
        finally:
            stack.pop()
            self.add(opened)

    def finished(self) -> List[Span]:
        """Return a snapshot of the collected spans (oldest first)."""
        with self._lock:
            return list(self._finished)

    def drain(self) -> List[Span]:
        """Return the collected spans and clear the collector."""
        with self._lock:
            drained, self._finished = self._finished, []
        return drained


class _NoopSpan:
    """Shared do-nothing span handed out when tracing is not activated."""

    __slots__ = ()

    def __enter__(self) -> "_NoopSpan":
        """Enter the no-op context; returns itself."""
        return self

    def __exit__(self, *exc_info: Any) -> bool:
        """Exit without suppressing exceptions."""
        return False

    def set(self, **attributes: Any) -> "_NoopSpan":
        """Discard attributes; returns itself."""
        return self


_NOOP = _NoopSpan()
_ACTIVE: Optional[Tracer] = None


def active() -> Optional[Tracer]:
    """Return the currently activated tracer, or ``None``."""
    return _ACTIVE


def is_enabled() -> bool:
    """True when a tracer is activated in this process."""
    return _ACTIVE is not None


@contextlib.contextmanager
def activated(tracer: Tracer) -> Iterator[Tracer]:
    """Make ``tracer`` the process-wide ambient tracer for the block."""
    global _ACTIVE
    previous = _ACTIVE
    _ACTIVE = tracer
    try:
        yield tracer
    finally:
        _ACTIVE = previous


def span(name: str, **attributes: Any):
    """Open an ambient span, or a shared no-op when tracing is off.

    This is the hook instrumented code calls.  Disabled cost is one
    global read and one identity return — no allocation, no clock read.
    """
    if _ACTIVE is None:
        return _NOOP
    return _ACTIVE.span(name, **attributes)


def annotate(**attributes: Any) -> None:
    """Attach attributes to the innermost open ambient span, if any."""
    if _ACTIVE is None:
        return
    current = _ACTIVE.current()
    if current is not None:
        current.set(**attributes)


def propagation_token(tracer: Tracer, span_id: Optional[str] = None) -> str:
    """Encode ``trace_id:span_id`` for the trace header / job row."""
    if span_id is None:
        current = tracer.current()
        span_id = current.span_id if current is not None else ""
    return f"{tracer.trace_id}:{span_id}"


def parse_token(token: Optional[str]) -> Tuple[Optional[str], Optional[str]]:
    """Decode a propagation token into ``(trace_id, parent_span_id)``.

    Malformed or empty tokens decode to ``(None, None)`` — a fresh
    trace — rather than raising, because telemetry must never fail a
    job.
    """
    if not token or not isinstance(token, str):
        return None, None
    trace_id, _, parent = token.partition(":")
    if not trace_id:
        return None, None
    return trace_id, parent or None


def service_enabled() -> bool:
    """Policy: should the service record traces?  Default on.

    The daemon and its workers trace unless ``REPRO_TRACE=0`` — traces
    are the service's flight recorder, so opting *out* is explicit.
    """
    return os.environ.get("REPRO_TRACE", "1") != "0"


def local_enabled() -> bool:
    """Policy: should local CLI runs trace?  Default off.

    Local pipelines only pay for tracing when asked, either with
    ``REPRO_TRACE=1`` or the ``--timings`` flag (which builds its table
    from spans).
    """
    return os.environ.get("REPRO_TRACE", "0") == "1"
