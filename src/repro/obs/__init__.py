"""Flight-recorder observability: spans, metrics, and trace rendering.

The :mod:`repro.obs` package is the stdlib-only telemetry layer for the
layout stack.  It has three pillars:

* :mod:`repro.obs.trace` — hierarchical :class:`~repro.obs.trace.Span`
  records collected by a process-local :class:`~repro.obs.trace.Tracer`,
  with a propagation token that crosses the client → HTTP → store →
  worker-process boundary so one ``repro submit`` yields a single span
  tree.
* :mod:`repro.obs.metrics` — mergeable counters, gauges, and
  fixed-bucket histograms gathered in a
  :class:`~repro.obs.metrics.MetricsRegistry` and rendered as Prometheus
  text exposition (``GET /metrics``) or JSON (``/stats``).
* :mod:`repro.obs.render` — the JSONL codec for persisted trace
  artifacts and the indented-tree renderer behind ``repro trace``.

When tracing is disabled (the default outside the service) every hook
degrades to a near-zero-cost no-op, so the batched geometry kernels stay
as fast as PR 9 left them.
"""

from repro.obs.metrics import Counter, Gauge, Histogram, MetricsRegistry
from repro.obs.render import render_trace, spans_from_jsonl, spans_to_jsonl
from repro.obs.trace import (
    TRACE_HEADER,
    Span,
    Tracer,
    activated,
    active,
    annotate,
    is_enabled,
    parse_token,
    propagation_token,
    span,
)

__all__ = [
    "TRACE_HEADER",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "Span",
    "Tracer",
    "activated",
    "active",
    "annotate",
    "is_enabled",
    "parse_token",
    "propagation_token",
    "render_trace",
    "span",
    "spans_from_jsonl",
    "spans_to_jsonl",
]
