"""The leaf-cell compaction study (chapter 6)."""

from .cache import (
    CacheStats,
    CompactionCache,
    cache_key,
    fingerprint_cell,
    fingerprint_layout,
    fingerprint_rules,
)
from .constraints import Constraint, ConstraintSystem
from .drc import Violation, check_layout, check_layout_reference
from .flat import CompactionResult, compact_cell, compact_layout, compact_layout_xy
from .pipeline import (
    HierarchicalCompactor,
    PipelineReport,
    compact_cells,
    distinct_leaf_cells,
)
from .layers import cut_count, expand_contact, expand_gate, expand_layout
from .leafcell import LeafCellCompactor, LeafCellResult, PitchCost, pitch_name
from .rubberband import alignment_pairs, misalignment, rubber_band_solve
from .rules import TECH_A, TECH_B, ContactRule, DesignRules, RuleTables
from .scanline import (
    CompactionBox,
    add_width_constraints,
    build_edge_variables,
    naive_constraints,
    rebuild_boxes,
    visibility_constraints,
    visibility_constraints_reference,
)
from .solver import SolveStats, solve_longest_path
from .solvers import (
    DEFAULT_SOLVER,
    BellmanFordSolver,
    IncrementalSolver,
    SolverBackend,
    TopologicalSolver,
    available_solvers,
    get_solver,
    register_solver,
)

__all__ = [
    "CacheStats",
    "CompactionCache",
    "cache_key",
    "fingerprint_cell",
    "fingerprint_layout",
    "fingerprint_rules",
    "HierarchicalCompactor",
    "PipelineReport",
    "compact_cells",
    "distinct_leaf_cells",
    "Constraint",
    "ConstraintSystem",
    "Violation",
    "check_layout",
    "check_layout_reference",
    "CompactionResult",
    "compact_cell",
    "compact_layout",
    "compact_layout_xy",
    "expand_contact",
    "expand_gate",
    "expand_layout",
    "cut_count",
    "LeafCellCompactor",
    "LeafCellResult",
    "PitchCost",
    "pitch_name",
    "alignment_pairs",
    "misalignment",
    "rubber_band_solve",
    "DesignRules",
    "RuleTables",
    "ContactRule",
    "TECH_A",
    "TECH_B",
    "CompactionBox",
    "build_edge_variables",
    "add_width_constraints",
    "naive_constraints",
    "visibility_constraints",
    "visibility_constraints_reference",
    "rebuild_boxes",
    "SolveStats",
    "solve_longest_path",
    "DEFAULT_SOLVER",
    "SolverBackend",
    "BellmanFordSolver",
    "TopologicalSolver",
    "IncrementalSolver",
    "available_solvers",
    "get_solver",
    "register_solver",
]
