"""Compact-once / stamp-many: the hierarchical generation pipeline.

A generated array is a handful of distinct leaf cells stamped thousands
of times, so compaction cost should scale with *distinct cells*, not
*instances*.  This module provides the two pieces the flat driver
lacks:

* :func:`compact_cells` — a batch fan-out that compacts several
  independent cells, optionally in parallel across a process pool
  (``jobs``) and through a :class:`~repro.compact.cache.CompactionCache`
  (results keyed by content, so identical cells are solved once per run
  and — with an on-disk cache — once *ever*).  Result order is the input
  order regardless of worker scheduling, so parallel output is
  deterministic.
* :class:`HierarchicalCompactor` — the compact-once/stamp-many driver:
  collect the distinct leaf definitions under a cell, compact each
  exactly once (deduplicated by content fingerprint), and rebuild the
  hierarchy with every instance re-stamped at its original placement.
  The stamped rebuild pairs with the array-aware flatten memo in
  :class:`~repro.core.cell.CellDefinition`, so downstream flattening is
  O(instances) translations.

``jobs=1, cache=None`` is the sequential uncached oracle: the parallel
and cached paths must produce identical geometry (property-tested in
``tests/test_pipeline_cache.py``).
"""

from __future__ import annotations

from concurrent.futures import BrokenExecutor, ProcessPoolExecutor
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..core.cell import CellDefinition
from .cache import CompactionCache, cache_key, fingerprint_cell, fingerprint_rules
from .flat import CompactionResult, compact_cell
from .rules import DesignRules

__all__ = [
    "HierarchicalCompactor",
    "PipelineReport",
    "compact_cells",
    "distinct_leaf_cells",
]


def _compact_one(
    cell: CellDefinition,
    rules: DesignRules,
    axes: str,
    width_mode: str,
    solver: Optional[str],
) -> Tuple[CellDefinition, CompactionResult]:
    """One axis pass per letter of ``axes``; keeps the cell's name."""
    result: Optional[CompactionResult] = None
    for axis in axes:
        cell, result = compact_cell(
            cell, rules, name=cell.name, axis=axis,
            width_mode=width_mode, solver=solver,
        )
    assert result is not None
    return cell, result


def _compact_worker(payload):
    """Process-pool entry point: unpack, compact, repack by index."""
    index, cell, rules, axes, width_mode, solver = payload
    compacted, result = _compact_one(cell, rules, axes, width_mode, solver)
    return index, compacted, result


def compact_cells(
    items: Sequence[Tuple[str, CellDefinition]],
    rules: DesignRules,
    jobs: int = 1,
    cache: Optional[CompactionCache] = None,
    axes: str = "x",
    width_mode: str = "preserve",
    solver: Optional[str] = None,
) -> List[Tuple[str, CellDefinition, CompactionResult]]:
    """Compact independent ``(name, cell)`` pairs, each at most once.

    Cache lookups happen in the parent process; only misses are
    dispatched, serially or — with ``jobs > 1`` — across a
    ``concurrent.futures`` process pool.  Results come back in input
    order whatever the completion order, and misses are written back to
    the cache so the next run (or the next batch) hits.  Cache hits are
    returned as shared (not copied) objects — treat them as read-only,
    or copy before mutating.  Machines that cannot spawn worker
    processes fall back to the serial path.
    """
    if jobs < 1:
        raise ValueError(f"jobs must be >= 1, not {jobs}")
    results: List[Optional[Tuple[str, CellDefinition, CompactionResult]]] = [
        None
    ] * len(items)
    pending: List[Tuple[int, CellDefinition]] = []
    keys: Dict[int, str] = {}
    rules_print = fingerprint_rules(rules) if cache is not None else ""
    for index, (name, cell) in enumerate(items):
        if cache is not None:
            key = cache_key(
                "pipeline",
                fingerprint_cell(cell),
                rules_print,
                axes,
                width_mode,
                solver or "",
            )
            keys[index] = key
            # peek, not get: the stamped rebuild only reads the cached
            # cell, so the defensive copy would be pure overhead.
            hit = cache.peek(key)
            if hit is not None:
                compacted, result = hit
                results[index] = (name, compacted, result)
                continue
        pending.append((index, cell))

    def finish(index: int, compacted: CellDefinition, result: CompactionResult) -> None:
        name = items[index][0]
        results[index] = (name, compacted, result)
        if cache is not None:
            cache.put(keys[index], (compacted, result))

    if jobs > 1 and len(pending) > 1:
        payloads = [
            (index, cell, rules, axes, width_mode, solver)
            for index, cell in pending
        ]
        try:
            with ProcessPoolExecutor(max_workers=jobs) as pool:
                for index, compacted, result in pool.map(_compact_worker, payloads):
                    finish(index, compacted, result)
            pending = []
        except (OSError, BrokenExecutor):
            # No process support (restricted sandboxes) or a worker died
            # mid-batch (OOM kill): fall through to the serial path for
            # whatever did not complete.
            pending = [
                (index, cell) for index, cell in pending if results[index] is None
            ]
    for index, cell in pending:
        compacted, result = _compact_one(cell, rules, axes, width_mode, solver)
        finish(index, compacted, result)
    return [entry for entry in results if entry is not None]


def distinct_leaf_cells(cell: CellDefinition) -> List[CellDefinition]:
    """Distinct leaf definitions under ``cell``, in first-encounter order.

    A *leaf* is a definition with boxes and no sub-instances — the
    sample-library cells the generators stamp.  Distinctness is by
    definition object; content-level deduplication happens in the
    compaction batch via fingerprints.
    """
    seen: Dict[int, bool] = {}
    leaves: List[CellDefinition] = []

    def walk(definition: CellDefinition) -> None:
        if id(definition) in seen:
            return
        seen[id(definition)] = True
        if definition.boxes and not definition.instances:
            leaves.append(definition)
            return
        for instance in definition.instances:
            walk(instance.definition)

    walk(cell)
    return leaves


@dataclass
class PipelineReport:
    """What a :class:`HierarchicalCompactor` run did, in numbers."""

    distinct_cells: int = 0
    unique_contents: int = 0
    instance_count: int = 0
    cache_hits: int = 0
    cache_misses: int = 0
    jobs: int = 1
    results: Dict[str, CompactionResult] = field(default_factory=dict)
    #: counters of the cache used for the run (None when uncached)
    cache_stats: Optional[Dict[str, int]] = None

    def summary(self) -> str:
        """One printable line for the CLI."""
        return (
            f"hierarchical compaction: {self.distinct_cells} distinct leaf"
            f" cell(s) ({self.unique_contents} unique) over"
            f" {self.instance_count} instance(s), jobs={self.jobs},"
            f" {self.cache_hits} cache hit(s), {self.cache_misses} miss(es)"
        )

    def to_dict(self) -> Dict[str, object]:
        """JSON-ready form (the service stores this per job artifact)."""
        return {
            "distinct_cells": self.distinct_cells,
            "unique_contents": self.unique_contents,
            "instance_count": self.instance_count,
            "cache_hits": self.cache_hits,
            "cache_misses": self.cache_misses,
            "jobs": self.jobs,
            "cache_stats": self.cache_stats,
            "summary": self.summary(),
        }


class HierarchicalCompactor:
    """Compact each distinct leaf cell once, then re-stamp every instance.

    The flat compactor (:func:`~repro.compact.flat.compact_cell`)
    flattens the whole hierarchy and solves one giant system —
    instance-proportional work.  This driver exploits the leaf-cell
    property instead (all instances of a cell share one geometry, paper
    section 6.1): leaves are compacted independently — deduplicated by
    content, optionally cached and in parallel — and the hierarchy is
    rebuilt with instances stamped at their original placements, so the
    expensive work is O(distinct cells) and the rebuild is
    O(instances).  Leaf ports and labels are carried over verbatim;
    composite cells keep their own geometry untouched.  Placements are
    *not* re-spaced: this is per-leaf compaction under the original
    pitches, not a substitute for flat compaction of the assembly.
    """

    def __init__(
        self,
        rules: DesignRules,
        axes: str = "x",
        width_mode: str = "preserve",
        solver: Optional[str] = None,
        jobs: int = 1,
        cache: Optional[CompactionCache] = None,
    ) -> None:
        """``axes`` is a sequence of flat-compaction pass letters applied
        to each leaf (``"x"``, ``"y"``, ``"xy"``, ``"yx"``); ``jobs``
        and ``cache`` configure the fan-out of :func:`compact_cells`."""
        if not axes or any(axis not in "xy" for axis in axes):
            raise ValueError(f"axes must combine 'x' and 'y', not {axes!r}")
        self.rules = rules
        self.axes = axes
        self.width_mode = width_mode
        self.solver = solver
        self.jobs = jobs
        self.cache = cache
        self.last_report: Optional[PipelineReport] = None

    def compact(self, cell: CellDefinition) -> CellDefinition:
        """Return a rebuilt ``cell`` with every distinct leaf compacted.

        Leaves with identical content share one compaction (and one
        cache entry); the rebuilt hierarchy re-stamps each instance at
        its original location/orientation.  ``last_report`` records the
        run's statistics.
        """
        leaves = distinct_leaf_cells(cell)
        report = PipelineReport(
            distinct_cells=len(leaves),
            instance_count=cell.count_instances(recursive=True),
            jobs=self.jobs,
        )
        hits_before = self.cache.hits if self.cache is not None else 0
        misses_before = self.cache.misses if self.cache is not None else 0

        # Deduplicate by content so a run compacts each unique geometry
        # exactly once even without a cache.
        by_content: Dict[str, List[CellDefinition]] = {}
        for leaf in leaves:
            by_content.setdefault(fingerprint_cell(leaf), []).append(leaf)
        representatives = [(group[0].name, group[0]) for group in by_content.values()]
        report.unique_contents = len(representatives)

        compacted_list = compact_cells(
            representatives,
            self.rules,
            jobs=self.jobs,
            cache=self.cache,
            axes=self.axes,
            width_mode=self.width_mode,
            solver=self.solver,
        )
        replacement: Dict[int, CellDefinition] = {}
        for (fingerprint, group), (_, compacted, result) in zip(
            by_content.items(), compacted_list
        ):
            for leaf in group:
                rebuilt = CellDefinition(leaf.name)
                for layer_box in compacted.boxes:
                    box = layer_box.box
                    rebuilt.add_box(layer_box.layer, box.xmin, box.ymin, box.xmax, box.ymax)
                for port in leaf.ports:
                    rebuilt.add_port(port.name, port.position.x, port.position.y, port.layer)
                for label in leaf.labels:
                    rebuilt.add_label(label.text, label.position.x, label.position.y)
                replacement[id(leaf)] = rebuilt
                # Distinct-content leaves can share a name; suffix the
                # report key rather than overwrite the first result.
                existing = report.results.get(leaf.name)
                if existing is None or existing is result:
                    report.results[leaf.name] = result
                else:
                    suffix = 2
                    while f"{leaf.name}#{suffix}" in report.results:
                        suffix += 1
                    report.results[f"{leaf.name}#{suffix}"] = result

        rebuilt_memo: Dict[int, CellDefinition] = {}

        def rebuild(definition: CellDefinition) -> CellDefinition:
            known = rebuilt_memo.get(id(definition))
            if known is not None:
                return known
            leaf = replacement.get(id(definition))
            if leaf is not None:
                rebuilt_memo[id(definition)] = leaf
                return leaf
            duplicate = CellDefinition(definition.name)
            rebuilt_memo[id(definition)] = duplicate
            for layer_box in definition.boxes:
                box = layer_box.box
                duplicate.add_box(layer_box.layer, box.xmin, box.ymin, box.xmax, box.ymax)
            for port in definition.ports:
                duplicate.add_port(port.name, port.position.x, port.position.y, port.layer)
            for label in definition.labels:
                duplicate.add_label(label.text, label.position.x, label.position.y)
            for instance in definition.instances:
                duplicate.add_instance(
                    rebuild(instance.definition),
                    instance.location,
                    instance.orientation,
                    instance.name,
                )
            return duplicate

        result = rebuild(cell)
        if self.cache is not None:
            report.cache_hits = self.cache.hits - hits_before
            report.cache_misses = self.cache.misses - misses_before
            report.cache_stats = self.cache.cache_stats.to_dict()
        self.last_report = report
        return result
