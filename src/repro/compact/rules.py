"""Design-rule tables for the compactor (chapter 6).

A :class:`DesignRules` instance carries per-layer minimum widths and
spacings plus inter-layer spacing rules and the contact-expansion table
of section 6.4.3.  Two synthetic technologies are provided so the
technology-transportability experiment (compact a library designed under
one rule set into another) can run.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Iterable, Optional, Tuple

__all__ = ["DesignRules", "RuleTables", "ContactRule", "TECH_A", "TECH_B"]

LayerPair = FrozenSet[str]


@dataclass(frozen=True)
class ContactRule:
    """Expansion parameters for a derived contact layer (Figure 6.9)."""

    cut_size: int = 2
    cut_spacing: int = 2
    metal_overlap: int = 1
    poly_overlap: int = 1


@dataclass(frozen=True)
class RuleTables:
    """Plain-dict memo of :class:`DesignRules` lookups for hot loops.

    Constraint generation and DRC call ``rules.spacing``/``rules.width``
    once per candidate pair in their inner loops; each call pays a
    method dispatch plus (for spacing) a ``frozenset`` allocation.  A
    ``RuleTables`` is built once per compaction or checking run over the
    layer universe actually present, after which the inner loops are
    single dict indexing operations.
    """

    #: minimum drawn width per layer
    width: Dict[str, int]
    #: required spacing per ordered layer pair (both orders present);
    #: ``None`` means the pair is unconstrained
    spacing: Dict[Tuple[str, str], Optional[int]]


@dataclass
class DesignRules:
    """Minimum width/spacing tables, in lambda units."""

    name: str
    min_width: Dict[str, int] = field(default_factory=dict)
    min_spacing: Dict[str, int] = field(default_factory=dict)
    #: spacing between *different* layers, keyed by frozenset of names
    inter_spacing: Dict[LayerPair, int] = field(default_factory=dict)
    contact: ContactRule = field(default_factory=ContactRule)
    #: extra poly width required over diff (the gate rule of section 6.4.3)
    gate_width: Optional[int] = None

    def width(self, layer: str) -> int:
        """Minimum drawn width of ``layer`` (1 when the table is silent)."""
        return self.min_width.get(layer, 1)

    def spacing(self, layer_a: str, layer_b: str) -> Optional[int]:
        """Required spacing between two layers, or None when unconstrained."""
        if layer_a == layer_b:
            return self.min_spacing.get(layer_a)
        return self.inter_spacing.get(frozenset((layer_a, layer_b)))

    def tables(self, layers: Iterable[str]) -> RuleTables:
        """Memoize width/spacing lookups for ``layers`` into plain dicts.

        Built once per compaction/DRC run; the returned
        :class:`RuleTables` answers every ``(layer, layer)`` spacing
        query over the given universe by dict indexing alone.
        """
        names = sorted(set(layers))
        return RuleTables(
            width={name: self.width(name) for name in names},
            spacing={
                (a, b): self.spacing(a, b) for a in names for b in names
            },
        )

    def constrained_pairs(self) -> Tuple[LayerPair, ...]:
        """Every layer pair (or single layer) with a spacing rule."""
        pairs = [frozenset((layer,)) for layer in self.min_spacing]
        pairs.extend(self.inter_spacing)
        return tuple(pairs)

    def scaled(self, numerator: int, denominator: int = 1, name: str = "") -> "DesignRules":
        """A proportionally scaled rule set (ceiling division)."""

        def scale(value: int) -> int:
            return -(-value * numerator // denominator)

        return DesignRules(
            name=name or f"{self.name}*{numerator}/{denominator}",
            min_width={layer: scale(v) for layer, v in self.min_width.items()},
            min_spacing={layer: scale(v) for layer, v in self.min_spacing.items()},
            inter_spacing={pair: scale(v) for pair, v in self.inter_spacing.items()},
            contact=ContactRule(
                scale(self.contact.cut_size),
                scale(self.contact.cut_spacing),
                scale(self.contact.metal_overlap),
                scale(self.contact.poly_overlap),
            ),
            gate_width=None if self.gate_width is None else scale(self.gate_width),
        )


TECH_A = DesignRules(
    name="techA",
    min_width={"diff": 2, "poly": 2, "metal1": 3, "implant": 2, "contact": 4},
    min_spacing={"diff": 3, "poly": 2, "metal1": 3, "implant": 2, "contact": 2},
    inter_spacing={frozenset(("poly", "diff")): 1},
    contact=ContactRule(cut_size=2, cut_spacing=2, metal_overlap=1, poly_overlap=1),
    gate_width=3,
)

# A second technology with different *ratios*, not just a uniform shrink:
# metal relaxes, poly tightens — the case where simple scaling fails and a
# compactor is needed (section 6.1).
TECH_B = DesignRules(
    name="techB",
    min_width={"diff": 2, "poly": 1, "metal1": 4, "implant": 2, "contact": 4},
    min_spacing={"diff": 2, "poly": 1, "metal1": 4, "implant": 1, "contact": 2},
    inter_spacing={frozenset(("poly", "diff")): 1},
    contact=ContactRule(cut_size=1, cut_spacing=2, metal_overlap=1, poly_overlap=1),
    gate_width=2,
)
