"""Derived layers and contact expansion (section 6.4.3, Figure 6.9).

Rules like "poly must be 5 lambda wide over diff" or contact-cut
geometry cannot be expressed as pairwise minimum-spacing constraints.
The fix is to compact *derived* layers (a single ``contact`` layer with
ordinary width/spacing rules) and translate them to physical mask layers
at mask-creation time: a contact box expands into its metal and poly
overlaps plus an array of contact cuts sized from a lookup table —
exactly Magic's contact layer, which the paper cites.

The same strategy handles transistors: a ``gate`` derived layer expands
to poly over diff with the technology's gate width.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from ..geometry import Box
from .rules import ContactRule, DesignRules

__all__ = ["expand_contact", "expand_layout", "cut_count", "expand_gate"]


def cut_count(extent: int, rule: ContactRule) -> int:
    """How many contact cuts fit across ``extent`` of derived contact.

    One cut always fits (the derived box is at least as big as the
    minimum contact); additional cuts are added every
    ``cut_size + cut_spacing``.
    """
    usable = extent - 2 * max(rule.metal_overlap, rule.poly_overlap)
    if usable < rule.cut_size:
        return 1
    return 1 + (usable - rule.cut_size) // (rule.cut_size + rule.cut_spacing)


def expand_contact(box: Box, rule: ContactRule) -> List[Tuple[str, Box]]:
    """Expand one derived contact box into physical mask geometry.

    Returns (layer, box) pairs: a ``metal1`` overlap, a ``poly`` overlap,
    and an evenly spread grid of ``cut`` boxes (Figure 6.9).
    """
    result: List[Tuple[str, Box]] = [
        ("metal1", box.grown(0)),
        ("poly", box.grown(0)),
    ]
    columns = cut_count(box.width, rule)
    rows = cut_count(box.height, rule)
    grid_width = columns * rule.cut_size + (columns - 1) * rule.cut_spacing
    grid_height = rows * rule.cut_size + (rows - 1) * rule.cut_spacing
    x0 = box.xmin + (box.width - grid_width) // 2
    y0 = box.ymin + (box.height - grid_height) // 2
    step = rule.cut_size + rule.cut_spacing
    for row in range(rows):
        for column in range(columns):
            cx = x0 + column * step
            cy = y0 + row * step
            result.append(
                ("cut", Box(cx, cy, cx + rule.cut_size, cy + rule.cut_size))
            )
    return result


def expand_gate(box: Box, rules: DesignRules) -> List[Tuple[str, Box]]:
    """Expand a derived gate box into poly-over-diff geometry.

    The poly strip is widened to the technology's gate width when the
    drawn derived box is narrower — the "poly may be 3 lambda except
    over diffusion where it might have to be 5" rule.
    """
    gate_width = rules.gate_width or rules.width("poly")
    poly = box
    if box.width < gate_width:
        center2x = box.xmin + box.xmax
        xmin = (center2x - gate_width) // 2
        poly = Box(xmin, box.ymin, xmin + gate_width, box.ymax)
    diff_extend = 1
    diff = Box(
        box.xmin - diff_extend, box.ymin, box.xmax + diff_extend, box.ymax
    )
    return [("poly", poly), ("diff", diff)]


def expand_layout(
    layers: Dict[str, List[Box]], rules: DesignRules
) -> Dict[str, List[Box]]:
    """Expand every derived layer of a flat layout to mask layers.

    Non-derived layers pass through unchanged; ``contact`` and ``gate``
    boxes are expanded per the technology's tables.
    """
    result: Dict[str, List[Box]] = {}

    def put(layer: str, box: Box) -> None:
        result.setdefault(layer, []).append(box)

    for layer, boxes in layers.items():
        for box in boxes:
            if layer == "contact":
                for out_layer, out_box in expand_contact(box, rules.contact):
                    put(out_layer, out_box)
            elif layer == "gate":
                for out_layer, out_box in expand_gate(box, rules):
                    put(out_layer, out_box)
            else:
                put(layer, box)
    return result
