"""Constraint-graph representation (section 6.3).

One-dimensional compaction in x: the unknowns are the abscissas of the
vertical box edges, plus — for leaf-cell compaction — the pitch
variables lambda_i.  A constraint is

    x_target - x_source >= weight + sum(coefficient * lambda)

Pure difference constraints (no lambda terms) form a graph solvable by
longest-path Bellman-Ford; constraints carrying lambda terms require the
linear-programming treatment of section 6.3 ("cannot be solved by
shortest path algorithms ... because the weights are not all constants").
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Tuple

__all__ = ["Constraint", "ConstraintSystem", "Variable"]

Variable = str


@dataclass(frozen=True)
class Constraint:
    """``x[target] - x[source] >= weight + sum(coef * pitch)``."""

    source: Variable
    target: Variable
    weight: int
    #: pitch-variable coefficients, e.g. {"lam_1": -1}
    pitch_terms: Tuple[Tuple[str, int], ...] = ()
    #: provenance tag for diagnostics ("width", "spacing", "overlap", ...)
    kind: str = ""

    def has_pitch_terms(self) -> bool:
        """Whether this constraint carries a symbolic pitch term."""
        return bool(self.pitch_terms)


class ConstraintSystem:
    """A set of variables, pitch variables, and constraints."""

    def __init__(self) -> None:
        self.variables: List[Variable] = []
        self._variable_set: Dict[Variable, int] = {}
        self.pitches: List[str] = []
        self.constraints: List[Constraint] = []
        #: initial positions (used by the sorted-edge solver optimisation)
        self.initial: Dict[Variable, int] = {}

    # ------------------------------------------------------------------
    def add_variable(self, name: Variable, initial: int = 0) -> Variable:
        """Declare an edge variable (idempotent); ``initial`` is its
        drawn abscissa, used by the sorted-edge solver heuristic."""
        if name not in self._variable_set:
            self._variable_set[name] = len(self.variables)
            self.variables.append(name)
        self.initial[name] = initial
        return name

    def add_pitch(self, name: str) -> str:
        """Declare a pitch variable lambda (idempotent)."""
        if name not in self.pitches:
            self.pitches.append(name)
        return name

    def add(
        self,
        source: Variable,
        target: Variable,
        weight: int,
        pitch_terms: Iterable[Tuple[str, int]] = (),
        kind: str = "",
    ) -> Constraint:
        """Add ``x[target] - x[source] >= weight + sum(coef * pitch)``."""
        if source not in self._variable_set or target not in self._variable_set:
            raise KeyError("constraint endpoints must be declared variables")
        constraint = Constraint(source, target, weight, tuple(pitch_terms), kind)
        self.constraints.append(constraint)
        return constraint

    def require_equal(self, a: Variable, b: Variable, offset: int = 0) -> None:
        """Pin ``x[b] - x[a] == offset`` (two inequalities)."""
        self.add(a, b, offset, kind="equal")
        self.add(b, a, -offset, kind="equal")

    def solve(self, solver: Optional[str] = None, **options):
        """Solve this system with a named backend (default Bellman-Ford).

        Convenience front door to :mod:`repro.compact.solvers`: keyword
        options (``sort_edges``, ``lower_bound``, ``pitches``, ``hint``)
        are forwarded to the backend's ``solve``.  Returns the backend's
        :class:`~repro.compact.solvers.SolveStats`.
        """
        from .solvers import get_solver  # deferred: solvers import this module

        return get_solver(solver).solve(self, **options)

    # ------------------------------------------------------------------
    def has_pitch_terms(self) -> bool:
        """Whether any constraint carries a symbolic pitch term."""
        return any(c.has_pitch_terms() for c in self.constraints)

    def index_of(self, variable: Variable) -> int:
        """Declaration position of ``variable`` (stable solver index)."""
        return self._variable_set[variable]

    def check(self, solution: Dict[Variable, int], pitches: Optional[Dict[str, int]] = None) -> List[Constraint]:
        """Return the constraints *violated* by a candidate solution."""
        pitches = pitches or {}
        violated = []
        for constraint in self.constraints:
            bound = constraint.weight
            for pitch, coefficient in constraint.pitch_terms:
                bound += coefficient * pitches[pitch]
            if solution[constraint.target] - solution[constraint.source] < bound:
                violated.append(constraint)
        return violated

    def __len__(self) -> int:
        return len(self.constraints)

    def __repr__(self) -> str:
        return (
            f"ConstraintSystem({len(self.variables)} variables,"
            f" {len(self.pitches)} pitches, {len(self.constraints)} constraints)"
        )
