"""Content-addressed memoisation of compaction results (compact once).

The paper's central economy is hierarchical reuse: a generator builds
large arrays out of a handful of distinct leaf cells, so the expensive
work — constraint generation plus longest-path/LP solving — should be
paid once per *cell type*, not once per *instance* (and ideally once per
*content*, across runs).  :class:`CompactionCache` memoizes
:class:`~repro.compact.flat.CompactionResult` and
:class:`~repro.compact.leafcell.LeafCellResult` values under a stable
content hash of everything that determines the outcome:

* the input geometry (box lists in insertion order, hierarchy included),
* the :class:`~repro.compact.rules.DesignRules` content (widths,
  spacings, contact expansion, gate rule — the ``name`` is deliberately
  excluded so renamed-but-identical rule sets share entries),
* the solver backend, width mode, axis, and the other driver options,
* for leaf-cell compaction: the registered interfaces (pitch
  constraints) and the pitch cost function.

Entries live in an in-process dict and, when a ``directory`` is given,
as pickle files named by their key — the on-disk form survives the
process, so a re-generation run pays only fingerprinting.  Every lookup
path deep-copies on the way in and out: callers may freely mutate what
they get back without corrupting the cache.

``cache=None`` everywhere reproduces the uncached behaviour exactly and
is the equivalence oracle for the cached paths.
"""

from __future__ import annotations

import copy
import hashlib
import os
import pickle
import time
from dataclasses import asdict, dataclass
from pathlib import Path
from typing import Any, Callable, Dict, Optional

from ..core.cell import CellDefinition
from .rules import DesignRules

__all__ = [
    "CacheStats",
    "CompactionCache",
    "cache_key",
    "fingerprint_cell",
    "fingerprint_layout",
    "fingerprint_rules",
]


def cache_key(*parts: Any) -> str:
    """SHA-256 over the ``repr`` of the given parts (order-sensitive)."""
    digest = hashlib.sha256()
    for part in parts:
        digest.update(repr(part).encode("utf-8"))
        digest.update(b"\x1f")
    return digest.hexdigest()


def fingerprint_rules(rules: DesignRules) -> str:
    """Stable content hash of a rule set (the ``name`` is excluded).

    Two rule sets with identical widths, spacings, contact expansion and
    gate rule fingerprint identically; any table change produces a new
    key and therefore a cache miss.
    """
    contact = rules.contact
    return cache_key(
        sorted(rules.min_width.items()),
        sorted(rules.min_spacing.items()),
        sorted(
            (tuple(sorted(pair)), value)
            for pair, value in rules.inter_spacing.items()
        ),
        (
            contact.cut_size,
            contact.cut_spacing,
            contact.metal_overlap,
            contact.poly_overlap,
        ),
        rules.gate_width,
    )


def _cell_parts(cell: CellDefinition, memo: Dict[int, str]) -> str:
    known = memo.get(id(cell))
    if known is not None:
        return known
    parts: list = ["boxes"]
    for layer_box in cell.boxes:
        box = layer_box.box
        parts.append((layer_box.layer, box.xmin, box.ymin, box.xmax, box.ymax))
    parts.append("ports")
    for port in cell.ports:
        parts.append((port.name, port.position.x, port.position.y, port.layer))
    parts.append("labels")
    for label in cell.labels:
        parts.append((label.text, label.position.x, label.position.y))
    parts.append("instances")
    for instance in cell.instances:
        child = _cell_parts(instance.definition, memo)
        if instance.is_placed:
            parts.append(
                (
                    child,
                    instance.location.x,
                    instance.location.y,
                    instance.orientation.r,
                    instance.orientation.k,
                )
            )
        else:
            parts.append(("unplaced", child))
    fingerprint = cache_key(*parts)
    memo[id(cell)] = fingerprint
    return fingerprint


def fingerprint_cell(cell: CellDefinition) -> str:
    """Content hash of a cell: geometry, ports, labels, placed subtree.

    The cell *name* is excluded — two cells with identical content
    fingerprint identically, which is what lets a library re-add of the
    same geometry hit the cache.  Box order is part of the content (the
    conservative choice: reordered boxes re-compact rather than risk a
    solver-order-dependent reuse).
    """
    return _cell_parts(cell, {})


def fingerprint_layout(layout) -> str:
    """Content hash of a :class:`~repro.layout.database.FlatLayout`.

    Layers are visited in sorted order (matching the driver's own
    normalisation) with per-layer box lists in insertion order; ports
    and labels are excluded because flat compaction ignores them.
    """
    parts: list = []
    for layer in sorted(layout.layers):
        parts.append(layer)
        for box in layout.layers[layer]:
            parts.append((box.xmin, box.ymin, box.xmax, box.ymax))
    return cache_key(*parts)


@dataclass
class CacheStats:
    """Counters for one :class:`CompactionCache` instance.

    ``hits`` counts every successful lookup (``disk_hits`` of which were
    promoted from the on-disk store), ``misses`` every lookup that found
    nothing, and the byte counters measure on-disk traffic — what the
    service ``/stats`` endpoint aggregates fleet-wide.
    """

    hits: int = 0
    misses: int = 0
    disk_hits: int = 0
    bytes_read: int = 0
    bytes_written: int = 0
    locks_broken: int = 0
    write_errors: int = 0

    @property
    def lookups(self) -> int:
        """Total lookups seen (hits plus misses)."""
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        """Fraction of lookups served from the cache (0.0 when idle)."""
        return self.hits / self.lookups if self.lookups else 0.0

    def merge(self, other: "CacheStats") -> None:
        """Accumulate another instance's counters into this one."""
        for name, value in asdict(other).items():
            setattr(self, name, getattr(self, name) + value)

    def diff(self, earlier: "CacheStats") -> "CacheStats":
        """The counter deltas since ``earlier`` (a snapshot of self).

        What a service worker reports fleet-wide after each job: the
        traffic *that job* caused, not the process lifetime totals.
        """
        return CacheStats(
            **{
                name: value - getattr(earlier, name)
                for name, value in asdict(self).items()
            }
        )

    def to_dict(self) -> Dict[str, int]:
        """Plain-dict form for JSON reports (counters only)."""
        return asdict(self)


#: a lock file untouched for this long belongs to a dead writer
#: (default; per-instance override via ``stale_lock_seconds`` or the
#: ``REPRO_CACHE_STALE_LOCK_S`` environment variable)
_STALE_LOCK_SECONDS = 30.0

#: chaos seam — when not ``None``, called as ``chaos_hook(site, **ctx)``
#: before every disk read/write so the fault-injection harness
#: (:mod:`repro.service.chaos`) can inject I/O errors without this
#: module importing the service layer
chaos_hook: Optional[Callable[..., Any]] = None


class CompactionCache:
    """In-memory (and optionally on-disk) store of compaction results.

    ``directory`` enables cross-run reuse: every entry is additionally
    pickled to ``<directory>/<key>.pkl`` and lookups fall back to disk
    on an in-memory miss, so a fresh process warm-starts from a previous
    run's results.  The on-disk store is safe for concurrent
    multi-process use (the layout service shares one directory across
    its whole worker fleet): writes are guarded by a per-entry
    ``O_EXCL`` lock file on top of the atomic rename, and a torn or
    unreadable entry reads as a miss, never an error.  A
    :class:`CacheStats` instance (``cache_stats``) makes the reuse
    observable; the legacy ``hits``/``misses``/``disk_hits`` attributes
    remain as read-only views of it.
    """

    def __init__(
        self,
        directory: Optional[str] = None,
        stale_lock_seconds: Optional[float] = None,
    ) -> None:
        """``stale_lock_seconds`` overrides the lock-break window (how
        long an untouched lock file is trusted before it is judged to
        belong to a dead writer); falls back to the
        ``REPRO_CACHE_STALE_LOCK_S`` environment variable, then to the
        30 s default — chaos runs shrink it to exercise the break path
        deterministically."""
        self.directory: Optional[Path] = Path(directory) if directory else None
        if self.directory is not None:
            self.directory.mkdir(parents=True, exist_ok=True)
        if stale_lock_seconds is None:
            env = os.environ.get("REPRO_CACHE_STALE_LOCK_S")
            stale_lock_seconds = float(env) if env else _STALE_LOCK_SECONDS
        self.stale_lock_seconds = stale_lock_seconds
        self._memory: Dict[str, Any] = {}
        self.cache_stats = CacheStats()

    def __len__(self) -> int:
        return len(self._memory)

    @property
    def hits(self) -> int:
        """Successful lookups so far (see :attr:`cache_stats`)."""
        return self.cache_stats.hits

    @property
    def misses(self) -> int:
        """Empty lookups so far (see :attr:`cache_stats`)."""
        return self.cache_stats.misses

    @property
    def disk_hits(self) -> int:
        """Hits promoted from the on-disk store (see :attr:`cache_stats`)."""
        return self.cache_stats.disk_hits

    def _path(self, key: str) -> Path:
        assert self.directory is not None
        return self.directory / f"{key}.pkl"

    def get(self, key: str) -> Optional[Any]:
        """Return a private copy of the entry for ``key``, or ``None``.

        Checks memory first, then the on-disk store; a disk hit is
        promoted into memory.  Unreadable disk entries (partial writes,
        version skew, a concurrent delete) count as misses rather than
        errors.
        """
        value = self.peek(key)
        return copy.deepcopy(value) if value is not None else None

    def peek(self, key: str) -> Optional[Any]:
        """Like :meth:`get` but returns the *shared* stored object.

        For read-only consumers on the hot path (the hierarchical
        pipeline copies boxes out of the result anyway): skipping the
        defensive deep copy is what makes a warm cache hit nearly free.
        The returned value must not be mutated.
        """
        if key in self._memory:
            self.cache_stats.hits += 1
            return self._memory[key]
        if self.directory is not None:
            value, size = self._read_disk(key)
            if value is not None:
                self._memory[key] = value
                self.cache_stats.hits += 1
                self.cache_stats.disk_hits += 1
                self.cache_stats.bytes_read += size
                return value
        self.cache_stats.misses += 1
        return None

    def _read_disk(self, key: str) -> tuple:
        """Load ``key`` from disk; ``(None, 0)`` on any defect.

        Every failure mode of a shared store — the file vanishing
        between the existence check and the read, a torn write from a
        killed process, pickle version skew — degrades to a miss so one
        bad entry can never take a worker down.
        """
        path = self._path(key)
        try:
            if chaos_hook is not None:
                chaos_hook("cache.read_disk", path=str(path))
            payload = path.read_bytes()
            value = pickle.loads(payload)
        except Exception:
            return None, 0
        return value, len(payload)

    def put(self, key: str, value: Any) -> None:
        """Store a private copy of ``value`` under ``key``.

        On-disk writes go through a temporary file and ``os.replace`` so
        a concurrent reader never sees a torn entry, and are guarded by
        a per-entry ``O_EXCL`` lock file so two processes never write
        the same entry at once — the loser skips the disk write (the
        key is a content hash, so both hold the same result).  A lock
        left behind by a crashed writer is broken after
        :attr:`stale_lock_seconds` (and counted in
        ``cache_stats.locks_broken``).  Disk-write failures (a full
        disk, a dying device) degrade to a memory-only entry and a
        ``write_errors`` count — the cache is an optimisation, so I/O
        trouble must never fail the job that was being cached.
        """
        value = copy.deepcopy(value)
        self._memory[key] = value
        if self.directory is None:
            return
        path = self._path(key)
        lock = path.with_suffix(".lock")
        if not self._acquire_lock(lock):
            return
        temporary = path.with_suffix(f".tmp{os.getpid()}")
        try:
            if chaos_hook is not None:
                chaos_hook("cache.write_disk", path=str(path))
            payload = pickle.dumps(value)
            temporary.write_bytes(payload)
            os.replace(temporary, path)
            self.cache_stats.bytes_written += len(payload)
        except OSError:
            self.cache_stats.write_errors += 1
            try:
                temporary.unlink()
            except OSError:
                pass
        finally:
            try:
                lock.unlink()
            except OSError:
                pass

    def _acquire_lock(self, lock: Path) -> bool:
        """Try to create ``lock`` exclusively; break it when stale."""
        for _ in range(2):
            try:
                os.close(os.open(str(lock), os.O_CREAT | os.O_EXCL | os.O_WRONLY))
                return True
            except FileExistsError:
                try:
                    age = time.time() - lock.stat().st_mtime
                except OSError:
                    continue  # holder just released it: retry
                if age < self.stale_lock_seconds:
                    return False
                try:
                    lock.unlink()
                    self.cache_stats.locks_broken += 1
                except OSError:
                    return False
            except OSError:
                return False
        return False

    def evict(self, max_bytes: int) -> Dict[str, int]:
        """Shrink the on-disk store below ``max_bytes``, LRU by atime.

        Oldest-used entries (access time, falling back to modification
        time on ``noatime`` mounts) are deleted until the remaining
        pickles fit the budget; leftover temporaries and stale lock
        files from crashed writers are removed unconditionally.  The
        in-memory map is untouched — eviction is a disk-space policy,
        not an invalidation.  Returns ``{"evicted", "freed_bytes",
        "kept_bytes"}``.
        """
        report = {"evicted": 0, "freed_bytes": 0, "kept_bytes": 0}
        if self.directory is None:
            return report
        entries = []
        for path in self.directory.iterdir():
            try:
                stat = path.stat()
            except OSError:
                continue
            if path.suffix == ".pkl":
                entries.append((max(stat.st_atime, stat.st_mtime), stat.st_size, path))
            elif ".tmp" in path.suffix or (
                path.suffix == ".lock"
                and time.time() - stat.st_mtime > self.stale_lock_seconds
            ):
                try:
                    path.unlink()
                except OSError:
                    pass
        entries.sort()
        total = sum(size for _, size, _ in entries)
        for _, size, path in entries:
            if total <= max_bytes:
                break
            try:
                path.unlink()
            except OSError:
                continue
            total -= size
            report["evicted"] += 1
            report["freed_bytes"] += size
        report["kept_bytes"] = total
        return report

    def stats(self) -> str:
        """One printable line: entries, hits (disk share), misses."""
        return (
            f"cache: {len(self._memory)} entries, {self.hits} hits"
            f" ({self.disk_hits} from disk), {self.misses} misses"
        )
