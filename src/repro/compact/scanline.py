"""Constraint generation by scanning (section 6.4.1).

Two generators are provided, matching the paper's narrative:

* :func:`naive_constraints` — the horizontal-band scan the author first
  built: every facing pair of edges within a y band receives a spacing
  constraint.  With ``skip_hidden=True`` it tries to be "smart" about
  hidden edges and reproduces the Figure 6.6 bug (a partially hidden
  edge pair whose constraint is missed); with ``skip_hidden=False`` it
  overconstrains fragmented layouts (Figure 6.5: n abutting boxes are
  forced to n times the minimum width).

* :func:`visibility_constraints` — the "correct scan line method" of
  Figure 6.7: a vertical line sweeps left to right carrying, per layer,
  what a viewer on the line looking left would see; constraints are
  generated only against visible material.  Hidden edges never appear,
  so box merging is implicitly taken care of.

Both generators also emit width constraints and connection-preserving
constraints for same-layer overlapping boxes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from ..geometry import Box, IntervalFront, batch
from ..obs import trace as obs_trace
from .constraints import Constraint, ConstraintSystem
from .rules import DesignRules, RuleTables

__all__ = [
    "CompactionBox",
    "build_edge_variables",
    "naive_constraints",
    "visibility_constraints",
    "visibility_constraints_batch",
    "visibility_constraints_python",
    "visibility_constraints_reference",
    "rebuild_boxes",
]


@dataclass
class CompactionBox:
    """A box whose vertical edges are compaction variables."""

    layer: str
    box: Box
    left: str
    right: str
    #: provenance tag (cell name, instance id...) for sizing directives
    tag: str = ""


def build_edge_variables(
    boxes: Sequence[Tuple[str, Box]],
    system: Optional[ConstraintSystem] = None,
    prefix: str = "e",
    tags: Optional[Sequence[str]] = None,
) -> Tuple[ConstraintSystem, List[CompactionBox]]:
    """Create left/right variables for each (layer, box) pair."""
    if system is None:
        system = ConstraintSystem()
    result: List[CompactionBox] = []
    for index, (layer, box) in enumerate(boxes):
        left = system.add_variable(f"{prefix}{index}.l", initial=box.xmin)
        right = system.add_variable(f"{prefix}{index}.r", initial=box.xmax)
        tag = tags[index] if tags else ""
        result.append(CompactionBox(layer, box, left, right, tag))
    return system, result


def add_width_constraints(
    system: ConstraintSystem,
    boxes: Sequence[CompactionBox],
    rules: DesignRules,
    mode: str = "preserve",
    sizing: Optional[Dict[Tuple[str, str], int]] = None,
) -> None:
    """Width constraints per box.

    ``mode="preserve"`` pins each box to its drawn width; ``mode="min"``
    only enforces the rule minimum (widths collapse during technology
    transport).  ``sizing`` maps ``(tag, layer)`` to an explicit minimum
    width — the device/bus sizing mechanism of section 6.4.1 (tagged
    cells whose instances the compactor must size).
    """
    sizing = sizing or {}
    for item in boxes:
        directive = sizing.get((item.tag, item.layer))
        if mode == "preserve" and directive is None:
            system.require_equal(item.left, item.right, item.box.width)
            continue
        minimum = rules.width(item.layer)
        if directive is not None:
            minimum = max(minimum, directive)
        if mode == "preserve":
            minimum = max(minimum, item.box.width)
        system.add(item.left, item.right, minimum, kind="width")


def _y_overlap(a: Box, b: Box) -> bool:
    """Positive-measure vertical overlap."""
    return min(a.ymax, b.ymax) > max(a.ymin, b.ymin)


def _connected(a: CompactionBox, b: CompactionBox) -> bool:
    """Same layer and touching/overlapping in the drawn layout."""
    return a.layer == b.layer and a.box.overlaps(b.box)


def _add_connection(
    system: ConstraintSystem,
    a: CompactionBox,
    b: CompactionBox,
    rules: DesignRules,
    tables: Optional[RuleTables] = None,
) -> None:
    """Preserve electrical contact between two drawn-connected boxes.

    The x overlap must stay at least ``min(drawn overlap, rule width)``
    and the edge order of the pair is preserved, so connected chains
    stay chains.  ``tables`` short-circuits the width lookup when the
    caller has memoized the rule set.
    """
    width = tables.width[a.layer] if tables is not None else rules.width(a.layer)
    overlap = min(a.box.xmax, b.box.xmax) - max(a.box.xmin, b.box.xmin)
    keep = max(0, min(overlap, width))
    left_box, right_box = (a, b) if a.box.xmin <= b.box.xmin else (b, a)
    # order: left stays left
    system.add(left_box.left, right_box.left, 0, kind="connect")
    system.add(left_box.right, right_box.right, 0, kind="connect")
    # overlap: right box's left edge at most (left box's right - keep)
    system.add(right_box.left, left_box.right, keep, kind="connect")


def naive_constraints(
    system: ConstraintSystem,
    boxes: Sequence[CompactionBox],
    rules: DesignRules,
    skip_hidden: bool = False,
    merge_aware: bool = True,
) -> int:
    """Band-scan generation: all facing pairs in a y band.

    Returns the number of spacing constraints generated.

    ``merge_aware=False`` reproduces the indiscriminate generator of
    Figure 6.5: abutting same-layer boxes (fragmented wires) receive
    spacing constraints instead of connection constraints, forcing a
    fragmented wire to n times the minimum pitch.

    ``skip_hidden=True`` drops a facing pair whenever a third box of the
    same layer covers the gap over the pair's full shared y band — the
    overly clever heuristic that misses the *partially* hidden edge of
    Figure 6.6 and produces an illegal layout.
    """
    count = 0
    items = sorted(boxes, key=lambda item: item.box.xmin)
    tables = rules.tables({item.layer for item in items})
    for i, a in enumerate(items):
        for b in items[i + 1:]:
            if not _y_overlap(a.box, b.box):
                continue
            touching = (
                a.layer == b.layer
                and a.box.overlaps(b.box)
                and not a.box.overlaps_open(b.box)
            )
            if _connected(a, b) and (merge_aware or not touching):
                _add_connection(system, a, b, rules, tables)
                continue
            spacing = tables.spacing[a.layer, b.layer]
            if spacing is None:
                continue
            left_box, right_box = (a, b) if a.box.xmin <= b.box.xmin else (b, a)
            gap_lo = left_box.box.xmax
            gap_hi = right_box.box.xmin
            if gap_hi <= gap_lo and not touching:
                # Drawn crossing or contact of different layers is
                # intentional.
                continue
            if skip_hidden and _gap_covered(items, a.layer, left_box, right_box):
                continue
            system.add(left_box.right, right_box.left, spacing, kind="spacing")
            count += 1
    return count


def _gap_covered(
    items: Sequence[CompactionBox],
    layer: str,
    left_box: CompactionBox,
    right_box: CompactionBox,
) -> bool:
    """The (buggy) hidden-edge test of Figure 6.6.

    Decides hidden-ness where the pair first enters the horizontal band
    scan — the bottom of the shared y range — so a box that covers the
    gap at ``y1`` but not at ``y2`` wrongly suppresses the constraint.
    """
    y0 = max(left_box.box.ymin, right_box.box.ymin)
    for other in items:
        if other is left_box or other is right_box or other.layer != layer:
            continue
        if (
            other.box.xmin <= left_box.box.xmax
            and other.box.xmax >= right_box.box.xmin
            and other.box.ymin <= y0 < other.box.ymax
        ):
            return True
    return False


def visibility_constraints(
    system: ConstraintSystem,
    boxes: Sequence[CompactionBox],
    rules: DesignRules,
) -> int:
    """The correct vertical-scan method (Figure 6.7).

    Dispatches on the ``REPRO_KERNEL`` switch: the numpy batch build
    (:func:`visibility_constraints_batch`) by default, the interpreted
    sweep build (:func:`visibility_constraints_python`) otherwise.  The
    two emit the exact same constraint multiset; returns the number of
    spacing constraints generated.
    """
    if batch.use_numpy():
        if obs_trace.is_enabled():
            obs_trace.annotate(kernel="numpy")
        return visibility_constraints_batch(system, boxes, rules)
    if obs_trace.is_enabled():
        obs_trace.annotate(kernel="python")
    return visibility_constraints_python(system, boxes, rules)


def visibility_constraints_batch(
    system: ConstraintSystem,
    boxes: Sequence[CompactionBox],
    rules: DesignRules,
) -> int:
    """Numpy batch build of the Figure 6.7 scan.

    :func:`repro.geometry.batch.visible_pairs` computes every
    (visible, viewer) pair the sequential front would have produced in
    one offline segmented scan; pairs are then classified with masked
    column arithmetic and the spacing rows are emitted as one bulk
    ``Constraint`` batch.  Connection pairs (a handful per layout) fall
    back to :func:`_add_connection` so the overlap arithmetic lives in
    exactly one place.  Emits the exact constraint multiset of
    :func:`visibility_constraints_python`.
    """
    np = batch.require_numpy()
    items = list(boxes)
    count = len(items)
    if count < 2:
        return 0
    layer_names = sorted({item.layer for item in items})
    tables = rules.tables(layer_names)
    code_of = {name: index for index, name in enumerate(layer_names)}
    depth = len(layer_names)
    spacing_matrix = np.full((depth, depth), -1, dtype=np.int64)
    for (name_a, name_b), value in tables.spacing.items():
        if value is not None:
            spacing_matrix[code_of[name_a], code_of[name_b]] = value
    allowed = spacing_matrix >= 0
    arrays = batch.boxes_to_arrays([item.box for item in items])
    codes = np.fromiter(
        (code_of[item.layer] for item in items), dtype=np.int64, count=count
    )
    visible, viewer = batch.visible_pairs(arrays, codes, allowed)
    if visible.size == 0:
        return 0
    # The viewer arrived after the visible box, so visible.xmin <=
    # viewer.xmin and the stab guarantees positive y overlap: connected
    # reduces to closed x contact, the crossing test to a.xmax >= b.xmin.
    a_xmax = arrays.xmax[visible]
    b_xmin = arrays.xmin[viewer]
    connected = (codes[visible] == codes[viewer]) & (a_xmax >= b_xmin)
    weights = spacing_matrix[codes[visible], codes[viewer]]
    spaced = ~connected & (weights >= 0) & (a_xmax < b_xmin)
    for a_index, b_index in zip(
        visible[connected].tolist(), viewer[connected].tolist()
    ):
        _add_connection(system, items[a_index], items[b_index], rules, tables)
    spaced_indices = np.flatnonzero(spaced)
    if spaced_indices.size:
        sources = [items[i].right for i in visible[spaced_indices].tolist()]
        targets = [items[i].left for i in viewer[spaced_indices].tolist()]
        system.constraints.extend(
            Constraint(source, target, weight, (), "spacing")
            for source, target, weight in zip(
                sources, targets, weights[spaced_indices].tolist()
            )
        )
    return int(spaced_indices.size)


def visibility_constraints_python(
    system: ConstraintSystem,
    boxes: Sequence[CompactionBox],
    rules: DesignRules,
) -> int:
    """The interpreted sweep-kernel build of the Figure 6.7 scan.

    Sweeps left to right; per layer the scan line holds the visible
    front (what a viewer on the line looking left sees).  Spacing
    constraints are generated only between a new box and the visible
    segments it faces; shadowed material is skipped because any
    constraint against it is implied transitively through the shadowing
    box.  Returns the number of spacing constraints generated.

    The front is an :class:`~repro.geometry.IntervalFront` per layer, so
    each box pays ``O(log n + k)`` to stab the segments it faces and to
    replace what it reaches past — against the flat-list front of
    :func:`visibility_constraints_reference`, which scanned and re-sorted
    whole fronts per box.  Emits the exact constraint multiset of the
    reference, and serves as the equivalence oracle for
    :func:`visibility_constraints_batch`.
    """
    count = 0
    fronts: Dict[str, IntervalFront] = {}
    items = sorted(boxes, key=lambda item: (item.box.xmin, item.box.xmax))
    tables = rules.tables({item.layer for item in items})
    spacing_of = tables.spacing

    for b in items:
        box = b.box
        for layer, front in fronts.items():
            spacing = spacing_of[layer, b.layer]
            if spacing is None and layer != b.layer:
                # Cross-layer with no rule: nothing the stab could find
                # would ever emit (connections need the same layer).
                continue
            handled = set()
            for _, _, a in front.stab(box.ymin, box.ymax):
                if id(a) in handled:
                    continue
                handled.add(id(a))
                if _connected(a, b):
                    _add_connection(system, a, b, rules, tables)
                    continue
                if spacing is None:
                    continue
                if a.box.xmax >= box.xmin:
                    continue  # drawn crossing/contact of different layers
                system.add(a.right, b.left, spacing, kind="spacing")
                count += 1
        right = box.xmax
        fronts.setdefault(b.layer, IntervalFront()).replace(
            box.ymin, box.ymax, b, keep=lambda old: old.box.xmax > right
        )
    return count


def visibility_constraints_reference(
    system: ConstraintSystem,
    boxes: Sequence[CompactionBox],
    rules: DesignRules,
) -> int:
    """The pre-kernel visibility scan, retained as an equivalence oracle.

    Semantically identical to :func:`visibility_constraints` but keeps
    the flat-list front that rescans every segment of every layer per
    box and re-sorts the whole front on every insert — the quadratic
    behaviour the sweep kernel removes.  Property tests and benchmarks
    compare the two implementations.
    """
    count = 0
    # front[layer] = sorted list of (y0, y1, CompactionBox)
    front: Dict[str, List[Tuple[int, int, CompactionBox]]] = {}
    items = sorted(boxes, key=lambda item: (item.box.xmin, item.box.xmax))

    for b in items:
        for layer, segments in front.items():
            spacing = rules.spacing(layer, b.layer)
            handled = set()
            for y0, y1, a in segments:
                if min(y1, b.box.ymax) <= max(y0, b.box.ymin):
                    continue
                if id(a) in handled:
                    continue
                handled.add(id(a))
                if _connected(a, b):
                    _add_connection(system, a, b, rules)
                    continue
                if spacing is None:
                    continue
                if a.box.xmax >= b.box.xmin:
                    continue  # drawn crossing/contact of different layers
                system.add(a.right, b.left, spacing, kind="spacing")
                count += 1
        _insert_front(front, b)
    return count


def _insert_front(
    front: Dict[str, List[Tuple[int, int, CompactionBox]]], b: CompactionBox
) -> None:
    """Update a layer's visible front with a newly swept box.

    Within the new box's y range the new box replaces segments whose
    right edge it reaches past; segments extending further right stay
    (they will shadow the new box for later sweeps — correctly, since
    constraints against them imply constraints against the new box).
    """
    segments = front.setdefault(b.layer, [])
    result: List[Tuple[int, int, CompactionBox]] = []
    covered: List[Tuple[int, int]] = [(b.box.ymin, b.box.ymax)]
    for y0, y1, a in segments:
        if y1 <= b.box.ymin or y0 >= b.box.ymax or a.box.xmax > b.box.xmax:
            result.append((y0, y1, a))
            if a.box.xmax > b.box.xmax:
                # This segment keeps shadowing its y range.
                covered = _subtract_interval(covered, (y0, y1))
            continue
        # Keep the non-overlapped parts of the old segment.
        if y0 < b.box.ymin:
            result.append((y0, b.box.ymin, a))
        if y1 > b.box.ymax:
            result.append((b.box.ymax, y1, a))
    for y0, y1 in covered:
        if y1 > y0:
            result.append((y0, y1, b))
    result.sort(key=lambda segment: segment[0])
    front[b.layer] = result


def _subtract_interval(
    intervals: List[Tuple[int, int]], cut: Tuple[int, int]
) -> List[Tuple[int, int]]:
    result: List[Tuple[int, int]] = []
    for y0, y1 in intervals:
        if cut[1] <= y0 or cut[0] >= y1:
            result.append((y0, y1))
            continue
        if y0 < cut[0]:
            result.append((y0, cut[0]))
        if y1 > cut[1]:
            result.append((cut[1], y1))
    return result


def rebuild_boxes(
    boxes: Sequence[CompactionBox], solution: Dict[str, int]
) -> List[Tuple[str, Box]]:
    """Apply a solved x assignment back to (layer, box) pairs."""
    rebuilt = []
    for item in boxes:
        rebuilt.append(
            (
                item.layer,
                Box(
                    solution[item.left],
                    item.box.ymin,
                    solution[item.right],
                    item.box.ymax,
                ),
            )
        )
    return rebuilt
