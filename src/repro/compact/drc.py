"""A slab-based design-rule checker matched to 1-D x compaction.

Used as the legality oracle for compactor outputs: every horizontal slab
of the layout is checked for minimum x run widths, same-layer gaps, and
inter-layer gaps (drawn crossings of different layers are intentional
and exempt, mirroring the constraint generator's semantics — true
layer-interaction rules go through the derived layers of section 6.4.3).

Two implementations are provided.  :func:`check_layout` rides the sweep
kernel: one y-event sweep maintains the active material per layer
(:func:`repro.geometry.slab_decompose`), and the inter-layer gap check
walks sorted runs with bisect windows instead of testing every run pair.
:func:`check_layout_reference` is the pre-kernel checker — it rebuilds
every layer's runs from *all* boxes for *every* slab (``O(slabs x
boxes)``) and compares runs pairwise (``O(runs^2)`` per layer pair) —
retained as the equivalence oracle for property tests and benchmarks.
Both emit the same violation multiset.
"""

from __future__ import annotations

from bisect import bisect_left, bisect_right
from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

from ..geometry import Box, batch, interval_gaps, slab_decompose
from ..obs import trace as obs_trace
from .rules import DesignRules

__all__ = [
    "Violation",
    "check_layout",
    "check_layout_batch",
    "check_layout_python",
    "check_layout_reference",
]


@dataclass(frozen=True)
class Violation:
    kind: str  # "width" | "spacing"
    layer_a: str
    layer_b: str
    where: Tuple[int, int]  # (x, y) witness
    required: int
    actual: int

    def __str__(self) -> str:
        layers = (
            self.layer_a
            if self.layer_a == self.layer_b
            else f"{self.layer_a}/{self.layer_b}"
        )
        return (
            f"{self.kind} violation on {layers} at {self.where}:"
            f" {self.actual} < {self.required}"
        )


def check_layout(
    layers: Dict[str, List[Box]], rules: DesignRules
) -> List[Violation]:
    """Check min width and spacing; returns all violations found.

    Dispatches on the ``REPRO_KERNEL`` switch: the numpy batch checker
    (:func:`check_layout_batch`) by default, the interpreted sweep
    checker (:func:`check_layout_python`) otherwise.  Both emit the
    same violation multiset (emission order may differ).
    """
    if batch.use_numpy():
        if obs_trace.is_enabled():
            obs_trace.annotate(kernel="numpy")
        return check_layout_batch(layers, rules)
    if obs_trace.is_enabled():
        obs_trace.annotate(kernel="python")
    return check_layout_python(layers, rules)


def check_layout_batch(
    layers: Dict[str, List[Box]], rules: DesignRules
) -> List[Violation]:
    """Numpy batch build of the slab checker.

    All slabs of a layer are materialised at once as flat
    ``(slab, x0, x1)`` run vectors
    (:func:`repro.geometry.batch.merged_slab_runs`); width and
    same-layer gap checks are single masked comparisons over those
    columns, and each inter-layer check is two keyed ``searchsorted``
    probes over the partner layer's run starts/ends — the batch form of
    the per-slab bisect windows of :func:`check_layout_python`, which
    it matches violation-for-violation.
    """
    np = batch.require_numpy()
    violations: List[Violation] = []
    layer_names = sorted(layers)
    if not layer_names:
        return violations
    tables = rules.tables(layer_names)
    arrays = {name: batch.boxes_to_arrays(layers[name]) for name in layer_names}
    ys = batch.slab_grid(arrays.values())
    if ys.size < 2:
        return violations
    runs = {name: batch.merged_slab_runs(ys, arrays[name]) for name in layer_names}

    def emit(kind, name_a, name_b, xs, slabs, required, actual) -> None:
        violations.extend(
            Violation(kind, name_a, name_b, (x, y), required, value)
            for x, y, value in zip(xs.tolist(), ys[slabs].tolist(), actual.tolist())
        )

    for name in layer_names:
        slab, x0, x1 = runs[name]
        if slab.size == 0:
            continue
        width = tables.width[name]
        drawn = x1 - x0
        narrow = np.flatnonzero(drawn < width)
        if narrow.size:
            emit("width", name, name, x0[narrow], slab[narrow], width, drawn[narrow])
        spacing = tables.spacing[name, name]
        if spacing is not None and slab.size > 1:
            gaps = x0[1:] - x1[:-1]
            bad = np.flatnonzero((slab[1:] == slab[:-1]) & (gaps < spacing))
            if bad.size:
                emit("spacing", name, name, x1[bad], slab[bad], spacing, gaps[bad])
    for index, name_a in enumerate(layer_names):
        slab_a, a0, a1 = runs[name_a]
        for name_b in layer_names[index + 1:]:
            spacing = tables.spacing[name_a, name_b]
            slab_b, b0, b1 = runs[name_b]
            if spacing is None or slab_a.size == 0 or slab_b.size == 0:
                continue
            base = int(min(a0.min(), b0.min())) - spacing - 1
            span = np.int64(int(max(a1.max(), b1.max())) + spacing + 1 - base + 1)
            key_b0 = slab_b * span + (b0 - base)
            key_b1 = slab_b * span + (b1 - base)
            # b runs starting in (a1, a1 + spacing): gap to the right.
            lo = np.searchsorted(key_b0, slab_a * span + (a1 - base), side="right")
            hi = np.searchsorted(
                key_b0, slab_a * span + (a1 + spacing - base), side="left"
            )
            qa, qb = batch.expand_ranges(lo, hi)
            if qa.size:
                emit(
                    "spacing", name_a, name_b,
                    a1[qa], slab_a[qa], spacing, b0[qb] - a1[qa],
                )
            # b runs ending in (a0 - spacing, a0): gap to the left.
            lo = np.searchsorted(
                key_b1, slab_a * span + (a0 - spacing - base), side="right"
            )
            hi = np.searchsorted(key_b1, slab_a * span + (a0 - base), side="left")
            qa, qb = batch.expand_ranges(lo, hi)
            if qa.size:
                emit(
                    "spacing", name_a, name_b,
                    b1[qb], slab_a[qa], spacing, a0[qa] - b1[qb],
                )
    return violations


def check_layout_python(
    layers: Dict[str, List[Box]], rules: DesignRules
) -> List[Violation]:
    """The interpreted sweep-kernel checker.

    The slab decomposition comes from one y-event sweep over the active
    material, and each inter-layer check inspects only the runs inside
    a spacing-sized bisect window around every run end — sub-quadratic
    where the reference checker rescans all boxes per slab and all run
    pairs per layer pair.  Serves as the equivalence oracle for
    :func:`check_layout_batch`.
    """
    violations: List[Violation] = []
    layer_names = sorted(layers)
    tables = rules.tables(layer_names)
    pairs = [
        (a, b, spacing)
        for i, a in enumerate(layer_names)
        for b in layer_names[i + 1:]
        if (spacing := tables.spacing[a, b]) is not None
    ]
    # slab_decompose reuses a layer's runs list while its active set is
    # unchanged; cache the derived gap lists and bisect arrays per layer
    # keyed on that object identity (the cached reference keeps the list
    # alive, so identity cannot be recycled while the entry exists).
    gap_lists: Dict[str, tuple] = {}
    bisect_arrays: Dict[str, tuple] = {}
    for y0, _, runs in slab_decompose(layers):
        for name in layer_names:
            width = tables.width[name]
            spacing = tables.spacing[name, name]
            slab = runs[name]
            for x0, x1 in slab:
                if x1 - x0 < width:
                    violations.append(
                        Violation("width", name, name, (x0, y0), width, x1 - x0)
                    )
            if spacing is not None:
                cached = gap_lists.get(name)
                if cached is None or cached[0] is not slab:
                    cached = (slab, interval_gaps(slab))
                    gap_lists[name] = cached
                for g0, g1 in cached[1]:
                    if g1 - g0 < spacing:
                        violations.append(
                            Violation("spacing", name, name, (g0, y0), spacing, g1 - g0)
                        )
        for name_a, name_b, spacing in pairs:
            runs_a = runs[name_a]
            runs_b = runs[name_b]
            if not runs_a or not runs_b:
                continue
            cached = bisect_arrays.get(name_b)
            if cached is None or cached[0] is not runs_b:
                cached = (
                    runs_b,
                    [b0 for b0, _ in runs_b],
                    [b1 for _, b1 in runs_b],
                )
                bisect_arrays[name_b] = cached
            _, starts_b, ends_b = cached
            for a0, a1 in runs_a:
                # b runs starting in (a1, a1 + spacing): gap to the right.
                lo = bisect_right(starts_b, a1)
                hi = bisect_left(starts_b, a1 + spacing, lo=lo)
                for b0, _ in runs_b[lo:hi]:
                    violations.append(
                        Violation(
                            "spacing", name_a, name_b, (a1, y0), spacing, b0 - a1
                        )
                    )
                # b runs ending in (a0 - spacing, a0): gap to the left.
                lo = bisect_right(ends_b, a0 - spacing)
                hi = bisect_left(ends_b, a0, lo=lo)
                for _, b1 in runs_b[lo:hi]:
                    violations.append(
                        Violation(
                            "spacing", name_a, name_b, (b1, y0), spacing, a0 - b1
                        )
                    )
    return violations


def _slab_runs(boxes: Sequence[Box], y0: int, y1: int) -> List[Tuple[int, int]]:
    """Merged x intervals of material fully covering the slab [y0, y1]."""
    intervals = sorted(
        (box.xmin, box.xmax)
        for box in boxes
        if box.ymin <= y0 and box.ymax >= y1 and box.xmax > box.xmin
    )
    merged: List[List[int]] = []
    for x0, x1 in intervals:
        if merged and x0 <= merged[-1][1]:
            merged[-1][1] = max(merged[-1][1], x1)
        else:
            merged.append([x0, x1])
    return [(a, b) for a, b in merged]


def check_layout_reference(
    layers: Dict[str, List[Box]], rules: DesignRules
) -> List[Violation]:
    """The pre-kernel checker, retained as an equivalence oracle.

    Rebuilds every layer's slab runs from all boxes for every slab and
    tests every inter-layer run pair — the quadratic rescans the sweep
    kernel removes.  Must emit the same violation multiset as
    :func:`check_layout` on any input.
    """
    violations: List[Violation] = []
    ys = sorted(
        {box.ymin for boxes in layers.values() for box in boxes}
        | {box.ymax for boxes in layers.values() for box in boxes}
    )
    layer_names = sorted(layers)
    for y0, y1 in zip(ys, ys[1:]):
        if y0 == y1:
            continue
        runs = {name: _slab_runs(layers[name], y0, y1) for name in layer_names}
        for name in layer_names:
            width = rules.width(name)
            spacing = rules.min_spacing.get(name)
            slab = runs[name]
            for x0, x1 in slab:
                if x1 - x0 < width:
                    violations.append(
                        Violation("width", name, name, (x0, y0), width, x1 - x0)
                    )
            if spacing is not None:
                for (_, r0), (l1, _) in zip(slab, slab[1:]):
                    if l1 - r0 < spacing:
                        violations.append(
                            Violation("spacing", name, name, (r0, y0), spacing, l1 - r0)
                        )
        for i, name_a in enumerate(layer_names):
            for name_b in layer_names[i + 1:]:
                spacing = rules.spacing(name_a, name_b)
                if spacing is None:
                    continue
                for a0, a1 in runs[name_a]:
                    for b0, b1 in runs[name_b]:
                        if a1 <= b0:
                            gap = b0 - a1
                        elif b1 <= a0:
                            gap = a0 - b1
                        else:
                            continue  # drawn crossing: intentional
                        # gap == 0 is an intentional different-layer contact
                        if 0 < gap < spacing:
                            violations.append(
                                Violation(
                                    "spacing",
                                    name_a,
                                    name_b,
                                    (min(a1, b1), y0),
                                    spacing,
                                    gap,
                                )
                            )
    return violations
