"""A slab-based design-rule checker matched to 1-D x compaction.

Used as the legality oracle for compactor outputs: every horizontal slab
of the layout is checked for minimum x run widths, same-layer gaps, and
inter-layer gaps (drawn crossings of different layers are intentional
and exempt, mirroring the constraint generator's semantics — true
layer-interaction rules go through the derived layers of section 6.4.3).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

from ..geometry import Box
from .rules import DesignRules

__all__ = ["Violation", "check_layout"]


@dataclass(frozen=True)
class Violation:
    kind: str  # "width" | "spacing"
    layer_a: str
    layer_b: str
    where: Tuple[int, int]  # (x, y) witness
    required: int
    actual: int

    def __str__(self) -> str:
        layers = (
            self.layer_a
            if self.layer_a == self.layer_b
            else f"{self.layer_a}/{self.layer_b}"
        )
        return (
            f"{self.kind} violation on {layers} at {self.where}:"
            f" {self.actual} < {self.required}"
        )


def _slab_runs(boxes: Sequence[Box], y0: int, y1: int) -> List[Tuple[int, int]]:
    """Merged x intervals of material fully covering the slab [y0, y1]."""
    intervals = sorted(
        (box.xmin, box.xmax)
        for box in boxes
        if box.ymin <= y0 and box.ymax >= y1 and box.xmax > box.xmin
    )
    merged: List[List[int]] = []
    for x0, x1 in intervals:
        if merged and x0 <= merged[-1][1]:
            merged[-1][1] = max(merged[-1][1], x1)
        else:
            merged.append([x0, x1])
    return [(a, b) for a, b in merged]


def check_layout(
    layers: Dict[str, List[Box]], rules: DesignRules
) -> List[Violation]:
    """Check min width and spacing; returns all violations found."""
    violations: List[Violation] = []
    ys = sorted(
        {box.ymin for boxes in layers.values() for box in boxes}
        | {box.ymax for boxes in layers.values() for box in boxes}
    )
    layer_names = sorted(layers)
    for y0, y1 in zip(ys, ys[1:]):
        if y0 == y1:
            continue
        runs = {name: _slab_runs(layers[name], y0, y1) for name in layer_names}
        for name in layer_names:
            width = rules.width(name)
            spacing = rules.min_spacing.get(name)
            slab = runs[name]
            for x0, x1 in slab:
                if x1 - x0 < width:
                    violations.append(
                        Violation("width", name, name, (x0, y0), width, x1 - x0)
                    )
            if spacing is not None:
                for (_, r0), (l1, _) in zip(slab, slab[1:]):
                    if l1 - r0 < spacing:
                        violations.append(
                            Violation("spacing", name, name, (r0, y0), spacing, l1 - r0)
                        )
        for i, name_a in enumerate(layer_names):
            for name_b in layer_names[i + 1:]:
                spacing = rules.spacing(name_a, name_b)
                if spacing is None:
                    continue
                for a0, a1 in runs[name_a]:
                    for b0, b1 in runs[name_b]:
                        if a1 <= b0:
                            gap = b0 - a1
                        elif b1 <= a0:
                            gap = a0 - b1
                        else:
                            continue  # drawn crossing: intentional
                        # gap == 0 is an intentional different-layer contact
                        if 0 < gap < spacing:
                            violations.append(
                                Violation(
                                    "spacing",
                                    name_a,
                                    name_b,
                                    (min(a1, b1), y0),
                                    spacing,
                                    gap,
                                )
                            )
    return violations
