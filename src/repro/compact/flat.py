"""Flat (classical) one-dimensional compaction driver.

The experimental compactor of section 6.4: flatten a cell, generate
constraints with a scan method, solve by Bellman-Ford (optionally with
the rubber-band refinement), and rebuild the geometry.  Supports both
axes by transposing coordinates for the y pass.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..core.cell import CellDefinition
from ..geometry import Box
from ..layout.database import FlatLayout, flatten_cell, merge_boxes
from ..obs import trace as obs_trace
from .constraints import ConstraintSystem
from .drc import Violation, check_layout
from .rubberband import alignment_pairs, misalignment, rubber_band_solve
from .rules import DesignRules
from .scanline import (
    CompactionBox,
    add_width_constraints,
    build_edge_variables,
    naive_constraints,
    rebuild_boxes,
    visibility_constraints,
)
from .solver import SolveStats, solve_longest_path

__all__ = ["CompactionResult", "compact_layout", "compact_cell"]


@dataclass
class CompactionResult:
    """Outcome of a flat compaction run."""

    layers: Dict[str, List[Box]] = field(default_factory=dict)
    width_before: int = 0
    width_after: int = 0
    constraint_count: int = 0
    spacing_constraints: int = 0
    stats: Optional[SolveStats] = None
    jog_before: int = 0
    jog_after: int = 0

    def violations(self, rules: DesignRules) -> List[Violation]:
        """DRC the compacted geometry against ``rules``."""
        return check_layout(self.layers, rules)


def _transpose_box(box: Box) -> Box:
    return Box(box.ymin, box.xmin, box.ymax, box.xmax)


def compact_layout(
    layout: FlatLayout,
    rules: DesignRules,
    method: str = "visibility",
    width_mode: str = "preserve",
    rubber_band: bool = False,
    axis: str = "x",
    merge: bool = False,
    sizing: Optional[Dict[Tuple[str, str], int]] = None,
    sort_edges: bool = True,
    solver: Optional[str] = None,
    cache=None,
) -> CompactionResult:
    """Compact a flat layout along one axis.

    ``method`` is ``"visibility"`` (Figure 6.7), ``"naive"`` (band scan),
    ``"naive-indiscriminate"`` (Figure 6.5 overconstraint) or
    ``"naive-skip-hidden"`` (Figure 6.6 bug).  ``merge`` pre-merges boxes
    per layer (section 6.4.1's preprocessing — incompatible with tag-based
    ``sizing``, which is rejected).  ``solver`` names the longest-path
    backend (see :mod:`repro.compact.solvers`); with ``width_mode="min"``
    the constraint graph is acyclic and ``"topological"`` solves it in a
    single O(V+E) sweep.  ``cache`` (a
    :class:`~repro.compact.cache.CompactionCache`) memoizes the whole
    run under a content hash of the input geometry, the rule tables and
    every option listed above; ``cache=None`` is the uncached oracle.
    """
    if merge and sizing:
        raise ValueError(
            "box merging loses the cell tags that device sizing needs"
            " (section 6.4.1); choose one"
        )
    key = None
    if cache is not None:
        from .cache import cache_key, fingerprint_layout, fingerprint_rules

        key = cache_key(
            "flat",
            fingerprint_layout(layout),
            fingerprint_rules(rules),
            method,
            width_mode,
            rubber_band,
            axis,
            merge,
            sorted(sizing.items()) if sizing else None,
            sort_edges,
            solver or "",
        )
        cached = cache.get(key)
        if cached is not None:
            return cached
    pairs: List[Tuple[str, Box]] = []
    for layer, boxes in sorted(layout.layers.items()):
        source = merge_boxes(boxes) if merge else boxes
        for box in source:
            pairs.append((layer, _transpose_box(box) if axis == "y" else box))

    system, comp_boxes = build_edge_variables(pairs)
    add_width_constraints(system, comp_boxes, rules, mode=width_mode, sizing=sizing)
    if method == "visibility":
        spacing_count = visibility_constraints(system, comp_boxes, rules)
    elif method == "naive":
        spacing_count = naive_constraints(system, comp_boxes, rules)
    elif method == "naive-indiscriminate":
        spacing_count = naive_constraints(system, comp_boxes, rules, merge_aware=False)
    elif method == "naive-skip-hidden":
        spacing_count = naive_constraints(system, comp_boxes, rules, skip_hidden=True)
    else:
        raise ValueError(f"unknown constraint method {method!r}")

    with obs_trace.span("solver.solve", axis=axis) as solve_span:
        stats = solve_longest_path(system, sort_edges=sort_edges, solver=solver)
        solve_span.set(**stats.to_dict())
    solution = stats.solution
    align = alignment_pairs(comp_boxes)
    result = CompactionResult(stats=stats)
    result.spacing_constraints = spacing_count
    result.constraint_count = len(system)
    result.jog_before = misalignment(align, solution)
    if rubber_band and align:
        width_limit = max(solution.values()) if solution else 0
        solution = rubber_band_solve(
            system, comp_boxes, width_limit, align, solver=solver
        )
        result.jog_after = misalignment(align, solution)
    else:
        result.jog_after = result.jog_before

    rebuilt = rebuild_boxes(comp_boxes, solution)
    for layer, box in rebuilt:
        result.layers.setdefault(layer, []).append(
            _transpose_box(box) if axis == "y" else box
        )

    bbox = layout.bounding_box()
    if bbox is not None:
        result.width_before = bbox.width if axis == "x" else bbox.height
    xs = [
        (box.xmax if axis == "x" else box.ymax)
        for boxes in result.layers.values()
        for box in boxes
    ]
    lows = [
        (box.xmin if axis == "x" else box.ymin)
        for boxes in result.layers.values()
        for box in boxes
    ]
    if xs:
        result.width_after = max(xs) - min(lows)
    if cache is not None and key is not None:
        cache.put(key, result)
    return result


def compact_layout_xy(
    layout: FlatLayout,
    rules: DesignRules,
    order: str = "xy",
    **options,
) -> Tuple[CompactionResult, CompactionResult]:
    """Two one-dimensional passes (the classical x-then-y compactor).

    Section 6.1 notes that one-dimensional compaction "tries to greedily
    optimize one dimension at a time and misses out on the optimizations
    that require a more careful analysis of the interaction between the
    two dimensions" — this driver is that greedy baseline, and the pass
    order matters (try ``order="yx"``).  Returns the two pass results;
    the second result's ``layers`` is the final geometry.
    """
    if sorted(order) != ["x", "y"]:
        raise ValueError("order must be 'xy' or 'yx'")
    first = compact_layout(layout, rules, axis=order[0], **options)
    intermediate = FlatLayout(layout.name + "_pass1")
    for layer, boxes in first.layers.items():
        for box in boxes:
            intermediate.add(layer, box)
    second = compact_layout(intermediate, rules, axis=order[1], **options)
    return first, second


def compact_cell(
    cell: CellDefinition,
    rules: DesignRules,
    name: Optional[str] = None,
    **options,
) -> Tuple[CellDefinition, CompactionResult]:
    """Flatten ``cell``, compact it, and return a new flat cell."""
    layout = flatten_cell(cell)
    result = compact_layout(layout, rules, **options)
    compacted = CellDefinition(name or f"{cell.name}_compacted")
    for layer, boxes in sorted(result.layers.items()):
        for box in boxes:
            compacted.add_box(layer, box.xmin, box.ymin, box.xmax, box.ymax)
    return compacted, result
