"""Wirelength-minimising refinement pass (the Figure 6.8 fix).

Bellman-Ford "consists of pushing all the objects in a layout as much to
the left as they can go", which develops jogs: connected boxes that were
aligned drift apart up to the slack of the longest path.  The paper asks
for "an algorithm that tries to bring all objects close together as if
they were all connected by rubber bands".

We implement that second pass as a linear program: keep the bounding box
achieved by the first pass, re-solve positions minimising the total
misalignment of connected boxes (centre-to-centre |displacement| terms,
linearised with auxiliary variables).  The difference-constraint matrix
is totally unimodular, so the LP optimum is integral.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np
from scipy.optimize import linprog

from ..core.errors import InfeasibleConstraintsError
from .constraints import ConstraintSystem, Variable
from .scanline import CompactionBox

__all__ = ["alignment_pairs", "rubber_band_solve", "misalignment"]


def alignment_pairs(
    boxes: Sequence[CompactionBox],
) -> List[Tuple[CompactionBox, CompactionBox]]:
    """Pairs of drawn-connected boxes whose centres want to align."""
    pairs = []
    for i, a in enumerate(boxes):
        for b in boxes[i + 1:]:
            if a.layer == b.layer and a.box.overlaps(b.box):
                pairs.append((a, b))
    return pairs


def misalignment(
    pairs: Sequence[Tuple[CompactionBox, CompactionBox]],
    solution: Dict[Variable, int],
) -> int:
    """Total centre-to-centre x misalignment over connected pairs.

    Uses doubled centres to stay on the integer grid.  Zero for a
    perfectly jog-free solution of aligned pairs.
    """
    total = 0
    for a, b in pairs:
        center_a = solution[a.left] + solution[a.right]
        center_b = solution[b.left] + solution[b.right]
        drawn_a = a.box.xmin + a.box.xmax
        drawn_b = b.box.xmin + b.box.xmax
        total += abs((center_a - center_b) - (drawn_a - drawn_b))
    return total


def rubber_band_solve(
    system: ConstraintSystem,
    boxes: Sequence[CompactionBox],
    max_width: int,
    pairs: Optional[Sequence[Tuple[CompactionBox, CompactionBox]]] = None,
    solver: Optional[str] = None,
) -> Dict[Variable, int]:
    """Minimise connected-pair misalignment within ``max_width``.

    Subject to every constraint in ``system`` plus ``0 <= x <= max_width``
    for all variables.  Preserves the bounding box of the greedy solve
    while removing the jogs it introduced.  ``solver`` names the
    longest-path backend used to repair integer rounding: when the
    rounded LP optimum violates a constraint, the backend re-relaxes
    from the rounded point (hint-seeded solve) and the repair is kept if
    it stays inside ``max_width``.
    """
    if system.has_pitch_terms():
        raise InfeasibleConstraintsError(
            "rubber-band pass does not handle symbolic pitches"
        )
    if pairs is None:
        pairs = alignment_pairs(boxes)

    index = {name: i for i, name in enumerate(system.variables)}
    num_x = len(system.variables)
    num_t = len(pairs)
    num_vars = num_x + num_t

    rows: List[np.ndarray] = []
    rhs: List[float] = []
    # Difference constraints: x[s] - x[t] <= -w.
    for constraint in system.constraints:
        row = np.zeros(num_vars)
        row[index[constraint.source]] = 1.0
        row[index[constraint.target]] = -1.0
        rows.append(row)
        rhs.append(-float(constraint.weight))
    # |d_k - drawn_k| <= t_k where d_k = (l_a + r_a) - (l_b + r_b).
    for k, (a, b) in enumerate(pairs):
        drawn = float((a.box.xmin + a.box.xmax) - (b.box.xmin + b.box.xmax))
        for sign in (1.0, -1.0):
            row = np.zeros(num_vars)
            row[index[a.left]] = sign
            row[index[a.right]] = sign
            row[index[b.left]] = -sign
            row[index[b.right]] = -sign
            row[num_x + k] = -1.0
            rows.append(row)
            rhs.append(sign * drawn)

    cost = np.zeros(num_vars)
    cost[num_x:] = 1.0
    # Mild leftward pressure keeps the solution canonical when several
    # jog-free placements exist.
    cost[:num_x] = 1e-6

    bounds = [(0.0, float(max_width))] * num_x + [(0.0, None)] * num_t
    result = linprog(
        cost,
        A_ub=np.array(rows) if rows else None,
        b_ub=np.array(rhs) if rhs else None,
        bounds=bounds,
        method="highs",
    )
    if not result.success:
        raise InfeasibleConstraintsError(f"rubber-band LP failed: {result.message}")
    solution = {
        name: int(round(result.x[index[name]])) for name in system.variables
    }
    violated = system.check(solution)
    if violated:
        # Repair: least feasible point at or above the rounded one.
        from .solvers import get_solver  # deferred: solvers import siblings

        repaired = get_solver(solver).solve(system, hint=solution).solution
        if max(repaired.values(), default=0) > max_width:
            raise InfeasibleConstraintsError(
                f"rubber-band rounding violated {len(violated)} constraint(s)"
                " and the repair exceeded the width limit"
            )
        return repaired
    return solution
