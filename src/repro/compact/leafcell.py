"""Leaf-cell compaction with pitch variables (sections 6.1-6.3).

A *leaf cell compactor* compacts cells from a library "while taking into
account how the cells in the library may potentially interface
together": the unknowns are the edge abscissas of every leaf cell plus
one pitch variable lambda per interface.  An inter-cell constraint
between an edge of A and an edge of B placed at pitch lambda becomes

    (x_v + lambda) - x_u >= w      i.e.      x_v - x_u >= w - lambda

— a linear constraint with a pitch term, so the system "cannot be solved
by shortest path algorithms" (section 6.3) and goes to a linear program
minimising a cost that "should depend essentially on the lambdas and to
a much lesser extent on the physical sizes of the cells themselves"
(section 6.2).

All instances of a cell share one set of variables, so after compaction
every instance has identical geometry — the defining property (and
documented restriction) of leaf-cell compaction.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from itertools import product
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np
from scipy.optimize import linprog

from ..core.cell import CellDefinition
from ..core.errors import CompactionError, InfeasibleConstraintsError
from ..core.interface import Interface
from ..core.operators import Rsg
from ..geometry import Box, NORTH, Vec2
from .constraints import Constraint, ConstraintSystem
from .drc import Violation, check_layout
from .rules import DesignRules
from .scanline import (
    CompactionBox,
    add_width_constraints,
    build_edge_variables,
    visibility_constraints,
)
from .solvers import DEFAULT_SOLVER, get_solver

__all__ = ["PitchCost", "LeafCellResult", "LeafCellCompactor", "pitch_name"]


def pitch_name(cell_a: str, cell_b: str, index: int) -> str:
    """Canonical pitch-variable name for an interface triple."""
    return f"lam[{cell_a},{cell_b},{index}]"


@dataclass
class PitchCost:
    """The user-supplied cost function of section 6.2.

    ``weights`` carries the expected replication factor of each pitch
    (``n`` and ``m`` of Figure 6.1); pitches not listed get
    ``default_weight``.  ``size_weight`` is the small epsilon applied to
    every edge abscissa so cell sizes matter "to a much lesser extent".
    """

    weights: Dict[str, float] = field(default_factory=dict)
    default_weight: float = 1.0
    size_weight: float = 1e-3

    def weight(self, pitch: str) -> float:
        """Cost-function weight of one pitch variable."""
        return self.weights.get(pitch, self.default_weight)


@dataclass
class LeafCellResult:
    """Outcome of a leaf-cell compaction run."""

    cells: Dict[str, CellDefinition] = field(default_factory=dict)
    pitches: Dict[str, int] = field(default_factory=dict)
    interfaces: Dict[Tuple[str, str, int], Interface] = field(default_factory=dict)
    edge_positions: Dict[str, int] = field(default_factory=dict)
    variable_count: int = 0
    naive_variable_count: int = 0
    constraint_count: int = 0
    cost: float = 0.0


class LeafCellCompactor:
    """Compacts a cell library against its interface table (x axis)."""

    def __init__(
        self,
        rsg: Rsg,
        rules: DesignRules,
        width_mode: str = "min",
        solver: Optional[str] = None,
    ) -> None:
        """``solver`` names the longest-path backend used for the integer
        rounding search (``"incremental"`` pays off there: the candidate
        loop re-solves the same system at nearby pitch values)."""
        self.rsg = rsg
        self.rules = rules
        self.width_mode = width_mode
        self.solver = get_solver(solver)
        self.solver_name = solver or DEFAULT_SOLVER
        self.system = ConstraintSystem()
        self._cell_boxes: Dict[str, List[CompactionBox]] = {}
        #: cache-key snapshots taken at registration time:
        #: name -> (geometry fingerprint, frozen, sizing)
        self._cell_meta: Dict[str, Tuple[str, bool, Optional[Tuple]]] = {}
        self._interface_keys: List[Tuple[str, str, int]] = []
        #: (fingerprint_a, fingerprint_b, index, vx, vy, r, k) snapshots
        self._interface_meta: List[Tuple] = []
        self._frozen: List[str] = []

    # ------------------------------------------------------------------
    # System construction
    # ------------------------------------------------------------------
    def add_cell(
        self,
        name: str,
        frozen: bool = False,
        sizing: Optional[Dict[str, int]] = None,
    ) -> List[CompactionBox]:
        """Register a leaf cell: edge variables plus intra-cell constraints.

        ``frozen`` pins the cell's geometry exactly (the "critical parts
        of the layout such as sense amplifiers which must be left
        unchanged" of section 6.4.1).  ``sizing`` maps a layer name to a
        minimum width applied to this cell's boxes of that layer (device
        and bus sizing).
        """
        if name in self._cell_boxes:
            return self._cell_boxes[name]
        cell = self.rsg.cells.lookup(name)
        # Fingerprint *now*: the constraints below snapshot this
        # geometry, so the cache key must describe the registered state,
        # not whatever the workspace holds at solve() time.
        from .cache import fingerprint_cell

        self._cell_meta[name] = (
            fingerprint_cell(cell),
            frozen,
            tuple(sorted(sizing.items())) if sizing else None,
        )
        pairs = [(item.layer, item.box) for item in cell.boxes]
        if not pairs:
            raise CompactionError(f"cell {name!r} has no boxes to compact")
        tags = [name] * len(pairs)
        _, boxes = build_edge_variables(
            pairs, self.system, prefix=f"{name}/b", tags=tags
        )
        self._cell_boxes[name] = boxes
        if frozen:
            self._frozen.append(name)
            anchor = boxes[0]
            for item in boxes:
                self.system.require_equal(
                    anchor.left, item.left, item.box.xmin - anchor.box.xmin
                )
                self.system.require_equal(
                    anchor.left, item.right, item.box.xmax - anchor.box.xmin
                )
            return boxes
        sizing_map = (
            {(name, layer): width for layer, width in sizing.items()}
            if sizing
            else None
        )
        add_width_constraints(
            self.system, boxes, self.rules, mode=self.width_mode, sizing=sizing_map
        )
        visibility_constraints(self.system, boxes, self.rules)
        return boxes

    def add_interface(self, cell_a: str, cell_b: str, index: int) -> str:
        """Register an interface: a pitch variable plus folded inter-cell
        constraints (the Figure 6.3 construction).

        The interface must have orientation North (the x-compactor's
        restriction); both endpoint cells must be registered first.
        """
        interface = self.rsg.interfaces.lookup(cell_a, cell_b, index)
        if interface.orientation != NORTH:
            raise CompactionError(
                "leaf-cell x compaction handles North-oriented interfaces"
                f" only; ({cell_a},{cell_b},{index}) is"
                f" {interface.orientation.name}"
            )
        for name in (cell_a, cell_b):
            if name not in self._cell_boxes:
                self.add_cell(name)
        pitch = pitch_name(cell_a, cell_b, index)
        self.system.add_pitch(pitch)
        self._interface_keys.append((cell_a, cell_b, index))
        self._interface_meta.append(
            (
                self._cell_meta[cell_a][0],
                self._cell_meta[cell_b][0],
                index,
                interface.vector.x,
                interface.vector.y,
                interface.orientation.r,
                interface.orientation.k,
            )
        )
        self._fold_interface_constraints(cell_a, cell_b, interface, pitch)
        return pitch

    def _fold_interface_constraints(
        self, cell_a: str, cell_b: str, interface: Interface, pitch: str
    ) -> None:
        """Generate constraints between the two instances of the example
        placement and fold the B instance's x offset into the pitch
        variable.
        """
        offset = interface.vector
        boxes_a = self._cell_boxes[cell_a]
        boxes_b = self._cell_boxes[cell_b]
        scratch = ConstraintSystem()
        combined: List[CompactionBox] = []
        # Instance 0 of A at the origin; instance 1 of B at the example
        # pitch.  Scratch variables are per-instance so the scanner can
        # run; the mapping carries (real variable, is-instance-1).
        mapping: Dict[str, Tuple[str, bool]] = {}
        for which, (boxes, shift, shifted) in enumerate(
            ((boxes_a, Vec2(0, 0), False), (boxes_b, offset, True))
        ):
            for position, item in enumerate(boxes):
                left = scratch.add_variable(
                    f"i{which}.{position}.l", initial=item.box.xmin + shift.x
                )
                right = scratch.add_variable(
                    f"i{which}.{position}.r", initial=item.box.xmax + shift.x
                )
                mapping[left] = (item.left, shifted)
                mapping[right] = (item.right, shifted)
                combined.append(
                    CompactionBox(
                        item.layer, item.box.translated(shift), left, right, item.tag
                    )
                )
        visibility_constraints(scratch, combined, self.rules)
        for constraint in scratch.constraints:
            source, source_shifted = mapping[constraint.source]
            target, target_shifted = mapping[constraint.target]
            if source_shifted == target_shifted:
                # Intra-instance constraint: already covered by add_cell.
                continue
            # x'_t - x'_s >= w with x' = x + lambda on the shifted side.
            coefficient = (1 if source_shifted else 0) - (
                1 if target_shifted else 0
            )
            self.system.add(
                source,
                target,
                constraint.weight,
                pitch_terms=((pitch, coefficient),),
                kind="inter:" + constraint.kind,
            )

    # ------------------------------------------------------------------
    # Solving
    # ------------------------------------------------------------------
    def solve(self, cost: Optional[PitchCost] = None, cache=None) -> LeafCellResult:
        """Minimise the pitch cost by linear programming, round pitches
        to integers, re-solve edges exactly, and rebuild the library.

        ``cache`` (a :class:`~repro.compact.cache.CompactionCache`)
        memoizes the whole solve under a content hash of the registered
        cells' geometry (with their frozen/sizing options), the
        registered interfaces, the rule tables, the width mode, the
        solver backend and the cost function — any change to one of
        those is a miss; ``cache=None`` is the uncached oracle.
        """
        cost = cost or PitchCost()
        key = None
        if cache is not None:
            key = self._cache_key(cost)
            cached = cache.get(key)
            if cached is not None:
                return cached
        variables = self.system.variables
        pitches = self.system.pitches
        index = {name: position for position, name in enumerate(variables)}
        pitch_index = {
            name: len(variables) + position for position, name in enumerate(pitches)
        }
        total = len(variables) + len(pitches)

        rows: List[np.ndarray] = []
        rhs: List[float] = []
        for constraint in self.system.constraints:
            row = np.zeros(total)
            row[index[constraint.source]] += 1.0
            row[index[constraint.target]] -= 1.0
            for pitch, coefficient in constraint.pitch_terms:
                row[pitch_index[pitch]] += coefficient
            rows.append(row)
            rhs.append(-float(constraint.weight))

        objective = np.full(total, cost.size_weight)
        for pitch in pitches:
            objective[pitch_index[pitch]] = cost.weight(pitch)

        result = linprog(
            objective,
            A_ub=np.array(rows) if rows else None,
            b_ub=np.array(rhs) if rhs else None,
            bounds=[(0.0, None)] * total,
            method="highs",
        )
        if not result.success:
            raise InfeasibleConstraintsError(
                f"leaf-cell LP infeasible: {result.message}"
            )
        fractional = {name: result.x[pitch_index[name]] for name in pitches}
        solved = self._integerise(fractional, cost)
        built = self._build_result(solved, cost)
        if cache is not None and key is not None:
            cache.put(key, built)
        return built

    def _cache_key(self, cost: PitchCost) -> str:
        """Content hash of everything that determines the solve outcome.

        Built from the snapshots recorded by ``add_cell`` /
        ``add_interface`` — the constraint system describes the geometry
        as registered, so the key must too (fingerprinting the live
        workspace here would let a post-registration mutation poison
        the cache).
        """
        from .cache import cache_key, fingerprint_rules

        return cache_key(
            "leafcell",
            [self._cell_meta[name] for name in self._cell_boxes],
            self._interface_meta,
            fingerprint_rules(self.rules),
            self.width_mode,
            self.solver_name,
            sorted(cost.weights.items()),
            cost.default_weight,
            cost.size_weight,
        )

    def _integerise(
        self, fractional: Dict[str, float], cost: PitchCost
    ) -> Tuple[Dict[str, int], Dict[str, int]]:
        """Find integral pitches near the LP optimum with a feasible
        integral edge assignment (Bellman-Ford at fixed pitches)."""
        names = list(fractional)
        if len(names) > 12:
            # Too many pitches to enumerate corners: round up (always
            # loosens replication constraints in practice) and verify.
            candidates = [tuple(-int(-fractional[n] // 1) for n in names)]
        else:
            floors = {n: int(np.floor(fractional[n] + 1e-9)) for n in names}
            options = [
                (floors[n],) if abs(fractional[n] - floors[n]) < 1e-9 else (
                    floors[n],
                    floors[n] + 1,
                )
                for n in names
            ]
            candidates = sorted(
                product(*options),
                key=lambda values: sum(
                    cost.weight(n) * v for n, v in zip(names, values)
                ),
            )
        for values in candidates:
            trial = dict(zip(names, values))
            try:
                stats = self.solver.solve(self.system, pitches=trial)
            except InfeasibleConstraintsError:
                continue
            return trial, stats.solution
        raise InfeasibleConstraintsError(
            "no integral pitch assignment near the LP optimum is feasible"
        )

    def _build_result(
        self,
        solved: Tuple[Dict[str, int], Dict[str, int]],
        cost: PitchCost,
    ) -> LeafCellResult:
        pitch_values, edges = solved
        result = LeafCellResult()
        result.pitches = pitch_values
        result.edge_positions = edges
        result.variable_count = len(self.system.variables) + len(self.system.pitches)
        result.naive_variable_count = 0
        result.constraint_count = len(self.system)
        result.cost = sum(
            cost.weight(name) * value for name, value in pitch_values.items()
        )
        for name, boxes in self._cell_boxes.items():
            cell = CellDefinition(name)
            original = self.rsg.cells.lookup(name)
            for item, layer_box in zip(boxes, original.boxes):
                cell.add_box(
                    item.layer,
                    edges[item.left],
                    layer_box.box.ymin,
                    edges[item.right],
                    layer_box.box.ymax,
                )
            for port in original.ports:
                cell.add_port(port.name, port.position.x, port.position.y, port.layer)
            result.cells[name] = cell
            # Two instances per interface would double-count: naive
            # variable count is per-instance edges of the example pairs.
        for cell_a, cell_b, index in self._interface_keys:
            old = self.rsg.interfaces.lookup(cell_a, cell_b, index)
            pitch = pitch_name(cell_a, cell_b, index)
            result.interfaces[(cell_a, cell_b, index)] = Interface(
                Vec2(result.pitches[pitch], old.vector.y), old.orientation
            )
            result.naive_variable_count += 2 * (
                len(self._cell_boxes[cell_a]) + len(self._cell_boxes[cell_b])
            )
        return result

    # ------------------------------------------------------------------
    # Verification
    # ------------------------------------------------------------------
    def verify(self, result: LeafCellResult) -> List[Violation]:
        """DRC every interface's example pair with the new geometry."""
        violations: List[Violation] = []
        for (cell_a, cell_b, index), interface in result.interfaces.items():
            layers: Dict[str, List[Box]] = {}
            for layer_box in result.cells[cell_a].boxes:
                layers.setdefault(layer_box.layer, []).append(layer_box.box)
            for layer_box in result.cells[cell_b].boxes:
                layers.setdefault(layer_box.layer, []).append(
                    layer_box.box.translated(interface.vector)
                )
            violations.extend(check_layout(layers, self.rules))
        return violations
