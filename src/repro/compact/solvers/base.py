"""Solver-backend contract, diagnostics, and registry.

A *solver backend* computes the least solution of a difference-constraint
system ``x[t] - x[s] >= w`` with every variable at least ``lower_bound``
— the longest-path problem of section 6.4.2.  Backends are
interchangeable through :class:`SolverBackend` and are looked up by name
in a process-wide registry, so callers (leaf-cell compactor, flat
compactor, rubber-band pass, CLI) select an algorithm without knowing
its implementation:

* ``bellman-ford`` — the paper's sorted-edge relaxation (the baseline);
* ``topological`` — O(V+E) longest path over the condensation of the
  constraint graph (exact on cyclic systems too);
* ``incremental`` — re-solve that reuses a prior solution and relaxes
  only the cone reachable from changed constraints.

The ``hint`` argument has one meaning for every backend: seed the
relaxation at ``max(hint[v], lower_bound)`` instead of ``lower_bound``
and return the least solution *at or above the hint*.  Passing no hint
returns the global least solution.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

from ...core.errors import InfeasibleConstraintsError, SolverConfigurationError
from ..constraints import ConstraintSystem, Variable

try:  # pragma: no cover - typing fallback for very old interpreters
    from typing import Protocol
except ImportError:  # pragma: no cover
    Protocol = object  # type: ignore[assignment]

__all__ = [
    "SolveStats",
    "SolverBackend",
    "resolve_weights",
    "register_solver",
    "get_solver",
    "available_solvers",
    "DEFAULT_SOLVER",
]

DEFAULT_SOLVER = "bellman-ford"


@dataclass
class SolveStats:
    """Diagnostics from a solver run.

    ``passes``/``relaxations`` count solver work (a *pass* is one sweep
    over the constraint list for Bellman-Ford; graph-order backends
    report the number of sweep-equivalents they needed).  ``reused`` is
    the number of variables an incremental re-solve kept from the prior
    solution without relaxation.
    """

    passes: int = 0
    relaxations: int = 0
    sorted_edges: bool = False
    solution: Dict[Variable, int] = field(default_factory=dict)
    backend: str = ""
    lower_bound: int = 0
    reused: int = 0

    def width(self) -> int:
        """Extent of the solved placement.

        The left wall of a compaction run is the solver's fixed
        ``lower_bound``, so the width is measured from that wall — not
        from ``min(solution)``, which can sit strictly above the wall
        after a hint-seeded or incremental re-solve (the affected cone
        may lift every variable off the wall).  For a fresh minimal
        solve some variable always rests on ``lower_bound`` and the two
        definitions agree.
        """
        if not self.solution:
            return 0
        low = min(min(self.solution.values()), self.lower_bound)
        return max(self.solution.values()) - low

    def __str__(self) -> str:
        name = self.backend or "solver"
        parts = [
            f"{name}: {len(self.solution)} vars",
            f"width {self.width()}",
            f"{self.passes} pass{'es' if self.passes != 1 else ''}",
            f"{self.relaxations} relaxations",
        ]
        if self.reused:
            parts.append(f"{self.reused} reused")
        return ", ".join(parts)

    def to_dict(self) -> Dict[str, object]:
        """The diagnostics as a JSON-ready dict (no variable solution).

        This is what rides on ``solver.solve`` trace spans and in
        machine-readable reports — counts and shape only; the solution
        mapping stays behind because it is large and non-serialisable
        (its keys are :class:`~repro.compact.constraints.Variable`).
        """
        return {
            "backend": self.backend,
            "passes": self.passes,
            "relaxations": self.relaxations,
            "sorted_edges": self.sorted_edges,
            "variables": len(self.solution),
            "width": self.width(),
            "lower_bound": self.lower_bound,
            "reused": self.reused,
        }


class SolverBackend(Protocol):
    """What the compaction layer requires of a solver implementation."""

    #: registry name, e.g. ``"bellman-ford"``
    name: str

    def solve(
        self,
        system: ConstraintSystem,
        sort_edges: bool = True,
        lower_bound: int = 0,
        pitches: Optional[Dict[str, int]] = None,
        hint: Optional[Dict[Variable, int]] = None,
    ) -> SolveStats:
        """Return the least solution of ``system`` (above ``hint``).

        Raises :class:`InfeasibleConstraintsError` on a positive cycle
        or on a symbolic pitch with no value in ``pitches``.
        """
        ...


def resolve_weights(
    system: ConstraintSystem, pitches: Optional[Dict[str, int]]
) -> List[int]:
    """Effective integer weight of each constraint at fixed pitches.

    Substitutes ``pitches`` into every pitch term, in constraint order.
    Raises :class:`InfeasibleConstraintsError` when a pitch variable has
    no value — symbolic pitches need the leaf-cell LP, not a
    longest-path backend.
    """
    pitches = pitches or {}
    weights: List[int] = []
    for constraint in system.constraints:
        bound = constraint.weight
        for pitch, coefficient in constraint.pitch_terms:
            if pitch not in pitches:
                raise InfeasibleConstraintsError(
                    f"pitch variable {pitch!r} has no value; use the"
                    " leaf-cell LP solver for symbolic pitches"
                )
            bound += coefficient * pitches[pitch]
        weights.append(bound)
    return weights


def seed_solution(
    system: ConstraintSystem,
    lower_bound: int,
    hint: Optional[Dict[Variable, int]],
) -> Dict[Variable, int]:
    """Initial variable assignment: ``max(hint, lower_bound)`` per variable."""
    if not hint:
        return {name: lower_bound for name in system.variables}
    return {
        name: max(hint.get(name, lower_bound), lower_bound)
        for name in system.variables
    }


# ----------------------------------------------------------------------
# Registry
# ----------------------------------------------------------------------
_REGISTRY: Dict[str, Callable[[], "SolverBackend"]] = {}


def register_solver(name: str, factory: Callable[[], "SolverBackend"]) -> None:
    """Register a backend factory under ``name`` (later wins)."""
    _REGISTRY[name] = factory


def get_solver(name: Optional[str] = None) -> "SolverBackend":
    """Instantiate the backend registered under ``name``.

    Each call returns a fresh instance, so stateful backends (the
    incremental re-solver caches the previous run) are private to their
    call site: hold on to the instance to benefit from its cache.
    """
    key = name or DEFAULT_SOLVER
    if key not in _REGISTRY:
        raise SolverConfigurationError(
            f"unknown solver backend {key!r}; available:"
            f" {', '.join(available_solvers())}"
        )
    return _REGISTRY[key]()


def available_solvers() -> Tuple[str, ...]:
    """Registered backend names, sorted."""
    return tuple(sorted(_REGISTRY))
