"""Incremental re-solve backend.

Workloads like the pitch-tradeoff sweep and the integer rounding search
of the leaf-cell compactor solve the *same* constraint system dozens of
times with only a handful of effective weights changed (a pitch value
moved by one).  A full Bellman-Ford run re-derives every variable from
scratch each time; this backend keeps the previous solution and relaxes
only the *cone* of variables reachable from the changed constraints.

Soundness of the reuse: a variable outside the cone has no constraint
path from any changed constraint, so every ancestor that determines its
least value is also outside the cone and unchanged — its previous value
is still both feasible and minimal.  Variables inside the cone are reset
to ``lower_bound`` and re-relaxed (Gauss-Seidel over their incoming
constraints, processed in prior-solution order so convergence is
near-single-pass), which handles weights that loosened as well as
weights that tightened.

The backend is stateful: hold one instance per solving loop (the
registry hands out a fresh instance per :func:`~.base.get_solver` call).
Without a cached run — or across different systems — it degrades to a
full worklist solve, so it is always safe to use.
"""

from __future__ import annotations

from collections import deque
from typing import Dict, List, Optional, Tuple

from ...core.errors import InfeasibleConstraintsError
from ..constraints import ConstraintSystem, Variable
from .base import SolveStats, register_solver, resolve_weights, seed_solution

__all__ = ["IncrementalSolver"]


class IncrementalSolver:
    """Cone-limited re-solve seeded from the previous solution."""

    name = "incremental"

    def __init__(self) -> None:
        self._system: Optional[ConstraintSystem] = None
        self._variable_count = 0
        self._constraint_count = 0
        self._lower_bound: Optional[int] = None
        self._weights: Optional[List[int]] = None
        self._values: Optional[List[int]] = None
        self._forward: List[List[int]] = []
        self._incoming: List[List[Tuple[int, int]]] = []

    # ------------------------------------------------------------------
    def solve(
        self,
        system: ConstraintSystem,
        sort_edges: bool = True,
        lower_bound: int = 0,
        pitches: Optional[Dict[str, int]] = None,
        hint: Optional[Dict[Variable, int]] = None,
    ) -> SolveStats:
        """Least solution, reusing the cached previous run when valid."""
        names = system.variables
        n = len(names)
        index = {name: position for position, name in enumerate(names)}
        weights = resolve_weights(system, pitches)
        self._ensure_adjacency(system, index, weights)

        cached = (
            hint is None
            and self._values is not None
            and self._weights is not None
            and self._lower_bound == lower_bound
        )
        if cached:
            previous = self._weights
            changed = [
                position
                for position, weight in enumerate(weights)
                if position >= len(previous) or weight != previous[position]
            ]
        else:
            changed = list(range(len(weights)))

        constraints = system.constraints
        affected = self._cone(
            n, [index[constraints[i].target] for i in changed]
        )
        if cached:
            base = list(self._values)
            for v in affected:
                base[v] = lower_bound
        else:
            seeds = seed_solution(system, lower_bound, hint)
            base = [seeds[name] for name in names]

        stats = SolveStats(
            sorted_edges=sort_edges, backend=self.name, lower_bound=lower_bound
        )
        stats.reused = n - len(affected)
        x = list(base)
        if affected:
            self._relax(system, index, weights, x, base, affected, sort_edges, stats)

        stats.solution = dict(zip(names, x))
        if hint is None:
            # A hinted solve is minimal only above its hint; caching it
            # would poison later cone reuse, so only unhinted runs are
            # remembered.
            self._lower_bound = lower_bound
            self._weights = weights
            self._values = x
        return stats

    # ------------------------------------------------------------------
    def _ensure_adjacency(
        self,
        system: ConstraintSystem,
        index: Dict[Variable, int],
        weights: List[int],
    ) -> None:
        """(Re)build adjacency and drop the cache when the system changed shape."""
        n = len(system.variables)
        fresh = (
            self._system is not system
            or self._variable_count != n
            or self._constraint_count != len(system.constraints)
        )
        if not fresh:
            return
        # Any change of shape voids the cached solution; the win this
        # backend targets is same-shape re-solves with new weights.
        self._weights = None
        self._values = None
        forward: List[List[int]] = [[] for _ in range(n)]
        incoming: List[List[Tuple[int, int]]] = [[] for _ in range(n)]
        for position, constraint in enumerate(system.constraints):
            source = index[constraint.source]
            target = index[constraint.target]
            forward[source].append(target)
            incoming[target].append((source, position))
        self._system = system
        self._variable_count = n
        self._constraint_count = len(system.constraints)
        self._forward = forward
        self._incoming = incoming

    def _cone(self, n: int, roots: List[int]) -> List[int]:
        """Vertices reachable from ``roots`` along constraint edges."""
        forward = self._forward
        marked = [False] * n
        queue = deque()
        for root in roots:
            if not marked[root]:
                marked[root] = True
                queue.append(root)
        cone: List[int] = []
        while queue:
            v = queue.popleft()
            cone.append(v)
            for successor in forward[v]:
                if not marked[successor]:
                    marked[successor] = True
                    queue.append(successor)
        return cone

    def _relax(
        self,
        system: ConstraintSystem,
        index: Dict[Variable, int],
        weights: List[int],
        x: List[int],
        base: List[int],
        affected: List[int],
        sort_edges: bool,
        stats: SolveStats,
    ) -> None:
        """Gauss-Seidel over the affected cone's incoming constraints."""
        names = system.variables
        incoming = self._incoming
        forward = self._forward
        in_cone = [False] * len(x)
        for v in affected:
            in_cone[v] = True
        if sort_edges:
            previous = self._values
            if previous is not None and len(previous) == len(x):
                order_key = previous
            else:
                order_key = [system.initial.get(name, 0) for name in names]
            ordered = sorted(affected, key=lambda v: order_key[v])
        else:
            ordered = list(affected)

        queue = deque(ordered)
        queued = [False] * len(x)
        for v in ordered:
            queued[v] = True
        pops = [0] * len(x)
        limit = len(affected) + 1
        relaxations = 0
        total_pops = 0
        while queue:
            v = queue.popleft()
            queued[v] = False
            pops[v] += 1
            total_pops += 1
            if pops[v] > limit:
                self._weights = None
                self._values = None
                raise InfeasibleConstraintsError(
                    "positive cycle: the constraint system is overconstrained"
                )
            value = base[v]
            for source, position in incoming[v]:
                candidate = x[source] + weights[position]
                if candidate > value:
                    value = candidate
            if value > x[v]:
                x[v] = value
                relaxations += 1
                for successor in forward[v]:
                    if in_cone[successor] and not queued[successor]:
                        queued[successor] = True
                        queue.append(successor)
        stats.relaxations = relaxations
        stats.passes = max(1, -(-total_pops // max(1, len(affected))))


register_solver(IncrementalSolver.name, IncrementalSolver)
