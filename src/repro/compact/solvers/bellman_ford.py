"""The paper's sorted-edge Bellman-Ford backend (section 6.4.2).

Relaxes the full constraint list pass after pass until a fixpoint.
Bamji: the algorithm "proved to be extremely fast, especially if the
edges are traversed in sorted (according to their abscissa) order" —
when the drawn edge ordering survives compaction, exactly one productive
pass suffices and a second pass confirms the fixpoint.  More than
``|V| + 1`` passes means a positive cycle: the system is infeasible.

This is the reference backend: every other backend must reproduce its
solutions exactly.
"""

from __future__ import annotations

from typing import Dict, Optional

from ...core.errors import InfeasibleConstraintsError
from ..constraints import ConstraintSystem, Variable
from .base import SolveStats, register_solver, resolve_weights, seed_solution

__all__ = ["BellmanFordSolver"]


class BellmanFordSolver:
    """Pass-based relaxation over the (optionally sorted) edge list."""

    name = "bellman-ford"

    def solve(
        self,
        system: ConstraintSystem,
        sort_edges: bool = True,
        lower_bound: int = 0,
        pitches: Optional[Dict[str, int]] = None,
        hint: Optional[Dict[Variable, int]] = None,
    ) -> SolveStats:
        """Least solution by repeated relaxation passes."""
        weights = resolve_weights(system, pitches)
        constraints = list(zip(system.constraints, weights))
        if sort_edges:
            constraints.sort(key=lambda pair: system.initial.get(pair[0].source, 0))

        x = seed_solution(system, lower_bound, hint)
        stats = SolveStats(
            sorted_edges=sort_edges, backend=self.name, lower_bound=lower_bound
        )
        limit = len(system.variables) + 1
        while True:
            changed = False
            stats.passes += 1
            for constraint, bound in constraints:
                candidate = x[constraint.source] + bound
                if candidate > x[constraint.target]:
                    x[constraint.target] = candidate
                    stats.relaxations += 1
                    changed = True
            if not changed:
                break
            if stats.passes > limit:
                raise InfeasibleConstraintsError(
                    "positive cycle: the constraint system is overconstrained"
                )
        stats.solution = x
        return stats


register_solver(BellmanFordSolver.name, BellmanFordSolver)
