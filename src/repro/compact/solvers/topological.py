"""Topological-order longest-path backend.

The constraint graphs the scanline generator emits are acyclic in the
common case (every spacing/width/connection constraint points from a
left edge to a right edge), so the least solution is a single dynamic-
programming sweep in topological order — O(V + E), no repeated passes,
and integer-indexed adjacency instead of per-pass dict traffic.

Cycles do occur: ``require_equal`` (frozen cells) and ``preserve`` width
mode emit opposite-direction constraint pairs.  Those cycles always live
inside strongly connected components, so the backend falls back to an
exact condensation sweep: Tarjan's algorithm finds the components, the
component DAG is processed in topological order, and each non-trivial
component is relaxed to its local fixpoint (bounded by the component
size — exceeding it proves a positive cycle).  Cost is
O(V + E + sum |C_i| * |E_i|) over components, which stays linear when
components are the small rigid clusters compaction produces.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from ...core.errors import InfeasibleConstraintsError
from ..constraints import ConstraintSystem, Variable
from .base import SolveStats, register_solver, resolve_weights, seed_solution

__all__ = ["TopologicalSolver"]


class TopologicalSolver:
    """DAG dynamic programming with an exact SCC-condensation fallback."""

    name = "topological"

    def solve(
        self,
        system: ConstraintSystem,
        sort_edges: bool = True,
        lower_bound: int = 0,
        pitches: Optional[Dict[str, int]] = None,
        hint: Optional[Dict[Variable, int]] = None,
    ) -> SolveStats:
        """Least solution in one sweep of the condensation order.

        ``sort_edges`` is accepted for interface compatibility; the
        processing order here is graph-derived, not abscissa-derived.
        """
        names = system.variables
        n = len(names)
        index = {name: position for position, name in enumerate(names)}
        weights = resolve_weights(system, pitches)

        adjacency: List[List[Tuple[int, int]]] = [[] for _ in range(n)]
        indegree = [0] * n
        for constraint, weight in zip(system.constraints, weights):
            source = index[constraint.source]
            target = index[constraint.target]
            adjacency[source].append((target, weight))
            indegree[target] += 1

        seeds = seed_solution(system, lower_bound, hint)
        seed = [seeds[name] for name in names]

        stats = SolveStats(
            sorted_edges=False, backend=self.name, lower_bound=lower_bound
        )

        # Fast path: Kahn's sweep doubling as the DP.  A vertex is
        # popped only once every incoming edge has been relaxed, so its
        # value is final at pop time.
        x = list(seed)
        remaining = list(indegree)
        stack = [v for v in range(n) if remaining[v] == 0]
        processed = 0
        relaxations = 0
        while stack:
            u = stack.pop()
            processed += 1
            value = x[u]
            for target, weight in adjacency[u]:
                candidate = value + weight
                if candidate > x[target]:
                    x[target] = candidate
                    relaxations += 1
                remaining[target] -= 1
                if remaining[target] == 0:
                    stack.append(target)
        if processed == n:
            stats.passes = 1
            stats.relaxations = relaxations
            stats.solution = dict(zip(names, x))
            return stats

        # Cyclic system: exact sweep over the condensation.
        x, passes, relaxations = self._solve_condensation(
            n, adjacency, seed
        )
        stats.backend = f"{self.name}+scc"
        stats.passes = passes
        stats.relaxations = relaxations
        stats.solution = dict(zip(names, x))
        return stats

    # ------------------------------------------------------------------
    def _solve_condensation(
        self,
        n: int,
        adjacency: List[List[Tuple[int, int]]],
        seed: List[int],
    ) -> Tuple[List[int], int, int]:
        components = _tarjan_components(n, adjacency)
        component_of = [0] * n
        for cid, members in enumerate(components):
            for v in members:
                component_of[v] = cid

        x = list(seed)
        relaxations = 0
        worst_passes = 1
        # Tarjan emits components sinks-first; reverse for source-first
        # processing so every cross edge into a component is relaxed
        # before the component itself.
        for cid in range(len(components) - 1, -1, -1):
            members = components[cid]
            intra = [
                (u, target, weight)
                for u in members
                for target, weight in adjacency[u]
                if component_of[target] == cid
            ]
            if intra:
                limit = len(members) + 1
                passes = 0
                while True:
                    passes += 1
                    changed = False
                    for u, target, weight in intra:
                        candidate = x[u] + weight
                        if candidate > x[target]:
                            x[target] = candidate
                            relaxations += 1
                            changed = True
                    if not changed:
                        break
                    if passes > limit:
                        raise InfeasibleConstraintsError(
                            "positive cycle: the constraint system is"
                            " overconstrained"
                        )
                worst_passes = max(worst_passes, passes)
            # Component solved; push its values across outgoing edges.
            for u in members:
                value = x[u]
                for target, weight in adjacency[u]:
                    if component_of[target] == cid:
                        continue
                    candidate = value + weight
                    if candidate > x[target]:
                        x[target] = candidate
                        relaxations += 1
        return x, worst_passes, relaxations


def _tarjan_components(
    n: int, adjacency: List[List[Tuple[int, int]]]
) -> List[List[int]]:
    """Strongly connected components, emitted sinks-first (iterative)."""
    order = [-1] * n
    low = [0] * n
    on_stack = [False] * n
    stack: List[int] = []
    components: List[List[int]] = []
    counter = 0

    for root in range(n):
        if order[root] != -1:
            continue
        work: List[Tuple[int, int]] = [(root, 0)]
        while work:
            v, edge_position = work[-1]
            if edge_position == 0:
                order[v] = low[v] = counter
                counter += 1
                stack.append(v)
                on_stack[v] = True
            descended = False
            out = adjacency[v]
            for position in range(edge_position, len(out)):
                successor = out[position][0]
                if order[successor] == -1:
                    work[-1] = (v, position + 1)
                    work.append((successor, 0))
                    descended = True
                    break
                if on_stack[successor]:
                    if order[successor] < low[v]:
                        low[v] = order[successor]
            if descended:
                continue
            work.pop()
            if work:
                parent = work[-1][0]
                if low[v] < low[parent]:
                    low[parent] = low[v]
            if low[v] == order[v]:
                component = []
                while True:
                    member = stack.pop()
                    on_stack[member] = False
                    component.append(member)
                    if member == v:
                        break
                components.append(component)
    return components


register_solver(TopologicalSolver.name, TopologicalSolver)
