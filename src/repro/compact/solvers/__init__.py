"""Pluggable longest-path solver backends for the compactor.

Importing this package registers the built-in backends:

* ``bellman-ford`` — :class:`~repro.compact.solvers.bellman_ford.BellmanFordSolver`,
  the paper's sorted-edge relaxation (reference semantics);
* ``topological`` — :class:`~repro.compact.solvers.topological.TopologicalSolver`,
  O(V+E) condensation sweep for the (usually acyclic) constraint graph;
* ``incremental`` — :class:`~repro.compact.solvers.incremental.IncrementalSolver`,
  cone-limited re-solve for repeated near-identical systems.

Select one by name through :func:`get_solver` or any of the ``solver=``
parameters threaded through the compaction layer; register custom
backends with :func:`register_solver`.
"""

from .base import (
    DEFAULT_SOLVER,
    SolveStats,
    SolverBackend,
    available_solvers,
    get_solver,
    register_solver,
    resolve_weights,
)
from .bellman_ford import BellmanFordSolver
from .incremental import IncrementalSolver
from .topological import TopologicalSolver

__all__ = [
    "DEFAULT_SOLVER",
    "SolveStats",
    "SolverBackend",
    "available_solvers",
    "get_solver",
    "register_solver",
    "resolve_weights",
    "BellmanFordSolver",
    "IncrementalSolver",
    "TopologicalSolver",
]
