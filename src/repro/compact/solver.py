"""Constraint-system solving by Bellman-Ford longest path (section 6.4.2).

The minimal solution of ``x[t] - x[s] >= w`` with ``x >= 0`` is the
longest path from a virtual source; Bellman-Ford relaxation converges in
at most |V| passes and "proved to be extremely fast, especially if the
edges are traversed in sorted (according to their abscissa) order": when
the initial edge ordering survives compaction, exactly one productive
pass suffices.  Positive cycles mean the constraints are infeasible.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from ..core.errors import InfeasibleConstraintsError
from .constraints import ConstraintSystem, Variable

__all__ = ["SolveStats", "solve_longest_path"]


@dataclass
class SolveStats:
    """Diagnostics from a Bellman-Ford run."""

    passes: int = 0
    relaxations: int = 0
    sorted_edges: bool = False
    solution: Dict[Variable, int] = field(default_factory=dict)

    def width(self) -> int:
        if not self.solution:
            return 0
        return max(self.solution.values()) - min(self.solution.values())


def solve_longest_path(
    system: ConstraintSystem,
    sort_edges: bool = True,
    lower_bound: int = 0,
    pitches: Optional[Dict[str, int]] = None,
) -> SolveStats:
    """Solve for the least solution with every variable >= lower_bound.

    ``pitches`` substitutes fixed values for pitch variables so that a
    leaf-cell system can be solved for given pitches (used to explore
    the tradeoff curves of section 6.2).  Raises
    :class:`InfeasibleConstraintsError` on a positive cycle.
    """
    pitches = pitches or {}
    constraints = list(system.constraints)
    if sort_edges:
        constraints.sort(key=lambda c: system.initial.get(c.source, 0))

    weight: List[int] = []
    for constraint in constraints:
        bound = constraint.weight
        for pitch, coefficient in constraint.pitch_terms:
            if pitch not in pitches:
                raise InfeasibleConstraintsError(
                    f"pitch variable {pitch!r} has no value; use the"
                    " leaf-cell LP solver for symbolic pitches"
                )
            bound += coefficient * pitches[pitch]
        weight.append(bound)

    x: Dict[Variable, int] = {name: lower_bound for name in system.variables}
    stats = SolveStats(sorted_edges=sort_edges)
    limit = len(system.variables) + 1
    while True:
        changed = False
        stats.passes += 1
        for constraint, bound in zip(constraints, weight):
            candidate = x[constraint.source] + bound
            if candidate > x[constraint.target]:
                x[constraint.target] = candidate
                stats.relaxations += 1
                changed = True
        if not changed:
            break
        if stats.passes > limit:
            raise InfeasibleConstraintsError(
                "positive cycle: the constraint system is overconstrained"
            )
    stats.solution = x
    return stats
