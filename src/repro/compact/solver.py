"""Constraint-system solving entry point (section 6.4.2).

The minimal solution of ``x[t] - x[s] >= w`` with ``x >= lower_bound``
is the longest path from a virtual source; positive cycles mean the
constraints are infeasible.  The actual algorithms live in
:mod:`repro.compact.solvers` as pluggable backends — the paper's
sorted-edge Bellman-Ford (the default here), a topological-order
longest-path sweep, and an incremental re-solver.  This module keeps the
original single-call interface as a thin wrapper over the registry.
"""

from __future__ import annotations

from typing import Dict, Optional

from .constraints import ConstraintSystem, Variable
from .solvers import SolveStats, get_solver

__all__ = ["SolveStats", "solve_longest_path"]


def solve_longest_path(
    system: ConstraintSystem,
    sort_edges: bool = True,
    lower_bound: int = 0,
    pitches: Optional[Dict[str, int]] = None,
    solver: Optional[str] = None,
    hint: Optional[Dict[Variable, int]] = None,
) -> SolveStats:
    """Solve for the least solution with every variable >= lower_bound.

    ``pitches`` substitutes fixed values for pitch variables so that a
    leaf-cell system can be solved for given pitches (used to explore
    the tradeoff curves of section 6.2).  ``solver`` names a registered
    backend (default ``"bellman-ford"``); ``hint`` seeds the relaxation,
    returning the least solution at or above the hint.  Raises
    :class:`InfeasibleConstraintsError` on a positive cycle and
    :class:`SolverConfigurationError` on an unknown backend name.
    """
    backend = get_solver(solver)
    return backend.solve(
        system,
        sort_edges=sort_edges,
        lower_bound=lower_bound,
        pitches=pitches,
        hint=hint,
    )
