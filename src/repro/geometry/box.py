"""Axis-aligned integer boxes, the primitive mask geometry of the RSG.

Cells consist of boxes of various layers (paper section 2.1).  Boxes are
normalised so ``xmin <= xmax`` and ``ymin <= ymax``; a zero-area box is
legal (it degenerates to a segment or point, useful for ports).
"""

from __future__ import annotations

from typing import Tuple

from .orientation import Orientation
from .vector import Vec2

__all__ = ["Box"]


class Box:
    """An immutable axis-aligned rectangle ``[xmin, xmax] x [ymin, ymax]``."""

    __slots__ = ("xmin", "ymin", "xmax", "ymax")

    def __init__(self, xmin: int, ymin: int, xmax: int, ymax: int) -> None:
        xmin, xmax = (int(xmin), int(xmax)) if xmin <= xmax else (int(xmax), int(xmin))
        ymin, ymax = (int(ymin), int(ymax)) if ymin <= ymax else (int(ymax), int(ymin))
        object.__setattr__(self, "xmin", xmin)
        object.__setattr__(self, "ymin", ymin)
        object.__setattr__(self, "xmax", xmax)
        object.__setattr__(self, "ymax", ymax)

    def __setattr__(self, name: str, value) -> None:
        raise AttributeError("Box is immutable")

    # ------------------------------------------------------------------
    # Construction helpers
    # ------------------------------------------------------------------
    @classmethod
    def from_corners(cls, a: Vec2, b: Vec2) -> "Box":
        return cls(a.x, a.y, b.x, b.y)

    @classmethod
    def from_size(cls, origin: Vec2, width: int, height: int) -> "Box":
        return cls(origin.x, origin.y, origin.x + width, origin.y + height)

    # ------------------------------------------------------------------
    # Measures
    # ------------------------------------------------------------------
    @property
    def width(self) -> int:
        return self.xmax - self.xmin

    @property
    def height(self) -> int:
        return self.ymax - self.ymin

    @property
    def area(self) -> int:
        return self.width * self.height

    def center2x(self) -> Tuple[int, int]:
        """Doubled center coordinates (exact on the integer grid)."""
        return (self.xmin + self.xmax, self.ymin + self.ymax)

    # ------------------------------------------------------------------
    # Predicates
    # ------------------------------------------------------------------
    def contains_point(self, p: Vec2) -> bool:
        return self.xmin <= p.x <= self.xmax and self.ymin <= p.y <= self.ymax

    def contains_box(self, other: "Box") -> bool:
        return (
            self.xmin <= other.xmin
            and self.ymin <= other.ymin
            and other.xmax <= self.xmax
            and other.ymax <= self.ymax
        )

    def overlaps(self, other: "Box") -> bool:
        """True when the closed rectangles share interior or boundary."""
        return (
            self.xmin <= other.xmax
            and other.xmin <= self.xmax
            and self.ymin <= other.ymax
            and other.ymin <= self.ymax
        )

    def overlaps_open(self, other: "Box") -> bool:
        """True when the rectangles share positive-area interior."""
        return (
            self.xmin < other.xmax
            and other.xmin < self.xmax
            and self.ymin < other.ymax
            and other.ymin < self.ymax
        )

    # ------------------------------------------------------------------
    # Combination and transformation
    # ------------------------------------------------------------------
    def union(self, other: "Box") -> "Box":
        return Box(
            min(self.xmin, other.xmin),
            min(self.ymin, other.ymin),
            max(self.xmax, other.xmax),
            max(self.ymax, other.ymax),
        )

    def intersection(self, other: "Box") -> "Box | None":
        """Return the overlap box, or None when disjoint."""
        xmin = max(self.xmin, other.xmin)
        ymin = max(self.ymin, other.ymin)
        xmax = min(self.xmax, other.xmax)
        ymax = min(self.ymax, other.ymax)
        if xmin > xmax or ymin > ymax:
            return None
        return Box(xmin, ymin, xmax, ymax)

    def translated(self, by: Vec2) -> "Box":
        return Box(self.xmin + by.x, self.ymin + by.y, self.xmax + by.x, self.ymax + by.y)

    def transformed(self, orientation: Orientation, offset: Vec2 = Vec2(0, 0)) -> "Box":
        """Apply an orientation about the origin, then translate.

        This is exactly the instance-call semantics of section 2.1: the
        isometry leaves the cell origin fixed, then the origin is placed at
        the point of call.
        """
        x0, y0 = orientation.apply(self.xmin, self.ymin)
        x1, y1 = orientation.apply(self.xmax, self.ymax)
        return Box(x0 + offset.x, y0 + offset.y, x1 + offset.x, y1 + offset.y)

    def grown(self, margin: int) -> "Box":
        """Return the box expanded by ``margin`` on every side."""
        return Box(
            self.xmin - margin, self.ymin - margin, self.xmax + margin, self.ymax + margin
        )

    def __eq__(self, other) -> bool:
        if not isinstance(other, Box):
            return NotImplemented
        return (
            self.xmin == other.xmin
            and self.ymin == other.ymin
            and self.xmax == other.xmax
            and self.ymax == other.ymax
        )

    def __hash__(self) -> int:
        return hash((self.xmin, self.ymin, self.xmax, self.ymax))

    def __reduce__(self):
        return (Box, (self.xmin, self.ymin, self.xmax, self.ymax))

    def __copy__(self):
        return self

    def __deepcopy__(self, memo):
        return self

    def __repr__(self) -> str:
        return f"Box({self.xmin}, {self.ymin}, {self.xmax}, {self.ymax})"
