"""The eight-element orientation group of the RSG (paper section 2.6).

The RSG deliberately restricts itself to the isometries of the plane that
map axis-parallel lines to axis-parallel lines: the four quarter-turn
rotations and the four reflections obtained by composing a reflection about
the y axis with a quarter-turn rotation.  This is the dihedral group D4.

Following the paper, an orientation is encoded as the pair ``(r, k)`` with
``r`` in Z4 and ``k`` a boolean, denoting the operator

    O = rot(r) o R^k

where ``R`` is the reflection about the y axis (``(x, y) -> (-x, y)``) and
``rot(r)`` is ``r`` counter-clockwise quarter turns.  The reflection, when
present, is applied *first* (the paper's ``e^{ij} o R^k`` convention).

The four rotations carry the paper's compass names (Figure 2.5):

==========  ===========================  =====================
name        coordinate mapping           meaning
==========  ===========================  =====================
``NORTH``   ``x -> x,   y -> y``         identity
``SOUTH``   ``x -> -x,  y -> -y``        half turn
``EAST``    ``x -> y,   y -> -x``        clockwise quarter
``WEST``    ``x -> -y,  y -> x``         counter-clockwise quarter
==========  ===========================  =====================

The reflected orientations are named ``FLIP_NORTH`` .. ``FLIP_WEST``
(reflect about y, then rotate).
"""

from __future__ import annotations

from typing import Iterator, Tuple

__all__ = [
    "Orientation",
    "NORTH",
    "EAST",
    "SOUTH",
    "WEST",
    "FLIP_NORTH",
    "FLIP_EAST",
    "FLIP_SOUTH",
    "FLIP_WEST",
    "ALL_ORIENTATIONS",
    "ROTATIONS",
    "REFLECTIONS",
]

# Counter-clockwise quarter turns assigned to the compass names used by the
# paper.  EAST is the *clockwise* quarter turn (three ccw quarters).
_NAME_TO_ROT = {"north": 0, "west": 1, "south": 2, "east": 3}
_ROT_TO_NAME = {value: key for key, value in _NAME_TO_ROT.items()}


class Orientation:
    """An element of the D4 orientation group, encoded ``(r, k)``.

    ``r`` is the number of counter-clockwise quarter turns (0..3) and ``k``
    indicates whether a reflection about the y axis is applied before the
    rotation.  Instances are immutable, hashable, and interned: there are
    only eight distinct objects.
    """

    __slots__ = ("r", "k")

    _cache: dict = {}

    def __new__(cls, r: int, k: int = 0) -> "Orientation":
        r = r % 4
        k = 1 if k else 0
        key = (r, k)
        cached = cls._cache.get(key)
        if cached is not None:
            return cached
        self = super().__new__(cls)
        object.__setattr__(self, "r", r)
        object.__setattr__(self, "k", k)
        cls._cache[key] = self
        return self

    def __setattr__(self, name: str, value) -> None:
        raise AttributeError("Orientation is immutable")

    # ------------------------------------------------------------------
    # Group operations (paper sections 2.6.1 and 2.6.2)
    # ------------------------------------------------------------------
    def compose(self, other: "Orientation") -> "Orientation":
        """Return ``self o other`` (apply ``other`` first, then ``self``).

        With ``self = rot(r2) R^{k2}`` and ``other = rot(r1) R^{k1}``, the
        identity ``R rot(r) = rot(-r) R`` gives

            self o other = rot(r2 + (-1)^{k2} r1) R^{k1 xor k2}
        """
        r1, k1 = other.r, other.k
        r2, k2 = self.r, self.k
        r = r2 - r1 if k2 else r2 + r1
        return Orientation(r, k1 ^ k2)

    def inverse(self) -> "Orientation":
        """Return the group inverse (paper section 2.6.1).

        Reflections are involutions (``O o O = I``) so they are their own
        inverse; rotations invert by negating the turn count.
        """
        if self.k:
            return self
        return Orientation(-self.r, 0)

    def __mul__(self, other: "Orientation") -> "Orientation":
        if not isinstance(other, Orientation):
            return NotImplemented
        return self.compose(other)

    # ------------------------------------------------------------------
    # Application to coordinates
    # ------------------------------------------------------------------
    def apply(self, x: int, y: int) -> Tuple[int, int]:
        """Apply the orientation to the point/vector ``(x, y)``.

        The reflection (if any) is applied first, then the rotation, per
        the ``rot(r) o R^k`` operator convention.
        """
        if self.k:
            x = -x
        r = self.r
        if r == 0:
            return (x, y)
        if r == 1:
            return (-y, x)
        if r == 2:
            return (-x, -y)
        return (y, -x)

    def matrix(self) -> Tuple[Tuple[int, int], Tuple[int, int]]:
        """Return the 2x2 integer matrix of the linear map (row-major)."""
        cx = self.apply(1, 0)
        cy = self.apply(0, 1)
        return ((cx[0], cy[0]), (cx[1], cy[1]))

    @property
    def is_reflection(self) -> bool:
        """True when the orientation reverses handedness."""
        return bool(self.k)

    @property
    def is_rotation(self) -> bool:
        """True for the four pure rotations (including identity)."""
        return not self.k

    @property
    def is_identity(self) -> bool:
        return self.r == 0 and self.k == 0

    def swaps_axes(self) -> bool:
        """True when vertical edges map to horizontal edges (odd turns)."""
        return self.r % 2 == 1

    # ------------------------------------------------------------------
    # Naming, parsing, iteration
    # ------------------------------------------------------------------
    @property
    def name(self) -> str:
        base = _ROT_TO_NAME[self.r]
        return f"flip_{base}" if self.k else base

    @classmethod
    def from_name(cls, name: str) -> "Orientation":
        """Parse an orientation name such as ``"east"`` or ``"flip_west"``.

        Raises ``ValueError`` for unknown names.
        """
        text = name.strip().lower()
        k = 0
        if text.startswith("flip_"):
            k = 1
            text = text[len("flip_"):]
        elif text.startswith("f"):
            candidate = text[1:]
            if candidate in _NAME_TO_ROT:
                k = 1
                text = candidate
        if text not in _NAME_TO_ROT:
            raise ValueError(f"unknown orientation name: {name!r}")
        return cls(_NAME_TO_ROT[text], k)

    @classmethod
    def all(cls) -> Iterator["Orientation"]:
        """Iterate over all eight orientations (rotations first)."""
        for k in (0, 1):
            for r in range(4):
                yield cls(r, k)

    def __repr__(self) -> str:
        return f"Orientation.{self.name.upper()}"

    def __eq__(self, other) -> bool:
        if not isinstance(other, Orientation):
            return NotImplemented
        return self.r == other.r and self.k == other.k

    def __hash__(self) -> int:
        return hash((self.r, self.k))

    def __reduce__(self):
        return (Orientation, (self.r, self.k))

    def __copy__(self):
        return self

    def __deepcopy__(self, memo):
        return self


NORTH = Orientation(0, 0)
WEST = Orientation(1, 0)
SOUTH = Orientation(2, 0)
EAST = Orientation(3, 0)
FLIP_NORTH = Orientation(0, 1)
FLIP_WEST = Orientation(1, 1)
FLIP_SOUTH = Orientation(2, 1)
FLIP_EAST = Orientation(3, 1)

ALL_ORIENTATIONS = tuple(Orientation.all())
ROTATIONS = (NORTH, WEST, SOUTH, EAST)
REFLECTIONS = (FLIP_NORTH, FLIP_WEST, FLIP_SOUTH, FLIP_EAST)
