"""Numpy batch geometry kernel: flat arrays for the plane-sweep passes.

The sweep kernel (:mod:`repro.geometry.sweep`) removed the quadratic
rescans from every geometry pass, but its inner loops — ``IntervalFront``
bisect churn, per-box constraint emission, per-slab interval merging —
are still interpreted Python at microseconds per box.  This module
restructures those loops around flat int64 arrays:

* one :func:`boxes_to_arrays` bulk export per pass (objects are touched
  once, not once per comparison);
* sorted event vectors and ``searchsorted``/masking instead of bisect
  loops (:func:`merged_slab_runs`, :func:`overlap_pairs`,
  :func:`runs_intersect`, :func:`runs_subtract`);
* segmented scans (:func:`segmented_cummax`) for the per-slab run merge
  and for the visibility front, which collapses to a running
  ``(xmax, arrival)`` argmax per elementary y slab
  (:func:`visible_pairs`);
* batch decoding back to ``Box``/constraint/violation objects only at
  the boundary (:func:`boxes_from_arrays`).

Every consumer keeps its interpreted build as the equivalence oracle,
selected by the ``REPRO_KERNEL`` environment variable (``numpy`` by
default, ``python`` to force the interpreted kernel) — the same
``*_reference`` discipline the sweep kernel itself established.  The
results are *identical*, not merely equivalent: the same constraint
multisets, merged boxes, violation multisets, and extracted components,
enforced by ``tests/test_sweep_equivalence.py`` under both kernels.
"""

from __future__ import annotations

import os
from typing import Any, Dict, Iterable, List, Optional, Sequence, Tuple

from .box import Box

__all__ = [
    "KernelUnavailableError",
    "NUMPY_FLOOR",
    "kernel_name",
    "use_numpy",
    "require_numpy",
    "BoxArray",
    "boxes_to_arrays",
    "boxes_from_arrays",
    "unique_sorted",
    "segmented_cummax",
    "merged_slab_runs",
    "slab_grid",
    "merge_boxes_batch",
    "visible_pairs",
    "overlap_pairs",
    "expand_ranges",
    "runs_intersect",
    "runs_subtract",
]

#: minimum numpy the batch kernel is tested against: stable ``lexsort``
#: / ``unique(return_inverse)`` semantics over int64 structured columns.
NUMPY_FLOOR = (1, 22)


class KernelUnavailableError(OSError):
    """The requested geometry kernel cannot run in this environment.

    An :class:`OSError` so the CLI maps it to exit-code family 5
    (environment/filesystem problems) with the one-line actionable
    message instead of a traceback.
    """


def _import_numpy():
    """Import numpy, returning ``(module, None)`` or ``(None, reason)``."""
    try:
        import numpy
    except Exception as error:  # pragma: no cover - depends on environment
        return None, f"numpy is not installed ({error})"
    version = getattr(numpy, "__version__", "0")
    parts: List[int] = []
    for token in version.split(".")[:2]:
        digits = "".join(ch for ch in token if ch.isdigit())
        parts.append(int(digits or 0))
    if tuple(parts) < NUMPY_FLOOR:
        floor = ".".join(map(str, NUMPY_FLOOR))
        return None, (
            f"the numpy batch kernel needs numpy >= {floor}"
            f" (found {version}); upgrade numpy or set REPRO_KERNEL=python"
        )
    return numpy, None


_np, _NUMPY_UNAVAILABLE = _import_numpy()


def kernel_name() -> str:
    """The selected geometry kernel: ``"numpy"`` or ``"python"``.

    Driven by the ``REPRO_KERNEL`` environment variable.  Unset or
    ``numpy`` selects the batch kernel (falling back to ``python`` when
    numpy is missing and the choice was implicit); ``python`` forces the
    interpreted kernel.  An explicit ``REPRO_KERNEL=numpy`` with no
    usable numpy, or an unknown value, raises
    :class:`KernelUnavailableError` with a one-line actionable message.
    """
    value = os.environ.get("REPRO_KERNEL", "").strip().lower()
    if value == "python":
        return "python"
    if value in ("", "numpy"):
        if _NUMPY_UNAVAILABLE is None:
            return "numpy"
        if value == "numpy":
            raise KernelUnavailableError(_NUMPY_UNAVAILABLE)
        return "python"
    raise KernelUnavailableError(
        f"REPRO_KERNEL={value!r} is not a geometry kernel;"
        " use 'numpy' (default) or 'python'"
    )


def use_numpy() -> bool:
    """Whether the batch (numpy) kernel is selected for this process."""
    return kernel_name() == "numpy"


def require_numpy():
    """The numpy module, or :class:`KernelUnavailableError` if unusable.

    Batch implementations call this once at their top so every numpy
    use below is guarded by the same actionable error.
    """
    if _np is None:
        raise KernelUnavailableError(_NUMPY_UNAVAILABLE)
    return _np


# ----------------------------------------------------------------------
# The object <-> array boundary
# ----------------------------------------------------------------------
class BoxArray:
    """A struct-of-arrays view of a ``Box`` list: four int64 vectors.

    The batch kernel's unit of exchange: geometry crosses from objects
    to arrays exactly once per pass (:func:`boxes_to_arrays`) and back
    exactly once (:func:`boxes_from_arrays`); everything in between is
    column arithmetic.
    """

    __slots__ = ("xmin", "ymin", "xmax", "ymax")

    def __init__(self, xmin, ymin, xmax, ymax) -> None:
        self.xmin = xmin
        self.ymin = ymin
        self.xmax = xmax
        self.ymax = ymax

    def __len__(self) -> int:
        return int(self.xmin.shape[0])


def boxes_to_arrays(boxes: Sequence[Box]) -> BoxArray:
    """Bulk-export a ``Box`` sequence into a :class:`BoxArray`.

    Four list-comprehension column reads — each coordinate is touched
    once, and the int64 conversion happens in one C call per column;
    this is the only per-object work a batch pass pays on its input
    side (measurably faster than a single ``fromiter`` interleave).
    """
    np = require_numpy()
    return BoxArray(
        np.array([box.xmin for box in boxes], dtype=np.int64),
        np.array([box.ymin for box in boxes], dtype=np.int64),
        np.array([box.xmax for box in boxes], dtype=np.int64),
        np.array([box.ymax for box in boxes], dtype=np.int64),
    )


_box_new = Box.__new__
_box_set = object.__setattr__


def boxes_from_arrays(xmin, ymin, xmax, ymax) -> List[Box]:
    """Decode coordinate columns back into ``Box`` objects.

    The columns must already be normalised (``xmin <= xmax``,
    ``ymin <= ymax``) — true for everything the kernel produces — so the
    constructor's normalisation pass is skipped; the loop body inlines
    the attribute stores to keep the per-box cost to one allocation
    plus four slot writes.
    """
    new, store = _box_new, _box_set
    result: List[Box] = []
    append = result.append
    for x0, y0, x1, y1 in zip(
        xmin.tolist(), ymin.tolist(), xmax.tolist(), ymax.tolist()
    ):
        box = new(Box)
        store(box, "xmin", x0)
        store(box, "ymin", y0)
        store(box, "xmax", x1)
        store(box, "ymax", y1)
        append(box)
    return result


# ----------------------------------------------------------------------
# Segmented scans and the slab-run primitive
# ----------------------------------------------------------------------
def unique_sorted(values):
    """Sorted distinct values — ``np.unique`` minus its slow path.

    ``np.unique`` costs ~20x a plain sort on the few-thousand-element
    int64 vectors the kernel dedups (event grids, pair codes), so this
    is the hot-loop replacement: one sort plus a neighbour mask.
    """
    np = require_numpy()
    if values.size == 0:
        return values
    ordered = np.sort(values)
    keep = np.empty(ordered.size, dtype=bool)
    keep[0] = True
    np.not_equal(ordered[1:], ordered[:-1], out=keep[1:])
    return ordered[keep]


def segmented_cummax(groups, values):
    """Running maximum of ``values`` within each contiguous group run.

    ``groups`` must be non-decreasing (sorted); the result at position
    ``i`` is ``max(values[j] for j in i's group, j <= i)``.  Uses the
    group-offset trick (one ``maximum.accumulate`` over
    ``group * span + value``) directly while ``groups x span`` fits in
    int64; otherwise values are ranked first so the offsets cannot
    overflow regardless of the coordinate range.
    """
    np = require_numpy()
    if values.size == 0:
        return values
    group_start = np.empty(groups.size, dtype=bool)
    group_start[0] = True
    np.not_equal(groups[1:], groups[:-1], out=group_start[1:])
    group_ids = np.cumsum(group_start) - 1
    floor = int(values.min())
    span = int(values.max()) - floor + 1
    if int(group_ids[-1]) * span < 2**62:
        offsets = group_ids * np.int64(span)
        keyed = offsets + (values - floor)
        return np.maximum.accumulate(keyed) - offsets + floor
    unique_values, ranks = np.unique(values, return_inverse=True)
    pad = np.int64(ranks.size + 1)
    keyed = group_ids * pad + ranks
    running = np.maximum.accumulate(keyed) - group_ids * pad
    return unique_values[running]


def slab_grid(arrays: Iterable[BoxArray]):
    """The sorted distinct y event grid over several box collections.

    Every ``ymin``/``ymax`` contributes a grid line — degenerate boxes
    included, matching :func:`repro.geometry.sweep.slab_decompose` —
    and slab ``k`` spans ``(ys[k], ys[k+1])``.
    """
    np = require_numpy()
    columns = [column for a in arrays for column in (a.ymin, a.ymax)]
    if not columns:
        return np.empty(0, dtype=np.int64)
    return unique_sorted(np.concatenate(columns))


def _slab_incidence(np, ys, boxes: BoxArray):
    """Expand material boxes into (entry -> box index, slab index) rows.

    Only positive-area boxes produce material, matching the sweep
    kernel.  Returns ``(box_index, slab)`` arrays, one row per
    (box, covered slab) pair.
    """
    material = (boxes.ymax > boxes.ymin) & (boxes.xmax > boxes.xmin)
    indices = np.flatnonzero(material)
    first = np.searchsorted(ys, boxes.ymin[indices])
    last = np.searchsorted(ys, boxes.ymax[indices])
    counts = last - first
    total = int(counts.sum())
    if total == 0:
        empty = np.empty(0, dtype=np.int64)
        return empty, empty
    box_index = np.repeat(indices, counts)
    bases = np.repeat(np.cumsum(counts) - counts, counts)
    slab = np.repeat(first, counts) + (np.arange(total, dtype=np.int64) - bases)
    return box_index, slab


def merged_slab_runs(ys, boxes: BoxArray):
    """All-slab merged x runs of one layer, as flat arrays.

    Returns ``(slab, x0, x1)`` sorted by ``(slab, x0)``: the disjoint
    (touching-coalesced) x intervals of the layer's material per
    elementary slab of the ``ys`` grid — the batch equivalent of
    draining :func:`repro.geometry.sweep.slab_decompose` for one layer.
    """
    np = require_numpy()
    box_index, slab = _slab_incidence(np, ys, boxes)
    empty = np.empty(0, dtype=np.int64)
    if box_index.size == 0:
        return empty, empty, empty
    x0 = boxes.xmin[box_index]
    x1 = boxes.xmax[box_index]
    # Sort by (slab, x0); the x1 order within ties cannot affect the run
    # boundaries (material implies x1 > x0, so a tied entry never starts
    # a run) nor the reduceat maxima, so one composite-key argsort
    # suffices when the key fits in int64.
    base = int(x0.min())
    span = int(x1.max()) - base + 1
    if int(ys.size) * span < 2**62:
        order = np.argsort(slab * np.int64(span) + (x0 - base))
    else:
        order = np.lexsort((x0, slab))
    slab, x0, x1 = slab[order], x0[order], x1[order]
    running = segmented_cummax(slab, x1)
    starts = np.empty(slab.size, dtype=bool)
    starts[0] = True
    starts[1:] = (slab[1:] != slab[:-1]) | (x0[1:] > running[:-1])
    start_indices = np.flatnonzero(starts)
    return (
        slab[start_indices],
        x0[start_indices],
        np.maximum.reduceat(x1, start_indices),
    )


# ----------------------------------------------------------------------
# Keyed interval algebra over (slab, x0, x1) run vectors
# ----------------------------------------------------------------------
def _run_events(np, slab, x0, x1, weight):
    """(slab, coordinate, depth-delta) event triples for a run set."""
    doubled = np.concatenate([slab, slab])
    coords = np.concatenate([x0, x1])
    deltas = np.empty(coords.size, dtype=np.int64)
    deltas[: x0.size] = weight
    deltas[x0.size:] = -weight
    return doubled, coords, deltas


def _boolean_runs(target, slab_a, a0, a1, slab_b, b0, b1):
    """Slab-keyed boolean combination of two disjoint run sets.

    Sweeps the merged event vector per slab tracking coverage depth
    (``a`` contributes 1, ``b`` contributes 2) and keeps the positive-
    length segments whose depth equals ``target``: 3 for intersection,
    1 for subtraction (``a`` minus ``b``).
    """
    np = require_numpy()
    sa, ca, da = _run_events(np, slab_a, a0, a1, 1)
    sb, cb, db = _run_events(np, slab_b, b0, b1, 2)
    slab = np.concatenate([sa, sb])
    coords = np.concatenate([ca, cb])
    deltas = np.concatenate([da, db])
    empty = np.empty(0, dtype=np.int64)
    if slab.size == 0:
        return empty, empty, empty
    order = np.lexsort((coords, slab))
    slab, coords, deltas = slab[order], coords[order], deltas[order]
    depth = np.cumsum(deltas)
    keep = np.empty(slab.size, dtype=bool)
    keep[-1] = False
    keep[:-1] = (
        (depth[:-1] == target)
        & (slab[1:] == slab[:-1])
        & (coords[1:] > coords[:-1])
    )
    indices = np.flatnonzero(keep)
    return slab[indices], coords[indices], coords[indices + 1]


def runs_intersect(slab_a, a0, a1, slab_b, b0, b1):
    """Positive-length intersection of two slab-keyed run sets."""
    return _boolean_runs(3, slab_a, a0, a1, slab_b, b0, b1)


def runs_subtract(slab_a, a0, a1, slab_b, b0, b1):
    """Slab-keyed set difference ``a - b`` of two disjoint run sets."""
    return _boolean_runs(1, slab_a, a0, a1, slab_b, b0, b1)


def expand_ranges(lo, hi):
    """Expand per-query ``[lo, hi)`` index windows into flat pairs.

    Returns ``(query_index, hit_index)`` — the vectorised equivalent of
    ``for i: for j in range(lo[i], hi[i])``.
    """
    np = require_numpy()
    counts = np.maximum(hi - lo, 0)
    total = int(counts.sum())
    if total == 0:
        empty = np.empty(0, dtype=np.int64)
        return empty, empty
    query = np.repeat(np.arange(lo.size, dtype=np.int64), counts)
    bases = np.repeat(np.cumsum(counts) - counts, counts)
    hits = np.arange(total, dtype=np.int64) - bases + np.repeat(lo, counts)
    return query, hits


def _slab_keys(np, slab, coords, span, base):
    """Monotone composite (slab, coordinate) sort keys."""
    return slab * span + (coords - base)


def overlap_pairs(slab_a, a0, a1, slab_b, b0, b1, closed=False):
    """Index pairs of runs sharing a slab and overlapping in x.

    The ``b`` runs must be disjoint per slab and sorted by
    ``(slab, x0)`` (the order :func:`merged_slab_runs` produces), which
    makes the overlap window of each ``a`` run a contiguous index range
    found by two ``searchsorted`` probes.  ``closed=True`` counts runs
    that merely share an endpoint; the default requires positive
    overlap.  Returns ``(a_index, b_index)`` arrays.
    """
    np = require_numpy()
    empty = np.empty(0, dtype=np.int64)
    if slab_a.size == 0 or slab_b.size == 0:
        return empty, empty
    base = int(min(a0.min(), b0.min()))
    top = int(max(a1.max(), b1.max()))
    span = np.int64(top - base + 2)
    b_start = _slab_keys(np, slab_b, b0, span, base)
    b_end = _slab_keys(np, slab_b, b1, span, base)
    key_a0 = _slab_keys(np, slab_a, a0, span, base)
    key_a1 = _slab_keys(np, slab_a, a1, span, base)
    if closed:
        lo = np.searchsorted(b_end, key_a0, side="left")
        hi = np.searchsorted(b_start, key_a1, side="right")
    else:
        lo = np.searchsorted(b_end, key_a0, side="right")
        hi = np.searchsorted(b_start, key_a1, side="left")
    return expand_ranges(lo, hi)


# ----------------------------------------------------------------------
# Whole-pass batch builds
# ----------------------------------------------------------------------
def merge_boxes_batch(boxes: Sequence[Box]) -> List[Box]:
    """Maximal-horizontal-strip merge on arrays; output matches
    :func:`repro.layout.database.merge_boxes` exactly.

    Slab runs come from :func:`merged_slab_runs`; vertical coalescing of
    identical spans is one more lexsort over ``(x0, x1, slab)`` with a
    run-break wherever the slab index is not the predecessor's successor
    (the batch form of the ``previous_y1 == y0`` continuation test).
    """
    np = require_numpy()
    if not boxes:
        return []
    arrays = boxes_to_arrays(boxes)
    ys = slab_grid([arrays])
    slab, x0, x1 = merged_slab_runs(ys, arrays)
    if slab.size == 0:
        return []
    order = np.lexsort((slab, x1, x0))
    slab, x0, x1 = slab[order], x0[order], x1[order]
    starts = np.empty(slab.size, dtype=bool)
    starts[0] = True
    starts[1:] = (
        (x0[1:] != x0[:-1]) | (x1[1:] != x1[:-1]) | (slab[1:] != slab[:-1] + 1)
    )
    start_indices = np.flatnonzero(starts)
    last_indices = np.append(start_indices[1:], slab.size) - 1
    ymin = ys[slab[start_indices]]
    ymax = ys[slab[last_indices] + 1]
    xmin = x0[start_indices]
    xmax = x1[start_indices]
    order = np.lexsort((xmax, ymax, xmin, ymin))
    return boxes_from_arrays(xmin[order], ymin[order], xmax[order], ymax[order])


def visible_pairs(arrays: BoxArray, layer_codes, allowed=None):
    """Distinct (visible, viewer) box pairs of the Figure 6.7 scan.

    The sequential scan keeps, per layer, a y-sorted front where a new
    box replaces what it reaches past and is shadowed by what extends
    further right.  That update rule makes the front at any y the
    running ``(xmax, arrival)`` argmax over already-processed boxes of
    the layer covering y — so the whole visibility structure is
    computed offline.  Per front layer: expand the layer's boxes
    (front updaters) and every box that stabs the layer (viewers) into
    slab incidence rows in arrival order, take a segmented running
    argmax per slab, and the predecessor of each viewer row is exactly
    the segment the sequential stab would have returned there.

    ``allowed[front_layer, viewer_layer]`` (optional bool matrix over
    the ``layer_codes`` universe) skips viewer expansions the caller
    knows cannot emit — the cross-layer-no-rule skip of the sequential
    scan.  Same-layer viewing is always on.

    Returns ``(visible, viewer)`` index arrays into the input order,
    deduplicated, sorted by ``(viewer, visible)`` arrival; ``visible``
    was always processed (arrival order: ``(xmin, xmax)``, ties input-
    stable) before ``viewer``.  Pure geometry — classifying pairs into
    connection/spacing constraints is the caller's business.
    """
    np = require_numpy()
    count = len(arrays)
    empty = np.empty(0, dtype=np.int64)
    if count < 2:
        return empty, empty
    arrival_to_input = np.lexsort((arrays.xmax, arrays.xmin))
    ymin = arrays.ymin[arrival_to_input]
    ymax = arrays.ymax[arrival_to_input]
    layers = layer_codes[arrival_to_input]
    # Degenerate-height boxes stab nothing and update no front.
    solid = ymax > ymin
    # Priority of a front box is (xmax, arrival); ranking xmax keeps the
    # combined value decodable to the arrival index with one modulo.
    # 0 is reserved for "viewer only" entries, which never win the max.
    # searchsorted-left on the (duplicate-keeping) sorted vector is a
    # valid rank: equal xmax share the first-occurrence index.
    xmax_rank = np.searchsorted(
        np.sort(arrays.xmax), arrays.xmax[arrival_to_input]
    )
    priority = (
        xmax_rank * np.int64(count) + np.arange(count, dtype=np.int64) + 1
    )
    codes: List[Any] = []
    for front_layer in range(int(layer_codes.max()) + 1 if count else 0):
        updater = layers == front_layer
        if not updater.any():
            continue
        if allowed is None:
            participant = solid.copy()
        else:
            participant = (updater | allowed[front_layer, layers]) & solid
        members = np.flatnonzero(participant)  # ascending = arrival order
        if members.size < 2:
            continue
        ys = unique_sorted(np.concatenate([ymin[members], ymax[members]]))
        first = np.searchsorted(ys, ymin[members])
        counts = np.searchsorted(ys, ymax[members]) - first
        total = int(counts.sum())
        entry = np.repeat(np.arange(members.size, dtype=np.int64), counts)
        bases = np.repeat(np.cumsum(counts) - counts, counts)
        slab = (
            np.repeat(first, counts)
            + np.arange(total, dtype=np.int64)
            - bases
        )
        # Entries are generated in ascending arrival order, so a stable
        # sort on slab alone keeps arrivals ordered within each slab.
        order = np.argsort(slab, kind="stable")
        entry, slab = entry[order], slab[order]
        value = np.where(updater[members], priority[members], 0)[entry]
        running = segmented_cummax(slab, value)
        follows = np.empty(entry.size, dtype=bool)
        follows[0] = False
        follows[1:] = (slab[1:] == slab[:-1]) & (running[:-1] > 0)
        indices = np.flatnonzero(follows)
        visible = (running[indices - 1] - 1) % np.int64(count)
        viewer = members[entry[indices]]
        codes.append(viewer * np.int64(count) + visible)
    if not codes:
        return empty, empty
    pairs = unique_sorted(np.concatenate(codes))
    return (
        arrival_to_input[pairs % np.int64(count)],
        arrival_to_input[pairs // np.int64(count)],
    )
