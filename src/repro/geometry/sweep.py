"""Shared sweep-line geometry kernel.

Every geometry pass in the system — constraint generation, design-rule
checking, box merging, wire extraction — is some flavour of plane sweep,
and before this module each of them carried its own ad-hoc (and mostly
quadratic) bookkeeping: the visibility scanner re-sorted its whole front
on every insert, the slab passes rescanned every box per slab, the
extractor rebuilt its active list per item.  This module centralises the
three data structures they actually need:

* :class:`IntervalFront` — a bisect-maintained, y-sorted *visible front*
  of disjoint payload-carrying segments with ``O(log n + k)`` stab and
  replace, for the Figure 6.7 vertical-scan constraint generator;
* :func:`slab_decompose` — a y-event sweep that carries an active
  interval set per layer and yields merged x runs per slab, so slab
  consumers (merging, DRC) touch only the material that is actually
  live instead of rescanning every box per slab;
* interval-set utilities (:func:`merge_intervals`,
  :func:`subtract_intervals`, :func:`interval_gaps`) replacing the
  ad-hoc copies that had grown in ``scanline.py`` and ``drc.py``.

Everything here works on closed integer intervals where *touching*
intervals coalesce — the semantics shared by box merging and run
construction throughout the code base.
"""

from __future__ import annotations

from bisect import bisect_left, bisect_right, insort
from typing import (
    Any,
    Callable,
    Dict,
    Iterable,
    Iterator,
    List,
    Optional,
    Sequence,
    Tuple,
)

from .box import Box

__all__ = [
    "IntervalFront",
    "merge_intervals",
    "subtract_intervals",
    "interval_gaps",
    "slab_decompose",
]

Interval = Tuple[int, int]
Segment = Tuple[int, int, Any]


# ----------------------------------------------------------------------
# Interval-set utilities
# ----------------------------------------------------------------------
def merge_intervals(intervals: Iterable[Interval]) -> List[Interval]:
    """Union of intervals; overlapping or touching intervals coalesce.

    Returns a sorted list of disjoint ``(lo, hi)`` tuples.  Empty
    intervals (``hi <= lo``) are dropped.
    """
    result: List[Interval] = []
    for lo, hi in sorted(intervals):
        if hi <= lo:
            continue
        if result and lo <= result[-1][1]:
            if hi > result[-1][1]:
                result[-1] = (result[-1][0], hi)
        else:
            result.append((lo, hi))
    return result


def subtract_intervals(
    base: Iterable[Interval], cuts: Iterable[Interval]
) -> List[Interval]:
    """Remove ``cuts`` from ``base``; both are interval iterables.

    Returns the sorted remainder of the (merged) base intervals.
    """
    remaining = merge_intervals(base)
    for c0, c1 in merge_intervals(cuts):
        next_remaining: List[Interval] = []
        for lo, hi in remaining:
            if c1 <= lo or c0 >= hi:
                next_remaining.append((lo, hi))
                continue
            if lo < c0:
                next_remaining.append((lo, c0))
            if hi > c1:
                next_remaining.append((c1, hi))
        remaining = next_remaining
    return remaining


def interval_gaps(intervals: Iterable[Interval]) -> List[Interval]:
    """Gaps between consecutive intervals of the merged input.

    The returned ``(lo, hi)`` pairs are the maximal uncovered ranges
    strictly between covered material — the "spacing" runs a checker
    inspects.
    """
    merged = merge_intervals(intervals)
    return [
        (a_hi, b_lo)
        for (_, a_hi), (b_lo, _) in zip(merged, merged[1:])
        if b_lo > a_hi
    ]


# ----------------------------------------------------------------------
# The visible front
# ----------------------------------------------------------------------
class IntervalFront:
    """A y-sorted visible front of disjoint payload-carrying segments.

    Maintains segments ``(y0, y1, payload)`` with ``y0 < y1``, pairwise
    disjoint (touching allowed), ordered by ``y0``.  This is the scan
    line of Figure 6.7: each segment records which box a viewer on the
    line, looking left, sees over that y range.  Both operations use
    binary search over the segment starts, so a stab or replace over a
    range touching ``k`` segments costs ``O(log n + k)`` — against the
    flat-list front it replaces, which re-sorted all ``n`` segments on
    every insert.
    """

    __slots__ = ("_starts", "_segments")

    def __init__(self) -> None:
        self._starts: List[int] = []
        self._segments: List[Segment] = []

    def __len__(self) -> int:
        return len(self._segments)

    def __iter__(self) -> Iterator[Segment]:
        return iter(self._segments)

    def segments(self) -> List[Segment]:
        """The current segments, sorted by start (a fresh list)."""
        return list(self._segments)

    def _window(self, y0: int, y1: int) -> Tuple[int, int]:
        """Index range [lo, hi) of segments positively overlapping
        ``(y0, y1)``."""
        lo = bisect_right(self._starts, y0)
        if lo and self._segments[lo - 1][1] > y0:
            lo -= 1
        hi = bisect_left(self._starts, y1, lo=lo)
        return lo, hi

    def stab(self, y0: int, y1: int) -> List[Segment]:
        """Segments with positive overlap of ``(y0, y1)``, in y order."""
        if y1 <= y0:
            return []
        lo, hi = self._window(y0, y1)
        return self._segments[lo:hi]

    def replace(
        self,
        y0: int,
        y1: int,
        payload: Any,
        keep: Optional[Callable[[Any], bool]] = None,
    ) -> None:
        """Make ``payload`` visible over ``[y0, y1]``.

        Overlapped segments are consumed within the range (their parts
        outside it survive) unless ``keep(old_payload)`` is true, in
        which case the old segment stays whole and *shadows* its y range
        — the new payload is not recorded there.  This is exactly the
        front update of the visibility scanner: a new box replaces what
        it reaches past and is shadowed by what extends further right.
        """
        if y1 <= y0:
            return
        lo, hi = self._window(y0, y1)
        coverage: List[Interval] = [(y0, y1)]
        kept: List[Segment] = []
        for s0, s1, old in self._segments[lo:hi]:
            if keep is not None and keep(old):
                kept.append((s0, s1, old))
                coverage = subtract_intervals(coverage, [(s0, s1)])
                continue
            if s0 < y0:
                kept.append((s0, y0, old))
            if s1 > y1:
                kept.append((y1, s1, old))
        kept.extend((c0, c1, payload) for c0, c1 in coverage)
        kept.sort(key=lambda segment: segment[0])
        self._segments[lo:hi] = kept
        self._starts[lo:hi] = [segment[0] for segment in kept]


# ----------------------------------------------------------------------
# Slab decomposition
# ----------------------------------------------------------------------
def slab_decompose(
    layers: Dict[str, Sequence[Box]],
) -> Iterator[Tuple[int, int, Dict[str, List[Interval]]]]:
    """Sweep the y event grid; yield per-slab merged x runs per layer.

    The event grid is every distinct ``ymin``/``ymax`` over *all* boxes
    of *all* layers (degenerate boxes contribute grid lines but no
    material), matching the slab semantics of the passes this kernel
    replaces.  For each consecutive grid pair ``(y0, y1)`` the yielded
    dict maps every layer name to the sorted merged x intervals of its
    boxes fully covering the slab.

    Boxes enter the active set at their ``ymin`` and leave at their
    ``ymax``; per layer the active intervals are kept sorted by bisect
    insertion and the merged runs are recomputed only when that layer's
    active set changed — so the total work is ``O(n log n)`` event
    maintenance plus output-sensitive run merging, instead of the
    ``O(slabs x boxes)`` rescan of the naive formulation.

    The yielded run lists are reused between slabs for unchanged
    layers: treat them as read-only and snapshot (``tuple(runs)``) when
    retaining them past one iteration.
    """
    grid: set = set()
    adds: Dict[int, List[Tuple[str, Interval]]] = {}
    removes: Dict[int, List[Tuple[str, Interval]]] = {}
    for name, boxes in layers.items():
        for box in boxes:
            grid.add(box.ymin)
            grid.add(box.ymax)
            if box.ymax > box.ymin and box.xmax > box.xmin:
                interval = (box.xmin, box.xmax)
                adds.setdefault(box.ymin, []).append((name, interval))
                removes.setdefault(box.ymax, []).append((name, interval))
    ys = sorted(grid)
    active: Dict[str, List[Interval]] = {name: [] for name in layers}
    runs: Dict[str, List[Interval]] = {name: [] for name in layers}
    for y0, y1 in zip(ys, ys[1:]):
        dirty = set()
        for name, interval in removes.get(y0, ()):
            intervals = active[name]
            intervals.pop(bisect_left(intervals, interval))
            dirty.add(name)
        for name, interval in adds.get(y0, ()):
            insort(active[name], interval)
            dirty.add(name)
        for name in dirty:
            runs[name] = merge_intervals(active[name])
        yield y0, y1, runs
