"""Affine isometries: an orientation plus a translation.

``Transform`` packages the calling parameters of an instance — paper
section 2.1's ``(L, O)`` pair — and supports the composition needed when
flattening hierarchical layouts: if A is called in B with T1 and B in C
with T2 then objects of A appear in C under ``T2 o T1``.
"""

from __future__ import annotations

from .box import Box
from .orientation import NORTH, Orientation
from .vector import Vec2

__all__ = ["Transform", "IDENTITY"]


class Transform:
    """The affine isometry ``p -> O(p) + L`` on the integer grid."""

    __slots__ = ("offset", "orientation")

    def __init__(self, offset: Vec2 = Vec2(0, 0), orientation: Orientation = NORTH) -> None:
        object.__setattr__(self, "offset", offset)
        object.__setattr__(self, "orientation", orientation)

    def __setattr__(self, name: str, value) -> None:
        raise AttributeError("Transform is immutable")

    def apply(self, p: Vec2) -> Vec2:
        return p.transformed(self.orientation) + self.offset

    def apply_box(self, box: Box) -> Box:
        return box.transformed(self.orientation, self.offset)

    def compose(self, inner: "Transform") -> "Transform":
        """Return ``self o inner`` (apply ``inner`` first)."""
        return Transform(
            self.apply(inner.offset),
            self.orientation.compose(inner.orientation),
        )

    def inverse(self) -> "Transform":
        """Return the inverse isometry: ``p -> O^-1(p - L)``."""
        inv = self.orientation.inverse()
        return Transform((-self.offset).transformed(inv), inv)

    @property
    def is_identity(self) -> bool:
        return self.orientation.is_identity and self.offset == Vec2(0, 0)

    def __eq__(self, other) -> bool:
        if not isinstance(other, Transform):
            return NotImplemented
        return self.offset == other.offset and self.orientation == other.orientation

    def __hash__(self) -> int:
        return hash((self.offset, self.orientation))

    def __reduce__(self):
        return (Transform, (self.offset, self.orientation))

    def __copy__(self):
        return self

    def __deepcopy__(self, memo):
        return self

    def __repr__(self) -> str:
        return f"Transform({self.offset!r}, {self.orientation!r})"


IDENTITY = Transform()
