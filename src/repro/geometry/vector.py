"""Integer 2-D vectors/points on the layout grid.

All RSG geometry lives on an integer grid (lambda grid).  ``Vec2`` doubles
as both point and displacement; the distinction is carried by usage, as in
the paper where points of call and interface vectors share representation.
"""

from __future__ import annotations

from typing import Iterator, Tuple

from .orientation import Orientation

__all__ = ["Vec2", "ORIGIN"]


class Vec2:
    """An immutable integer 2-vector supporting affine-isometry algebra."""

    __slots__ = ("x", "y")

    def __init__(self, x: int, y: int) -> None:
        object.__setattr__(self, "x", int(x))
        object.__setattr__(self, "y", int(y))

    def __setattr__(self, name: str, value) -> None:
        raise AttributeError("Vec2 is immutable")

    def __add__(self, other: "Vec2") -> "Vec2":
        if not isinstance(other, Vec2):
            return NotImplemented
        return Vec2(self.x + other.x, self.y + other.y)

    def __sub__(self, other: "Vec2") -> "Vec2":
        if not isinstance(other, Vec2):
            return NotImplemented
        return Vec2(self.x - other.x, self.y - other.y)

    def __neg__(self) -> "Vec2":
        return Vec2(-self.x, -self.y)

    def __mul__(self, scale: int) -> "Vec2":
        if not isinstance(scale, int):
            return NotImplemented
        return Vec2(self.x * scale, self.y * scale)

    __rmul__ = __mul__

    def transformed(self, orientation: Orientation) -> "Vec2":
        """Return this vector transformed by ``orientation``."""
        x, y = orientation.apply(self.x, self.y)
        return Vec2(x, y)

    def manhattan(self) -> int:
        """Manhattan norm, used by wirelength cost functions."""
        return abs(self.x) + abs(self.y)

    def as_tuple(self) -> Tuple[int, int]:
        return (self.x, self.y)

    def __iter__(self) -> Iterator[int]:
        yield self.x
        yield self.y

    def __eq__(self, other) -> bool:
        if not isinstance(other, Vec2):
            return NotImplemented
        return self.x == other.x and self.y == other.y

    def __hash__(self) -> int:
        return hash((self.x, self.y))

    def __reduce__(self):
        return (Vec2, (self.x, self.y))

    def __copy__(self):
        return self

    def __deepcopy__(self, memo):
        return self

    def __repr__(self) -> str:
        return f"Vec2({self.x}, {self.y})"


ORIGIN = Vec2(0, 0)
