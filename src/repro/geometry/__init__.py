"""Geometry substrate: integer grid vectors, boxes, and the D4 group."""

from .box import Box
from .orientation import (
    ALL_ORIENTATIONS,
    EAST,
    FLIP_EAST,
    FLIP_NORTH,
    FLIP_SOUTH,
    FLIP_WEST,
    NORTH,
    REFLECTIONS,
    ROTATIONS,
    SOUTH,
    WEST,
    Orientation,
)
from .transform import IDENTITY, Transform
from .vector import ORIGIN, Vec2

__all__ = [
    "Box",
    "Orientation",
    "Transform",
    "Vec2",
    "ORIGIN",
    "IDENTITY",
    "NORTH",
    "EAST",
    "SOUTH",
    "WEST",
    "FLIP_NORTH",
    "FLIP_EAST",
    "FLIP_SOUTH",
    "FLIP_WEST",
    "ALL_ORIENTATIONS",
    "ROTATIONS",
    "REFLECTIONS",
]
