"""Geometry substrate: vectors, boxes, the D4 group, and the sweep kernel."""

from .box import Box
from .sweep import (
    IntervalFront,
    interval_gaps,
    merge_intervals,
    slab_decompose,
    subtract_intervals,
)
from .orientation import (
    ALL_ORIENTATIONS,
    EAST,
    FLIP_EAST,
    FLIP_NORTH,
    FLIP_SOUTH,
    FLIP_WEST,
    NORTH,
    REFLECTIONS,
    ROTATIONS,
    SOUTH,
    WEST,
    Orientation,
)
from .transform import IDENTITY, Transform
from .vector import ORIGIN, Vec2

__all__ = [
    "Box",
    "IntervalFront",
    "merge_intervals",
    "subtract_intervals",
    "interval_gaps",
    "slab_decompose",
    "Orientation",
    "Transform",
    "Vec2",
    "ORIGIN",
    "IDENTITY",
    "NORTH",
    "EAST",
    "SOUTH",
    "WEST",
    "FLIP_NORTH",
    "FLIP_EAST",
    "FLIP_SOUTH",
    "FLIP_WEST",
    "ALL_ORIENTATIONS",
    "ROTATIONS",
    "REFLECTIONS",
]
