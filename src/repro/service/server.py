"""The HTTP front end: a stdlib JSON API over store and pool.

Endpoints (all JSON unless noted)::

    POST /jobs                   submit a job spec -> {job, state, deduplicated}
                                 (429 + Retry-After when the queue is full;
                                 an X-Repro-Trace-Id header joins the
                                 client's trace to the job's span tree)
    POST /jobs/<fp>/trace        append the client's finished spans to a
                                 job's trace artifact
    GET  /jobs/<fp>              job status
    GET  /jobs/<fp>/result       result.json + status (202 while pending)
    GET  /jobs/<fp>/artifact/<name>  digest-verified artifact bytes
                                 (layout.cif, result.json, trace.jsonl; a
                                 torn artifact quarantines and answers 404)
    GET  /healthz                liveness + degradation (503 with reasons
                                 when workers are down or the queue is full)
    GET  /stats                  queue depth, dedup factor, cache hit rate,
                                 per-stage latencies, worker head-count,
                                 robustness counters, metrics-as-JSON
    GET  /metrics                the same registry as Prometheus text
                                 exposition (cache, backpressure, respawn,
                                 chaos, per-stage latency histograms)

Built on ``http.server.ThreadingHTTPServer`` — no third-party
dependencies — with the deduplication contract implemented in the
store: a warm resubmission answers ``state: done`` straight from SQLite
and never touches a worker.  ``serve_main`` is the ``repro serve`` CLI
verb: it boots the daemon, then drains the worker pool gracefully on
SIGTERM/SIGINT so in-flight jobs finish before exit.
"""

from __future__ import annotations

import json
import signal
import sys
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Any, Dict, List, Optional

from ..core.errors import QueueFullError, ServiceError
from ..obs.trace import TRACE_HEADER, Span, Tracer, parse_token, service_enabled
from . import chaos
from .jobs import JobSpec
from .metrics import build_registry
from .store import Store
from .workers import WorkerPool

__all__ = ["DEFAULT_PORT", "LayoutServer", "serve_main"]

#: default TCP port of the layout service
DEFAULT_PORT = 8737


class _Handler(BaseHTTPRequestHandler):
    """Route requests to the owning :class:`LayoutServer`."""

    #: set by LayoutServer when it builds the HTTP server
    service: "LayoutServer"

    server_version = "repro-layout-service/1.0"
    protocol_version = "HTTP/1.1"

    def log_message(self, format: str, *args: Any) -> None:  # noqa: A002
        """Route access logs through the server's quiet flag."""
        if self.service.verbose:
            sys.stderr.write(
                "%s - %s\n" % (self.address_string(), format % args)
            )

    def _send_json(
        self,
        status: int,
        payload: Dict[str, Any],
        headers: Optional[Dict[str, str]] = None,
    ) -> None:
        body = (json.dumps(payload, indent=2) + "\n").encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        for name, value in (headers or {}).items():
            self.send_header(name, value)
        self.end_headers()
        self.wfile.write(body)

    def _send_bytes(self, payload: bytes, content_type: str = "text/plain") -> None:
        self.send_response(200)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(payload)))
        self.end_headers()
        self.wfile.write(payload)

    def do_POST(self) -> None:  # noqa: N802 — http.server contract
        """POST routing: job submission and late client trace spans."""
        directive = chaos.fire("server.request", path=self.path)
        if directive and directive.get("drop"):
            self.close_connection = True
            return
        parts = [part for part in self.path.split("/") if part]
        if len(parts) == 3 and parts[0] == "jobs" and parts[2] == "trace":
            self._append_trace(parts[1])
            return
        if self.path.rstrip("/") != "/jobs":
            self._send_json(404, {"error": f"no such endpoint {self.path!r}"})
            return
        token = self.headers.get(TRACE_HEADER)
        server_span: Optional[Span] = None
        tracer: Optional[Tracer] = None
        if service_enabled():
            trace_id, parent = parse_token(token)
            tracer = Tracer(trace_id)
            server_span = tracer.open("server.submit", parent_id=parent)
        try:
            length = int(self.headers.get("Content-Length", "0"))
            payload = json.loads(self.rfile.read(length) or b"{}")
            spec = JobSpec.from_dict(payload)
            submitted = self.service.store.submit(spec, trace=token)
        except QueueFullError as error:
            self._send_json(
                429,
                {"error": str(error), "retry_after": error.retry_after},
                headers={"Retry-After": f"{error.retry_after:g}"},
            )
            return
        except (ServiceError, ValueError) as error:
            self._send_json(400, {"error": str(error)})
            return
        if server_span is not None and tracer is not None:
            server_span.set(
                state=submitted["state"], deduplicated=submitted["deduplicated"]
            ).finish()
            try:
                self.service.store.record_spans(submitted["job"], [server_span])
            except OSError:
                pass  # telemetry must never fail a submission
        directive = chaos.fire("server.respond", path=self.path)
        if directive and directive.get("drop"):
            # the submission took effect; the lost response is what the
            # client's idempotent resubmit exists for
            self.close_connection = True
            return
        self._send_json(200, submitted)

    def _append_trace(self, fingerprint: str) -> None:
        """POST /jobs/<fp>/trace: attach the client's finished spans."""
        try:
            length = int(self.headers.get("Content-Length", "0"))
            payload = json.loads(self.rfile.read(length) or b"{}")
            spans = [Span.from_dict(record) for record in payload.get("spans", [])]
        except (ValueError, KeyError, TypeError) as error:
            self._send_json(400, {"error": f"bad trace payload: {error}"})
            return
        if not self.service.store.append_trace(fingerprint, spans):
            self._send_json(404, {"error": f"unknown job {fingerprint!r}"})
            return
        self._send_json(200, {"job": fingerprint, "spans": len(spans)})

    def do_GET(self) -> None:  # noqa: N802 — http.server contract
        """GET routing: status, result, artifacts, health, stats."""
        directive = chaos.fire("server.request", path=self.path)
        if directive and directive.get("drop"):
            self.close_connection = True
            return
        parts = [part for part in self.path.split("/") if part]
        try:
            if parts == ["healthz"]:
                self._healthz()
            elif parts == ["stats"]:
                stats = self.service.store.stats()
                stats["workers"] = self.service.pool.alive_workers()
                stats["timeouts"] = self.service.pool.timeouts
                stats["crashes"] = self.service.pool.crashes
                stats["respawns"] = self.service.pool.respawns
                stats["metrics"] = build_registry(
                    self.service.store, self.service.pool
                ).to_dict()
                self._send_json(200, stats)
            elif parts == ["metrics"]:
                registry = build_registry(self.service.store, self.service.pool)
                self._send_bytes(
                    registry.to_prometheus().encode("utf-8"),
                    "text/plain; version=0.0.4; charset=utf-8",
                )
            elif len(parts) == 2 and parts[0] == "jobs":
                self._job_status(parts[1])
            elif len(parts) == 3 and parts[0] == "jobs" and parts[2] == "result":
                self._job_result(parts[1])
            elif len(parts) == 4 and parts[0] == "jobs" and parts[2] == "artifact":
                self._job_artifact(parts[1], parts[3])
            else:
                self._send_json(404, {"error": f"no such endpoint {self.path!r}"})
        except ServiceError as error:
            self._send_json(400, {"error": str(error)})

    def _healthz(self) -> None:
        """Liveness plus degradation: non-200 when the service is impaired.

        Healthy is 200 ``{"ok": true}``.  Degraded — fewer live workers
        than configured, or a full queue — is 503 with the reasons
        listed, so probes and load balancers can act on *why*.  The
        recovery counters (quarantined artifacts, recovery re-queues,
        dead-worker respawns) ride along as context without flipping
        the status by themselves: they record survived incidents, not
        a current impairment.
        """
        pool = self.service.pool
        store = self.service.store
        alive = pool.alive_workers()
        depth = store.queue_depth()
        degraded = []
        if alive < pool.workers:
            degraded.append(f"workers: {alive}/{pool.workers} alive")
        if store.max_queue_depth is not None and depth >= store.max_queue_depth:
            degraded.append(f"queue full: {depth}/{store.max_queue_depth}")
        payload = {
            "ok": not degraded,
            "workers": alive,
            "workers_configured": pool.workers,
            "queue_depth": depth,
            "max_queue_depth": store.max_queue_depth,
            "respawns": pool.respawns,
            "quarantined": store.counter("quarantined"),
            "recovery_requeued": store.counter("recovery_requeued"),
            "degraded": degraded,
        }
        self._send_json(200 if not degraded else 503, payload)

    def _job_status(self, fingerprint: str) -> None:
        status = self.service.store.status(fingerprint)
        if status is None:
            self._send_json(404, {"error": f"unknown job {fingerprint!r}"})
        else:
            self._send_json(200, status)

    def _job_result(self, fingerprint: str) -> None:
        result = self.service.store.result(fingerprint)
        if result is None:
            self._send_json(404, {"error": f"unknown job {fingerprint!r}"})
        elif result["state"] in ("queued", "running"):
            self._send_json(202, result)
        else:
            self._send_json(200, result)

    def _job_artifact(self, fingerprint: str, name: str) -> None:
        payload = self.service.store.artifact_bytes(fingerprint, name)
        if payload is None:
            self._send_json(
                404, {"error": f"no artifact {name!r} for job {fingerprint!r}"}
            )
        elif name.endswith(".json"):
            self._send_bytes(payload, "application/json")
        else:
            self._send_bytes(payload)


class LayoutServer:
    """The daemon: one store, one worker pool, one HTTP endpoint.

    ``port=0`` binds an ephemeral port (tests and parallel CI lanes);
    the bound address is available as :attr:`url` after construction.
    """

    def __init__(
        self,
        root: str,
        host: str = "127.0.0.1",
        port: int = DEFAULT_PORT,
        workers: int = 2,
        job_timeout: float = 300.0,
        max_attempts: int = 2,
        poll_interval: float = 0.05,
        max_queue_depth: Optional[int] = None,
        verbose: bool = False,
    ) -> None:
        """Create the daemon (nothing runs until :meth:`start`).

        ``max_queue_depth`` enables backpressure: submissions past it
        answer 429 with a ``Retry-After`` header instead of queueing.
        """
        chaos.maybe_load_from_env()
        self.pool = WorkerPool(
            root,
            workers=workers,
            job_timeout=job_timeout,
            max_attempts=max_attempts,
            poll_interval=poll_interval,
            max_queue_depth=max_queue_depth,
        )
        self.store: Store = self.pool.store
        self.verbose = verbose
        self.recovery: Optional[Dict[str, Any]] = None
        handler = type("BoundHandler", (_Handler,), {"service": self})
        self.httpd = ThreadingHTTPServer((host, port), handler)
        self._thread: Optional[threading.Thread] = None

    @property
    def url(self) -> str:
        """The bound base URL (resolves ephemeral ports)."""
        host, port = self.httpd.server_address[:2]
        return f"http://{host}:{port}"

    def start(self) -> None:
        """Recover the store, start the pool, serve HTTP in a thread.

        The recovery pass (:meth:`Store.recover`) runs *before* any
        worker: orphaned ``running`` rows from a hard-killed previous
        daemon re-queue, torn artifacts quarantine — the boot is what
        makes a crash of the last boot consistent.  Its report is kept
        as :attr:`recovery`.
        """
        self.recovery = self.store.recover()
        self.pool.start()
        self._thread = threading.Thread(
            target=self.httpd.serve_forever,
            name="repro-service-http",
            daemon=True,
        )
        self._thread.start()

    def stop(self, drain: bool = True) -> int:
        """Stop HTTP, then the pool; returns drained in-flight count."""
        self.httpd.shutdown()
        self.httpd.server_close()
        if self._thread is not None:
            self._thread.join(timeout=5.0)
        return self.pool.stop(drain=drain)

    def __enter__(self) -> "LayoutServer":
        """Context-manager start (tests: ``with LayoutServer(...)``)."""
        self.start()
        return self

    def __exit__(self, *exc_info: Any) -> None:
        """Context-manager stop with drain."""
        self.stop(drain=True)


def serve_main(argv: Optional[List[str]] = None) -> int:
    """``repro serve``: run the layout service in the foreground.

    Prints the bound URL on stdout once ready, then blocks until
    SIGTERM/SIGINT; on either it stops accepting requests, drains
    in-flight jobs, and exits 0 — the clean-shutdown contract CI
    asserts on.
    """
    import argparse

    parser = argparse.ArgumentParser(
        prog="repro serve",
        description="Run the layout-as-a-service daemon: an HTTP job"
        " queue with a shared, restart-surviving artifact store.",
    )
    parser.add_argument(
        "--root",
        default=".repro-service",
        metavar="DIR",
        help="service state directory: job ledger, artifacts, shared"
        " compaction cache (default: .repro-service)",
    )
    parser.add_argument("--host", default="127.0.0.1", help="bind address")
    parser.add_argument(
        "--port",
        type=int,
        default=DEFAULT_PORT,
        help=f"TCP port; 0 picks an ephemeral one (default: {DEFAULT_PORT})",
    )
    parser.add_argument(
        "--workers", type=int, default=2, metavar="N",
        help="worker processes (default: 2)",
    )
    parser.add_argument(
        "--job-timeout", type=float, default=300.0, metavar="S",
        help="per-job wall-clock limit in seconds (default: 300)",
    )
    parser.add_argument(
        "--max-attempts", type=int, default=2, metavar="N",
        help="attempts per job before a crashed worker's job is failed"
        " for good (default: 2)",
    )
    parser.add_argument(
        "--max-queue", type=int, default=None, metavar="N",
        help="backpressure: reject new submissions with 429 + Retry-After"
        " once N jobs are queued (default: unbounded)",
    )
    parser.add_argument(
        "--verbose", action="store_true", help="log HTTP requests to stderr"
    )
    arguments = parser.parse_args(argv)
    if arguments.workers < 1:
        parser.error("--workers must be at least 1")
    if arguments.job_timeout <= 0:
        parser.error("--job-timeout must be positive")
    if arguments.max_queue is not None and arguments.max_queue < 1:
        parser.error("--max-queue must be at least 1")

    try:
        server = LayoutServer(
            arguments.root,
            host=arguments.host,
            port=arguments.port,
            workers=arguments.workers,
            job_timeout=arguments.job_timeout,
            max_attempts=arguments.max_attempts,
            max_queue_depth=arguments.max_queue,
            verbose=arguments.verbose,
        )
    except OSError as error:
        raise ServiceError(
            f"cannot bind {arguments.host}:{arguments.port}: {error}"
        ) from None
    stop_requested = threading.Event()

    def request_stop(signum: int, frame: Any) -> None:
        stop_requested.set()

    previous = {
        signal.SIGTERM: signal.signal(signal.SIGTERM, request_stop),
        signal.SIGINT: signal.signal(signal.SIGINT, request_stop),
    }
    server.start()
    print(
        f"serving on {server.url} (root {arguments.root},"
        f" {arguments.workers} worker(s))",
        flush=True,
    )
    recovery = server.recovery or {}
    if recovery.get("requeued") or recovery.get("quarantined"):
        print(
            f"recovered: {len(recovery['requeued'])} job(s) re-queued,"
            f" {len(recovery['quarantined'])} artifact set(s) quarantined",
            flush=True,
        )
    try:
        stop_requested.wait()
    finally:
        for signum, handler in previous.items():
            signal.signal(signum, handler)
    in_flight = server.stop(drain=True)
    print(f"drained {in_flight} in-flight job(s); clean shutdown", flush=True)
    return 0
