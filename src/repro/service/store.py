"""The shared, concurrency-safe job and artifact store.

One directory holds the whole service state, so a restarted daemon (or
a second one pointed at the same root) resumes where the last left
off::

    <root>/jobs.sqlite      job/result metadata (WAL, multi-process safe)
    <root>/artifacts/<fp>/  layout.cif + result.json (+ trace.jsonl) per job
    <root>/cache/           the shared CompactionCache directory

The SQLite schema is the job ledger: one row per content fingerprint
with a state machine ``queued → running → done|failed`` (a retryable
failure re-enters ``queued``).  Claiming is an ``BEGIN IMMEDIATE``
transaction, so concurrent workers — separate *processes* with their
own connections — never run the same job twice; ``executions`` counts
how many times a worker actually started the pipeline (the
deduplication proof the tests assert on) and ``submissions`` how many
times clients asked, so ``submissions / executions`` is the fleet-wide
dedup factor.

Artifacts are written through temporary files and ``os.replace`` and
the job row flips to ``done`` only afterwards, so a reader that sees
``done`` always finds complete artifacts.  Each artifact also gets a
sidecar SHA-256 digest (``<name>.sha256``) of its intended bytes:
downloads verify it before serving, so a torn artifact — out-of-band
corruption, a partial write published by a non-atomic filesystem — is
**quarantined** (moved under ``<root>/quarantine/``) and answered 404
rather than ever served.  :meth:`Store.recover` is the
crash-consistent boot pass: it re-queues ``running`` rows whose
worker pid is dead and quarantines/re-queues ``done`` jobs with torn
or missing artifacts, leaving the ledger consistent after any hard
kill.  ``max_queue_depth`` adds backpressure — a full queue rejects
new work with :class:`~repro.core.errors.QueueFullError` (HTTP 429 +
``Retry-After``) instead of growing without bound — and
:meth:`Store.evict` is the GC half: LRU-by-atime artifact eviction
under a byte budget that refuses to touch queued/running jobs.

Counters from every worker's
:class:`~repro.compact.cache.CacheStats` accumulate in the
``counters`` table — that is what the ``/stats`` endpoint reports as
the fleet-wide cache hit rate — alongside the robustness counters
(``backpressure_rejections``, ``quarantined``, ``recovery_requeued``).
"""

from __future__ import annotations

import hashlib
import json
import os
import shutil
import sqlite3
import time
from contextlib import contextmanager
from pathlib import Path
from typing import Any, Dict, Iterator, List, Optional, Tuple

from ..compact.cache import CacheStats, CompactionCache
from ..core.errors import QueueFullError, ServiceError
from ..obs.render import spans_to_jsonl
from ..obs.trace import Span, parse_token
from . import chaos
from .jobs import JobResult, JobSpec

__all__ = ["Store", "gc_main"]

_SCHEMA = """
CREATE TABLE IF NOT EXISTS jobs (
    fingerprint TEXT PRIMARY KEY,
    spec        TEXT NOT NULL,
    state       TEXT NOT NULL,
    error       TEXT,
    error_code  INTEGER,
    attempts    INTEGER NOT NULL DEFAULT 0,
    executions  INTEGER NOT NULL DEFAULT 0,
    submissions INTEGER NOT NULL DEFAULT 0,
    worker_pid  INTEGER,
    submitted_at REAL,
    started_at   REAL,
    finished_at  REAL
);
CREATE TABLE IF NOT EXISTS timings (
    fingerprint TEXT NOT NULL,
    stage       TEXT NOT NULL,
    seconds     REAL NOT NULL
);
CREATE TABLE IF NOT EXISTS counters (
    name  TEXT PRIMARY KEY,
    value INTEGER NOT NULL DEFAULT 0
);
CREATE TABLE IF NOT EXISTS spans (
    fingerprint TEXT NOT NULL,
    start_s     REAL NOT NULL,
    span        TEXT NOT NULL
);
CREATE INDEX IF NOT EXISTS jobs_state ON jobs (state, submitted_at);
CREATE INDEX IF NOT EXISTS spans_job ON spans (fingerprint, start_s);
"""

#: artifact files every ``done`` job must expose for download
ARTIFACT_NAMES = ("layout.cif", "result.json")

#: artifact files a job *may* additionally expose (absence is not torn)
OPTIONAL_ARTIFACT_NAMES = ("trace.jsonl",)


def _digest(payload: bytes) -> str:
    """The sidecar digest of an artifact's intended bytes."""
    return hashlib.sha256(payload).hexdigest()


def _pid_alive(pid: Optional[int]) -> bool:
    """Whether ``pid`` names a live process on this host."""
    if not pid:
        return False
    try:
        os.kill(pid, 0)
    except ProcessLookupError:
        return False
    except PermissionError:
        return True
    except OSError:
        return False
    return True


class Store:
    """SQLite-backed job ledger plus on-disk artifacts and shared cache.

    Safe for concurrent use from many threads and processes: every
    operation opens its own short-lived connection (WAL journal, busy
    timeout), and the claim path runs under ``BEGIN IMMEDIATE`` so two
    workers can never both claim one job.
    """

    def __init__(
        self,
        root: str,
        max_attempts: int = 2,
        max_queue_depth: Optional[int] = None,
        retry_after: float = 1.0,
    ) -> None:
        """``root`` is created on first use; ``max_attempts`` bounds the
        retry of transiently failed (crashed-worker) jobs.
        ``max_queue_depth`` enables backpressure: a submission that
        would queue past it raises
        :class:`~repro.core.errors.QueueFullError` advising clients to
        retry after ``retry_after`` seconds (``None`` = unbounded, the
        historical behaviour)."""
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)
        (self.root / "artifacts").mkdir(exist_ok=True)
        self.max_attempts = max_attempts
        self.max_queue_depth = max_queue_depth
        self.retry_after = retry_after
        self._db = self.root / "jobs.sqlite"
        with self._connect() as connection:
            connection.executescript(_SCHEMA)
            columns = {
                row["name"]
                for row in connection.execute("PRAGMA table_info(jobs)")
            }
            if "error_code" not in columns:  # pre-robustness ledger
                connection.execute("ALTER TABLE jobs ADD COLUMN error_code INTEGER")
            if "trace_id" not in columns:  # pre-observability ledger
                connection.execute("ALTER TABLE jobs ADD COLUMN trace_id TEXT")
                connection.execute("ALTER TABLE jobs ADD COLUMN trace_parent TEXT")

    @contextmanager
    def _connect(self) -> Iterator[sqlite3.Connection]:
        """A short-lived connection: commit on success, always close."""
        connection = sqlite3.connect(self._db, timeout=30.0)
        try:
            connection.row_factory = sqlite3.Row
            connection.execute("PRAGMA journal_mode=WAL")
            connection.execute("PRAGMA synchronous=NORMAL")
            with connection:
                yield connection
        finally:
            connection.close()

    def compaction_cache(self) -> CompactionCache:
        """A process-local handle on the shared compaction cache."""
        return CompactionCache(str(self.root / "cache"))

    # ------------------------------------------------------------------
    # submission and dedup

    def submit(self, spec: JobSpec, trace: Optional[str] = None) -> Dict[str, Any]:
        """Register ``spec`` and return ``{job, state, deduplicated}``.

        The fingerprint is the job identity: a resubmission of known
        content attaches to the existing row (``deduplicated: True``)
        whatever its state — a ``done`` job is served straight from the
        store, a ``queued``/``running`` one is joined, and a ``failed``
        one is re-queued for a fresh set of attempts.

        ``trace`` is an optional ``"trace_id:span_id"`` propagation
        token (the :data:`repro.obs.trace.TRACE_HEADER` value): it is
        recorded on the job row whenever the submission (re)queues the
        job, so the worker process that later claims it can root its
        spans under the submitting client's.

        When ``max_queue_depth`` is set, a submission that would add a
        *new* queue entry (a fresh job or a failed-job re-queue) while
        the queue is full raises
        :class:`~repro.core.errors.QueueFullError` instead — attaching
        to an existing queued/running/done row is always allowed, so
        backpressure never breaks deduplication.
        """
        fingerprint = spec.fingerprint
        now = time.time()
        queue_full = False
        trace_id, trace_parent = parse_token(trace)
        with self._connect() as connection:
            connection.execute("BEGIN IMMEDIATE")
            row = connection.execute(
                "SELECT state FROM jobs WHERE fingerprint = ?", (fingerprint,)
            ).fetchone()
            state = row["state"] if row is not None else None
            if state in (None, "failed") and self._queue_is_full(connection):
                queue_full = True
            elif row is None:
                connection.execute(
                    "INSERT INTO jobs (fingerprint, spec, state, submissions,"
                    " submitted_at, trace_id, trace_parent)"
                    " VALUES (?, ?, 'queued', 1, ?, ?, ?)",
                    (fingerprint, json.dumps(spec.to_dict()), now,
                     trace_id, trace_parent),
                )
                return {"job": fingerprint, "state": "queued", "deduplicated": False}
            elif state == "failed":
                connection.execute(
                    "UPDATE jobs SET state = 'queued', error = NULL,"
                    " error_code = NULL, attempts = 0,"
                    " submissions = submissions + 1,"
                    " submitted_at = ?, worker_pid = NULL,"
                    " trace_id = ?, trace_parent = ? WHERE fingerprint = ?",
                    (now, trace_id, trace_parent, fingerprint),
                )
                return {"job": fingerprint, "state": "queued", "deduplicated": False}
            else:
                connection.execute(
                    "UPDATE jobs SET submissions = submissions + 1"
                    " WHERE fingerprint = ?",
                    (fingerprint,),
                )
                return {"job": fingerprint, "state": state, "deduplicated": True}
        assert queue_full
        self.bump("backpressure_rejections")
        raise QueueFullError(
            f"queue is full ({self.max_queue_depth} job(s) waiting);"
            f" retry in {self.retry_after:g}s",
            retry_after=self.retry_after,
        )

    def _queue_is_full(self, connection: sqlite3.Connection) -> bool:
        """Whether the queued backlog is at the configured limit."""
        if self.max_queue_depth is None:
            return False
        depth = connection.execute(
            "SELECT COUNT(*) FROM jobs WHERE state = 'queued'"
        ).fetchone()[0]
        return depth >= self.max_queue_depth

    # ------------------------------------------------------------------
    # the worker side

    def claim(self, worker_pid: int) -> Optional[Tuple[str, JobSpec]]:
        """Atomically claim the oldest queued job, or return ``None``.

        The claimed row moves to ``running`` with this worker's pid and
        bumped ``attempts``/``executions`` counters — the single place
        a pipeline execution is accounted.
        """
        with self._connect() as connection:
            connection.execute("BEGIN IMMEDIATE")
            row = connection.execute(
                "SELECT fingerprint, spec FROM jobs WHERE state = 'queued'"
                " ORDER BY submitted_at LIMIT 1"
            ).fetchone()
            if row is None:
                return None
            connection.execute(
                "UPDATE jobs SET state = 'running', worker_pid = ?,"
                " started_at = ?, attempts = attempts + 1,"
                " executions = executions + 1 WHERE fingerprint = ?",
                (worker_pid, time.time(), row["fingerprint"]),
            )
            chaos.fire("store.claim.pre_commit")  # crash here: claim rolls back
        chaos.fire("store.claim.post_commit")  # crash here: running row, dead pid
        return row["fingerprint"], JobSpec.from_dict(json.loads(row["spec"]))

    def complete(
        self,
        fingerprint: str,
        result: JobResult,
        spans: Optional[List[Span]] = None,
    ) -> None:
        """Persist ``result``'s artifacts, then mark the job ``done``.

        Artifact writes happen *before* the state flip, each through a
        temporary file and ``os.replace``, so a client that observes
        ``done`` can always download complete artifacts.  A sidecar
        SHA-256 of the intended bytes is written *before* each
        artifact: a later read that does not match it (out-of-band
        corruption, a torn write on a filesystem without atomic
        rename) is detected and quarantined rather than served.

        ``spans`` are the worker's finished trace spans for this job;
        together with any spans recorded earlier (the server's
        submission spans) they become the optional ``trace.jsonl``
        artifact, digest-verified like every other artifact but never
        *required* — a trace-less job is complete, not torn.
        """
        if spans:
            self.record_spans(fingerprint, spans)
        chaos.fire("store.complete.pre_artifact")
        directory = self.artifact_dir(fingerprint)
        directory.mkdir(parents=True, exist_ok=True)
        self._write_trace_artifact(fingerprint, directory)
        payloads = {
            "layout.cif": result.cif.encode("utf-8"),
            "result.json": (
                json.dumps(result.to_dict(), indent=2) + "\n"
            ).encode("utf-8"),
        }
        for name, payload in payloads.items():
            self._write_atomic(
                directory / f"{name}.sha256",
                (_digest(payload) + "\n").encode("ascii"),
            )
            self._write_atomic(
                directory / name,
                chaos.mangle("store.artifact.write", payload),
            )
        with self._connect() as connection:
            connection.execute("BEGIN IMMEDIATE")
            connection.execute(
                "UPDATE jobs SET state = 'done', error = NULL, error_code = NULL,"
                " finished_at = ?, worker_pid = NULL WHERE fingerprint = ?",
                (time.time(), fingerprint),
            )
            connection.executemany(
                "INSERT INTO timings (fingerprint, stage, seconds) VALUES (?, ?, ?)",
                [
                    (fingerprint, stage, seconds)
                    for stage, seconds in result.timings.items()
                ],
            )
            chaos.fire("store.complete.pre_commit")  # crash: artifacts, no flip
        chaos.fire("store.complete.post_commit")

    def fail(
        self,
        fingerprint: str,
        error: str,
        retry: bool = False,
        expect_pid: Optional[int] = None,
        code: Optional[int] = None,
    ) -> Optional[str]:
        """Record a failure; returns the job's resulting state.

        ``retry=True`` (transient failures: a crashed worker) re-queues
        the job until ``max_attempts`` is exhausted.  ``expect_pid``
        guards the supervisor's crash sweep: the update only applies if
        the job is still running under that pid — ``None`` is returned
        (and nothing changes) when it is not, so a job whose worker
        finished or was re-judged a heartbeat ago is left alone.
        ``code`` is the CLI exit-code family of the failure
        (:func:`repro.cli.exit_code_for`), recorded on the terminal
        ``failed`` row so every surfaced failure is classifiable.
        """
        with self._connect() as connection:
            connection.execute("BEGIN IMMEDIATE")
            guard = "state = 'running'"
            values: List[Any] = []
            if expect_pid is not None:
                guard += " AND worker_pid = ?"
                values.append(expect_pid)
            row = connection.execute(
                f"SELECT attempts, state FROM jobs WHERE fingerprint = ? AND {guard}",
                [fingerprint, *values],
            ).fetchone()
            if row is None:
                return None
            if retry and row["attempts"] < self.max_attempts:
                connection.execute(
                    "UPDATE jobs SET state = 'queued', worker_pid = NULL,"
                    " error = ? WHERE fingerprint = ?",
                    (error, fingerprint),
                )
                return "queued"
            connection.execute(
                "UPDATE jobs SET state = 'failed', worker_pid = NULL,"
                " error = ?, error_code = ?, finished_at = ? WHERE fingerprint = ?",
                (error, code, time.time(), fingerprint),
            )
            return "failed"

    def record_cache_stats(self, stats: CacheStats) -> None:
        """Accumulate a worker's cache-counter deltas fleet-wide."""
        with self._connect() as connection:
            connection.execute("BEGIN IMMEDIATE")
            for name, value in stats.to_dict().items():
                if value:
                    connection.execute(
                        "INSERT INTO counters (name, value) VALUES (?, ?)"
                        " ON CONFLICT(name) DO UPDATE SET value = value + ?",
                        (f"cache_{name}", value, value),
                    )

    # ------------------------------------------------------------------
    # trace spans

    def record_spans(self, fingerprint: str, spans: List[Span]) -> None:
        """Append finished spans to a job's trace in the ledger."""
        if not spans:
            return
        with self._connect() as connection:
            connection.execute("BEGIN IMMEDIATE")
            connection.executemany(
                "INSERT INTO spans (fingerprint, start_s, span) VALUES (?, ?, ?)",
                [
                    (fingerprint, s.start_s, json.dumps(s.to_dict(), sort_keys=True))
                    for s in spans
                ],
            )

    def trace_spans(self, fingerprint: str) -> List[Span]:
        """Every recorded span of a job, oldest first."""
        with self._connect() as connection:
            rows = connection.execute(
                "SELECT span FROM spans WHERE fingerprint = ?"
                " ORDER BY start_s, rowid",
                (fingerprint,),
            ).fetchall()
        return [Span.from_dict(json.loads(row["span"])) for row in rows]

    def append_trace(self, fingerprint: str, spans: List[Span]) -> bool:
        """Attach late spans (the client's side) to a finished trace.

        The client's submit/wait spans only finish *after* the worker
        completed the job, so they arrive via ``POST
        /jobs/<fp>/trace``.  They are appended to the span ledger and,
        when the job is already ``done``, the ``trace.jsonl`` artifact
        (and its digest) is rewritten to include them.  Returns whether
        the job exists.
        """
        status = self.status(fingerprint)
        if status is None:
            return False
        self.record_spans(fingerprint, spans)
        if status["state"] == "done":
            directory = self.artifact_dir(fingerprint)
            if directory.is_dir():
                self._write_trace_artifact(fingerprint, directory)
        return True

    def _write_trace_artifact(self, fingerprint: str, directory: Path) -> None:
        """(Re)write ``trace.jsonl`` + digest from the span ledger.

        Deliberately *not* routed through the ``store.artifact.write``
        chaos seam: the seeded fault plans count mangle calls to aim at
        specific required-artifact writes, and the optional trace must
        not shift their trigger windows.
        """
        spans = self.trace_spans(fingerprint)
        if not spans:
            return
        payload = spans_to_jsonl(spans)
        self._write_atomic(
            directory / "trace.jsonl.sha256",
            (_digest(payload) + "\n").encode("ascii"),
        )
        self._write_atomic(directory / "trace.jsonl", payload)

    # ------------------------------------------------------------------
    # the client side

    def status(self, fingerprint: str) -> Optional[Dict[str, Any]]:
        """The job row as a dict, or ``None`` for an unknown job."""
        with self._connect() as connection:
            row = connection.execute(
                "SELECT * FROM jobs WHERE fingerprint = ?", (fingerprint,)
            ).fetchone()
        if row is None:
            return None
        status = dict(row)
        status["job"] = status.pop("fingerprint")
        status.pop("spec", None)
        return status

    def result(self, fingerprint: str) -> Optional[Dict[str, Any]]:
        """Status plus the stored ``result.json`` for a ``done`` job."""
        status = self.status(fingerprint)
        if status is None:
            return None
        if status["state"] == "done":
            path = self.artifact_dir(fingerprint) / "result.json"
            try:
                status["result"] = json.loads(path.read_text(encoding="utf-8"))
            except (OSError, ValueError):
                status["result"] = None
                status["error"] = "artifacts missing or unreadable"
        return status

    def artifact_dir(self, fingerprint: str) -> Path:
        """Directory holding one job's artifacts."""
        return self.root / "artifacts" / fingerprint

    def artifact_bytes(self, fingerprint: str, name: str) -> Optional[bytes]:
        """One artifact's verified raw bytes, or ``None`` when absent.

        ``name`` must be a known artifact file — arbitrary paths are
        rejected so the HTTP layer cannot be walked out of the store.
        When a sidecar digest exists, the payload is verified against
        it before being served: a mismatch (a torn or corrupted
        artifact) quarantines the whole artifact directory and returns
        ``None`` — the no-torn-artifact-is-ever-served invariant.
        """
        if name not in ARTIFACT_NAMES + OPTIONAL_ARTIFACT_NAMES:
            available = ", ".join(ARTIFACT_NAMES + OPTIONAL_ARTIFACT_NAMES)
            raise ServiceError(
                f"unknown artifact {name!r} (available: {available})"
            )
        directory = self.artifact_dir(fingerprint)
        try:
            payload = (directory / name).read_bytes()
        except OSError:
            return None
        try:
            expected = (directory / f"{name}.sha256").read_text("ascii").strip()
        except OSError:
            return payload  # pre-digest artifact: serve as before
        if _digest(payload) != expected:
            self.quarantine(fingerprint, reason=f"digest mismatch on {name}")
            return None
        return payload

    def quarantine(self, fingerprint: str, reason: str = "") -> Optional[Path]:
        """Move a job's artifacts out of serving range; returns the spot.

        The directory lands under ``<root>/quarantine/<fingerprint>``
        (merged over any earlier quarantine of the same job) for
        post-mortem inspection, and the ``quarantined`` counter is
        bumped — ``/healthz`` reports it as a degraded signal.
        """
        source = self.artifact_dir(fingerprint)
        if not source.exists():
            return None
        target = self.root / "quarantine" / fingerprint
        if target.exists():
            shutil.rmtree(target, ignore_errors=True)
        target.parent.mkdir(parents=True, exist_ok=True)
        try:
            os.replace(source, target)
        except OSError:
            shutil.rmtree(source, ignore_errors=True)
        self.bump("quarantined")
        return target

    # ------------------------------------------------------------------
    # crash-consistent recovery and GC

    def recover(self) -> Dict[str, Any]:
        """Make the ledger consistent after a hard kill; run at boot.

        Two passes, both idempotent:

        * **orphaned claims** — ``running`` rows whose worker pid is no
          longer alive (the daemon was SIGKILLed, the host rebooted)
          are re-queued as transient failures, or failed for good once
          ``max_attempts`` is exhausted;
        * **artifact integrity** — every ``done`` job's artifacts are
          verified against their sidecar digests; a torn or missing
          artifact quarantines the directory and re-queues the job for
          a fresh execution (content-addressed jobs are always safely
          recomputable).

        Returns ``{"requeued", "failed", "quarantined"}`` fingerprint
        lists and accumulates the ``recovery_requeued`` /
        ``quarantined`` counters that ``/healthz`` reports.
        """
        report: Dict[str, Any] = {"requeued": [], "failed": [], "quarantined": []}
        for job in self.running_jobs():
            pid = job["worker_pid"]
            if _pid_alive(pid):
                continue
            state = self.fail(
                job["fingerprint"],
                f"worker (pid {pid}) lost before restart",
                retry=True,
                expect_pid=pid,
                code=70,
            )
            if state == "queued":
                report["requeued"].append(job["fingerprint"])
            elif state == "failed":
                report["failed"].append(job["fingerprint"])
        with self._connect() as connection:
            done = [
                row["fingerprint"]
                for row in connection.execute(
                    "SELECT fingerprint FROM jobs WHERE state = 'done'"
                )
            ]
        for fingerprint in done:
            if self._artifacts_intact(fingerprint):
                continue
            self.quarantine(fingerprint, reason="recovery integrity check")
            report["quarantined"].append(fingerprint)
            with self._connect() as connection:
                connection.execute("BEGIN IMMEDIATE")
                connection.execute(
                    "UPDATE jobs SET state = 'queued', error = NULL,"
                    " error_code = NULL, attempts = 0, worker_pid = NULL"
                    " WHERE fingerprint = ? AND state = 'done'",
                    (fingerprint,),
                )
            report["requeued"].append(fingerprint)
        if report["requeued"]:
            self.bump("recovery_requeued", len(report["requeued"]))
        return report

    def _artifacts_intact(self, fingerprint: str) -> bool:
        """Whether every artifact of a ``done`` job matches its digest.

        Required artifacts must exist and match; optional artifacts
        (the trace) may be absent, but when present must match — a torn
        trace quarantines the job like any other torn artifact.
        """
        directory = self.artifact_dir(fingerprint)
        for name in ARTIFACT_NAMES + OPTIONAL_ARTIFACT_NAMES:
            try:
                payload = (directory / name).read_bytes()
            except OSError:
                if name in OPTIONAL_ARTIFACT_NAMES:
                    continue  # optional artifact: absence is fine
                return False
            try:
                expected = (directory / f"{name}.sha256").read_text("ascii").strip()
            except OSError:
                continue  # pre-digest artifact: nothing to check against
            if _digest(payload) != expected:
                return False
        return True

    def evict(self, max_bytes: int) -> Dict[str, Any]:
        """Shrink the artifact store below ``max_bytes``, LRU by atime.

        Terminal jobs (``done``/``failed``) are eviction candidates,
        least-recently-used first (file access time, falling back to
        modification time on ``noatime`` mounts); queued and running
        jobs are never touched.  Evicting a job removes its artifacts
        *and* its ledger row — the job is content-addressed, so a
        future submission of the same content simply re-runs the
        pipeline.  Returns ``{"evicted", "freed_bytes", "kept_bytes",
        "skipped_live"}``.
        """
        live = set()
        with self._connect() as connection:
            for row in connection.execute(
                "SELECT fingerprint, state FROM jobs"
                " WHERE state IN ('queued', 'running')"
            ):
                live.add(row["fingerprint"])
        report: Dict[str, Any] = {
            "evicted": 0, "freed_bytes": 0, "kept_bytes": 0, "skipped_live": 0,
        }
        candidates = []
        live_bytes = 0
        artifacts = self.root / "artifacts"
        for directory in artifacts.iterdir() if artifacts.exists() else ():
            if not directory.is_dir():
                continue
            size = used = 0
            for path in directory.iterdir():
                try:
                    stat = path.stat()
                except OSError:
                    continue
                size += stat.st_size
                used = max(used, stat.st_atime, stat.st_mtime)
            if directory.name in live:
                report["skipped_live"] += 1
                live_bytes += size
                continue
            candidates.append((used, size, directory))
        candidates.sort()
        total = live_bytes + sum(size for _, size, _ in candidates)
        evicted = []
        for _, size, directory in candidates:
            if total <= max_bytes:
                break
            shutil.rmtree(directory, ignore_errors=True)
            evicted.append(directory.name)
            total -= size
            report["evicted"] += 1
            report["freed_bytes"] += size
        report["kept_bytes"] = total
        if evicted:
            with self._connect() as connection:
                connection.execute("BEGIN IMMEDIATE")
                for fingerprint in evicted:
                    connection.execute(
                        "DELETE FROM jobs WHERE fingerprint = ?"
                        " AND state IN ('done', 'failed')",
                        (fingerprint,),
                    )
                    connection.execute(
                        "DELETE FROM timings WHERE fingerprint = ?", (fingerprint,)
                    )
                    connection.execute(
                        "DELETE FROM spans WHERE fingerprint = ?", (fingerprint,)
                    )
            self.bump("evicted", len(evicted))
        return report

    # ------------------------------------------------------------------
    # observability

    def bump(self, name: str, value: int = 1) -> None:
        """Accumulate ``value`` onto the persistent counter ``name``."""
        with self._connect() as connection:
            connection.execute("BEGIN IMMEDIATE")
            connection.execute(
                "INSERT INTO counters (name, value) VALUES (?, ?)"
                " ON CONFLICT(name) DO UPDATE SET value = value + ?",
                (name, value, value),
            )

    def counter(self, name: str) -> int:
        """The persistent counter ``name`` (0 when never bumped)."""
        with self._connect() as connection:
            row = connection.execute(
                "SELECT value FROM counters WHERE name = ?", (name,)
            ).fetchone()
        return row["value"] if row is not None else 0

    def jobs(self) -> List[Dict[str, Any]]:
        """Every ledger row as a status dict (the invariant checker's view)."""
        with self._connect() as connection:
            rows = connection.execute("SELECT * FROM jobs").fetchall()
        result = []
        for row in rows:
            status = dict(row)
            status["job"] = status.pop("fingerprint")
            status.pop("spec", None)
            result.append(status)
        return result

    def stage_samples(self) -> List[Tuple[str, float]]:
        """Every per-stage latency sample as ``(stage, seconds)`` rows.

        This is the raw feed for the ``/metrics`` per-stage latency
        histograms — ``stats()`` only carries the mean/max digest.
        """
        with self._connect() as connection:
            rows = connection.execute(
                "SELECT stage, seconds FROM timings ORDER BY rowid"
            ).fetchall()
        return [(row["stage"], row["seconds"]) for row in rows]

    def queue_depth(self) -> int:
        """Number of jobs waiting to be claimed."""
        with self._connect() as connection:
            return connection.execute(
                "SELECT COUNT(*) FROM jobs WHERE state = 'queued'"
            ).fetchone()[0]

    def running_jobs(self) -> List[Dict[str, Any]]:
        """Jobs currently claimed by a worker (for the supervisor)."""
        with self._connect() as connection:
            rows = connection.execute(
                "SELECT fingerprint, worker_pid, started_at, attempts"
                " FROM jobs WHERE state = 'running'"
            ).fetchall()
        return [dict(row) for row in rows]

    def stats(self) -> Dict[str, Any]:
        """Fleet-wide statistics for the ``/stats`` endpoint."""
        with self._connect() as connection:
            states = dict(
                connection.execute(
                    "SELECT state, COUNT(*) FROM jobs GROUP BY state"
                ).fetchall()
            )
            submissions, executions = connection.execute(
                "SELECT COALESCE(SUM(submissions), 0),"
                " COALESCE(SUM(executions), 0) FROM jobs"
            ).fetchone()
            stage_rows = connection.execute(
                "SELECT stage, COUNT(*), AVG(seconds), MAX(seconds)"
                " FROM timings GROUP BY stage"
            ).fetchall()
            counters = dict(
                connection.execute("SELECT name, value FROM counters").fetchall()
            )
        cache_hits = counters.get("cache_hits", 0)
        cache_lookups = cache_hits + counters.get("cache_misses", 0)
        return {
            "jobs": states,
            "queue_depth": states.get("queued", 0),
            "max_queue_depth": self.max_queue_depth,
            "backpressure_rejections": counters.get("backpressure_rejections", 0),
            "quarantined": counters.get("quarantined", 0),
            "recovery_requeued": counters.get("recovery_requeued", 0),
            "evicted": counters.get("evicted", 0),
            "submissions": submissions,
            "executions": executions,
            "dedup_factor": (submissions / executions) if executions else None,
            "stage_latency": {
                stage: {"count": count, "mean_s": mean, "max_s": maximum}
                for stage, count, mean, maximum in stage_rows
            },
            "cache": {
                **counters,
                "hit_rate": (cache_hits / cache_lookups) if cache_lookups else None,
            },
        }

    @staticmethod
    def _write_atomic(path: Path, payload: bytes) -> None:
        """Write ``payload`` to ``path`` via a same-directory rename."""
        temporary = path.with_suffix(path.suffix + f".tmp{os.getpid()}")
        temporary.write_bytes(payload)
        os.replace(temporary, path)


def _parse_size(text: str) -> int:
    """Parse a byte budget: plain bytes or a K/M/G-suffixed figure."""
    text = text.strip()
    multiplier = 1
    suffixes = {"K": 1024, "M": 1024**2, "G": 1024**3}
    if text and text[-1].upper() in suffixes:
        multiplier = suffixes[text[-1].upper()]
        text = text[:-1]
    try:
        value = int(float(text) * multiplier)
    except ValueError:
        raise ServiceError(
            f"bad size {text!r} (use bytes or a K/M/G suffix, e.g. 500M)"
        ) from None
    if value < 0:
        raise ServiceError("size budgets must be non-negative")
    return value


def gc_main(argv: Optional[List[str]] = None) -> int:
    """``repro gc``: evict cold artifacts and cache entries from a root.

    Long-lived service roots grow without bound — every distinct job
    ever run keeps its artifacts, and every distinct cell geometry its
    compaction memo.  This verb applies the LRU byte budgets
    (:meth:`Store.evict` / ``CompactionCache.evict``), never touching
    queued or running jobs, and prints what it freed.  Safe to run
    against the root of a live daemon.
    """
    import argparse

    parser = argparse.ArgumentParser(
        prog="repro gc",
        description="Garbage-collect a layout-service root: evict"
        " least-recently-used artifacts and compaction-cache entries"
        " down to byte budgets, skipping queued/running jobs.",
    )
    parser.add_argument(
        "--root",
        default=".repro-service",
        metavar="DIR",
        help="service state directory (default: .repro-service)",
    )
    parser.add_argument(
        "--max-bytes",
        metavar="SIZE",
        help="artifact-store budget (bytes, or K/M/G-suffixed)",
    )
    parser.add_argument(
        "--cache-max-bytes",
        metavar="SIZE",
        help="compaction-cache budget (bytes, or K/M/G-suffixed)",
    )
    arguments = parser.parse_args(argv)
    if arguments.max_bytes is None and arguments.cache_max_bytes is None:
        parser.error("nothing to do: give --max-bytes and/or --cache-max-bytes")
    if not Path(arguments.root).is_dir():
        raise ServiceError(f"no service root at {arguments.root!r}")
    store = Store(arguments.root)
    if arguments.max_bytes is not None:
        report = store.evict(_parse_size(arguments.max_bytes))
        print(
            f"artifacts: evicted {report['evicted']} job(s),"
            f" freed {report['freed_bytes']} byte(s),"
            f" kept {report['kept_bytes']} byte(s)"
            f" ({report['skipped_live']} live job(s) untouched)"
        )
    if arguments.cache_max_bytes is not None:
        report = store.compaction_cache().evict(
            _parse_size(arguments.cache_max_bytes)
        )
        print(
            f"cache: evicted {report['evicted']} entr(ies),"
            f" freed {report['freed_bytes']} byte(s),"
            f" kept {report['kept_bytes']} byte(s)"
        )
    return 0
