"""The shared, concurrency-safe job and artifact store.

One directory holds the whole service state, so a restarted daemon (or
a second one pointed at the same root) resumes where the last left
off::

    <root>/jobs.sqlite      job/result metadata (WAL, multi-process safe)
    <root>/artifacts/<fp>/  layout.cif + result.json per finished job
    <root>/cache/           the shared CompactionCache directory

The SQLite schema is the job ledger: one row per content fingerprint
with a state machine ``queued → running → done|failed`` (a retryable
failure re-enters ``queued``).  Claiming is an ``BEGIN IMMEDIATE``
transaction, so concurrent workers — separate *processes* with their
own connections — never run the same job twice; ``executions`` counts
how many times a worker actually started the pipeline (the
deduplication proof the tests assert on) and ``submissions`` how many
times clients asked, so ``submissions / executions`` is the fleet-wide
dedup factor.

Artifacts are written through temporary files and ``os.replace`` and
the job row flips to ``done`` only afterwards, so a reader that sees
``done`` always finds complete artifacts.  Counters from every
worker's :class:`~repro.compact.cache.CacheStats` accumulate in the
``counters`` table — that is what the ``/stats`` endpoint reports as
the fleet-wide cache hit rate.
"""

from __future__ import annotations

import json
import os
import sqlite3
import time
from contextlib import contextmanager
from pathlib import Path
from typing import Any, Dict, Iterator, List, Optional, Tuple

from ..compact.cache import CacheStats, CompactionCache
from ..core.errors import ServiceError
from .jobs import JobResult, JobSpec

__all__ = ["Store"]

_SCHEMA = """
CREATE TABLE IF NOT EXISTS jobs (
    fingerprint TEXT PRIMARY KEY,
    spec        TEXT NOT NULL,
    state       TEXT NOT NULL,
    error       TEXT,
    attempts    INTEGER NOT NULL DEFAULT 0,
    executions  INTEGER NOT NULL DEFAULT 0,
    submissions INTEGER NOT NULL DEFAULT 0,
    worker_pid  INTEGER,
    submitted_at REAL,
    started_at   REAL,
    finished_at  REAL
);
CREATE TABLE IF NOT EXISTS timings (
    fingerprint TEXT NOT NULL,
    stage       TEXT NOT NULL,
    seconds     REAL NOT NULL
);
CREATE TABLE IF NOT EXISTS counters (
    name  TEXT PRIMARY KEY,
    value INTEGER NOT NULL DEFAULT 0
);
CREATE INDEX IF NOT EXISTS jobs_state ON jobs (state, submitted_at);
"""

#: artifact files a job may expose for download
ARTIFACT_NAMES = ("layout.cif", "result.json")


class Store:
    """SQLite-backed job ledger plus on-disk artifacts and shared cache.

    Safe for concurrent use from many threads and processes: every
    operation opens its own short-lived connection (WAL journal, busy
    timeout), and the claim path runs under ``BEGIN IMMEDIATE`` so two
    workers can never both claim one job.
    """

    def __init__(self, root: str, max_attempts: int = 2) -> None:
        """``root`` is created on first use; ``max_attempts`` bounds the
        retry of transiently failed (crashed-worker) jobs."""
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)
        (self.root / "artifacts").mkdir(exist_ok=True)
        self.max_attempts = max_attempts
        self._db = self.root / "jobs.sqlite"
        with self._connect() as connection:
            connection.executescript(_SCHEMA)

    @contextmanager
    def _connect(self) -> Iterator[sqlite3.Connection]:
        """A short-lived connection: commit on success, always close."""
        connection = sqlite3.connect(self._db, timeout=30.0)
        try:
            connection.row_factory = sqlite3.Row
            connection.execute("PRAGMA journal_mode=WAL")
            connection.execute("PRAGMA synchronous=NORMAL")
            with connection:
                yield connection
        finally:
            connection.close()

    def compaction_cache(self) -> CompactionCache:
        """A process-local handle on the shared compaction cache."""
        return CompactionCache(str(self.root / "cache"))

    # ------------------------------------------------------------------
    # submission and dedup

    def submit(self, spec: JobSpec) -> Dict[str, Any]:
        """Register ``spec`` and return ``{job, state, deduplicated}``.

        The fingerprint is the job identity: a resubmission of known
        content attaches to the existing row (``deduplicated: True``)
        whatever its state — a ``done`` job is served straight from the
        store, a ``queued``/``running`` one is joined, and a ``failed``
        one is re-queued for a fresh set of attempts.
        """
        fingerprint = spec.fingerprint
        now = time.time()
        with self._connect() as connection:
            connection.execute("BEGIN IMMEDIATE")
            row = connection.execute(
                "SELECT state FROM jobs WHERE fingerprint = ?", (fingerprint,)
            ).fetchone()
            if row is None:
                connection.execute(
                    "INSERT INTO jobs (fingerprint, spec, state, submissions,"
                    " submitted_at) VALUES (?, ?, 'queued', 1, ?)",
                    (fingerprint, json.dumps(spec.to_dict()), now),
                )
                return {"job": fingerprint, "state": "queued", "deduplicated": False}
            state = row["state"]
            if state == "failed":
                connection.execute(
                    "UPDATE jobs SET state = 'queued', error = NULL,"
                    " attempts = 0, submissions = submissions + 1,"
                    " submitted_at = ?, worker_pid = NULL WHERE fingerprint = ?",
                    (now, fingerprint),
                )
                return {"job": fingerprint, "state": "queued", "deduplicated": False}
            connection.execute(
                "UPDATE jobs SET submissions = submissions + 1 WHERE fingerprint = ?",
                (fingerprint,),
            )
            return {"job": fingerprint, "state": state, "deduplicated": True}

    # ------------------------------------------------------------------
    # the worker side

    def claim(self, worker_pid: int) -> Optional[Tuple[str, JobSpec]]:
        """Atomically claim the oldest queued job, or return ``None``.

        The claimed row moves to ``running`` with this worker's pid and
        bumped ``attempts``/``executions`` counters — the single place
        a pipeline execution is accounted.
        """
        with self._connect() as connection:
            connection.execute("BEGIN IMMEDIATE")
            row = connection.execute(
                "SELECT fingerprint, spec FROM jobs WHERE state = 'queued'"
                " ORDER BY submitted_at LIMIT 1"
            ).fetchone()
            if row is None:
                return None
            connection.execute(
                "UPDATE jobs SET state = 'running', worker_pid = ?,"
                " started_at = ?, attempts = attempts + 1,"
                " executions = executions + 1 WHERE fingerprint = ?",
                (worker_pid, time.time(), row["fingerprint"]),
            )
            return row["fingerprint"], JobSpec.from_dict(json.loads(row["spec"]))

    def complete(self, fingerprint: str, result: JobResult) -> None:
        """Persist ``result``'s artifacts, then mark the job ``done``.

        Artifact writes happen *before* the state flip, each through a
        temporary file and ``os.replace``, so a client that observes
        ``done`` can always download complete artifacts.
        """
        directory = self.artifact_dir(fingerprint)
        directory.mkdir(parents=True, exist_ok=True)
        self._write_atomic(directory / "layout.cif", result.cif.encode("utf-8"))
        self._write_atomic(
            directory / "result.json",
            (json.dumps(result.to_dict(), indent=2) + "\n").encode("utf-8"),
        )
        with self._connect() as connection:
            connection.execute("BEGIN IMMEDIATE")
            connection.execute(
                "UPDATE jobs SET state = 'done', error = NULL, finished_at = ?,"
                " worker_pid = NULL WHERE fingerprint = ?",
                (time.time(), fingerprint),
            )
            connection.executemany(
                "INSERT INTO timings (fingerprint, stage, seconds) VALUES (?, ?, ?)",
                [
                    (fingerprint, stage, seconds)
                    for stage, seconds in result.timings.items()
                ],
            )

    def fail(
        self,
        fingerprint: str,
        error: str,
        retry: bool = False,
        expect_pid: Optional[int] = None,
    ) -> Optional[str]:
        """Record a failure; returns the job's resulting state.

        ``retry=True`` (transient failures: a crashed worker) re-queues
        the job until ``max_attempts`` is exhausted.  ``expect_pid``
        guards the supervisor's crash sweep: the update only applies if
        the job is still running under that pid — ``None`` is returned
        (and nothing changes) when it is not, so a job whose worker
        finished or was re-judged a heartbeat ago is left alone.
        """
        with self._connect() as connection:
            connection.execute("BEGIN IMMEDIATE")
            guard = "state = 'running'"
            values: List[Any] = []
            if expect_pid is not None:
                guard += " AND worker_pid = ?"
                values.append(expect_pid)
            row = connection.execute(
                f"SELECT attempts, state FROM jobs WHERE fingerprint = ? AND {guard}",
                [fingerprint, *values],
            ).fetchone()
            if row is None:
                return None
            if retry and row["attempts"] < self.max_attempts:
                connection.execute(
                    "UPDATE jobs SET state = 'queued', worker_pid = NULL,"
                    " error = ? WHERE fingerprint = ?",
                    (error, fingerprint),
                )
                return "queued"
            connection.execute(
                "UPDATE jobs SET state = 'failed', worker_pid = NULL,"
                " error = ?, finished_at = ? WHERE fingerprint = ?",
                (error, time.time(), fingerprint),
            )
            return "failed"

    def record_cache_stats(self, stats: CacheStats) -> None:
        """Accumulate a worker's cache-counter deltas fleet-wide."""
        with self._connect() as connection:
            connection.execute("BEGIN IMMEDIATE")
            for name, value in stats.to_dict().items():
                if value:
                    connection.execute(
                        "INSERT INTO counters (name, value) VALUES (?, ?)"
                        " ON CONFLICT(name) DO UPDATE SET value = value + ?",
                        (f"cache_{name}", value, value),
                    )

    # ------------------------------------------------------------------
    # the client side

    def status(self, fingerprint: str) -> Optional[Dict[str, Any]]:
        """The job row as a dict, or ``None`` for an unknown job."""
        with self._connect() as connection:
            row = connection.execute(
                "SELECT * FROM jobs WHERE fingerprint = ?", (fingerprint,)
            ).fetchone()
        if row is None:
            return None
        status = dict(row)
        status["job"] = status.pop("fingerprint")
        status.pop("spec", None)
        return status

    def result(self, fingerprint: str) -> Optional[Dict[str, Any]]:
        """Status plus the stored ``result.json`` for a ``done`` job."""
        status = self.status(fingerprint)
        if status is None:
            return None
        if status["state"] == "done":
            path = self.artifact_dir(fingerprint) / "result.json"
            try:
                status["result"] = json.loads(path.read_text(encoding="utf-8"))
            except (OSError, ValueError):
                status["result"] = None
                status["error"] = "artifacts missing or unreadable"
        return status

    def artifact_dir(self, fingerprint: str) -> Path:
        """Directory holding one job's artifacts."""
        return self.root / "artifacts" / fingerprint

    def artifact_bytes(self, fingerprint: str, name: str) -> Optional[bytes]:
        """One artifact's raw bytes, or ``None`` when absent.

        ``name`` must be a known artifact file — arbitrary paths are
        rejected so the HTTP layer cannot be walked out of the store.
        """
        if name not in ARTIFACT_NAMES:
            raise ServiceError(
                f"unknown artifact {name!r} (available: {', '.join(ARTIFACT_NAMES)})"
            )
        path = self.artifact_dir(fingerprint) / name
        try:
            return path.read_bytes()
        except OSError:
            return None

    # ------------------------------------------------------------------
    # observability

    def queue_depth(self) -> int:
        """Number of jobs waiting to be claimed."""
        with self._connect() as connection:
            return connection.execute(
                "SELECT COUNT(*) FROM jobs WHERE state = 'queued'"
            ).fetchone()[0]

    def running_jobs(self) -> List[Dict[str, Any]]:
        """Jobs currently claimed by a worker (for the supervisor)."""
        with self._connect() as connection:
            rows = connection.execute(
                "SELECT fingerprint, worker_pid, started_at, attempts"
                " FROM jobs WHERE state = 'running'"
            ).fetchall()
        return [dict(row) for row in rows]

    def stats(self) -> Dict[str, Any]:
        """Fleet-wide statistics for the ``/stats`` endpoint."""
        with self._connect() as connection:
            states = dict(
                connection.execute(
                    "SELECT state, COUNT(*) FROM jobs GROUP BY state"
                ).fetchall()
            )
            submissions, executions = connection.execute(
                "SELECT COALESCE(SUM(submissions), 0),"
                " COALESCE(SUM(executions), 0) FROM jobs"
            ).fetchone()
            stage_rows = connection.execute(
                "SELECT stage, COUNT(*), AVG(seconds), MAX(seconds)"
                " FROM timings GROUP BY stage"
            ).fetchall()
            counters = dict(
                connection.execute("SELECT name, value FROM counters").fetchall()
            )
        cache_hits = counters.get("cache_hits", 0)
        cache_lookups = cache_hits + counters.get("cache_misses", 0)
        return {
            "jobs": states,
            "queue_depth": states.get("queued", 0),
            "submissions": submissions,
            "executions": executions,
            "dedup_factor": (submissions / executions) if executions else None,
            "stage_latency": {
                stage: {"count": count, "mean_s": mean, "max_s": maximum}
                for stage, count, mean, maximum in stage_rows
            },
            "cache": {
                **counters,
                "hit_rate": (cache_hits / cache_lookups) if cache_lookups else None,
            },
        }

    @staticmethod
    def _write_atomic(path: Path, payload: bytes) -> None:
        """Write ``payload`` to ``path`` via a same-directory rename."""
        temporary = path.with_suffix(path.suffix + f".tmp{os.getpid()}")
        temporary.write_bytes(payload)
        os.replace(temporary, path)
