"""Layout-as-a-service: job queue, artifact store, worker pool, HTTP API.

The batch CLI (:mod:`repro.cli`) runs one generate → compact → route →
verify pipeline per invocation.  This package wraps the same pure
pipeline functions in a long-running service:

* :mod:`repro.service.jobs` — the job model.  A request is a
  canonicalised :class:`JobSpec` (generator kind, parameter-file text,
  technology, compact/route/verify options) hashed to a content
  fingerprint with the :mod:`repro.compact.cache` machinery, so two
  semantically identical requests *are* the same job;
* :mod:`repro.service.store` — a SQLite-backed job/result/metadata
  store plus on-disk artifacts keyed by fingerprint, wrapping a shared
  :class:`~repro.compact.cache.CompactionCache` so compaction and
  extraction memos are shared across the whole worker fleet and
  survive restarts;
* :mod:`repro.service.workers` — a queue-driven pool of worker
  processes with per-job timeout, bounded retry on transient failure,
  crash isolation, and graceful drain;
* :mod:`repro.service.server` / :mod:`repro.service.client` — a
  stdlib ``ThreadingHTTPServer`` JSON API (submit / status / result /
  artifact / health / stats) and a thin ``urllib`` client with capped
  jittered retry/backoff, exposed as the ``repro serve`` and
  ``repro submit`` CLI verbs;
* :mod:`repro.service.chaos` — deterministic, seeded fault injection
  (crashes, torn writes, disk errors, stalls, dropped connections)
  behind narrow hook seams, driving the chaos test suite;
* :mod:`repro.service.metrics` — the ``/metrics`` registry builder,
  folding the scattered service counters and per-stage latencies into
  one :class:`~repro.obs.metrics.MetricsRegistry` (Prometheus text at
  ``GET /metrics``, JSON under ``/stats``).

The service is also traced end to end (:mod:`repro.obs`): a submission
carrying an ``X-Repro-Trace-Id`` header joins the client's trace, the
worker roots its execution spans under it via the job row, and the
finished span tree is persisted as a digest-verified ``trace.jsonl``
artifact rendered by ``repro trace <fingerprint>``.

Deduplication is end-to-end: N identical concurrent submissions cause
exactly one pipeline execution, and a warm resubmission is served from
the store without touching a worker.  The service is crash-consistent:
``Store.recover()`` runs on every boot to re-queue orphaned jobs and
quarantine torn artifacts, submissions shed load with 429 +
``Retry-After`` once the queue is full, and ``repro gc``
(:func:`gc_main`) evicts least-recently-used artifacts down to a byte
budget without touching live jobs.
"""

from .chaos import FaultPlan, FaultSpec
from .client import ServiceClient, stats_main, submit_main, trace_main
from .jobs import JobResult, JobSpec, execute_job, fingerprint_spec
from .metrics import build_registry
from .server import DEFAULT_PORT, LayoutServer, serve_main
from .store import Store, gc_main
from .workers import WorkerPool

__all__ = [
    "DEFAULT_PORT",
    "FaultPlan",
    "FaultSpec",
    "JobResult",
    "JobSpec",
    "LayoutServer",
    "ServiceClient",
    "Store",
    "WorkerPool",
    "build_registry",
    "execute_job",
    "fingerprint_spec",
    "gc_main",
    "serve_main",
    "stats_main",
    "submit_main",
    "trace_main",
]
