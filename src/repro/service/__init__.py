"""Layout-as-a-service: job queue, artifact store, worker pool, HTTP API.

The batch CLI (:mod:`repro.cli`) runs one generate → compact → route →
verify pipeline per invocation.  This package wraps the same pure
pipeline functions in a long-running service:

* :mod:`repro.service.jobs` — the job model.  A request is a
  canonicalised :class:`JobSpec` (generator kind, parameter-file text,
  technology, compact/route/verify options) hashed to a content
  fingerprint with the :mod:`repro.compact.cache` machinery, so two
  semantically identical requests *are* the same job;
* :mod:`repro.service.store` — a SQLite-backed job/result/metadata
  store plus on-disk artifacts keyed by fingerprint, wrapping a shared
  :class:`~repro.compact.cache.CompactionCache` so compaction and
  extraction memos are shared across the whole worker fleet and
  survive restarts;
* :mod:`repro.service.workers` — a queue-driven pool of worker
  processes with per-job timeout, bounded retry on transient failure,
  crash isolation, and graceful drain;
* :mod:`repro.service.server` / :mod:`repro.service.client` — a
  stdlib ``ThreadingHTTPServer`` JSON API (submit / status / result /
  artifact / health / stats) and a thin ``urllib`` client, exposed as
  the ``repro serve`` and ``repro submit`` CLI verbs.

Deduplication is end-to-end: N identical concurrent submissions cause
exactly one pipeline execution, and a warm resubmission is served from
the store without touching a worker.
"""

from .client import ServiceClient, submit_main
from .jobs import JobResult, JobSpec, execute_job, fingerprint_spec
from .server import DEFAULT_PORT, LayoutServer, serve_main
from .store import Store
from .workers import WorkerPool

__all__ = [
    "DEFAULT_PORT",
    "JobResult",
    "JobSpec",
    "LayoutServer",
    "ServiceClient",
    "Store",
    "WorkerPool",
    "execute_job",
    "fingerprint_spec",
    "serve_main",
    "submit_main",
]
