"""Build the service's ``/metrics`` registry from live state.

One function, :func:`build_registry`, folds every scattered counter the
service already keeps — job-state counts, the backpressure /
quarantine / recovery / eviction counters, fleet-wide cache hits and
misses, worker-pool supervisor counts, chaos trip counts, and the
per-stage latency samples — into a single
:class:`~repro.obs.metrics.MetricsRegistry`.  The server renders it as
Prometheus text at ``GET /metrics`` and as JSON under the ``metrics``
key of ``/stats``.

Metric naming follows the Prometheus conventions: a ``repro_`` prefix,
``_total`` suffix on counters, base units in the name
(``repro_stage_latency_seconds``), and labels for the dimensions that
vary (``state=``, ``stage=``, ``site=``).
"""

from typing import Any, Dict, Optional

from .. import obs
from . import chaos

__all__ = ["build_registry"]

_JOB_STATES = ("queued", "running", "done", "failed")


def build_registry(
    store: Any, pool: Optional[Any] = None
) -> "obs.MetricsRegistry":
    """Snapshot a :class:`~repro.service.store.Store` (and optionally a
    :class:`~repro.service.workers.WorkerPool`) into a registry.

    ``store`` provides the ledger-backed series; ``pool`` (when the
    caller is the live daemon rather than an offline tool) adds the
    configured/alive worker gauges and the supervisor's timeout /
    crash / respawn counters.
    """
    stats: Dict[str, Any] = store.stats()
    registry = obs.MetricsRegistry()

    for state in _JOB_STATES:
        registry.gauge(
            "repro_jobs",
            "Jobs in the ledger by state.",
            labels={"state": state},
        ).set(stats["jobs"].get(state, 0))
    registry.gauge(
        "repro_queue_depth", "Jobs waiting to be claimed."
    ).set(stats["queue_depth"])

    registry.counter(
        "repro_submissions_total", "Job submissions accepted."
    ).inc(stats["submissions"])
    registry.counter(
        "repro_executions_total", "Pipeline executions actually started."
    ).inc(stats["executions"])
    for name, help_text in (
        ("backpressure_rejections", "Submissions rejected by backpressure."),
        ("quarantined", "Artifact directories quarantined."),
        ("recovery_requeued", "Jobs re-queued by crash recovery."),
        ("evicted", "Jobs evicted by the garbage collector."),
    ):
        registry.counter(f"repro_{name}_total", help_text).inc(stats[name])

    for name, value in stats["cache"].items():
        if name == "hit_rate" or not str(name).startswith("cache_"):
            continue
        registry.counter(
            f"repro_{name}_total", "Fleet-wide compaction-cache counter."
        ).inc(value)

    stage_histograms = registry  # per-stage latency from the raw samples
    for stage, seconds in store.stage_samples():
        stage_histograms.histogram(
            "repro_stage_latency_seconds",
            "Pipeline stage latency.",
            labels={"stage": stage},
        ).observe(seconds)

    if pool is not None:
        registry.gauge(
            "repro_workers_configured", "Worker processes configured."
        ).set(getattr(pool, "workers", 0))
        registry.gauge(
            "repro_workers_alive", "Worker processes currently alive."
        ).set(pool.alive_workers())
        for name, help_text in (
            ("timeouts", "Jobs killed by the per-job timeout."),
            ("crashes", "Worker processes that died mid-job."),
            ("respawns", "Worker processes respawned by the supervisor."),
        ):
            registry.counter(f"repro_worker_{name}_total", help_text).inc(
                getattr(pool, name, 0)
            )

    for site, count in sorted(chaos.trip_counts().items()):
        registry.counter(
            "repro_chaos_trips_total",
            "Fault-injection trips by site.",
            labels={"site": site},
        ).inc(count)

    return registry
