"""The worker pool: queue-driven processes running the pure pipeline.

Workers are separate *processes* (crash isolation: a dying worker takes
down exactly one job, never the daemon), each looping claim → execute →
complete against the shared :class:`~repro.service.store.Store`.  The
store is the queue — claiming is an atomic SQLite transaction — so
workers need no channel to the parent beyond the stop event.

A supervisor thread in the parent enforces the pool contract:

* **timeout** — a job running longer than ``job_timeout`` gets its
  worker terminated and is failed with the timeout in its error (a
  deterministic runaway would not get faster on retry);
* **crash isolation and bounded retry** — a worker that dies mid-job
  (segfault, OOM kill, ``kill -9``) fails only its own job; the job is
  re-queued as a transient failure until the store's ``max_attempts``
  is exhausted, and a replacement worker is spawned;
* **graceful drain** — :meth:`WorkerPool.stop` with ``drain=True``
  (what the daemon's SIGTERM handler calls) lets every in-flight job
  finish before the workers exit; still-queued jobs stay queued in the
  store for the next boot.
"""

from __future__ import annotations

import copy
import multiprocessing
import os
import threading
import time
from typing import Dict, List, Optional

from ..core.errors import RsgError
from ..obs.trace import Span, Tracer, activated, service_enabled
from . import chaos
from .jobs import execute_job
from .store import Store

__all__ = ["WorkerPool", "worker_loop"]


def _job_tracer(store: Store, fingerprint: str) -> Optional[Tracer]:
    """A tracer continuing the job's trace, or ``None`` when disabled.

    The trace id and parent span id travel in the job row (written at
    submission time from the ``X-Repro-Trace-Id`` header), which is how
    the trace crosses the HTTP-then-process boundary into this worker.
    """
    if not service_enabled():
        return None
    try:
        status = store.status(fingerprint) or {}
    except OSError:
        status = {}
    tracer = Tracer(status.get("trace_id") or None)
    tracer.job_parent = status.get("trace_parent") or None  # type: ignore[attr-defined]
    return tracer


def _claim_span(
    tracer: Tracer, parent_id: str, start_wall: float, seconds: float
) -> Span:
    """Synthesize the ``store.claim`` span from its measured timing.

    The claim necessarily happens *before* the worker can read the
    job's trace token, so its span is reconstructed afterwards from the
    wall-clock start and monotonic duration measured around the call.
    """
    return Span(
        name="store.claim",
        trace_id=tracer.trace_id,
        parent_id=parent_id,
        start_s=start_wall,
        duration_s=seconds,
    )


def worker_loop(root: str, stop_event, poll_interval: float = 0.05) -> None:
    """One worker process: claim jobs from the store until stopped.

    Runs the pure pipeline for each claimed job with a process-local
    handle on the shared compaction cache, records the cache-counter
    deltas fleet-wide after every job, and exits cleanly when
    ``stop_event`` is set (finishing the job in hand first — the drain
    contract).  Pipeline errors fail the job deterministically (no
    retry) with their CLI exit-code family recorded; only the
    supervisor treats worker death as transient.  Store I/O hiccups
    (a full disk while persisting artifacts, a transient claim error)
    fail the job in hand or back off — they never kill the worker.
    """
    chaos.maybe_load_from_env()
    from ..cli import exit_code_for

    store = Store(root)
    cache = store.compaction_cache()
    pid = os.getpid()
    while not stop_event.is_set():
        claim_wall = time.time()
        claim_t0 = time.perf_counter()
        try:
            claim = store.claim(pid)
        except OSError:
            time.sleep(poll_interval)  # transient store I/O: back off, retry
            continue
        claim_seconds = time.perf_counter() - claim_t0
        if claim is None:
            time.sleep(poll_interval)
            continue
        fingerprint, spec = claim
        chaos.fire("worker.claimed")
        before = copy.copy(cache.cache_stats)
        tracer = _job_tracer(store, fingerprint)
        try:
            if tracer is not None:
                with activated(tracer):
                    with tracer.span(
                        "worker.execute",
                        parent_id=tracer.job_parent,
                        worker_pid=pid,
                    ) as root:
                        tracer.add(
                            _claim_span(
                                tracer, root.span_id, claim_wall, claim_seconds
                            )
                        )
                        result = execute_job(spec, cache=cache)
            else:
                result = execute_job(spec, cache=cache)
        except RsgError as error:
            store.fail(
                fingerprint,
                f"{type(error).__name__}: {error}",
                code=exit_code_for(error),
            )
            _record_failure_spans(store, fingerprint, tracer)
        except Exception as error:  # noqa: BLE001 — a worker must not die on a job
            store.fail(
                fingerprint,
                f"internal error: {type(error).__name__}: {error}",
                code=exit_code_for(error),
            )
            _record_failure_spans(store, fingerprint, tracer)
        else:
            chaos.fire("worker.pre_complete")
            try:
                store.complete(
                    fingerprint,
                    result,
                    spans=tracer.drain() if tracer is not None else None,
                )
            except OSError as error:
                store.fail(
                    fingerprint,
                    f"artifact write failed: {error}",
                    code=exit_code_for(error),
                )
        store.record_cache_stats(cache.cache_stats.diff(before))


def _record_failure_spans(
    store: Store, fingerprint: str, tracer: Optional[Tracer]
) -> None:
    """Keep a failed job's spans in the ledger for post-mortems."""
    if tracer is None:
        return
    try:
        store.record_spans(fingerprint, tracer.drain())
    except OSError:
        pass  # telemetry must never mask the recorded failure


class WorkerPool:
    """A supervised pool of worker processes over one store root."""

    def __init__(
        self,
        root: str,
        workers: int = 2,
        job_timeout: float = 300.0,
        max_attempts: int = 2,
        poll_interval: float = 0.05,
        max_queue_depth: Optional[int] = None,
    ) -> None:
        """``job_timeout`` bounds one pipeline execution;
        ``max_attempts`` bounds retries of crashed-worker jobs;
        ``poll_interval`` is both the workers' queue poll and the
        supervisor's heartbeat; ``max_queue_depth`` enables the
        store's submission backpressure (429 at the HTTP layer)."""
        if workers < 1:
            raise ValueError(f"workers must be >= 1, not {workers}")
        self.root = root
        self.workers = workers
        self.job_timeout = job_timeout
        self.poll_interval = poll_interval
        self.store = Store(
            root, max_attempts=max_attempts, max_queue_depth=max_queue_depth
        )
        self._context = multiprocessing.get_context()
        self._stop = self._context.Event()
        self._processes: List[multiprocessing.Process] = []
        self._supervisor: Optional[threading.Thread] = None
        self._stopping = False
        self.timeouts = 0
        self.crashes = 0
        self.respawns = 0

    def start(self) -> None:
        """Spawn the workers and the supervisor heartbeat."""
        self._stopping = False
        self._stop.clear()
        for _ in range(self.workers):
            self._spawn()
        self._supervisor = threading.Thread(
            target=self._supervise, name="repro-service-supervisor", daemon=True
        )
        self._supervisor.start()

    def _spawn(self) -> None:
        process = self._context.Process(
            target=worker_loop,
            args=(self.root, self._stop, self.poll_interval),
            daemon=True,
        )
        process.start()
        self._processes.append(process)

    def alive_workers(self) -> int:
        """How many worker processes are currently running."""
        return sum(1 for process in self._processes if process.is_alive())

    def worker_pids(self) -> List[int]:
        """PIDs of the live workers (the robustness tests aim at these)."""
        return [
            process.pid
            for process in self._processes
            if process.is_alive() and process.pid is not None
        ]

    def _supervise(self) -> None:
        """Heartbeat: enforce timeouts, sweep crashes, respawn workers."""
        while not self._stopping:
            time.sleep(self.poll_interval)
            try:
                self._enforce_timeouts()
                self._sweep_crashes()
            except Exception:  # noqa: BLE001 — the heartbeat must survive
                pass

    def _enforce_timeouts(self) -> None:
        now = time.time()
        by_pid: Dict[int, multiprocessing.Process] = {
            process.pid: process
            for process in self._processes
            if process.pid is not None
        }
        for job in self.store.running_jobs():
            started = job["started_at"] or now
            if now - started <= self.job_timeout:
                continue
            process = by_pid.get(job["worker_pid"])
            if process is not None and process.is_alive():
                process.terminate()
                process.join(timeout=5.0)
            state = self.store.fail(
                job["fingerprint"],
                f"timed out after {self.job_timeout:g}s",
                retry=False,
                expect_pid=job["worker_pid"],
                code=70,
            )
            if state is not None:
                self.timeouts += 1

    def _sweep_crashes(self) -> None:
        dead = [process for process in self._processes if not process.is_alive()]
        if not dead:
            return
        dead_pids = {process.pid for process in dead}
        self._processes = [
            process for process in self._processes if process.is_alive()
        ]
        for job in self.store.running_jobs():
            if job["worker_pid"] in dead_pids:
                state = self.store.fail(
                    job["fingerprint"],
                    f"worker (pid {job['worker_pid']}) died mid-job",
                    retry=True,
                    expect_pid=job["worker_pid"],
                    code=70,
                )
                if state is not None:
                    self.crashes += 1
        if not self._stopping:
            while len(self._processes) < self.workers:
                self._spawn()
                self.respawns += 1

    def stop(self, drain: bool = True, timeout: float = 30.0) -> int:
        """Stop the pool; returns how many jobs were in flight.

        ``drain=True`` waits (up to ``timeout``) for in-flight jobs to
        finish — the workers exit after completing the job in hand.
        ``drain=False`` terminates the workers immediately; their jobs
        are swept back to the queue as transient failures on the next
        boot's claim, or by a concurrently running supervisor.
        """
        in_flight = len(self.store.running_jobs())
        self._stopping = True
        self._stop.set()
        if not drain:
            for process in self._processes:
                if process.is_alive():
                    process.terminate()
        deadline = time.time() + timeout
        for process in self._processes:
            remaining = max(0.1, deadline - time.time())
            process.join(timeout=remaining)
            if process.is_alive():
                process.terminate()
                process.join(timeout=5.0)
        if self._supervisor is not None:
            self._supervisor.join(timeout=5.0)
        self._processes = []
        return in_flight
