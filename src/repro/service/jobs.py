"""The job model: canonicalised request specs and the pure pipeline.

A service request is a :class:`JobSpec` — everything that determines
the output layout: which generator library to use (a builtin *kind* or
inline sample/design texts), the parameter-file text, the technology,
and the compact / route / verify options.  :meth:`JobSpec.canonical`
normalises the spec so that semantically identical requests collapse to
one job:

* the parameter-file text is *parsed*, not hashed verbatim — key
  order, whitespace, and comments do not change the fingerprint, while
  any binding change does;
* default-equal options are folded onto their defaults (``solver=None``
  equals the registry default; ``sim_vectors=None`` equals the
  verification driver's cap; options that have no effect for the
  request, like a solver without compaction, are rejected outright the
  way the CLI rejects them);
* builtin kinds resolve to their library texts, so a library change
  changes the fingerprint (no stale artifact survives an upgrade).

:func:`execute_job` is the pure pipeline the workers run: generate →
compact → route → verify → emit, returning a :class:`JobResult` with
the CIF text, the stage reports, and per-stage wall timings.  Each
stage runs inside a ``job.<stage>`` trace span
(:mod:`repro.obs.trace`) and the ``timings`` dict is a thin view over
those spans — one clock, two presentations.  It takes an optional
shared :class:`~repro.compact.cache.CompactionCache`, which is how the
store's compaction memos reach every worker.
"""

from __future__ import annotations

import json
import time
from dataclasses import asdict, dataclass, field, fields
from typing import Any, Dict, List, Optional, Tuple

from ..compact import TECH_A, TECH_B, CompactionCache, HierarchicalCompactor, compact_cell
from ..compact.cache import cache_key
from ..compact.solvers import DEFAULT_SOLVER, available_solvers
from ..core.cell import CellDefinition
from ..core.errors import RsgError, ServiceError, VerificationError
from ..core.operators import Rsg
from ..lang.environment import Alias
from ..lang.interpreter import Interpreter
from ..lang.param_file import parse_parameters
from ..layout.cif import cif_text
from ..layout.sample import loads_sample
from ..obs import trace as obs_trace

__all__ = ["JobSpec", "JobResult", "execute_job", "fingerprint_spec"]

_COMPACT_MODES = ("x", "y", "xy", "yx", "hier", "hier:x", "hier:y", "hier:xy", "hier:yx")
_VERIFY_MODES = ("lvs", "sim", "all")
_ROUTERS = ("auto", "river", "channel")
_TECHS = {"A": TECH_A, "B": TECH_B}


def _builtin_kinds() -> Dict[str, Tuple[str, str, str, str]]:
    """Builtin generator kinds: name -> (sample, design, parameters, cell).

    Resolved lazily so importing the service does not pull every
    generator library in.
    """
    from ..multiplier import DESIGN_FILE, MULTIPLIER_SAMPLE, PARAMETER_FILE

    return {
        "multiplier": (MULTIPLIER_SAMPLE, DESIGN_FILE, PARAMETER_FILE, "thewholething"),
    }


@dataclass(frozen=True)
class JobSpec:
    """A self-contained, canonicalisable layout-generation request.

    ``kind`` is ``"custom"`` (inline ``sample_text`` / ``design_text``)
    or a builtin generator kind (currently ``"multiplier"``).
    ``parameters`` is parameter-file text layered over the kind's base
    parameters.  ``delay`` injects synthetic pipeline latency (seconds)
    — a load- and robustness-testing knob, part of the fingerprint like
    every other field that changes what a worker does.
    """

    kind: str = "custom"
    parameters: str = ""
    sample_text: Optional[str] = None
    design_text: Optional[str] = None
    output_cell: Optional[str] = None
    tech: str = "A"
    compact: Optional[str] = None
    solver: Optional[str] = None
    verify: Optional[str] = None
    sim_vectors: Optional[int] = None
    route_text: Optional[str] = None
    router: str = "auto"
    delay: float = 0.0

    @classmethod
    def from_dict(cls, payload: Dict[str, Any]) -> "JobSpec":
        """Build a spec from a JSON payload, rejecting unknown keys."""
        if not isinstance(payload, dict):
            raise ServiceError(f"job spec must be a JSON object, not {type(payload).__name__}")
        known = {entry.name for entry in fields(cls)}
        unknown = sorted(set(payload) - known)
        if unknown:
            raise ServiceError(f"unknown job-spec field(s): {', '.join(unknown)}")
        try:
            return cls(**payload)
        except TypeError as error:
            raise ServiceError(f"bad job spec: {error}") from None

    def to_dict(self) -> Dict[str, Any]:
        """The spec as a JSON-ready dict (raw, not canonicalised)."""
        return asdict(self)

    def validate(self) -> None:
        """Raise :class:`ServiceError` unless the spec is serviceable.

        Mirrors the CLI's option policing: options that cannot take
        effect (a solver without compaction, vector caps without
        simulation) are errors, not silently ignored spellings — they
        would otherwise split one job into many fingerprints.
        """
        kinds = _builtin_kinds()
        if self.kind != "custom" and self.kind not in kinds:
            raise ServiceError(
                f"unknown generator kind {self.kind!r}"
                f" (use custom or one of: {', '.join(sorted(kinds))})"
            )
        if self.kind == "custom":
            if not self.sample_text or not self.design_text:
                raise ServiceError(
                    "kind 'custom' needs sample_text and design_text"
                )
        if not isinstance(self.parameters, str):
            raise ServiceError("parameters must be parameter-file text")
        if self.tech.upper() not in _TECHS:
            raise ServiceError(f"unknown technology {self.tech!r} (use A or B)")
        if self.compact is not None and self.compact not in _COMPACT_MODES:
            raise ServiceError(
                f"compact takes one of {', '.join(_COMPACT_MODES)}, not {self.compact!r}"
            )
        if self.solver is not None:
            if self.compact is None:
                raise ServiceError("solver has no effect without compact")
            if self.solver not in available_solvers():
                raise ServiceError(
                    f"unknown solver {self.solver!r}"
                    f" (use one of: {', '.join(available_solvers())})"
                )
        if self.verify is not None and self.verify not in _VERIFY_MODES:
            raise ServiceError(
                f"verify takes lvs, sim or all, not {self.verify!r}"
            )
        if self.sim_vectors is not None:
            if self.verify not in ("sim", "all"):
                raise ServiceError("sim_vectors has no effect without verify sim/all")
            if not isinstance(self.sim_vectors, int) or self.sim_vectors < 1:
                raise ServiceError("sim_vectors must be a positive integer")
        if self.route_text is not None and self.compact is not None:
            raise ServiceError("compact and route cannot be combined")
        if self.router != "auto":
            if self.route_text is None:
                raise ServiceError("router has no effect without route_text")
            if self.router not in _ROUTERS:
                raise ServiceError(
                    f"router takes auto, river or channel, not {self.router!r}"
                )
        if not isinstance(self.delay, (int, float)) or self.delay < 0:
            raise ServiceError("delay must be a non-negative number of seconds")

    def _resolved_texts(self) -> Tuple[str, str, str, Optional[str]]:
        """(sample, design, base parameter text, default output cell)."""
        if self.kind == "custom":
            assert self.sample_text is not None and self.design_text is not None
            return self.sample_text, self.design_text, "", None
        sample, design, base_parameters, output_cell = _builtin_kinds()[self.kind]
        return sample, design, base_parameters, output_cell

    def resolved(self) -> Tuple[str, str, Dict[str, Any], Optional[str]]:
        """(sample text, design text, parsed bindings, output cell name).

        The user's parameter text is layered over the kind's base
        parameters (later bindings win, exactly like ``--set`` on the
        CLI); a ``.output_cell`` directive in either text is honoured
        unless the spec names one explicitly.
        """
        sample, design, base_parameters, output_cell = self._resolved_texts()
        combined = base_parameters + "\n" + self.parameters
        try:
            parameters = parse_parameters(combined)
        except RsgError as error:
            raise ServiceError(f"bad parameter text: {error}") from None
        cell_name = self.output_cell or parameters.directives.get("output_cell") or output_cell
        return sample, design, parameters.bindings, cell_name

    def canonical(self) -> Dict[str, Any]:
        """The normalised, JSON-ready form the fingerprint is taken over.

        Semantically identical specs (parameter key order, whitespace,
        comments, default-equal options) canonicalise identically;
        distinct kinds, techs, bindings or options do not.
        """
        self.validate()
        sample, design, bindings, cell_name = self.resolved()
        return {
            "kind": self.kind,
            "sample": sample,
            "design": design,
            "bindings": _canonical_bindings(bindings),
            "output_cell": cell_name,
            "tech": self.tech.upper(),
            "compact": self.compact,
            "solver": (self.solver or DEFAULT_SOLVER) if self.compact else None,
            "verify": self.verify,
            "sim_vectors": _canonical_vectors(self.verify, self.sim_vectors),
            "route": self.route_text,
            "router": self.router if self.route_text else None,
            "delay": float(self.delay),
        }

    @property
    def fingerprint(self) -> str:
        """Stable content hash of the canonical spec — the job identity."""
        return cache_key("job", json.dumps(self.canonical(), sort_keys=True))


def fingerprint_spec(payload: Dict[str, Any]) -> str:
    """Fingerprint a raw spec payload (convenience for clients)."""
    return JobSpec.from_dict(payload).fingerprint


def _canonical_vectors(verify: Optional[str], sim_vectors: Optional[int]) -> Optional[int]:
    """Fold the vector cap onto the driver default when simulating."""
    if verify not in ("sim", "all"):
        return None
    if sim_vectors is not None:
        return sim_vectors
    from ..verify.driver import DEFAULT_MAX_VECTORS

    return DEFAULT_MAX_VECTORS


def _canonical_bindings(bindings: Dict[Any, Any]) -> List[List[Any]]:
    """Sorted, tagged, JSON-ready form of parsed parameter bindings.

    Keys are plain names or ``(name, indices)`` pairs (the register
    configuration tables); values are integers, strings, or
    :class:`~repro.lang.environment.Alias` deferred names.
    """
    rows: List[List[Any]] = []
    for key, value in bindings.items():
        if isinstance(key, tuple):
            name, indices = key[0], list(key[1])
        else:
            name, indices = key, []
        if isinstance(value, Alias):
            tagged: List[Any] = ["alias", value.name]
        elif isinstance(value, bool) or not isinstance(value, (int, str)):
            raise ServiceError(
                f"parameter {name!r} has unserialisable value {value!r}"
            )
        elif isinstance(value, int):
            tagged = ["int", value]
        else:
            tagged = ["str", value]
        rows.append([name, indices, *tagged])
    rows.sort(key=lambda row: (row[0], row[1]))
    return rows


@dataclass
class JobResult:
    """What one pipeline execution produced, JSON-serialisable.

    The CIF text is the layout artifact; the report dicts come from
    :meth:`~repro.compact.pipeline.PipelineReport.to_dict` /
    :meth:`~repro.verify.driver.VerificationReport.to_dict`; ``timings``
    maps stage name (``generate`` / ``compact`` / ``route`` / ``verify``
    / ``emit``) to wall seconds.
    """

    cell_name: str = ""
    instance_count: int = 0
    cif: str = ""
    compaction: List[Dict[str, Any]] = field(default_factory=list)
    pipeline: Optional[Dict[str, Any]] = None
    verification: Optional[Dict[str, Any]] = None
    route_summary: Optional[str] = None
    timings: Dict[str, float] = field(default_factory=dict)

    def to_dict(self, include_cif: bool = False) -> Dict[str, Any]:
        """JSON-ready form; the CIF rides separately as an artifact."""
        payload = asdict(self)
        if not include_cif:
            payload.pop("cif")
        return payload

    @classmethod
    def from_dict(cls, payload: Dict[str, Any]) -> "JobResult":
        """Rebuild a result from its JSON form (CIF may be absent)."""
        known = {entry.name for entry in fields(cls)}
        return cls(**{key: value for key, value in payload.items() if key in known})


def _kernel_label() -> str:
    """The active geometry-kernel name, or ``"unknown"`` when misconfigured."""
    from ..geometry.batch import kernel_name

    try:
        return kernel_name()
    except Exception:  # noqa: BLE001 — telemetry must never fail a job
        return "unknown"


def execute_job(spec: JobSpec, cache: Optional[CompactionCache] = None) -> JobResult:
    """Run the full pipeline for ``spec`` and return its result.

    This is the pure function the worker pool dispatches: no service
    state, no filesystem side effects — everything it needs is in the
    spec and everything it produced is in the returned
    :class:`JobResult`.  ``cache`` is the shared compaction cache;
    failures surface as :class:`~repro.core.errors.RsgError` subclasses
    (:class:`~repro.core.errors.VerificationError` for a layout that
    generated fine but failed its checks).

    Stage timing is span-derived: when a tracer is ambient (a traced
    worker or ``--timings``) the stages parent under it; otherwise a
    private tracer is activated just for this call, so ``timings`` is
    always the same span clock either way.
    """
    if obs_trace.active() is None:
        with obs_trace.activated(obs_trace.Tracer()):
            return _execute_traced(spec, cache)
    return _execute_traced(spec, cache)


def _execute_traced(spec: JobSpec, cache: Optional[CompactionCache]) -> JobResult:
    """The pipeline body; requires an ambient tracer (see execute_job)."""
    spec.validate()
    sample, design, bindings, cell_name = spec.resolved()
    result = JobResult()
    if spec.delay:
        time.sleep(spec.delay)

    with obs_trace.span("job.generate") as stage:
        rsg = Rsg()
        loads_sample(sample, rsg)
        interpreter = Interpreter(rsg)
        interpreter.set_parameters(bindings)
        value = interpreter.run(design)
        if cell_name:
            cell = rsg.cells.lookup(cell_name)
        elif isinstance(value, CellDefinition):
            cell = value
        else:
            raise ServiceError(
                "design text did not end with mk_cell and no output_cell was given"
            )
    result.timings["generate"] = stage.duration_s

    rules = _TECHS[spec.tech.upper()]
    if spec.compact:
        with obs_trace.span("job.compact", kernel=_kernel_label()) as stage:
            cell = _compact_stage(spec, cell, rules, cache, result)
        result.timings["compact"] = stage.duration_s

    plan = None
    if spec.route_text:
        with obs_trace.span("job.route") as stage:
            from ..route import compose_from_netfile

            cell, plan = compose_from_netfile(
                spec.route_text, rsg.cells, name=f"{cell.name}_routed",
                rules=rules, router=spec.router,
            )
            result.route_summary = plan.summary()
        result.timings["route"] = stage.duration_s

    if spec.verify:
        with obs_trace.span("job.verify", kernel=_kernel_label()) as stage:
            _verify_stage(spec, cell, plan, rules, cache, result)
        result.timings["verify"] = stage.duration_s

    with obs_trace.span("job.emit") as stage:
        result.cell_name = cell.name
        result.instance_count = cell.count_instances(recursive=True)
        result.cif = cif_text(cell)
    result.timings["emit"] = stage.duration_s
    return result


def _compact_stage(
    spec: JobSpec,
    cell: CellDefinition,
    rules,
    cache: Optional[CompactionCache],
    result: JobResult,
) -> CellDefinition:
    """Run the requested compaction mode, recording its reports."""
    mode = spec.compact
    assert mode is not None
    if mode.startswith("hier"):
        axes = mode[len("hier:"):] if mode.startswith("hier:") else "x"
        compactor = HierarchicalCompactor(
            rules, axes=axes, width_mode="preserve", solver=spec.solver,
            cache=cache,
        )
        cell = compactor.compact(cell)
        assert compactor.last_report is not None
        result.pipeline = compactor.last_report.to_dict()
        return cell
    for axis in mode:
        cell, pass_result = compact_cell(
            cell, rules, axis=axis, width_mode="preserve", solver=spec.solver,
            cache=cache,
        )
        result.compaction.append(
            {
                "axis": axis,
                "width_before": pass_result.width_before,
                "width_after": pass_result.width_after,
            }
        )
    return cell


def _verify_stage(
    spec: JobSpec,
    cell: CellDefinition,
    plan,
    rules,
    cache: Optional[CompactionCache],
    result: JobResult,
) -> None:
    """Run the requested verification, raising on functional failure."""
    if plan is not None:
        from ..route.compose import verify_composite

        mismatches = verify_composite(cell, plan)
        result.verification = {
            "subject": f"{cell.name} (routed composite)",
            "mode": spec.verify,
            "nets": len(plan.nets),
            "failures": mismatches,
            "ok": not mismatches,
            "summary": f"connectivity round-trip: {len(plan.nets)} nets,"
            f" {len(mismatches)} mismatches",
        }
        if mismatches:
            raise VerificationError(
                "verification failed: " + "; ".join(mismatches[:3])
            )
        return
    from ..verify import verify_cell
    from ..verify.driver import DEFAULT_MAX_VECTORS

    report = verify_cell(
        cell, mode=spec.verify or "all",
        max_vectors=spec.sim_vectors or DEFAULT_MAX_VECTORS,
        rules=rules, cache=cache,
    )
    result.verification = report.to_dict()
    if not report.ok:
        raise VerificationError(
            f"verification failed for {cell.name!r}: {report.summary()}"
        )
