"""Deterministic fault injection for the layout service (chaos layer).

The service's robustness claims — no wedged jobs, no torn artifact
ever served, dedup preserved under failure — are only as good as the
faults they were tested against.  This module makes fault injection
*systematic*: a :class:`FaultPlan` is a seeded, serialisable set of
:class:`FaultSpec` entries, each naming a **site** (a narrow hook seam
in ``store.py`` / ``workers.py`` / ``server.py`` /
``compact/cache.py``), an **action**, and a trigger window.  The chaos
suite (``tests/test_service_chaos.py``) sweeps seeded plans through
the full submit → execute → artifact flow and asserts the service
degrades instead of corrupting or wedging.

Sites (the seams the service code calls :func:`fire` at)::

    store.claim.pre_commit      inside the claim transaction (a crash rolls back)
    store.claim.post_commit     after the claim committed (job running, pid dead)
    store.complete.pre_artifact before any artifact write
    store.artifact.write        per-artifact payload seam (torn writes, ENOSPC)
    store.complete.pre_commit   artifacts on disk, done flip not yet committed
    store.complete.post_commit  after the done flip committed
    worker.claimed              a worker holds a claim, pipeline not yet started
    worker.pre_complete         pipeline done, completion not yet started
    cache.read_disk             before a compaction-cache disk read
    cache.write_disk            before a compaction-cache disk write
    server.request              an HTTP request arrived, not yet handled
    server.respond              a submission was handled, response not yet sent

Actions::

    raise     raise ``OSError(errno_code)`` — injected ENOSPC / EIO
    crash     ``os._exit(137)`` — a hard kill at exactly this point
    sigkill   ``SIGKILL`` to the current process (same effect, real signal)
    stall     sleep ``seconds`` — a hung worker / slow disk / slow response
    torn      truncate the payload at this write seam to ``fraction``
    drop      tell the HTTP handler to close the connection unanswered

Plans are activated per process (:func:`activate`) and propagate to
worker processes two ways: fork-children inherit the active plan
directly, and :func:`maybe_load_from_env` — called at every process
entry point — picks up a JSON plan from the ``REPRO_CHAOS``
environment variable, so even a ``repro serve`` subprocess can run
under chaos.  Every trigger is counted (:func:`trip_counts`) so tests
can assert a fault actually fired.  With no plan active, every seam is
a no-op costing one ``None`` check.
"""

from __future__ import annotations

import errno
import json
import os
import random
import signal
import time
from dataclasses import asdict, dataclass, field
from typing import Any, Dict, List, Optional

__all__ = [
    "ACTIONS",
    "FaultPlan",
    "FaultSpec",
    "activate",
    "active_plan",
    "deactivate",
    "fire",
    "mangle",
    "maybe_load_from_env",
    "trip_counts",
]

#: environment variable carrying a JSON-encoded plan across processes
ENV_VAR = "REPRO_CHAOS"

#: the recognised fault actions
ACTIONS = ("raise", "crash", "sigkill", "stall", "torn", "drop")

#: sites where a payload passes through (the ``torn`` action applies)
_WRITE_SITES = ("store.artifact.write", "cache.write_disk")


@dataclass
class FaultSpec:
    """One fault: a site, an action, and a deterministic trigger window.

    The fault triggers on hits ``after < n <= after + times`` of its
    site (per process), so a plan can hit exactly the second artifact
    write, or the first three claims, and then get out of the way —
    which is what lets every chaos run terminate.
    """

    site: str
    action: str
    after: int = 0
    times: int = 1
    errno_code: int = errno.ENOSPC
    seconds: float = 0.25
    fraction: float = 0.5

    def to_dict(self) -> Dict[str, Any]:
        """JSON-ready form (inverse of :meth:`from_dict`)."""
        return asdict(self)

    @classmethod
    def from_dict(cls, payload: Dict[str, Any]) -> "FaultSpec":
        """Rebuild a spec from its JSON form, rejecting unknown actions."""
        spec = cls(**payload)
        if spec.action not in ACTIONS:
            raise ValueError(f"unknown fault action {spec.action!r}")
        return spec


#: the menu :meth:`FaultPlan.seeded` draws from — every fault family
#: the service must degrade under, each bounded so runs terminate
_MENU: List[FaultSpec] = [
    FaultSpec("store.claim.pre_commit", "crash"),
    FaultSpec("store.claim.post_commit", "crash"),
    FaultSpec("store.complete.pre_commit", "crash"),
    FaultSpec("store.complete.post_commit", "crash"),
    FaultSpec("worker.claimed", "sigkill"),
    FaultSpec("worker.pre_complete", "crash"),
    FaultSpec("worker.claimed", "stall", seconds=0.4),
    FaultSpec("store.artifact.write", "torn", fraction=0.5),
    FaultSpec("store.artifact.write", "raise", errno_code=errno.ENOSPC),
    FaultSpec("cache.write_disk", "raise", errno_code=errno.ENOSPC),
    FaultSpec("cache.read_disk", "raise", errno_code=errno.EIO),
    FaultSpec("server.request", "drop"),
    FaultSpec("server.respond", "drop"),
    FaultSpec("server.request", "stall", seconds=0.3),
]


@dataclass
class FaultPlan:
    """A reproducible set of faults, addressable by seed.

    ``FaultPlan.seeded(seed)`` deterministically draws 2–4 faults from
    the menu above with randomised trigger windows; the same seed
    always yields the same plan, so a failing chaos run is re-runnable
    bit-for-bit.  Plans round-trip through JSON (``to_json`` /
    ``from_json``) — the cross-process and on-disk form.
    """

    faults: List[FaultSpec] = field(default_factory=list)
    seed: Optional[int] = None

    @classmethod
    def seeded(cls, seed: int, size: Optional[int] = None) -> "FaultPlan":
        """The deterministic plan for ``seed``: 2–4 menu faults."""
        rng = random.Random(seed)
        count = size if size is not None else rng.randint(2, 4)
        picks = rng.sample(_MENU, min(count, len(_MENU)))
        faults = []
        for pick in picks:
            faults.append(
                FaultSpec(
                    site=pick.site,
                    action=pick.action,
                    after=rng.randint(0, 2),
                    times=rng.randint(1, 2),
                    errno_code=pick.errno_code,
                    seconds=pick.seconds,
                    fraction=rng.choice((0.25, 0.5, 0.9)),
                )
            )
        return cls(faults=faults, seed=seed)

    def to_json(self) -> str:
        """Serialise the plan (the ``REPRO_CHAOS`` wire format)."""
        return json.dumps(
            {"seed": self.seed, "faults": [fault.to_dict() for fault in self.faults]}
        )

    @classmethod
    def from_json(cls, text: str) -> "FaultPlan":
        """Inverse of :meth:`to_json`."""
        payload = json.loads(text)
        return cls(
            faults=[FaultSpec.from_dict(entry) for entry in payload["faults"]],
            seed=payload.get("seed"),
        )

    def describe(self) -> str:
        """One line per fault, for chaos-run logs."""
        lines = [
            f"{fault.site}: {fault.action}"
            f" (after {fault.after}, x{fault.times})"
            for fault in self.faults
        ]
        return "; ".join(lines) or "no faults"


# ----------------------------------------------------------------------
# per-process activation state

_plan: Optional[FaultPlan] = None
_hits: Dict[str, int] = {}
_trips: Dict[str, int] = {}


def activate(plan: FaultPlan, env: bool = False) -> None:
    """Install ``plan`` in this process (and, with ``env``, descendants).

    Installs the cache seam hook and resets the per-process hit
    counters.  ``env=True`` additionally exports the plan as
    ``REPRO_CHAOS`` so subprocesses that call
    :func:`maybe_load_from_env` (worker loops, ``repro serve``) pick
    it up even across an exec boundary; fork children inherit the
    in-memory plan either way.
    """
    global _plan
    _plan = plan
    _hits.clear()
    _trips.clear()
    from ..compact import cache as cache_module

    cache_module.chaos_hook = fire
    if env:
        os.environ[ENV_VAR] = plan.to_json()


def deactivate() -> None:
    """Remove the active plan, the cache hook, and the env export."""
    global _plan
    _plan = None
    _hits.clear()
    _trips.clear()
    from ..compact import cache as cache_module

    cache_module.chaos_hook = None
    os.environ.pop(ENV_VAR, None)


def maybe_load_from_env() -> None:
    """Activate the ``REPRO_CHAOS`` plan if one is set and none is active.

    Called at process entry points (worker loop, server boot); a no-op
    when chaos is not in play, so production paths pay nothing.
    """
    if _plan is None and os.environ.get(ENV_VAR):
        activate(FaultPlan.from_json(os.environ[ENV_VAR]))


def active_plan() -> Optional[FaultPlan]:
    """The plan installed in this process, or ``None``."""
    return _plan


def trip_counts() -> Dict[str, int]:
    """``site -> times a fault actually triggered`` in this process."""
    return dict(_trips)


def fire(site: str, **context: Any) -> Optional[Dict[str, Any]]:
    """The seam: consult the plan at ``site`` and act.

    Returns ``None`` (no fault, or none due at this hit), raises the
    injected ``OSError``, never returns (``crash`` / ``sigkill``),
    sleeps (``stall``), or returns a directive dict the call site
    cooperates with: ``{"torn": fraction}`` at write seams,
    ``{"drop": True}`` at HTTP seams.  Hit windows are counted per
    site per process.
    """
    if _plan is None:
        return None
    due = None
    hit = _hits.get(site, 0) + 1
    _hits[site] = hit
    for fault in _plan.faults:
        if fault.site == site and fault.after < hit <= fault.after + fault.times:
            due = fault
            break
    if due is None:
        return None
    _trips[site] = _trips.get(site, 0) + 1
    if due.action == "raise":
        name = errno.errorcode.get(due.errno_code, str(due.errno_code))
        raise OSError(due.errno_code, f"injected {name} at {site}")
    if due.action == "crash":
        os._exit(137)
    if due.action == "sigkill":
        os.kill(os.getpid(), signal.SIGKILL)
        time.sleep(5.0)  # the signal is asynchronous; never proceed past it
    if due.action == "stall":
        time.sleep(due.seconds)
        return None
    if due.action == "torn":
        return {"torn": due.fraction}
    if due.action == "drop":
        return {"drop": True}
    return None


def mangle(site: str, payload: bytes) -> bytes:
    """Payload-write seam: apply ``torn`` truncation (or raise/crash).

    Call sites about to persist ``payload`` route it through here;
    with no plan (or no due fault) the payload passes through
    untouched.  A ``torn`` fault returns a truncated prefix —
    simulating a partial write published by a non-atomic filesystem —
    which the store's sidecar digests must catch before the bytes are
    ever served.
    """
    directive = fire(site, size=len(payload))
    if directive and "torn" in directive:
        keep = max(1, int(len(payload) * directive["torn"]))
        return payload[:keep]
    return payload
