"""The thin client: talk to a layout service over HTTP, resiliently.

:class:`ServiceClient` wraps ``urllib.request`` — submit, poll, fetch
— raising :class:`~repro.core.errors.ServiceError` with the server's
diagnostic on any failure, so callers never parse HTTP by hand.  It
carries the client half of the service's robustness contract:

* **backpressure** — a 429 answer is retried after the server's
  ``Retry-After`` (or a capped, jittered exponential backoff when the
  header is absent), up to ``max_retries`` attempts;
* **idempotent resubmit** — a dropped connection or lost response is
  retried with the same backoff; this is safe even for ``POST /jobs``
  because job identity is the content fingerprint, so a resubmission
  deduplicates server-side instead of double-running;
* **polite polling** — :meth:`wait` backs off exponentially (capped
  at ``max_poll_interval``) instead of hammering the service at a
  fixed 50 ms.

``submit_main`` is the ``repro submit`` CLI verb: it takes the *same*
parameter file the batch CLI takes, embeds the sample/design texts the
file's directives point at (a submission is self-contained — the
server never reads the client's filesystem), and round-trips
submit → wait → download.
"""

from __future__ import annotations

import json
import random
import time
import urllib.error
import urllib.request
from typing import Any, Dict, List, Optional, Tuple, Union

from ..core.errors import ServiceError
from ..obs import trace as obs_trace
from ..obs.render import render_trace, spans_from_jsonl
from ..obs.trace import TRACE_HEADER, Span, Tracer, propagation_token
from .jobs import JobSpec

__all__ = ["ServiceClient", "stats_main", "submit_main", "trace_main"]

#: connection-level failures a retry can heal: the server restarting,
#: a dropped response, a reset mid-flight
_RETRYABLE_OS_ERRORS = (
    ConnectionResetError,
    ConnectionRefusedError,
    ConnectionAbortedError,
    BrokenPipeError,
)


class ServiceClient:
    """HTTP client for one layout-service endpoint.

    ``max_retries`` bounds how often one logical request is retried
    across 429 backpressure answers and dropped connections;
    ``backoff`` seeds the exponential delay, capped at
    ``backoff_cap`` and jittered ±25 % so a fleet of rejected clients
    does not return in lockstep.  ``max_retries=0`` restores the old
    fail-fast behaviour.
    """

    def __init__(
        self,
        url: str,
        timeout: float = 10.0,
        max_retries: int = 5,
        backoff: float = 0.05,
        backoff_cap: float = 2.0,
    ) -> None:
        """``url`` is the service base URL, e.g. ``http://127.0.0.1:8737``."""
        self.url = url.rstrip("/")
        self.timeout = timeout
        self.max_retries = max_retries
        self.backoff = backoff
        self.backoff_cap = backoff_cap
        self.retries = 0  # observability: how often this client retried
        self._sleep = time.sleep  # seam for tests
        self._rng = random.Random()

    def _jittered(self, delay: float) -> float:
        """``delay`` within the cap, ±25 % jitter (never negative)."""
        capped = min(delay, self.backoff_cap)
        return max(0.0, capped * self._rng.uniform(0.75, 1.25))

    def _request(
        self,
        path: str,
        payload: Optional[Dict[str, Any]] = None,
        raw: bool = False,
        accept: Tuple[int, ...] = (),
    ) -> Any:
        """One logical request with retry/backoff (see class docstring).

        ``accept`` lists non-2xx statuses whose JSON body should be
        *returned* rather than raised — ``health()`` accepts the 503
        degraded answer, for example.
        """
        data = header = None
        if payload is not None:
            data = json.dumps(payload).encode("utf-8")
            header = {"Content-Type": "application/json"}
        delay = self.backoff
        attempt = 0
        tracer = obs_trace.active()
        while True:
            request = urllib.request.Request(self.url + path, data=data)
            for name, value in (header or {}).items():
                request.add_header(name, value)
            if tracer is not None:
                request.add_header(TRACE_HEADER, propagation_token(tracer))
            try:
                with urllib.request.urlopen(
                    request, timeout=self.timeout
                ) as response:
                    body = response.read()
                return body if raw else json.loads(body)
            except urllib.error.HTTPError as error:
                body = error.read()
                if error.code in accept:
                    return body if raw else json.loads(body)
                if error.code == 429 and attempt < self.max_retries:
                    retry_after = self._retry_after(error)
                    wait = self._jittered(
                        retry_after if retry_after is not None else delay
                    )
                    attempt += 1
                    self.retries += 1
                    self._sleep(wait)
                    delay = min(self.backoff_cap, delay * 2)
                    continue
                detail = ""
                try:
                    detail = json.loads(body).get("error", "")
                except Exception:  # noqa: BLE001 — best-effort diagnostics
                    pass
                raise ServiceError(
                    f"{request.get_method()} {path}: HTTP {error.code}"
                    + (f": {detail}" if detail else "")
                ) from None
            except OSError as error:  # URLError, resets, timeouts
                reason = getattr(error, "reason", error)
                retryable = isinstance(
                    (reason if isinstance(reason, BaseException) else error),
                    _RETRYABLE_OS_ERRORS,
                )
                if retryable and attempt < self.max_retries:
                    attempt += 1
                    self.retries += 1
                    self._sleep(self._jittered(delay))
                    delay = min(self.backoff_cap, delay * 2)
                    continue
                raise ServiceError(
                    f"cannot reach layout service at {self.url}: {reason}"
                ) from None

    @staticmethod
    def _retry_after(error: urllib.error.HTTPError) -> Optional[float]:
        """The server's ``Retry-After`` header in seconds, if parseable."""
        value = error.headers.get("Retry-After") if error.headers else None
        if value is None:
            return None
        try:
            return max(0.0, float(value))
        except ValueError:
            return None

    def submit(self, spec: Union[JobSpec, Dict[str, Any]]) -> Dict[str, Any]:
        """Submit a spec; returns ``{job, state, deduplicated}``.

        When a tracer is ambient the POST is wrapped in a
        ``client.request`` span carrying the retry count — the client
        half of the job's trace tree (a no-op otherwise).
        """
        payload = spec.to_dict() if isinstance(spec, JobSpec) else spec
        with obs_trace.span("client.request", path="/jobs") as request_span:
            before = self.retries
            submitted = self._request("/jobs", payload=payload)
            request_span.set(
                retries=self.retries - before,
                state=submitted.get("state"),
                deduplicated=submitted.get("deduplicated"),
            )
        return submitted

    def status(self, job: str) -> Dict[str, Any]:
        """The job's ledger row."""
        return self._request(f"/jobs/{job}")

    def result(self, job: str) -> Dict[str, Any]:
        """Status plus ``result`` for a finished job (202-tolerant)."""
        return self._request(f"/jobs/{job}/result")

    def wait(
        self,
        job: str,
        timeout: float = 120.0,
        poll_interval: float = 0.05,
        max_poll_interval: float = 2.0,
    ) -> Dict[str, Any]:
        """Poll until the job finishes; raise on failure or deadline.

        Returns the full result payload of a ``done`` job.  A
        ``failed`` job raises :class:`ServiceError` carrying the
        job's recorded error.  Polling starts at ``poll_interval``
        and doubles after every still-pending answer, capped at
        ``max_poll_interval`` — fast completion stays fast, a long
        queue does not get hammered at 50 ms.
        """
        deadline = time.monotonic() + timeout
        interval = poll_interval
        polls = 0
        with obs_trace.span("client.wait") as wait_span:
            while True:
                result = self.result(job)
                polls += 1
                state = result.get("state")
                if state == "done":
                    wait_span.set(polls=polls, state=state)
                    return result
                if state == "failed":
                    wait_span.set(polls=polls, state=state)
                    raise ServiceError(
                        f"job {job} failed: {result.get('error') or 'unknown error'}"
                    )
                if time.monotonic() >= deadline:
                    wait_span.set(polls=polls, state=state)
                    raise ServiceError(
                        f"job {job} still {state} after {timeout:g}s"
                    )
                self._sleep(min(interval, max(0.0, deadline - time.monotonic())))
                interval = min(max_poll_interval, interval * 2)

    def artifact(self, job: str, name: str) -> bytes:
        """Download one artifact (``layout.cif``, ``result.json``,
        ``trace.jsonl``)."""
        return self._request(f"/jobs/{job}/artifact/{name}", raw=True)

    def health(self) -> Dict[str, Any]:
        """The ``/healthz`` payload — returned even when degraded (503)."""
        return self._request("/healthz", accept=(503,))

    def stats(self) -> Dict[str, Any]:
        """The ``/stats`` observability payload."""
        return self._request("/stats")

    def metrics(self) -> str:
        """The ``/metrics`` Prometheus text exposition."""
        return self._request("/metrics", raw=True).decode("utf-8")

    def post_trace(self, job: str, spans: List[Span]) -> Dict[str, Any]:
        """Attach finished client spans to a job's stored trace."""
        return self._request(
            f"/jobs/{job}/trace",
            payload={"spans": [s.to_dict() for s in spans]},
        )


def _spec_from_files(arguments) -> JobSpec:
    """Build a self-contained spec from CLI arguments.

    For ``--kind custom`` (the default) the parameter file's
    ``.example_file`` / ``.concept_file`` directives are read and their
    *contents* embedded, so the server needs no access to the client's
    filesystem; builtin kinds carry their library texts server-side.
    """
    from ..lang.param_file import parse_parameters

    with open(arguments.parameter_file, "r", encoding="utf-8") as handle:
        parameter_text = handle.read()
    if arguments.set:
        parameter_text += "\n" + "\n".join(arguments.set)
    sample_text = design_text = None
    if arguments.kind == "custom":
        parameters = parse_parameters(parameter_text)
        sample_path = parameters.directives.get("example_file")
        design_path = parameters.directives.get("concept_file")
        if not sample_path or not design_path:
            raise ServiceError(
                "custom submissions need .example_file and .concept_file"
                " directives (or use --kind for a builtin generator)"
            )
        with open(sample_path, "r", encoding="utf-8") as handle:
            sample_text = handle.read()
        with open(design_path, "r", encoding="utf-8") as handle:
            design_text = handle.read()
    return JobSpec(
        kind=arguments.kind,
        parameters=parameter_text,
        sample_text=sample_text,
        design_text=design_text,
        tech=arguments.tech,
        compact=arguments.compact,
        solver=arguments.solver,
        verify=arguments.verify,
        sim_vectors=arguments.sim_vectors,
    )


def submit_main(argv: Optional[List[str]] = None) -> int:
    """``repro submit``: send a job to a running layout service.

    Submits, waits (unless ``--no-wait``), prints the job fingerprint
    and outcome, and optionally writes the layout artifact to
    ``--output``.
    """
    import argparse

    from .server import DEFAULT_PORT

    parser = argparse.ArgumentParser(
        prog="repro submit",
        description="Submit a generation job to a running layout service.",
    )
    parser.add_argument("parameter_file", help="the parameter file (Appendix C style)")
    parser.add_argument(
        "--url",
        default=f"http://127.0.0.1:{DEFAULT_PORT}",
        help=f"service base URL (default: http://127.0.0.1:{DEFAULT_PORT})",
    )
    parser.add_argument(
        "--kind",
        default="custom",
        help="generator kind: custom (embed the files the parameter file"
        " names) or a builtin library kind like multiplier",
    )
    parser.add_argument(
        "--set", action="append", default=[], metavar="NAME=VALUE",
        help="override a parameter binding (repeatable)",
    )
    parser.add_argument("--compact", metavar="AXES", help="compaction mode (as the batch CLI)")
    parser.add_argument("--solver", help="longest-path backend for --compact")
    parser.add_argument("--tech", default="A", help="design-rule technology (default: A)")
    parser.add_argument("--verify", metavar="MODE", help="verification mode: lvs, sim or all")
    parser.add_argument("--sim-vectors", type=int, metavar="N", help="simulated-vector cap")
    parser.add_argument(
        "--output", metavar="FILE", help="write the layout.cif artifact to FILE"
    )
    parser.add_argument(
        "--no-wait", action="store_true",
        help="submit and print the job fingerprint without waiting",
    )
    parser.add_argument(
        "--timeout", type=float, default=300.0, metavar="S",
        help="wait deadline in seconds (default: 300)",
    )
    arguments = parser.parse_args(argv)

    spec = _spec_from_files(arguments)
    client = ServiceClient(arguments.url)
    if not obs_trace.service_enabled():
        code, _ = _submit_flow(arguments, client, spec)
        return code

    tracer = Tracer()
    job: Optional[str] = None
    with obs_trace.activated(tracer):
        with tracer.span("client.submit") as root:
            root.set(url=arguments.url)
            code, job = _submit_flow(arguments, client, spec)
    if job is not None:
        try:
            client.post_trace(job, tracer.drain())
        except ServiceError:
            pass  # an old server without /trace still served the job
    return code


def _submit_flow(
    arguments, client: ServiceClient, spec: JobSpec
) -> Tuple[int, Optional[str]]:
    """The submit → wait → download round-trip; returns (code, job)."""
    started = time.perf_counter()
    submitted = client.submit(spec)
    job = submitted["job"]
    print(
        f"job {job[:16]}… {submitted['state']}"
        + (" (deduplicated)" if submitted.get("deduplicated") else "")
    )
    if arguments.no_wait:
        print(f"poll with: GET {arguments.url}/jobs/{job}")
        return 0, job
    result = client.wait(job, timeout=arguments.timeout)
    elapsed = time.perf_counter() - started
    summary = result.get("result") or {}
    print(
        f"done in {elapsed:.2f}s: cell {summary.get('cell_name')!r},"
        f" {summary.get('instance_count')} instance(s)"
    )
    if arguments.output:
        payload = client.artifact(job, "layout.cif")
        with open(arguments.output, "wb") as handle:
            handle.write(payload)
        print(f"wrote layout to {arguments.output}")
    return 0, job


def stats_main(argv: Optional[List[str]] = None) -> int:
    """``repro stats``: pretty-print a running service's telemetry.

    Fetches ``/stats`` (the JSON digest) and, with ``--metrics``, the
    raw ``/metrics`` Prometheus text.  An unreachable service raises
    :class:`~repro.core.errors.ServiceError` — the CLI maps that to
    exit family 6 like every other service failure.
    """
    import argparse

    from .server import DEFAULT_PORT

    parser = argparse.ArgumentParser(
        prog="repro stats",
        description="Show queue, dedup, cache, worker, and latency"
        " statistics from a running layout service.",
    )
    parser.add_argument(
        "--url",
        default=f"http://127.0.0.1:{DEFAULT_PORT}",
        help=f"service base URL (default: http://127.0.0.1:{DEFAULT_PORT})",
    )
    parser.add_argument(
        "--metrics", action="store_true",
        help="also print the raw /metrics Prometheus exposition",
    )
    arguments = parser.parse_args(argv)
    client = ServiceClient(arguments.url, max_retries=0)
    stats = client.stats()

    jobs = stats.get("jobs", {})
    states = ", ".join(f"{state}={count}" for state, count in sorted(jobs.items()))
    print(f"jobs: {states or 'none'}")
    print(
        f"queue: depth {stats.get('queue_depth')}"
        f" (max {stats.get('max_queue_depth') or 'unbounded'}),"
        f" {stats.get('backpressure_rejections', 0)} rejection(s)"
    )
    dedup = stats.get("dedup_factor")
    print(
        f"throughput: {stats.get('submissions')} submission(s),"
        f" {stats.get('executions')} execution(s)"
        + (f", dedup x{dedup:.2f}" if dedup else "")
    )
    print(
        f"workers: {stats.get('workers')} alive,"
        f" {stats.get('timeouts', 0)} timeout(s),"
        f" {stats.get('crashes', 0)} crash(es),"
        f" {stats.get('respawns', 0)} respawn(s)"
    )
    cache = stats.get("cache", {})
    hit_rate = cache.get("hit_rate")
    print(
        "cache: "
        + (f"hit rate {hit_rate:.1%}" if hit_rate is not None else "no lookups yet")
    )
    print(
        f"robustness: {stats.get('quarantined', 0)} quarantined,"
        f" {stats.get('recovery_requeued', 0)} recovery requeue(s),"
        f" {stats.get('evicted', 0)} evicted"
    )
    latency = stats.get("stage_latency", {})
    if latency:
        print("stage latency:")
        for stage, row in sorted(latency.items()):
            print(
                f"  {stage:<10} n={row['count']:<5}"
                f" mean {row['mean_s'] * 1000.0:8.2f} ms"
                f"  max {row['max_s'] * 1000.0:8.2f} ms"
            )
    if arguments.metrics:
        print()
        print(client.metrics(), end="")
    return 0


def trace_main(argv: Optional[List[str]] = None) -> int:
    """``repro trace``: render a job's stored span tree.

    Downloads the digest-verified ``trace.jsonl`` artifact and prints
    the indented tree (durations in ms, statuses, key attributes).  An
    unknown job or a trace-less job answers HTTP 404, which surfaces as
    a :class:`~repro.core.errors.ServiceError` (exit family 6).
    """
    import argparse

    from .server import DEFAULT_PORT

    parser = argparse.ArgumentParser(
        prog="repro trace",
        description="Render the span tree a job recorded while it was"
        " submitted, claimed, and executed.",
    )
    parser.add_argument("fingerprint", help="the job fingerprint (repro submit prints it)")
    parser.add_argument(
        "--url",
        default=f"http://127.0.0.1:{DEFAULT_PORT}",
        help=f"service base URL (default: http://127.0.0.1:{DEFAULT_PORT})",
    )
    parser.add_argument(
        "--json", action="store_true", dest="as_json",
        help="print the raw JSONL artifact instead of the tree",
    )
    arguments = parser.parse_args(argv)
    client = ServiceClient(arguments.url, max_retries=0)
    payload = client.artifact(arguments.fingerprint, "trace.jsonl")
    if arguments.as_json:
        print(payload.decode("utf-8"), end="")
        return 0
    print(render_trace(spans_from_jsonl(payload)))
    return 0
