"""Command-line driver: the complete Figure 1.1 flow.

The RSG's inputs are a design file, a layout (sample) file, and a
parameter file; the parameter file names the other two through its
directives, exactly as Appendix C does::

    .example_file:mult.sample      # the layout/sample file
    .concept_file:mult.design      # the design file
    .output_file:mult.cif          # where to write the layout
    .output_cell:thewholething     # which cell to write (default: last)
    .format:cif                    # cif | sample | svg | ascii
    xsize=16
    ysize=16

Usage::

    python -m repro parameters.par
    python -m repro parameters.par --set xsize=8 --set ysize=8
    python -m repro parameters.par --compact xy --solver topological
    python -m repro parameters.par --compact hier --jobs 4 --cache-dir .rsgcache
    python -m repro parameters.par --route wires.net --router channel
    python -m repro parameters.par --verify all --sim-vectors 256
    python -m repro serve --root .repro-service --workers 4
    python -m repro submit parameters.par --url http://127.0.0.1:8737 --wait
    python -m repro --version

The ``serve``, ``submit``, ``gc``, ``stats`` and ``trace`` verbs are
the layout-as-a-service front door (:mod:`repro.service`): ``serve``
runs the job-queue daemon with its shared artifact store (recovering
orphaned jobs and torn artifacts on boot), ``submit`` sends the same
parameter file to a running daemon instead of generating locally,
``gc`` evicts least-recently-used artifacts and cache entries down to
a byte budget (``repro gc --root DIR --max-bytes 512M``) without ever
touching queued or running jobs, ``stats`` pretty-prints a running
daemon's ``/stats`` and ``/metrics`` telemetry, and ``trace`` renders
the span tree a finished job recorded (:mod:`repro.obs`).

Every failure mode exits with a family-specific code and a one-line
diagnostic on stderr (no raw tracebacks): 1 generic, 2 usage (argparse),
3 parse errors in design/parameter files, 4 verification failures,
5 filesystem/OS errors, 6 service errors, 70 internal errors (set
``REPRO_DEBUG=1`` to re-raise those with the full traceback).

``--compact`` runs the chapter-6 flat compactor over the generated cell
before it is written (``x``/``y``/``xy``/``yx``), or — with ``hier`` —
the compact-once/stamp-many hierarchical pipeline that compacts each
distinct leaf cell exactly once and re-stamps every instance.
``--solver`` picks the longest-path backend from the
:mod:`repro.compact.solvers` registry.  ``--jobs N`` fans independent
leaf-cell compactions out over N worker processes (``hier`` only;
output is byte-identical to ``--jobs 1``), and ``--cache-dir``
persists compaction results on disk so an unchanged cell is never
compacted twice, even across runs.  ``--route`` composes two cells
from the workspace with the wiring subsystem: the net file names a
bottom cell, a top cell and the nets to route between their facing
edges (see :func:`repro.route.compose.parse_net_file`); the routed
composite becomes the output cell.  ``--verify`` closes the loop from
mask geometry back to logical function (:mod:`repro.verify`): device
extraction plus LVS against the intended netlist and/or switch-level
simulation against the programmed personality, with ``--sim-vectors``
bounding the vector count; a failed check exits non-zero.
"""

from __future__ import annotations

import argparse
import os
import sys
import time
from typing import Dict, List, Optional

from .compact import (
    TECH_A,
    TECH_B,
    CompactionCache,
    HierarchicalCompactor,
    available_solvers,
    compact_cell,
)
from .core.cell import CellDefinition
from .core.errors import (
    LanguageError,
    RsgError,
    ServiceError,
    VerificationError,
)
from .core.operators import Rsg
from .lang.interpreter import Interpreter
from .lang.param_file import parse_parameters
from .layout.cif import write_cif
from .layout.render import ascii_render, svg_render
from .layout.sample import load_sample
from .obs import trace as obs_trace

__all__ = [
    "main",
    "run_flow",
    "exit_code_for",
    "solver_summary_lines",
    "timings_table",
]

# Exit-code families: every failure mode maps to a stable, distinct
# code (tested in tests/test_cli.py) so scripts and CI can branch on
# *why* a run failed, not just that it did.
EXIT_ERROR = 1       #: generic RsgError (bad inputs, unknown tech, ...)
EXIT_USAGE = 2       #: argparse usage errors (argparse's own constant)
EXIT_PARSE = 3       #: syntax errors in design/parameter/net files
EXIT_VERIFY = 4      #: the layout generated but failed verification
EXIT_IO = 5          #: filesystem/OS errors (missing or unwritable files)
EXIT_SERVICE = 6     #: bad or unserviceable layout-service requests
EXIT_INTERNAL = 70   #: unexpected exceptions (os.EX_SOFTWARE)


def exit_code_for(error: BaseException) -> int:
    """The exit-code family for ``error`` (see the module docstring).

    Order matters: the most specific families are checked first, so a
    :class:`~repro.core.errors.ParseError` (a ``LanguageError`` and an
    ``RsgError``) maps to :data:`EXIT_PARSE`, not :data:`EXIT_ERROR`.
    """
    if isinstance(error, LanguageError):
        return EXIT_PARSE
    if isinstance(error, VerificationError):
        return EXIT_VERIFY
    if isinstance(error, ServiceError):
        return EXIT_SERVICE
    if isinstance(error, RsgError):
        return EXIT_ERROR
    if isinstance(error, OSError):
        return EXIT_IO
    return EXIT_INTERNAL


def _report_error(error: BaseException) -> int:
    """One-line stderr diagnostic plus the family exit code.

    Raw tracebacks never reach the user; ``REPRO_DEBUG=1`` re-raises
    unexpected errors for debugging.
    """
    code = exit_code_for(error)
    if code == EXIT_INTERNAL:
        if os.environ.get("REPRO_DEBUG"):
            raise error
        print(
            f"internal error: {type(error).__name__}: {error}"
            " (set REPRO_DEBUG=1 for the traceback)",
            file=sys.stderr,
        )
    else:
        print(f"error: {error}", file=sys.stderr)
    return code


def run_flow(
    parameter_path: str,
    overrides: Optional[List[str]] = None,
    output_stream=None,
    compact_axes: Optional[str] = None,
    solver: Optional[str] = None,
    technology: str = "A",
    route_path: Optional[str] = None,
    router: str = "auto",
    jobs: int = 1,
    cache_dir: Optional[str] = None,
    verify_mode: Optional[str] = None,
    sim_vectors: Optional[int] = None,
    timings: Optional[Dict[str, float]] = None,
) -> CellDefinition:
    """Execute the full generation flow described by a parameter file.

    Returns the output cell.  ``overrides`` is a list of ``name=value``
    strings applied on top of the parameter file (sizes, mostly).
    ``compact_axes`` (``"x"``, ``"y"``, ``"xy"``, ``"yx"``) runs the flat
    compactor over the result before writing, using the named ``solver``
    backend and the ``technology`` rule set ("A" or "B");
    ``compact_axes="hier"`` (or ``"hier:<axes>"`` to pick the per-leaf
    passes) runs the hierarchical compact-once pipeline instead,
    fanning leaf-cell solves over ``jobs`` worker processes.
    ``cache_dir`` enables the on-disk compaction-result cache for
    either compaction mode.  ``route_path`` names a net-request file:
    the named cells are composed with the wiring subsystem (``router``
    picks the algorithm) and the routed composite replaces the output
    cell.  ``verify_mode`` (``"lvs"``, ``"sim"`` or ``"all"``) runs
    the silicon-verification subsystem over the result — mask-level
    extraction + LVS + switch-level simulation for PLA-family outputs,
    the cell-level recipe for multipliers, the connectivity round-trip
    for routed composites — and raises :class:`RsgError` on failure;
    ``sim_vectors`` caps the simulated input combinations (exhaustive
    below the cap, seeded sampling above).  ``timings``, when given a
    dict, receives per-stage wall-clock seconds under the same stage
    names :func:`repro.service.jobs.execute_job` records (``generate``
    / ``compact`` / ``route`` / ``verify`` / ``emit``) — the
    ``--timings`` flag prints them as a table.  Stage timing is
    span-derived (:mod:`repro.obs.trace`): asking for timings (or
    ``REPRO_TRACE=1``) activates a tracer if none is ambient, and each
    stage's wall time is its ``job.<stage>`` span's duration.
    """
    if obs_trace.active() is None and (
        timings is not None or obs_trace.local_enabled()
    ):
        with obs_trace.activated(obs_trace.Tracer()):
            return run_flow(
                parameter_path,
                overrides,
                output_stream,
                compact_axes=compact_axes,
                solver=solver,
                technology=technology,
                route_path=route_path,
                router=router,
                jobs=jobs,
                cache_dir=cache_dir,
                verify_mode=verify_mode,
                sim_vectors=sim_vectors,
                timings=timings,
            )
    if compact_axes and route_path:
        # The composite is built from the workspace cells, which flat
        # compaction does not touch — allowing both would print
        # compaction stats for geometry that never reaches the output.
        raise RsgError("--compact and --route cannot be combined")
    with open(parameter_path, "r", encoding="utf-8") as handle:
        text = handle.read()
    if overrides:
        text += "\n" + "\n".join(overrides)
    parameters = parse_parameters(text)

    sample_path = parameters.directives.get("example_file")
    design_path = parameters.directives.get("concept_file")
    if not sample_path or not design_path:
        raise RsgError(
            "parameter file must name .example_file (sample layout) and"
            " .concept_file (design file)"
        )

    with obs_trace.span("job.generate") as stage_span:
        rsg = Rsg()
        load_sample(sample_path, rsg)
        interpreter = Interpreter(rsg)
        interpreter.set_parameters(parameters.bindings)
        result = interpreter.run_file(design_path)

        output_cell_name = parameters.directives.get("output_cell")
        if output_cell_name:
            cell = rsg.cells.lookup(output_cell_name)
        elif isinstance(result, CellDefinition):
            cell = result
        else:
            raise RsgError(
                "design file did not end with mk_cell and no .output_cell"
                " directive was given"
            )
    if timings is not None:
        timings["generate"] = stage_span.duration_s

    if compact_axes:
        with obs_trace.span("job.compact") as stage_span:
            cell = _compact_flow_cell(
                cell, compact_axes, solver, technology, output_stream,
                jobs=jobs, cache_dir=cache_dir,
            )
        if timings is not None:
            timings["compact"] = stage_span.duration_s

    plan = None
    if route_path:
        from .route import compose_from_netfile

        with obs_trace.span("job.route") as stage_span:
            rules = {"A": TECH_A, "B": TECH_B}.get(technology.upper())
            if rules is None:
                raise RsgError(f"unknown technology {technology!r} (use A or B)")
            with open(route_path, "r", encoding="utf-8") as handle:
                net_text = handle.read()
            cell, plan = compose_from_netfile(
                net_text, rsg.cells, name=f"{cell.name}_routed",
                rules=rules, router=router,
            )
        if timings is not None:
            timings["route"] = stage_span.duration_s
        if output_stream is not None:
            print(plan.summary(), file=output_stream)

    if verify_mode:
        with obs_trace.span("job.verify") as stage_span:
            _verify_flow_cell(
                cell, plan, verify_mode, sim_vectors, technology, output_stream,
            )
        if timings is not None:
            timings["verify"] = stage_span.duration_s

    with obs_trace.span("job.emit") as stage_span:
        output_path = parameters.directives.get("output_file")
        output_format = parameters.directives.get("format", "cif").lower()
        if output_path:
            if output_format == "cif":
                write_cif(cell, output_path)
            elif output_format == "svg":
                with open(output_path, "w", encoding="utf-8") as handle:
                    handle.write(svg_render(cell))
            elif output_format == "ascii":
                with open(output_path, "w", encoding="utf-8") as handle:
                    handle.write(ascii_render(cell))
            else:
                raise RsgError(f"unknown output format {output_format!r}")
            if output_stream is not None:
                print(
                    f"wrote {output_format} to {output_path}", file=output_stream
                )
    if timings is not None:
        timings["emit"] = stage_span.duration_s
    return cell


def timings_table(timings: Dict[str, float], extras: tuple = ()) -> str:
    """Format per-stage wall timings as the ``--timings`` table.

    Stages print in pipeline order (``generate`` / ``compact`` /
    ``route`` / ``verify`` / ``emit``); stages that did not run are
    omitted, and a total row closes the table.  ``extras`` lines (the
    solver summaries from the run's trace spans) are appended verbatim
    after the total.  The same shape works for the stage timings a
    service :class:`~repro.service.jobs.JobResult` carries.
    """
    stage_order = ("generate", "compact", "route", "verify", "emit")
    rows = [f"{'stage':<10} {'seconds':>9}"]
    for stage in stage_order:
        if stage in timings:
            rows.append(f"{stage:<10} {timings[stage]:>9.3f}")
    for stage in timings:  # any stage outside the known pipeline order
        if stage not in stage_order:
            rows.append(f"{stage:<10} {timings[stage]:>9.3f}")
    rows.append(f"{'total':<10} {sum(timings.values()):>9.3f}")
    rows.extend(extras)
    return "\n".join(rows)


def solver_summary_lines(spans) -> tuple:
    """Summarise ``solver.solve`` spans for the ``--timings`` table.

    Aggregates iteration and relaxation counts per solver backend —
    the :class:`~repro.compact.solvers.base.SolveStats` numbers that
    used to be ``__str__``-only — one line per backend used.
    """
    totals: Dict[str, Dict[str, float]] = {}
    for span in spans:
        if span.name != "solver.solve":
            continue
        backend = str(span.attributes.get("backend", "?"))
        entry = totals.setdefault(
            backend, {"solves": 0, "passes": 0, "relaxations": 0, "seconds": 0.0}
        )
        entry["solves"] += 1
        entry["passes"] += span.attributes.get("passes", 0)
        entry["relaxations"] += span.attributes.get("relaxations", 0)
        entry["seconds"] += span.duration_s
    return tuple(
        f"solver {backend}: {int(entry['solves'])} solve(s),"
        f" {int(entry['passes'])} pass(es),"
        f" {int(entry['relaxations'])} relaxation(s)"
        f" in {entry['seconds']:.3f}s"
        for backend, entry in sorted(totals.items())
    )


def _verify_flow_cell(
    cell: CellDefinition,
    plan,
    mode: str,
    sim_vectors: Optional[int],
    technology: str,
    output_stream,
) -> None:
    """Run the requested verification over the flow's output cell.

    Routed composites get the wiring connectivity round-trip (the two
    routed blocks are opaque here, so every mode runs the same
    structural check — stated in the output rather than silently
    assumed); everything else goes through
    :func:`repro.verify.verify_cell`.  Raises :class:`RsgError` when
    any check fails, so the CLI exits non-zero on a functionally
    broken layout.
    """
    if mode not in ("lvs", "sim", "all"):
        raise RsgError(f"--verify takes lvs, sim or all, not {mode!r}")
    if plan is not None:
        from .route.compose import verify_composite

        mismatches = verify_composite(cell, plan)
        if output_stream is not None:
            print(
                f"verify {cell.name} (routed composite, connectivity"
                f" round-trip for any --verify mode):"
                f" {len(plan.nets)} nets round-tripped,"
                f" {len(mismatches)} mismatches", file=output_stream,
            )
        if mismatches:
            raise VerificationError(
                "verification failed: " + "; ".join(mismatches[:3])
            )
        return
    from .verify import verify_cell
    from .verify.driver import DEFAULT_MAX_VECTORS

    rules = {"A": TECH_A, "B": TECH_B}.get(technology.upper())
    if rules is None:
        raise RsgError(f"unknown technology {technology!r} (use A or B)")
    report = verify_cell(
        cell, mode=mode,
        max_vectors=sim_vectors or DEFAULT_MAX_VECTORS,
        rules=rules,
    )
    if output_stream is not None:
        print(report.summary(), file=output_stream)
    if not report.ok:
        raise VerificationError(f"verification failed for {cell.name!r}")


def _compact_flow_cell(
    cell: CellDefinition,
    axes: str,
    solver: Optional[str],
    technology: str,
    output_stream,
    jobs: int = 1,
    cache_dir: Optional[str] = None,
) -> CellDefinition:
    """Run the requested compaction mode over ``cell``.

    ``axes`` is one flat pass per letter (``x``/``y``/``xy``/``yx``) or
    ``"hier"``/``"hier:<axes>"`` for the compact-once/stamp-many
    hierarchical pipeline (bare ``hier`` compacts leaves along x;
    ``hier:xy`` runs both passes per leaf).
    """
    hier_axes = None
    if axes == "hier":
        hier_axes = "x"
    elif axes.startswith("hier:"):
        hier_axes = axes[len("hier:"):]
        if hier_axes not in ("x", "y", "xy", "yx"):
            raise RsgError(
                f"--compact hier:<axes> takes x, y, xy or yx, not {hier_axes!r}"
            )
    elif axes not in ("x", "y", "xy", "yx"):
        raise RsgError(
            f"--compact takes x, y, xy, yx, hier or hier:<axes>, not {axes!r}"
        )
    rules = {"A": TECH_A, "B": TECH_B}.get(technology.upper())
    if rules is None:
        raise RsgError(f"unknown technology {technology!r} (use A or B)")
    cache = CompactionCache(cache_dir) if cache_dir else None
    if hier_axes is not None:
        compactor = HierarchicalCompactor(
            rules, axes=hier_axes, width_mode="preserve", solver=solver,
            jobs=jobs, cache=cache,
        )
        cell = compactor.compact(cell)
        if output_stream is not None:
            print(compactor.last_report.summary(), file=output_stream)
            if cache is not None:
                print(cache.stats(), file=output_stream)
        return cell
    for axis in axes:
        cell, result = compact_cell(
            cell, rules, axis=axis, width_mode="preserve", solver=solver,
            cache=cache,
        )
        if output_stream is not None:
            print(
                f"compacted {axis}: width {result.width_before} ->"
                f" {result.width_after} ({result.stats})",
                file=output_stream,
            )
    if cache is not None and output_stream is not None:
        print(cache.stats(), file=output_stream)
    return cell


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point: the batch flow plus the service verbs."""
    arguments_list = list(sys.argv[1:] if argv is None else argv)
    if arguments_list and arguments_list[0] in (
        "serve", "submit", "gc", "stats", "trace"
    ):
        verb, rest = arguments_list[0], arguments_list[1:]
        try:
            if verb == "serve":
                from .service.server import serve_main

                return serve_main(rest)
            if verb == "gc":
                from .service.store import gc_main

                return gc_main(rest)
            if verb == "stats":
                from .service.client import stats_main

                return stats_main(rest)
            if verb == "trace":
                from .service.client import trace_main

                return trace_main(rest)
            from .service.client import submit_main

            return submit_main(rest)
        except KeyboardInterrupt:
            return EXIT_ERROR
        except Exception as error:  # noqa: BLE001 — mapped to exit families
            return _report_error(error)
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Regular Structure Generator: design file + sample"
        " layout + parameter file -> layout.  The 'serve', 'submit',"
        " 'gc', 'stats' and 'trace' verbs operate the layout service"
        " instead (see 'repro <verb> --help').",
    )
    from . import __version__

    parser.add_argument(
        "--version",
        action="version",
        version=f"%(prog)s {__version__}",
        help="print the installed package version and exit",
    )
    parser.add_argument("parameter_file", help="the parameter file (Appendix C style)")
    parser.add_argument(
        "--set",
        action="append",
        default=[],
        metavar="NAME=VALUE",
        help="override a parameter binding (repeatable)",
    )
    parser.add_argument(
        "--render",
        action="store_true",
        help="print an ASCII rendering of the result to stdout",
    )
    parser.add_argument(
        "--timings",
        action="store_true",
        help="print the per-stage wall-clock table after the flow"
        " (generate/compact/route/verify/emit — the same stages the"
        " layout service records per job)",
    )
    parser.add_argument(
        "--compact",
        choices=["x", "y", "xy", "yx", "hier", "hier:x", "hier:y", "hier:xy", "hier:yx"],
        metavar="AXES",
        help="run the flat compactor over the result (x, y, xy or yx),"
        " or the compact-once/stamp-many hierarchical pipeline"
        " ('hier' = per-leaf x pass; 'hier:xy' etc. pick the leaf passes)",
    )
    parser.add_argument(
        "--jobs",
        type=int,
        default=1,
        metavar="N",
        help="worker processes for --compact hier leaf-cell fan-out"
        " (default: 1; output is byte-identical for any N)",
    )
    parser.add_argument(
        "--cache-dir",
        metavar="DIR",
        help="persist compaction results under DIR so unchanged cells"
        " are never compacted twice, even across runs",
    )
    parser.add_argument(
        "--solver",
        choices=list(available_solvers()),
        help="longest-path backend for compaction (default: bellman-ford)",
    )
    parser.add_argument(
        "--tech",
        choices=["A", "B"],
        help="design-rule technology used by --compact/--route (default: A)",
    )
    parser.add_argument(
        "--route",
        metavar="NETFILE",
        help="compose two workspace cells with the wiring subsystem; the"
        " file names bottom/top cells and the nets to route",
    )
    parser.add_argument(
        "--router",
        choices=["auto", "river", "channel"],
        default="auto",
        help="routing algorithm for --route (default: auto)",
    )
    parser.add_argument(
        "--verify",
        choices=["lvs", "sim", "all"],
        metavar="MODE",
        help="verify the result against silicon: extract a transistor"
        " netlist from the masks, compare it with the intended netlist"
        " (lvs), switch-level simulate it against the programmed"
        " function (sim), or both (all); routed composites get the"
        " wiring connectivity round-trip",
    )
    parser.add_argument(
        "--sim-vectors",
        type=int,
        metavar="N",
        help="cap on simulated input combinations for --verify"
        " (exhaustive up to N, seeded random sampling beyond;"
        " default: 4096)",
    )
    arguments = parser.parse_args(arguments_list)
    if not arguments.compact and not arguments.route and (
        arguments.solver or arguments.tech
    ):
        parser.error("--solver/--tech have no effect without --compact/--route")
    if arguments.solver and not arguments.compact:
        parser.error("--solver has no effect without --compact")
    if arguments.jobs < 1:
        parser.error("--jobs must be at least 1")
    if arguments.jobs != 1 and not (
        arguments.compact or ""
    ).startswith("hier"):
        parser.error("--jobs has no effect without --compact hier")
    if arguments.cache_dir and not arguments.compact:
        parser.error("--cache-dir has no effect without --compact")
    if arguments.router != "auto" and not arguments.route:
        parser.error("--router has no effect without --route")
    if arguments.sim_vectors is not None and not arguments.verify:
        parser.error("--sim-vectors has no effect without --verify")
    if arguments.sim_vectors is not None and arguments.sim_vectors < 1:
        parser.error("--sim-vectors must be at least 1")
    if arguments.sim_vectors is not None and arguments.route:
        parser.error(
            "--sim-vectors has no effect with --route: routed composites"
            " verify by connectivity round-trip, not simulation"
        )
    if arguments.compact and arguments.route:
        parser.error("--compact and --route cannot be combined (the composite"
                     " is built from the uncompacted workspace cells)")
    stage_timings: Optional[Dict[str, float]] = (
        {} if arguments.timings else None
    )
    tracer: Optional[obs_trace.Tracer] = (
        obs_trace.Tracer()
        if arguments.timings or obs_trace.local_enabled()
        else None
    )
    try:
        with (
            obs_trace.activated(tracer)
            if tracer is not None
            else _null_context()
        ):
            cell = run_flow(
                arguments.parameter_file,
                arguments.set,
                sys.stdout,
                compact_axes=arguments.compact,
                solver=arguments.solver,
                technology=arguments.tech or "A",
                route_path=arguments.route,
                router=arguments.router,
                jobs=arguments.jobs,
                cache_dir=arguments.cache_dir,
                verify_mode=arguments.verify,
                sim_vectors=arguments.sim_vectors,
                timings=stage_timings,
            )
    except Exception as error:  # noqa: BLE001 — mapped to exit families
        return _report_error(error)
    print(
        f"generated cell {cell.name!r}:"
        f" {cell.count_instances(recursive=True)} instances"
    )
    if stage_timings is not None:
        extras = solver_summary_lines(tracer.finished()) if tracer else ()
        print(timings_table(stage_timings, extras=extras))
    if arguments.render:
        print(ascii_render(cell))
    return 0


def _null_context():
    """A no-op context manager (the untraced run_flow path)."""
    import contextlib

    return contextlib.nullcontext()


if __name__ == "__main__":
    raise SystemExit(main())
