"""Connectivity extraction through routed wire geometry.

Coincidence extraction (:mod:`repro.layout.connectivity`) connects
ports that land on the same point — the abutment story.  Routed
composites connect ports through *wires*, so this module traces the
wire geometry instead: same-layer boxes that touch are electrically
one node, and a via square joins whatever it overlaps across layers
(vias are only emitted at genuine junctions, so a branch crossing a
foreign trunk — no via — stays unconnected).  The result is the
round-trip oracle for :func:`repro.route.compose.compose`: the groups
extracted here must reproduce exactly the nets that were requested.
"""

from __future__ import annotations

from heapq import heappop, heappush
from typing import Dict, List, Optional, Sequence, Tuple

from ..core.cell import CellDefinition, Port
from ..geometry import Box, Transform, batch
from .style import RouteStyle

__all__ = [
    "wire_components",
    "wire_components_batch",
    "wire_components_python",
    "wire_components_reference",
    "routed_netlist",
]


class _UnionFind:
    """Path-compressed disjoint sets over integer ids."""

    def __init__(self, size: int) -> None:
        self.parent = list(range(size))

    def find(self, a: int) -> int:
        """Representative of ``a``'s set."""
        root = a
        while self.parent[root] != root:
            root = self.parent[root]
        while self.parent[a] != root:
            self.parent[a], a = root, self.parent[a]
        return root

    def union(self, a: int, b: int) -> None:
        """Merge the sets holding ``a`` and ``b``."""
        ra, rb = self.find(a), self.find(b)
        if ra != rb:
            self.parent[rb] = ra


def _connects(
    layer_a: str, box_a: Box, layer_b: str, box_b: Box, via_layer: str
) -> bool:
    """True when two overlapping wire boxes are electrically one node."""
    if not box_a.overlaps(box_b):
        return False
    if layer_a == layer_b:
        return True
    return bool(via_layer) and via_layer in (layer_a, layer_b)


def wire_components(
    layers: Dict[str, List[Box]], style: RouteStyle
) -> List[List[Tuple[str, Box]]]:
    """Group wire boxes into electrical components.

    Same-layer boxes that touch or overlap merge; across layers only a
    via square merges what it overlaps.  Dispatches on the
    ``REPRO_KERNEL`` switch: the numpy batch build
    (:func:`wire_components_batch`) by default, the interpreted sweep
    (:func:`wire_components_python`) otherwise.  The grouping returned
    is identical either way — both orders components by first box in
    the canonical item order and boxes within a component likewise.
    """
    if batch.use_numpy():
        return wire_components_batch(layers, style)
    return wire_components_python(layers, style)


def _grouped(
    items: List[Tuple[str, Box]], sets: _UnionFind
) -> List[List[Tuple[str, Box]]]:
    """Canonical component listing of a solved union-find partition."""
    grouped: Dict[int, List[Tuple[str, Box]]] = {}
    for index, item in enumerate(items):
        grouped.setdefault(sets.find(index), []).append(item)
    return list(grouped.values())


def wire_components_batch(
    layers: Dict[str, List[Box]], style: RouteStyle
) -> List[List[Tuple[str, Box]]]:
    """Numpy batch build of the wire extractor.

    Two boxes overlap closed in y exactly when they share one of the
    ``ymin``/``ymax`` event lines, so connectivity decomposes per event
    line.  Same-layer touching is interval-graph connectivity: per
    (layer, line), chain every box whose start reaches back to the
    running ``xmax`` argmax of its predecessors — a segmented scan
    producing O(incidence) union edges instead of all overlapping
    pairs.  Via junctions are enumerated with two keyed
    ``searchsorted`` passes (the later starter's start lies inside the
    partner's span), deduplicated, and fed to the same union-find.
    The resulting partition — hence the returned grouping — is
    identical to :func:`wire_components_python`'s.
    """
    np = batch.require_numpy()
    items: List[Tuple[str, Box]] = [
        (layer, box) for layer in sorted(layers) for box in layers[layer]
    ]
    items.sort(key=lambda item: item[1].xmin)
    count = len(items)
    sets = _UnionFind(count)
    if count < 2:
        return _grouped(items, sets)
    layer_names = sorted(layers)
    code_of = {name: index for index, name in enumerate(layer_names)}
    arrays = batch.boxes_to_arrays([box for _, box in items])
    codes = np.fromiter(
        (code_of[layer] for layer, _ in items), dtype=np.int64, count=count
    )
    lines = batch.unique_sorted(np.concatenate([arrays.ymin, arrays.ymax]))
    first = np.searchsorted(lines, arrays.ymin)
    covered = np.searchsorted(lines, arrays.ymax) - first + 1  # inclusive
    total = int(covered.sum())
    entry = np.repeat(np.arange(count, dtype=np.int64), covered)
    bases = np.repeat(np.cumsum(covered) - covered, covered)
    line = np.repeat(first, covered) + np.arange(total, dtype=np.int64) - bases
    entry_x0 = arrays.xmin[entry]
    entry_x1 = arrays.xmax[entry]
    pair_codes = []

    # Same-layer chains per (layer, line).
    group = codes[entry] * np.int64(lines.size + 1) + line
    order = np.lexsort((entry_x1, entry_x0, group))
    sorted_group = group[order]
    sorted_entry = entry[order]
    # searchsorted-left over the duplicate-keeping sorted vector still
    # ranks and decodes xmax correctly (equal values share one index).
    unique_xmax = np.sort(arrays.xmax)
    combined = (
        np.searchsorted(unique_xmax, entry_x1[order]) * np.int64(count)
        + sorted_entry
    )
    running = batch.segmented_cummax(sorted_group, combined)
    link = np.empty(total, dtype=bool)
    link[0] = False
    link[1:] = (sorted_group[1:] == sorted_group[:-1]) & (
        entry_x0[order][1:] <= unique_xmax[running[:-1] // np.int64(count)]
    )
    indices = np.flatnonzero(link)
    if indices.size:
        chained = sorted_entry[indices]
        reached = running[indices - 1] % np.int64(count)
        pair_codes.append(
            np.minimum(chained, reached) * np.int64(count)
            + np.maximum(chained, reached)
        )

    # Via junctions: closed overlap with a via square joins across layers.
    via_code = code_of.get(style.via_layer, -1) if style.via_layer else -1
    if via_code >= 0:
        is_via = codes[entry] == via_code
        span = np.int64(int(arrays.xmax.max()) - int(arrays.xmin.min()) + 2)
        base = np.int64(int(arrays.xmin.min()))
        for queries, targets in (
            (np.flatnonzero(is_via), np.flatnonzero(~is_via)),
            (np.flatnonzero(~is_via), np.flatnonzero(is_via)),
        ):
            if queries.size == 0 or targets.size == 0:
                continue
            target_key = line[targets] * span + (entry_x0[targets] - base)
            target_order = np.argsort(target_key)
            target_key = target_key[target_order]
            target_box = entry[targets][target_order]
            lo = np.searchsorted(
                target_key, line[queries] * span + (entry_x0[queries] - base),
                side="left",
            )
            hi = np.searchsorted(
                target_key, line[queries] * span + (entry_x1[queries] - base),
                side="right",
            )
            query_rows, target_rows = batch.expand_ranges(lo, hi)
            if query_rows.size:
                a = entry[queries][query_rows]
                b = target_box[target_rows]
                pair_codes.append(
                    np.minimum(a, b) * np.int64(count) + np.maximum(a, b)
                )

    if pair_codes:
        for code in batch.unique_sorted(np.concatenate(pair_codes)).tolist():
            sets.union(code // count, code % count)
    return _grouped(items, sets)


def wire_components_python(
    layers: Dict[str, List[Box]], style: RouteStyle
) -> List[List[Tuple[str, Box]]]:
    """The interpreted sweep build of the wire extractor.

    The plane sweep over x keeps its active set in a min-heap keyed on
    ``xmax``, so expiry is ``O(log n)`` pops instead of the per-item
    full list rebuild of :func:`wire_components_reference`.  Note the
    connection pair loop still visits every live wire per item, so
    worst-case cost remains ``O(n x active)`` on workloads where
    nothing expires — the heap removes the rebuild overhead, not the
    pair checks.  The grouping returned is identical to the
    reference's; serves as the equivalence oracle for
    :func:`wire_components_batch`.
    """
    items: List[Tuple[str, Box]] = [
        (layer, box) for layer in sorted(layers) for box in layers[layer]
    ]
    items.sort(key=lambda item: item[1].xmin)
    sets = _UnionFind(len(items))
    active: List[Tuple[int, int]] = []  # (xmax, index) min-heap
    for index, (layer, box) in enumerate(items):
        while active and active[0][0] < box.xmin:
            heappop(active)
        for _, j in active:
            other_layer, other_box = items[j]
            if _connects(layer, box, other_layer, other_box, style.via_layer):
                sets.union(index, j)
        heappush(active, (box.xmax, index))
    return _grouped(items, sets)


def wire_components_reference(
    layers: Dict[str, List[Box]], style: RouteStyle
) -> List[List[Tuple[str, Box]]]:
    """The pre-heap extractor sweep, retained as an equivalence oracle.

    Rebuilds the whole active list per item — quadratic when wires stay
    live across the sweep — and must return the identical grouping to
    :func:`wire_components` on any input.
    """
    items: List[Tuple[str, Box]] = [
        (layer, box) for layer in sorted(layers) for box in layers[layer]
    ]
    items.sort(key=lambda item: item[1].xmin)
    sets = _UnionFind(len(items))
    active: List[int] = []
    for index, (layer, box) in enumerate(items):
        active = [j for j in active if items[j][1].xmax >= box.xmin]
        for j in active:
            other_layer, other_box = items[j]
            if _connects(layer, box, other_layer, other_box, style.via_layer):
                sets.union(index, j)
        active.append(index)
    grouped: Dict[int, List[Tuple[str, Box]]] = {}
    for index, item in enumerate(items):
        grouped.setdefault(sets.find(index), []).append(item)
    return list(grouped.values())


def _attaches(port: Port, layer: str, box: Box, via_layer: str) -> bool:
    """True when a port lands on a wire box it can connect to."""
    if not box.contains_point(port.position):
        return False
    return not port.layer or port.layer == layer or layer == via_layer


def routed_netlist(
    composite: CellDefinition,
    style: RouteStyle,
    wires_name: str = "wires",
) -> List[List[str]]:
    """Extract port groups connected through a composite's wiring cell.

    Finds the instance named ``wires_name``, traces its geometry into
    components, and attaches every *other* hierarchical port that lands
    on a component's box.  Returns sorted groups of hierarchical port
    names, one per wire component that touches at least one port — the
    connectivity round-trip oracle for routed composites.
    """
    wires_instance = None
    for instance in composite.instances:
        if instance.name == wires_name:
            wires_instance = instance
            break
    if wires_instance is None:
        raise ValueError(f"composite has no instance named {wires_name!r}")
    layers: Dict[str, List[Box]] = {}
    transform = wires_instance.transform
    for layer_box in wires_instance.definition.flatten(transform):
        layers.setdefault(layer_box.layer, []).append(layer_box.box)
    components = wire_components(layers, style)

    prefix = f"{wires_name}/"
    ports = [
        port
        for port in composite.flatten_ports(Transform())
        if not port.name.startswith(prefix)
    ]
    groups: List[List[str]] = []
    for component in components:
        attached = sorted(
            {
                port.name
                for port in ports
                for layer, box in component
                if _attaches(port, layer, box, style.via_layer)
            }
        )
        if attached:
            groups.append(attached)
    return sorted(groups)
