"""Connectivity extraction through routed wire geometry.

Coincidence extraction (:mod:`repro.layout.connectivity`) connects
ports that land on the same point — the abutment story.  Routed
composites connect ports through *wires*, so this module traces the
wire geometry instead: same-layer boxes that touch are electrically
one node, and a via square joins whatever it overlaps across layers
(vias are only emitted at genuine junctions, so a branch crossing a
foreign trunk — no via — stays unconnected).  The result is the
round-trip oracle for :func:`repro.route.compose.compose`: the groups
extracted here must reproduce exactly the nets that were requested.
"""

from __future__ import annotations

from heapq import heappop, heappush
from typing import Dict, List, Optional, Sequence, Tuple

from ..core.cell import CellDefinition, Port
from ..geometry import Box, Transform
from .style import RouteStyle

__all__ = ["wire_components", "wire_components_reference", "routed_netlist"]


class _UnionFind:
    """Path-compressed disjoint sets over integer ids."""

    def __init__(self, size: int) -> None:
        self.parent = list(range(size))

    def find(self, a: int) -> int:
        """Representative of ``a``'s set."""
        root = a
        while self.parent[root] != root:
            root = self.parent[root]
        while self.parent[a] != root:
            self.parent[a], a = root, self.parent[a]
        return root

    def union(self, a: int, b: int) -> None:
        """Merge the sets holding ``a`` and ``b``."""
        ra, rb = self.find(a), self.find(b)
        if ra != rb:
            self.parent[rb] = ra


def _connects(
    layer_a: str, box_a: Box, layer_b: str, box_b: Box, via_layer: str
) -> bool:
    """True when two overlapping wire boxes are electrically one node."""
    if not box_a.overlaps(box_b):
        return False
    if layer_a == layer_b:
        return True
    return bool(via_layer) and via_layer in (layer_a, layer_b)


def wire_components(
    layers: Dict[str, List[Box]], style: RouteStyle
) -> List[List[Tuple[str, Box]]]:
    """Group wire boxes into electrical components.

    Same-layer boxes that touch or overlap merge; across layers only a
    via square merges what it overlaps.  The plane sweep over x keeps
    its active set in a min-heap keyed on ``xmax``, so expiry is
    ``O(log n)`` pops instead of the per-item full list rebuild of
    :func:`wire_components_reference`.  Note the connection pair loop
    still visits every live wire per item, so worst-case cost remains
    ``O(n x active)`` on workloads where nothing expires — the heap
    removes the rebuild overhead, not the pair checks.  The grouping
    returned is identical to the reference's.
    """
    items: List[Tuple[str, Box]] = [
        (layer, box) for layer in sorted(layers) for box in layers[layer]
    ]
    items.sort(key=lambda item: item[1].xmin)
    sets = _UnionFind(len(items))
    active: List[Tuple[int, int]] = []  # (xmax, index) min-heap
    for index, (layer, box) in enumerate(items):
        while active and active[0][0] < box.xmin:
            heappop(active)
        for _, j in active:
            other_layer, other_box = items[j]
            if _connects(layer, box, other_layer, other_box, style.via_layer):
                sets.union(index, j)
        heappush(active, (box.xmax, index))
    grouped: Dict[int, List[Tuple[str, Box]]] = {}
    for index, item in enumerate(items):
        grouped.setdefault(sets.find(index), []).append(item)
    return list(grouped.values())


def wire_components_reference(
    layers: Dict[str, List[Box]], style: RouteStyle
) -> List[List[Tuple[str, Box]]]:
    """The pre-heap extractor sweep, retained as an equivalence oracle.

    Rebuilds the whole active list per item — quadratic when wires stay
    live across the sweep — and must return the identical grouping to
    :func:`wire_components` on any input.
    """
    items: List[Tuple[str, Box]] = [
        (layer, box) for layer in sorted(layers) for box in layers[layer]
    ]
    items.sort(key=lambda item: item[1].xmin)
    sets = _UnionFind(len(items))
    active: List[int] = []
    for index, (layer, box) in enumerate(items):
        active = [j for j in active if items[j][1].xmax >= box.xmin]
        for j in active:
            other_layer, other_box = items[j]
            if _connects(layer, box, other_layer, other_box, style.via_layer):
                sets.union(index, j)
        active.append(index)
    grouped: Dict[int, List[Tuple[str, Box]]] = {}
    for index, item in enumerate(items):
        grouped.setdefault(sets.find(index), []).append(item)
    return list(grouped.values())


def _attaches(port: Port, layer: str, box: Box, via_layer: str) -> bool:
    """True when a port lands on a wire box it can connect to."""
    if not box.contains_point(port.position):
        return False
    return not port.layer or port.layer == layer or layer == via_layer


def routed_netlist(
    composite: CellDefinition,
    style: RouteStyle,
    wires_name: str = "wires",
) -> List[List[str]]:
    """Extract port groups connected through a composite's wiring cell.

    Finds the instance named ``wires_name``, traces its geometry into
    components, and attaches every *other* hierarchical port that lands
    on a component's box.  Returns sorted groups of hierarchical port
    names, one per wire component that touches at least one port — the
    connectivity round-trip oracle for routed composites.
    """
    wires_instance = None
    for instance in composite.instances:
        if instance.name == wires_name:
            wires_instance = instance
            break
    if wires_instance is None:
        raise ValueError(f"composite has no instance named {wires_name!r}")
    layers: Dict[str, List[Box]] = {}
    transform = wires_instance.transform
    for layer_box in wires_instance.definition.flatten(transform):
        layers.setdefault(layer_box.layer, []).append(layer_box.box)
    components = wire_components(layers, style)

    prefix = f"{wires_name}/"
    ports = [
        port
        for port in composite.flatten_ports(Transform())
        if not port.name.startswith(prefix)
    ]
    groups: List[List[str]] = []
    for component in components:
        attached = sorted(
            {
                port.name
                for port in ports
                for layer, box in component
                if _attaches(port, layer, box, style.via_layer)
            }
        )
        if attached:
            groups.append(attached)
    return sorted(groups)
