"""Composition beyond abutment: place two cells, route the gap.

:func:`compose` is the subsystem's front door.  It takes a *bottom*
and a *top* cell plus a list of net requests naming ports on the
facing edges, derives the channel geometry from the cells' bounding
boxes, picks a router (river when the request is order-preserving and
single-layer-compatible, the general channel router otherwise), and
emits the wires as ordinary geometry in a child wiring cell of a new
composite.  The vertical gap between the cells is *derived from the
routing result* — the top cell is placed exactly one channel height
above the bottom cell — which is what makes non-abutting composition
automatic: no manual spacing, no hand-drawn wires.

The module also parses the CLI's net-request files (``--route``)::

    # datapath.net
    bottom controller
    top datapath 12          # optional x offset for the top cell
    net c0 controller/out0 datapath/ctl0
    net c1 controller/out1 datapath/ctl1
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict, List, Mapping, Optional, Sequence, Tuple, Union

if TYPE_CHECKING:  # pragma: no cover - annotation-only import
    from ..compact.pipeline import HierarchicalCompactor

from ..compact.rules import TECH_A, DesignRules
from ..core.cell import CellDefinition, CellTable
from ..core.errors import ParseError
from ..geometry import NORTH, Box, Vec2
from .channel import Pin, channel_route
from .river import river_route
from .style import RouteStyle, RoutingError
from .wiring import Wiring

__all__ = [
    "NetRequest",
    "WiringPlan",
    "compose",
    "parse_net_file",
    "compose_from_netfile",
    "verify_composite",
]

NetsArgument = Union[
    Mapping[str, Sequence[Tuple[str, str]]],
    Sequence["NetRequest"],
]


@dataclass(frozen=True)
class NetRequest:
    """One requested connection: a net name and its (instance, port) terminals."""

    name: str
    terminals: Tuple[Tuple[str, str], ...]


@dataclass
class WiringPlan:
    """Everything :func:`compose` decided: channel, router, wires, stats."""

    name: str
    bottom_name: str
    top_name: str
    nets: Tuple[NetRequest, ...]
    channel: Box
    wiring: Wiring

    @property
    def router(self) -> str:
        """Which router ran (``"river"`` or ``"channel"``)."""
        return self.wiring.router

    @property
    def style(self) -> RouteStyle:
        """The wiring style the channel was routed with."""
        return self.wiring.style

    @property
    def tracks(self) -> int:
        """Horizontal track levels used in the channel."""
        return self.wiring.tracks

    @property
    def height(self) -> int:
        """Channel height in lambda (the derived cell gap)."""
        return self.wiring.height

    @property
    def vias(self) -> int:
        """Trunk/branch junction squares emitted."""
        return self.wiring.vias

    def wirelength(self) -> int:
        """Total routed wirelength in lambda."""
        return self.wiring.wirelength()

    def requested_groups(self) -> List[List[str]]:
        """The request as sorted hierarchical port-name groups."""
        return sorted(
            sorted(f"{instance}/{port}" for instance, port in net.terminals)
            for net in self.nets
        )

    def summary(self) -> str:
        """One printable line describing the routed channel."""
        return (
            f"composed {self.bottom_name!r} + {self.top_name!r} via"
            f" {self.wiring.summary()}"
        )


def verify_composite(composite: CellDefinition, plan: WiringPlan) -> List[str]:
    """Connectivity round-trip of a routed composite.

    Re-extracts the wire geometry (:func:`repro.route.extract.routed_netlist`)
    and compares the recovered port groups against the request; returns
    human-readable mismatch strings (empty = the wiring carries exactly
    the requested connectivity).  This is the verification hook the
    ``--verify`` CLI flow runs on routed composites, where the output
    is wiring plus two opaque blocks rather than a single generated
    structure.
    """
    from .extract import routed_netlist

    extracted = routed_netlist(composite, plan.style)
    requested = plan.requested_groups()
    mismatches: List[str] = []
    for group in requested:
        if group not in extracted:
            mismatches.append(f"requested net {group} not recovered from wires")
    for group in extracted:
        if group not in requested:
            mismatches.append(f"wires connect unrequested group {group}")
    return mismatches


def _normalise_nets(nets: NetsArgument) -> Tuple[NetRequest, ...]:
    """Accept a mapping or NetRequest sequence; always return requests."""
    if isinstance(nets, Mapping):
        return tuple(
            NetRequest(name, tuple(tuple(t) for t in terminals))
            for name, terminals in nets.items()
        )
    return tuple(
        net
        if isinstance(net, NetRequest)
        else NetRequest(net[0], tuple(tuple(t) for t in net[1]))
        for net in nets
    )


def _river_eligible(
    nets: Sequence[NetRequest],
    pins: Sequence[Pin],
    river_style: RouteStyle,
) -> bool:
    """True when the request is a planar, order-preserving two-pin match."""
    by_net: Dict[str, Dict[str, Pin]] = {}
    for pin in pins:
        by_net.setdefault(pin.net, {})[pin.side] = pin
        if pin.layer and pin.layer != river_style.trunk_layer:
            return False
    pairs = []
    for net in nets:
        sides = by_net.get(net.name, {})
        if len(net.terminals) != 2 or set(sides) != {"bottom", "top"}:
            return False
        pairs.append((sides["bottom"].x, sides["top"].x))
    pairs.sort()
    bottoms = [a for a, _ in pairs]
    tops = [b for _, b in pairs]
    pitch = river_style.pitch
    if any(b - a < pitch for a, b in zip(bottoms, bottoms[1:])):
        return False
    if any(b - a < pitch for a, b in zip(tops, tops[1:])):
        return False
    return tops == sorted(tops)


def compose(
    name: str,
    bottom: CellDefinition,
    top: CellDefinition,
    nets: NetsArgument,
    rules: DesignRules = TECH_A,
    router: str = "auto",
    style: Optional[RouteStyle] = None,
    top_x: int = 0,
    bottom_name: str = "",
    top_name: str = "",
    compactor: Optional["HierarchicalCompactor"] = None,
) -> Tuple[CellDefinition, WiringPlan]:
    """Stack ``top`` above ``bottom`` and route the nets between them.

    Terminals name ports that must sit on the bottom cell's top edge or
    the top cell's bottom edge (in each cell's own coordinates); the
    top cell may be shifted horizontally with ``top_x``.  ``router`` is
    ``"auto"`` (river when possible), ``"river"`` or ``"channel"``.
    Returns ``(composite, plan)``; the composite holds both cells plus
    a ``wires`` child cell whose geometry realises every net.

    ``compactor`` (a
    :class:`~repro.compact.pipeline.HierarchicalCompactor`) runs the
    compact-once/stamp-many pass over both cells before they are
    placed, sharing its result cache across the pair (and across
    repeated composition calls).  Ports are carried through verbatim;
    if leaf compaction moved a terminal off its cell edge the existing
    edge checks below reject the request rather than mis-route it.
    The channel derivation itself leans on the cells' memoized bounding
    boxes, so re-composing large arrays does not re-flatten them.
    """
    requests = _normalise_nets(nets)
    if compactor is not None:
        bottom = compactor.compact(bottom)
        top = compactor.compact(top)
    seen_names = set()
    for request in requests:
        if request.name in seen_names:
            raise RoutingError(f"duplicate net name {request.name!r}")
        seen_names.add(request.name)
    bottom_name = bottom_name or bottom.name
    top_name = top_name or top.name
    if bottom_name == top_name:
        raise RoutingError(
            f"instance names collide ({bottom_name!r}); pass bottom_name/top_name"
        )
    bb_bottom = bottom.bounding_box()
    bb_top = top.bounding_box()
    if bb_bottom is None or bb_top is None:
        raise RoutingError("cannot compose empty cells")
    y0 = bb_bottom.ymax

    pins: List[Pin] = []
    for request in requests:
        if len(request.terminals) < 2:
            raise RoutingError(f"net {request.name!r} needs at least two terminals")
        for instance_name, port_name in request.terminals:
            if instance_name == bottom_name:
                port = bottom.port(port_name)
                if port.position.y != bb_bottom.ymax:
                    raise RoutingError(
                        f"port {bottom_name}/{port_name} is not on the bottom"
                        f" cell's top edge (y={port.position.y}, edge at"
                        f" y={bb_bottom.ymax})"
                    )
                pins.append(Pin(port.position.x, "bottom", request.name, port.layer))
            elif instance_name == top_name:
                port = top.port(port_name)
                if port.position.y != bb_top.ymin:
                    raise RoutingError(
                        f"port {top_name}/{port_name} is not on the top cell's"
                        f" bottom edge (y={port.position.y}, edge at"
                        f" y={bb_top.ymin})"
                    )
                pins.append(Pin(port.position.x + top_x, "top", request.name, port.layer))
            else:
                raise RoutingError(
                    f"net {request.name!r} names unknown instance"
                    f" {instance_name!r} (have {bottom_name!r}, {top_name!r})"
                )

    if router not in ("auto", "river", "channel"):
        raise RoutingError(f"router must be auto, river or channel, not {router!r}")
    # An explicit style constrains the router choice: a single-layer
    # style can only drive the river router, a two-layer style only the
    # channel router — silently substituting a derived default would
    # route on layers the caller never asked for.
    if style is not None:
        if style.is_single_layer and router == "channel":
            raise RoutingError(
                "a single-layer style cannot drive the channel router"
                " (it needs distinct trunk/branch layers)"
            )
        if not style.is_single_layer and router == "river":
            raise RoutingError(
                "a two-layer style cannot drive the river router"
                " (pass a RouteStyle.single_layer style)"
            )
    river_style = (
        style
        if style is not None and style.is_single_layer
        else RouteStyle.single_layer(rules)
    )
    use_river = (
        (style is None or style.is_single_layer)
        and router in ("auto", "river")
        and _river_eligible(requests, pins, river_style)
    )
    if use_river:
        bottom_pins = {p.net: p.x for p in pins if p.side == "bottom"}
        top_pins = {p.net: p.x for p in pins if p.side == "top"}
        pairs = [(r.name, bottom_pins[r.name], top_pins[r.name]) for r in requests]
        wiring = river_route(pairs, river_style, y0=y0)
    elif router == "river" or (style is not None and style.is_single_layer):
        raise RoutingError(
            "request is not river-routable (needs order-preserving two-pin"
            " nets on a single layer); use router='channel'"
        )
    else:
        channel_style = style if style is not None else RouteStyle.from_rules(rules)
        wiring = channel_route(pins, channel_style, y0=y0)

    composite = CellDefinition(name)
    composite.add_instance(bottom, Vec2(0, 0), NORTH, name=bottom_name)
    composite.add_instance(
        top, Vec2(top_x, y0 + wiring.height - bb_top.ymin), NORTH, name=top_name
    )
    wires = wiring.as_cell(f"{name}_wires")
    composite.add_instance(wires, Vec2(0, 0), NORTH, name="wires")

    xs = [pin.x for pin in pins] or [bb_bottom.xmin, bb_bottom.xmax]
    channel = Box(min(xs), y0, max(xs), y0 + wiring.height)
    plan = WiringPlan(
        name=name,
        bottom_name=bottom_name,
        top_name=top_name,
        nets=requests,
        channel=channel,
        wiring=wiring,
    )
    return composite, plan


def parse_net_file(text: str) -> Tuple[str, str, int, Tuple[NetRequest, ...]]:
    """Parse a ``--route`` net-request file (see module docstring).

    Returns ``(bottom_cell, top_cell, top_x, net_requests)``.
    """
    bottom = top = ""
    top_x = 0
    requests: List[NetRequest] = []
    for line_number, raw in enumerate(text.splitlines(), start=1):
        line = raw.split("#", 1)[0].strip()
        if not line:
            continue
        tokens = line.split()
        keyword = tokens[0].lower()
        if keyword == "bottom" and len(tokens) == 2:
            bottom = tokens[1]
        elif keyword == "top" and len(tokens) in (2, 3):
            top = tokens[1]
            if len(tokens) == 3:
                try:
                    top_x = int(tokens[2])
                except ValueError:
                    raise ParseError(
                        f"line {line_number}: top offset must be an integer"
                    ) from None
        elif keyword == "net" and len(tokens) >= 4:
            terminals = []
            for token in tokens[2:]:
                if "/" not in token:
                    raise ParseError(
                        f"line {line_number}: terminal {token!r} must be"
                        " instance/port"
                    )
                instance_name, port_name = token.split("/", 1)
                terminals.append((instance_name, port_name))
            requests.append(NetRequest(tokens[1], tuple(terminals)))
        else:
            raise ParseError(
                f"line {line_number}: expected 'bottom <cell>', 'top <cell>"
                " [x]' or 'net <name> <inst/port> <inst/port>...'"
            )
    if not bottom or not top:
        raise ParseError("net file must name both a bottom and a top cell")
    if not requests:
        raise ParseError("net file declares no nets")
    return bottom, top, top_x, tuple(requests)


def compose_from_netfile(
    text: str,
    cells: CellTable,
    name: str = "composite",
    rules: DesignRules = TECH_A,
    router: str = "auto",
    compactor: Optional["HierarchicalCompactor"] = None,
) -> Tuple[CellDefinition, WiringPlan]:
    """Run :func:`compose` from net-file text against a cell table.

    ``compactor`` threads through to :func:`compose` (compact-once over
    both named cells before placement and routing).
    """
    bottom_name, top_name, top_x, requests = parse_net_file(text)
    return compose(
        name,
        cells.lookup(bottom_name),
        cells.lookup(top_name),
        requests,
        rules=rules,
        router=router,
        top_x=top_x,
        compactor=compactor,
    )
