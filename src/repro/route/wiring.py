"""The routers' common output: wires as ordinary mask geometry.

Both routers return a :class:`Wiring` — per-net lists of ``(layer,
Box)`` wire pieces plus the derived channel height and track count.  A
wiring knows how to regroup itself per layer (the shape
:func:`~repro.compact.drc.check_layout` consumes), measure total
wirelength, and emit itself as a :class:`~repro.core.cell.CellDefinition`
so composites can instantiate routed channels like any other cell.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass, field
from typing import Dict, List, Tuple

from ..core.cell import CellDefinition
from ..geometry import Box
from .style import RouteStyle

__all__ = ["Wiring"]


@dataclass
class Wiring:
    """Routed wires for one channel, in absolute coordinates.

    ``router`` names the algorithm that produced it (``"river"`` or
    ``"channel"``); ``tracks`` counts horizontal track levels used and
    ``vias`` the trunk/branch junction squares (always 0 for river
    wiring, which is single-layer).
    """

    router: str
    style: RouteStyle
    y0: int
    height: int
    tracks: int = 0
    vias: int = 0
    #: net name -> [(layer, box), ...]
    wires: Dict[str, List[Tuple[str, Box]]] = field(default_factory=dict)

    def add(self, net: str, layer: str, box: Box) -> None:
        """Append one wire piece to ``net``."""
        self.wires.setdefault(net, []).append((layer, box))

    def layers(self) -> Dict[str, List[Box]]:
        """All wire boxes regrouped per layer (the DRC oracle's shape)."""
        grouped: Dict[str, List[Box]] = defaultdict(list)
        for pieces in self.wires.values():
            for layer, box in pieces:
                grouped[layer].append(box)
        return dict(grouped)

    def wirelength(self) -> int:
        """Total centre-line length of all wires, in lambda.

        Each box contributes its long dimension; junction squares
        (width == height == wire width) contribute nothing extra.
        """
        total = 0
        width = self.style.wire_width
        for pieces in self.wires.values():
            for _, box in pieces:
                total += max(box.width, box.height) - min(width, box.width, box.height)
        return total

    def net_names(self) -> List[str]:
        """Sorted names of the nets this wiring connects."""
        return sorted(self.wires)

    def as_cell(self, name: str) -> CellDefinition:
        """Emit the wires as a cell, one label per net at its first box."""
        cell = CellDefinition(name)
        for net in self.net_names():
            pieces = self.wires[net]
            for layer, box in pieces:
                cell.add_box(layer, box.xmin, box.ymin, box.xmax, box.ymax)
            _, first = pieces[0]
            cx, cy = first.center2x()
            cell.add_label(net, cx // 2, cy // 2)
        return cell

    def summary(self) -> str:
        """One printable line: router, nets, tracks, height, length, vias."""
        return (
            f"{self.router}: {len(self.wires)} nets, {self.tracks} tracks,"
            f" height {self.height}, wirelength {self.wirelength()},"
            f" {self.vias} vias"
        )
