"""River routing: planar, single-layer wiring between two facing edges.

A river channel connects pin ``i`` on the bottom edge to pin ``i`` on
the top edge, for pins listed in the same left-to-right order on both
edges (no crossings needed, so one wiring layer suffices — the classic
companion of abutment-based generators: when two generated arrays
almost line up, a river channel absorbs the remaining skew).

Wires are monotone rectilinear *staircases* built by the leftmost
greedy: within each direction group (rightward / leftward movers),
wire ``i`` hugs wire ``i-1`` at one pitch of clearance.  With ``T``
tracks, ``X[i][t]`` — the column where wire ``i`` rises from track
``t-1`` to ``t`` — satisfies the recurrence::

    X[i][t] = max(a_i, X[i-1][t+1] + pitch)      (X[i-1][T] = b_{i-1})

and the channel is feasible at height ``T`` iff every bottom pin
clears its predecessor's first run (``a_i >= X[i-1][1] + pitch``).
The smallest feasible ``T`` is found by sweeping up from the wires'
crossing density, so the height tracks the information-theoretic
minimum instead of degrading to one track per wire on long skews.
Wires that line up exactly are drawn as straight verticals outside any
track, and leftward movers are routed as mirrored rightward movers.
Opposite-direction and straight wires can never interact when the pins
along each edge keep one pitch of separation (their x extents stay
disjoint), so the groups share tracks freely.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

from ..geometry import Box
from .style import RouteStyle, RoutingError
from .wiring import Wiring

__all__ = ["river_route"]


def _validate_edge(xs: Sequence[int], side: str, pitch: int) -> None:
    """Pins along one edge must be strictly ordered, one pitch apart."""
    for left, right in zip(xs, xs[1:]):
        if right - left < pitch:
            raise RoutingError(
                f"river {side} pins at x={left} and x={right} are closer"
                f" than the pitch ({pitch})"
            )


def _density(group: List[Tuple[int, int]], pitch: int) -> int:
    """Max number of wires a vertical cut must cross, pitch-grown."""
    events = []
    for a, b in group:
        lo, hi = (a, b) if a < b else (b, a)
        events.append((lo, 1))
        events.append((hi + pitch, -1))
    best = current = 0
    for _, delta in sorted(events):
        current += delta
        best = max(best, current)
    return best


def _staircases(
    group: List[Tuple[int, int]], tracks: int, pitch: int
) -> Optional[List[List[int]]]:
    """Leftmost rise columns for a rightward group, or None if infeasible.

    Returns per wire the list ``[X[0..T]]`` with ``X[0] = a`` and
    ``X[T] = b``; ``X[t]`` is where the wire rises onto track ``t``.
    """
    previous: Optional[List[int]] = None
    result: List[List[int]] = []
    for a, b in group:
        xs = [a]
        for t in range(1, tracks):
            floor = previous[t + 1] + pitch if previous is not None else a
            xs.append(max(a, floor))
        xs.append(b)
        if previous is not None and a < previous[1] + pitch:
            return None  # bottom pin trapped under the predecessor's run
        if xs[tracks - 1] > b:
            return None  # cannot reach the top pin moving rightward
        result.append(xs)
        previous = xs
    return result


def river_route(
    pairs: Sequence[Tuple[str, int, int]],
    style: Optional[RouteStyle] = None,
    y0: int = 0,
) -> Wiring:
    """Route order-preserving two-pin nets across a river channel.

    ``pairs`` lists ``(net, bottom_x, top_x)``; sorting by bottom x must
    also sort by top x (order preservation) or a :class:`RoutingError`
    is raised — use the channel router for crossing nets.  Returns a
    :class:`Wiring` whose height is the smallest the staircases allow.
    """
    if style is None:
        from ..compact.rules import TECH_A

        style = RouteStyle.single_layer(TECH_A)
    ordered = sorted(pairs, key=lambda item: item[1])
    bottoms = [item[1] for item in ordered]
    tops = [item[2] for item in ordered]
    pitch = style.pitch
    _validate_edge(bottoms, "bottom", pitch)
    _validate_edge(tops, "top", pitch)
    if tops != sorted(tops):
        raise RoutingError(
            "pin order is not preserved between the edges; a river channel"
            " cannot route crossing nets (use the channel router)"
        )
    names = [item[0] for item in ordered]
    if len(set(names)) != len(names):
        raise RoutingError("river nets must have distinct names")

    rightward = [(a, b) for _, a, b in ordered if b > a]
    leftward = [(-a, -b) for _, a, b in ordered if b < a]
    leftward.reverse()  # mirrored coordinates reverse the processing order

    tracks = max(
        (_density(g, pitch) for g in (rightward, leftward) if g), default=0
    )
    solutions: dict = {}
    while True:
        if not rightward and not leftward:
            break
        right_xs = _staircases(rightward, tracks, pitch) if rightward else []
        left_xs = _staircases(leftward, tracks, pitch) if leftward else []
        if right_xs is not None and left_xs is not None:
            solutions = {"right": right_xs, "left": left_xs}
            break
        tracks += 1

    width = style.wire_width
    margin = style.margin
    if tracks:
        height = 2 * margin + tracks * pitch - style.spacing
    else:
        height = max(1, 2 * margin)
    wiring = Wiring(
        router="river", style=style, y0=y0, height=height, tracks=tracks
    )

    def center(track: int) -> int:
        return y0 + margin + width // 2 + track * pitch

    def emit(net: str, xs: List[int], mirror: bool) -> None:
        corners = [(xs[0], y0)]
        for t in range(tracks):
            corners.append((xs[t], center(t)))
            corners.append((xs[t + 1], center(t)))
        corners.append((xs[tracks], y0 + height))
        for (x0, ya), (x1, yb) in zip(corners, corners[1:]):
            if x0 == x1 and ya == yb:
                continue
            if mirror:
                x0, x1 = -x0, -x1
            lo_x = min(style.span(x0)[0], style.span(x1)[0])
            hi_x = max(style.span(x0)[1], style.span(x1)[1])
            lo_y = min(ya, yb)
            hi_y = max(ya, yb)
            if ya != yb:  # vertical piece: widen y to the wire's span
                lo_y = lo_y if lo_y in (y0,) else lo_y - width // 2
                hi_y = hi_y if hi_y in (y0 + height,) else hi_y - width // 2 + width
            else:
                lo_y, hi_y = lo_y - width // 2, lo_y - width // 2 + width
            wiring.add(net, style.trunk_layer, Box(lo_x, lo_y, hi_x, hi_y))

    right_index = left_index = 0
    left_solution = solutions.get("left", [])
    right_solution = solutions.get("right", [])
    left_count = len(left_solution)
    for net, a, b in ordered:
        if a == b:
            x_lo, x_hi = style.span(a)
            wiring.add(net, style.trunk_layer, Box(x_lo, y0, x_hi, y0 + height))
        elif b > a:
            emit(net, right_solution[right_index], mirror=False)
            right_index += 1
        else:
            # Leftward wires were mirrored and reversed; index from the end.
            emit(net, left_solution[left_count - 1 - left_index], mirror=True)
            left_index += 1
    return wiring
