"""The wiring subsystem: routing between placed cells (beyond abutment).

The RSG composes cells by interface-calculus abutment — ports must land
exactly on top of each other.  This package is the missing enabler for
multi-block designs: it connects *non-abutting* placed cells by drawing
wires as ordinary geometry.

* :mod:`repro.route.river` — order-preserving planar wiring between
  two facing edges on a single layer (the abutment generator's classic
  companion);
* :mod:`repro.route.channel` — general two-sided channel routing:
  constrained left-edge track assignment with dogleg handling of
  vertical constraints, trunks/branches/vias on two layers;
* :mod:`repro.route.compose` — the ``compose()`` API: place two cells,
  derive the channel from their bounding boxes, route the requested
  nets and emit a composite cell;
* :mod:`repro.route.extract` — connectivity extraction *through* the
  routed wires, the round-trip oracle;
* :mod:`repro.route.style` / :mod:`repro.route.wiring` — the derived
  technology table and the routers' common geometry output.
"""

from .channel import Pin, channel_route
from .compose import (
    NetRequest,
    WiringPlan,
    compose,
    compose_from_netfile,
    parse_net_file,
    verify_composite,
)
from .extract import routed_netlist, wire_components, wire_components_reference
from .river import river_route
from .style import RouteStyle, RoutingError
from .wiring import Wiring

__all__ = [
    "Pin",
    "channel_route",
    "river_route",
    "NetRequest",
    "WiringPlan",
    "compose",
    "verify_composite",
    "compose_from_netfile",
    "parse_net_file",
    "routed_netlist",
    "wire_components",
    "wire_components_reference",
    "RouteStyle",
    "RoutingError",
    "Wiring",
]
