"""Wiring styles: which layers wires use and how far apart they sit.

The routers draw ordinary mask geometry — the same boxes the rest of
the RSG works with — so the only technology knowledge they need is a
small derived table: wire width, wire-to-wire spacing, and the layers a
channel's trunks (horizontal runs), branches (vertical runs) and vias
(trunk/branch junctions) are drawn on.  :class:`RouteStyle` carries
that table and the two constructors derive it from a
:class:`~repro.compact.rules.DesignRules` so routed channels pass the
same :func:`~repro.compact.drc.check_layout` oracle the compactor uses.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..compact.rules import DesignRules
from ..core.errors import RsgError

__all__ = ["RouteStyle", "RoutingError"]


class RoutingError(RsgError):
    """A wiring request the routers cannot satisfy (bad pins, cycles)."""


@dataclass(frozen=True)
class RouteStyle:
    """Layer choice and derived metrics for one routed channel.

    ``wire_width`` is shared by every wire (trunk, branch, via) so that
    junction squares align on the integer grid; it is the maximum of
    the participating layers' minimum widths.  ``spacing`` is likewise
    the maximum of their minimum spacings, and ``pitch`` (width +
    spacing) is both the track pitch and the minimum pin separation
    along a channel edge.  ``margin`` is the clearance kept between
    channel wiring and the cell edges that bound the channel.
    """

    trunk_layer: str = "metal1"
    branch_layer: str = "poly"
    via_layer: str = "contact"
    wire_width: int = 4
    spacing: int = 3
    margin: int = 7

    @property
    def pitch(self) -> int:
        """Center-to-center separation of parallel wires (width + spacing)."""
        return self.wire_width + self.spacing

    @property
    def is_single_layer(self) -> bool:
        """True for river-style wiring (no branch layer, no vias)."""
        return self.branch_layer == self.trunk_layer and not self.via_layer

    def span(self, center: int) -> tuple:
        """The ``[low, high)`` extent of a wire centred on ``center``."""
        low = center - self.wire_width // 2
        return (low, low + self.wire_width)

    @classmethod
    def from_rules(
        cls,
        rules: DesignRules,
        trunk_layer: str = "metal1",
        branch_layer: str = "poly",
        via_layer: str = "contact",
    ) -> "RouteStyle":
        """Derive a two-layer channel style from a design-rule table.

        The channel margin is ``spacing + wire_width`` because pin pads
        (pin-layer landing squares under the edge vias) extend one wire
        width into the channel before the first track may start.
        """
        layers = [trunk_layer, branch_layer]
        if via_layer:
            layers.append(via_layer)
        width = max(rules.width(layer) for layer in layers)
        spacing = max(rules.min_spacing.get(layer, 1) for layer in layers)
        return cls(
            trunk_layer=trunk_layer,
            branch_layer=branch_layer,
            via_layer=via_layer,
            wire_width=width,
            spacing=spacing,
            margin=spacing + width,
        )

    @classmethod
    def single_layer(cls, rules: DesignRules, layer: str = "metal1") -> "RouteStyle":
        """Derive a one-layer (river) style: no branches, no vias."""
        width = rules.width(layer)
        spacing = rules.min_spacing.get(layer, 1)
        return cls(
            trunk_layer=layer,
            branch_layer=layer,
            via_layer="",
            wire_width=width,
            spacing=spacing,
            margin=spacing,
        )
