"""Left-edge channel routing with dogleg vertical-constraint handling.

The general two-sided channel: pins on the bottom and top edges, any
number of pins per net, crossings allowed.  Horizontal *trunks* run on
one layer (tracks), vertical *branches* on another drop from each pin
to its net's trunks, and *via* squares mark every trunk/branch
junction — a branch crossing a foreign trunk has no via and is an
ordinary drawn crossing.

The algorithm is the classic constrained left-edge with doglegs:

1. Every net is split at each of its pins into single-span *segments*
   (the dogleg move — a multi-pin net may change tracks at any pin,
   which breaks most vertical-constraint cycles).
2. A column holding a top pin of net T and a bottom pin of net B adds
   the vertical constraints ``segment(T) above segment(B)`` for the
   segments incident at that column (their branches share the column
   and must not overlap).
3. Remaining constraint cycles (rotation permutations are the classic
   case) are broken by *mid-channel doglegs*: a segment on the cycle is
   split at a fresh column a pitch away from every pin, where a short
   branch joins the two half-trunks without reaching either edge — so
   the new column adds no vertical constraint of its own.
4. Tracks are filled top-down: among segments whose above-constraints
   are all satisfied, a left-edge sweep packs as many non-overlapping
   segments per track as fit.  If a cycle survives because no segment
   on it has room for a dogleg column, a :class:`RoutingError` names
   the offending nets.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Set, Tuple

from ..geometry import Box
from .style import RouteStyle, RoutingError
from .wiring import Wiring

__all__ = ["Pin", "channel_route"]


@dataclass(frozen=True)
class Pin:
    """One channel terminal: an x column on the bottom or top edge.

    ``layer`` is the landing layer of the terminal (a pin pad plus via
    is emitted when it differs from the branch layer); empty means the
    terminal accepts the branch layer directly.
    """

    x: int
    side: str  # "bottom" | "top"
    net: str
    layer: str = ""


@dataclass
class _Segment:
    """One trunk span of a net between two adjacent pin columns."""

    net: str
    left: int
    right: int
    track: int = -1


def _build_segments(by_net: Dict[str, List[Pin]]) -> List[_Segment]:
    """Split every net at its pin columns (the dogleg decomposition)."""
    segments: List[_Segment] = []
    for net in sorted(by_net):
        columns = sorted({pin.x for pin in by_net[net]})
        if len(columns) == 1:
            segments.append(_Segment(net, columns[0], columns[0]))
        else:
            for left, right in zip(columns, columns[1:]):
                segments.append(_Segment(net, left, right))
    return segments


def _vertical_constraints(
    pins: Sequence[Pin], segments: List[_Segment]
) -> Dict[int, Set[int]]:
    """``above[s]`` = segment ids that must take a higher track than s."""
    incident: Dict[Tuple[str, int], List[int]] = defaultdict(list)
    for index, segment in enumerate(segments):
        incident[(segment.net, segment.left)].append(index)
        if segment.right != segment.left:
            incident[(segment.net, segment.right)].append(index)
    top_at: Dict[int, str] = {}
    bottom_at: Dict[int, str] = {}
    for pin in pins:
        (top_at if pin.side == "top" else bottom_at)[pin.x] = pin.net
    above: Dict[int, Set[int]] = defaultdict(set)
    for x, top_net in top_at.items():
        bottom_net = bottom_at.get(x)
        if bottom_net is None or bottom_net == top_net:
            continue
        for upper in incident[(top_net, x)]:
            for lower in incident[(bottom_net, x)]:
                above[lower].add(upper)
    return above


def _find_cycle(count: int, above: Dict[int, Set[int]]) -> Optional[List[int]]:
    """A list of segment ids forming one constraint cycle, or None."""
    successors: Dict[int, List[int]] = defaultdict(list)
    for lower, uppers in above.items():
        for upper in uppers:
            successors[upper].append(lower)
    state = [0] * count  # 0 unseen, 1 on stack, 2 done
    for start in range(count):
        if state[start]:
            continue
        stack: List[Tuple[int, int]] = [(start, 0)]
        path: List[int] = []
        state[start] = 1
        path.append(start)
        while stack:
            node, position = stack[-1]
            if position < len(successors[node]):
                stack[-1] = (node, position + 1)
                child = successors[node][position]
                if state[child] == 1:
                    return path[path.index(child):]
                if state[child] == 0:
                    state[child] = 1
                    path.append(child)
                    stack.append((child, 0))
            else:
                state[node] = 2
                path.pop()
                stack.pop()
    return None


def _free_column(left: int, right: int, used: Set[int], pitch: int) -> Optional[int]:
    """A column strictly inside (left, right), a pitch from every used one.

    Candidates are tried outward from the midpoint so doglegs land in
    the roomiest part of the span.
    """
    middle = (left + right) // 2
    for delta in range(right - left):
        for candidate in {middle + delta, middle - delta}:
            if candidate - left < pitch or right - candidate < pitch:
                continue
            if all(abs(candidate - column) >= pitch for column in used):
                return candidate
    return None


def _break_cycles(
    pins: Sequence[Pin], segments: List[_Segment], pitch: int
) -> Dict[int, Set[int]]:
    """Split cyclic-constraint segments at fresh columns until acyclic."""
    used = {pin.x for pin in pins}
    while True:
        above = _vertical_constraints(pins, segments)
        cycle = _find_cycle(len(segments), above)
        if cycle is None:
            return above
        for index in cycle:
            segment = segments[index]
            column = _free_column(segment.left, segment.right, used, pitch)
            if column is not None:
                used.add(column)
                segments[index] = _Segment(segment.net, segment.left, column)
                segments.append(_Segment(segment.net, column, segment.right))
                break
        else:
            nets = sorted({segments[index].net for index in cycle})
            raise RoutingError(
                "cyclic vertical constraints between nets "
                + ", ".join(nets)
                + " and no room for a dogleg column; spread the pins apart"
            )


def _assign_tracks(
    segments: List[_Segment], above: Dict[int, Set[int]], pitch: int
) -> int:
    """Constrained left-edge packing, top track first; returns tracks."""
    unassigned = set(range(len(segments)))
    track = 0
    while unassigned:
        eligible = sorted(
            (
                index
                for index in unassigned
                if not (above.get(index, set()) & unassigned)
            ),
            key=lambda index: (segments[index].left, segments[index].right),
        )
        if not eligible:  # unreachable after _break_cycles; defensive
            nets = sorted({segments[index].net for index in unassigned})
            raise RoutingError(
                "cyclic vertical constraints between nets " + ", ".join(nets)
            )
        last_right: Optional[int] = None
        for index in eligible:
            segment = segments[index]
            if last_right is not None and segment.left - last_right < pitch:
                continue
            segment.track = track
            unassigned.discard(index)
            last_right = segment.right
        track += 1
    return track


def channel_route(
    pins: Sequence[Pin],
    style: Optional[RouteStyle] = None,
    y0: int = 0,
) -> Wiring:
    """Route a two-sided channel; returns the :class:`Wiring`.

    Pin columns (across both edges) must either coincide exactly or be
    at least one pitch apart, and every net needs two or more pins.
    The channel height follows from the number of tracks used.
    """
    if style is None:
        from ..compact.rules import TECH_A

        style = RouteStyle.from_rules(TECH_A)
    pitch = style.pitch

    by_net: Dict[str, List[Pin]] = defaultdict(list)
    seen: Dict[Tuple[int, str], str] = {}
    for pin in pins:
        if pin.side not in ("bottom", "top"):
            raise RoutingError(f"pin side must be bottom or top, not {pin.side!r}")
        owner = seen.get((pin.x, pin.side))
        if owner is not None:
            raise RoutingError(
                f"two pins share column x={pin.x} on the {pin.side} edge"
                f" (nets {owner!r} and {pin.net!r})"
            )
        seen[(pin.x, pin.side)] = pin.net
        by_net[pin.net].append(pin)
    for net, net_pins in sorted(by_net.items()):
        if len(net_pins) < 2:
            raise RoutingError(f"net {net!r} has a single pin; nothing to route")
    columns = sorted({pin.x for pin in pins})
    for left, right in zip(columns, columns[1:]):
        if right - left < pitch:
            raise RoutingError(
                f"pin columns x={left} and x={right} are closer than the"
                f" pitch ({pitch}); align them or spread them apart"
            )

    segments = _build_segments(by_net)
    above = _break_cycles(pins, segments, pitch)
    tracks = _assign_tracks(segments, above, pitch)

    width = style.wire_width
    margin = style.margin
    height = 2 * margin + tracks * pitch - style.spacing
    wiring = Wiring(
        router="channel", style=style, y0=y0, height=height, tracks=tracks
    )

    def trunk_box(segment: _Segment) -> Box:
        top = y0 + height - margin - segment.track * pitch
        x_lo, _ = style.span(segment.left)
        _, x_hi = style.span(segment.right)
        return Box(x_lo, top - width, x_hi, top)

    trunk_of: Dict[int, Box] = {}
    for index, segment in enumerate(segments):
        box = trunk_box(segment)
        trunk_of[index] = box
        wiring.add(segment.net, style.trunk_layer, box)

    # Branches and vias, one branch per (net, endpoint column).  Pin
    # columns reach the channel edge; dogleg columns (from cycle
    # breaking) only span between their two trunks.
    incident: Dict[Tuple[str, int], List[int]] = defaultdict(list)
    for index, segment in enumerate(segments):
        incident[(segment.net, segment.left)].append(index)
        if segment.right != segment.left:
            incident[(segment.net, segment.right)].append(index)
    by_column: Dict[Tuple[str, int], List[Pin]] = defaultdict(list)
    for pin in pins:
        by_column[(pin.net, pin.x)].append(pin)
    for (net, x) in sorted(incident):
        column_pins = by_column.get((net, x), [])
        trunk_boxes = [trunk_of[index] for index in incident[(net, x)]]
        lo = min(box.ymin for box in trunk_boxes)
        hi = max(box.ymax for box in trunk_boxes)
        sides = {pin.side for pin in column_pins}
        if "bottom" in sides:
            lo = y0
        if "top" in sides:
            hi = y0 + height
        x_lo, x_hi = style.span(x)
        wiring.add(net, style.branch_layer, Box(x_lo, lo, x_hi, hi))
        if style.via_layer:
            for box in trunk_boxes:
                wiring.add(net, style.via_layer, Box(x_lo, box.ymin, x_hi, box.ymax))
                wiring.vias += 1
        for pin in column_pins:
            if not pin.layer or pin.layer == style.branch_layer:
                continue
            if pin.side == "bottom":
                pad = Box(x_lo, y0, x_hi, y0 + width)
            else:
                pad = Box(x_lo, y0 + height - width, x_hi, y0 + height)
            wiring.add(net, pin.layer, pad)
            if style.via_layer:
                wiring.add(net, style.via_layer, pad)
                wiring.vias += 1
    return wiring
