"""ROM generation from the PLA cell library.

A ROM is structurally a PLA whose AND plane is a full address decoder
(one product term per word) and whose OR plane holds the stored data —
another architecture out of the same sample layout, alongside PLAs and
decoders (the introduction's list: "RAMs, ROMs, PLAs, and array
multipliers").
"""

from __future__ import annotations

from typing import TYPE_CHECKING, List, Optional, Sequence, Tuple

if TYPE_CHECKING:  # pragma: no cover - annotation-only import
    from ..compact.pipeline import HierarchicalCompactor

from ..core.cell import CellDefinition
from ..core.operators import Rsg
from ..verify.netlist import SwitchNetlist
from .cells import load_pla_library
from .generator import extract_personality, generate_pla, intended_pla_netlist
from .truthtable import TruthTable

__all__ = ["rom_table", "generate_rom", "read_rom_back", "intended_rom_netlist"]


def rom_table(words: Sequence[int], data_bits: int) -> TruthTable:
    """Build the ROM personality: minterm rows, data-bit columns.

    ``words[w]`` is stored at address ``w``; addresses are little-endian
    over ``ceil(log2(len(words)))`` inputs.
    """
    if not words:
        raise ValueError("a ROM needs at least one word")
    if data_bits < 1:
        raise ValueError("data width must be at least 1")
    address_bits = max(1, (len(words) - 1).bit_length())
    and_rows: List[str] = []
    or_rows: List[str] = []
    for address, word in enumerate(words):
        if word < 0 or word >= (1 << data_bits):
            raise ValueError(f"word {word} does not fit in {data_bits} bits")
        and_rows.append(
            "".join("1" if (address >> bit) & 1 else "0" for bit in range(address_bits))
        )
        or_rows.append(
            "".join("1" if (word >> bit) & 1 else "0" for bit in range(data_bits))
        )
    return TruthTable(and_rows, or_rows)


def generate_rom(
    words: Sequence[int],
    data_bits: int,
    rsg: Optional[Rsg] = None,
    name: str = "rom",
    compactor: Optional["HierarchicalCompactor"] = None,
) -> Tuple[CellDefinition, TruthTable]:
    """Generate a ROM layout storing ``words``; returns (cell, table).

    ``compactor`` threads through to :func:`generate_pla` — distinct
    plane cells are compacted once and stamped everywhere.
    """
    if rsg is None:
        rsg = load_pla_library()
    table = rom_table(words, data_bits)
    return generate_pla(table, rsg=rsg, name=name, compactor=compactor), table


def intended_rom_netlist(words: Sequence[int], data_bits: int) -> SwitchNetlist:
    """Golden transistor netlist of a ROM storing ``words``.

    A ROM is a PLA whose personality is the stored data, so the hook
    delegates to :func:`~repro.pla.generator.intended_pla_netlist` over
    :func:`rom_table` — the netlist LVS must recover from the masks.
    """
    return intended_pla_netlist(rom_table(words, data_bits))


def read_rom_back(cell: CellDefinition, word_count: int, data_bits: int) -> List[int]:
    """Recover the stored words from a generated ROM layout.

    Reads the personality out of the crosspoint masks and evaluates the
    decoder for every address — the functional verification loop.
    """
    table = extract_personality(cell)
    address_bits = table.num_inputs
    words = []
    for address in range(word_count):
        bits = [(address >> bit) & 1 for bit in range(address_bits)]
        outputs = table.evaluate(bits)
        words.append(sum(bit << position for position, bit in enumerate(outputs)))
    return words
