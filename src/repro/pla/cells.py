"""PLA leaf-cell library as a sample layout (section 1.2.2).

The cell roles follow HPLA's: AND-plane squares, OR-plane squares, the
``connect_ao`` spacer between planes, pull-ups, input/output buffers,
and crosspoint masks.  Note the sample contains each interface **once**
— the paper points out HPLA's fully-assembled 2x2x2 sample carried
redundant copies ("2 identical instances of the and-sq connect-ao
interface when only one was required").

Unlike the first revision of this library, the cells are *electrically
true*: the masks assemble into a working depletion-load NMOS NOR-NOR
PLA that the verification subsystem (:mod:`repro.verify`) can extract
and simulate.  The electrical plan, at the library's 10-lambda pitch:

* **rows** are horizontal ``metal1`` product-term wires (y 4..6 of each
  square), free to cross the vertical columns;
* **columns** are vertical ``poly`` wires — per input a *true* column
  (x 1..3, carrying the input) and a *complement* column (x 6..8,
  carrying its inversion from the input buffer), per output one output
  column — plus a vertical ``diff`` ground column per square that no
  poly ever crosses;
* **crosspoints** are enhancement pull-downs: a diffusion strip from
  the ground column passing under the selected poly column (the gate)
  to a contact cut onto the row metal.  ``xtrue`` gates on the
  *complement* column and ``xfalse`` on the *true* column, so a term
  row sits high exactly when every selected literal is satisfied;
* **pull-ups** are depletion loads (implant over the channel, gate
  stub left floating by the extractor's convention): one per row in
  ``andpull`` (fed from its vertical VDD bus), one per output column
  and one per buffered output in ``outbuf``;
* **buffers**: ``inbuf`` derives the complement column with an
  inverter; ``outbuf`` inverts the output column's NOR so the buffered
  ``out`` port implements the OR of the programmed terms.

``vdd!``/``gnd!`` ports mark the rails; the trailing ``!`` makes the
names global during extraction, so the physically separate buffer-row
rail and pull-up bus become single electrical nodes.
"""

from __future__ import annotations

from ..core.operators import Rsg
from ..layout.sample import loads_sample

__all__ = ["PLA_SAMPLE", "load_pla_library", "PLA_PITCH", "CONNECT_WIDTH"]

PLA_PITCH = 10
CONNECT_WIDTH = 6

PLA_SAMPLE = """\
# PLA leaf-cell library (sample layout).  See repro/pla/cells.py for
# the electrical plan; every cell is a working NMOS fragment.

cell andsq
  box metal1 0 4 10 6      # product-term row wire
  box poly 1 0 3 10        # true input column
  box poly 6 0 8 10        # complemented input column
  box diff 4 0 5 10        # ground column (no poly ever crosses it)
end

cell orsq
  box metal1 0 4 10 6      # product-term row wire
  box poly 6 0 8 10        # output column
  box diff 2 0 3 10        # ground column
end

cell connectao
  box metal1 0 4 6 6       # row wire through the spacer
end

cell andpull
  box metal1 0 0 2 10      # VDD bus (stacks vertically with the rows)
  box metal1 6 4 10 6      # row wire stub
  box diff 1 4 7 6         # depletion load: VDD -> row
  box cut 1 4 2 6          # VDD bus -> load diffusion
  box poly 4 3 5 7         # load gate stub (floating by convention)
  box implant 4 4 5 6      # depletion marker over the channel
  box cut 6 4 7 6          # load diffusion -> row metal
  port vdd! 1 9 metal1
  port row 8 5 metal1
end

cell orpull
  box metal1 0 4 4 6       # row terminator stub
end

cell inbuf
  box metal1 0 0 10 1      # VDD rail (abuts across the buffer row)
  box poly 1 0 3 10        # true column continues down
  box poly 6 0 8 10        # complement column continues down
  box diff 4 0 5 10        # ground column continues down
  box diff 0 2 4 4         # inverter pull-down: gnd -> channel -> drain
  box cut 0 2 1 4          # drain -> jumper
  box metal1 0 2 7 4       # jumper to the complement column
  box cut 6 2 7 4          # jumper -> complement column
  box diff 8 0 9 5         # depletion load riser
  box cut 8 0 9 1          # VDD rail -> riser
  box poly 8 2 9 3         # load gate stub (ties to the column at x=8)
  box implant 8 2 9 3      # depletion marker
  box metal1 6 4 9 5       # load output jumper
  box cut 8 4 9 5          # jumper -> riser top
  box cut 6 4 7 5          # jumper -> complement column
  port vdd! 1 0 metal1
  port gnd! 4 8 diff
  port in 2 0 poly
end

cell outbuf
  box metal1 0 0 10 1      # VDD rail
  box poly 6 0 8 10        # output column continues down
  box diff 2 0 3 10        # ground column continues down
  box diff 8 0 9 5         # column pull-up riser
  box cut 8 0 9 1          # VDD rail -> riser
  box poly 8 2 9 3         # load gate stub
  box implant 8 2 9 3      # depletion marker
  box metal1 6 4 9 5       # load output jumper
  box cut 8 4 9 5          # jumper -> riser top
  box cut 6 4 7 5          # jumper -> output column
  box diff 4 0 5 4         # out-node pull-up riser
  box cut 4 0 5 1          # VDD rail -> riser
  box poly 4 2 5 3         # load gate stub
  box implant 4 2 5 3      # depletion marker
  box metal1 4 3 5 7       # riser -> out wire link
  box cut 4 3 5 4          # link -> riser top
  box diff 2 8 9 10        # output inverter: gnd -> channel -> drain
  box metal1 3 6 9 9       # buffered out wire
  box cut 8 8 9 9          # inverter drain -> out wire
  port vdd! 9 0 metal1
  port gnd! 2 7 diff
  port out 8 7 metal1
end

cell xtrue
  box diff 0 0 4 2         # gnd -> channel under the complement column
  box cut 3 0 4 2          # drain -> row metal
end
cell xfalse
  box diff 0 0 4 2         # gnd -> channel under the true column
  box cut 0 0 1 2          # drain -> row metal
end
cell xout
  box poly 2 0 3 7         # gate stub picking the row signal up
  box cut 2 2 3 4          # row metal -> gate stub
  box diff 0 5 4 7         # gnd -> channel -> drain
  box cut 3 5 5 7          # drain -> output column
end

# ---- interfaces by example -------------------------------------------

# 1: andsq beside andsq
example
  inst andsq 0 0 north
  inst andsq 10 0 north
  label 1 10 5
end

# 1: orsq beside orsq
example
  inst orsq 0 0 north
  inst orsq 10 0 north
  label 1 10 5
end

# 1: connectao to the right of andsq; 1: orsq to the right of connectao
example
  inst andsq 0 0 north
  inst connectao 10 0 north
  label 1 10 5
end
example
  inst connectao 0 0 north
  inst orsq 6 0 north
  label 1 6 5
end

# 1: andsq to the right of andpull; rows stack upward on the pull-up (2)
example
  inst andpull 0 0 north
  inst andsq 10 0 north
  label 1 10 5
end
example
  inst andpull 0 0 north
  inst andpull 0 10 north
  label 2 5 10
end

# 1: orpull to the right of orsq
example
  inst orsq 0 0 north
  inst orpull 10 0 north
  label 1 10 5
end

# buffers hang below plane squares
example
  inst andsq 0 0 north
  inst inbuf 0 -10 north
  label 1 5 0
end
example
  inst orsq 0 0 north
  inst outbuf 0 -10 north
  label 1 5 0
end

# crosspoint masks inside plane squares
example
  inst andsq 0 0 north
  inst xtrue 5 4 north
  label 1 6 5
end
example
  inst andsq 0 0 north
  inst xfalse 0 4 north
  label 1 1 5
end
example
  inst orsq 0 0 north
  inst xout 2 2 north
  label 1 3 3
end
"""


def load_pla_library(rsg: Rsg = None) -> Rsg:
    """Load the PLA leaf-cell sample into a workspace."""
    if rsg is None:
        rsg = Rsg()
    loads_sample(PLA_SAMPLE, rsg)
    return rsg
