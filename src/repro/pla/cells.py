"""PLA leaf-cell library as a sample layout (section 1.2.2).

The cell roles follow HPLA's: AND-plane squares, OR-plane squares, the
``connect_ao`` spacer between planes, pull-ups, input/output buffers,
and crosspoint masks.  Note the sample contains each interface **once**
— the paper points out HPLA's fully-assembled 2x2x2 sample carried
redundant copies ("2 identical instances of the and-sq connect-ao
interface when only one was required").
"""

from __future__ import annotations

from ..core.operators import Rsg
from ..layout.sample import loads_sample

__all__ = ["PLA_SAMPLE", "load_pla_library", "PLA_PITCH", "CONNECT_WIDTH"]

PLA_PITCH = 10
CONNECT_WIDTH = 6

PLA_SAMPLE = """\
# PLA leaf-cell library (sample layout).

cell andsq
  box poly 0 4 10 6        # product-term row wire
  box metal1 2 0 4 10      # true input column
  box metal1 6 0 8 10      # complemented input column
end

cell orsq
  box poly 0 4 10 6        # product-term row wire
  box metal1 4 0 6 10      # output column
end

cell connectao
  box poly 0 4 6 6         # row wire through the spacer
end

cell andpull
  box diff 2 2 8 8         # row pull-up
  box poly 6 4 10 6
end

cell orpull
  box diff 2 2 8 8
  box poly 0 4 4 6
end

cell inbuf
  box diff 1 1 9 7         # input driver
  box metal1 2 7 4 10
  box metal1 6 7 8 10
end

cell outbuf
  box diff 1 1 9 7         # output driver
  box metal1 4 7 6 10
end

cell xtrue
  box contact 0 0 2 2      # crosspoint on the true column
end
cell xfalse
  box contact 0 0 2 2      # crosspoint on the complemented column
end
cell xout
  box contact 0 0 2 2      # OR-plane crosspoint
end

# ---- interfaces by example -------------------------------------------

# 1: andsq beside andsq
example
  inst andsq 0 0 north
  inst andsq 10 0 north
  label 1 10 5
end

# 1: orsq beside orsq
example
  inst orsq 0 0 north
  inst orsq 10 0 north
  label 1 10 5
end

# 1: connectao to the right of andsq; 1: orsq to the right of connectao
example
  inst andsq 0 0 north
  inst connectao 10 0 north
  label 1 10 5
end
example
  inst connectao 0 0 north
  inst orsq 6 0 north
  label 1 6 5
end

# 1: andsq to the right of andpull; rows stack upward on the pull-up (2)
example
  inst andpull 0 0 north
  inst andsq 10 0 north
  label 1 10 5
end
example
  inst andpull 0 0 north
  inst andpull 0 10 north
  label 2 5 10
end

# 1: orpull to the right of orsq
example
  inst orsq 0 0 north
  inst orpull 10 0 north
  label 1 10 5
end

# buffers hang below plane squares
example
  inst andsq 0 0 north
  inst inbuf 0 -10 north
  label 1 5 0
end
example
  inst orsq 0 0 north
  inst outbuf 0 -10 north
  label 1 5 0
end

# crosspoint masks inside plane squares
example
  inst andsq 0 0 north
  inst xtrue 2 4 north
  label 1 3 5
end
example
  inst andsq 0 0 north
  inst xfalse 6 4 north
  label 1 7 5
end
example
  inst orsq 0 0 north
  inst xout 4 4 north
  label 1 5 5
end
"""


def load_pla_library(rsg: Rsg = None) -> Rsg:
    """Load the PLA leaf-cell sample into a workspace."""
    if rsg is None:
        rsg = Rsg()
    loads_sample(PLA_SAMPLE, rsg)
    return rsg
