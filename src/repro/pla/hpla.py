"""HPLA-style baseline: PLA generation by the *relocation scheme*
(sections 1.2.2 and 1.2.3).

HPLA compiled a fully-assembled 2-input/2-output/2-term sample PLA into a
*description file* — cell definitions plus spacing parameters (pitches) —
and then generated PLAs by placing cells at arithmetically computed
absolute positions.  Its architecture is hard-coded; the description
file enables HPLA's three-phase delayed binding: (1) build the skeleton,
(2) encode (add crosspoints) later, (3) plot.

We reproduce that pipeline faithfully so the RSG-vs-HPLA comparison of
Figure 1.2 can be run: same leaf cells, same output geometry, but a flat,
single-architecture generator with no macro abstraction, no hierarchy,
and no interface inheritance.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, List, Optional

if TYPE_CHECKING:  # pragma: no cover - annotation-only import
    from ..compact.pipeline import HierarchicalCompactor

from ..core.cell import CellDefinition
from ..core.operators import Rsg
from ..geometry import NORTH, Vec2
from .cells import CONNECT_WIDTH, PLA_PITCH, load_pla_library
from .truthtable import TruthTable

__all__ = ["HplaDescription", "compile_description", "HplaGenerator"]


@dataclass
class HplaDescription:
    """The HPLA description file: cell definitions plus pitches.

    Compiled once from a sample (here: from the shared PLA cell library)
    and then consulted at every phase of the three-phase flow.
    """

    cells: Dict[str, CellDefinition] = field(default_factory=dict)
    #: x pitch between plane squares
    square_pitch: int = PLA_PITCH
    #: x width of the connect_ao spacer
    connect_width: int = CONNECT_WIDTH
    #: y pitch between product-term rows
    row_pitch: int = PLA_PITCH
    #: offsets of crosspoint masks inside their squares
    xtrue_offset: Vec2 = field(default_factory=lambda: Vec2(2, 4))
    xfalse_offset: Vec2 = field(default_factory=lambda: Vec2(6, 4))
    xout_offset: Vec2 = field(default_factory=lambda: Vec2(4, 4))
    #: y drop of the buffer row
    buffer_drop: int = PLA_PITCH


def compile_description(rsg: Optional[Rsg] = None) -> HplaDescription:
    """Compile the description file from the PLA cell library.

    HPLA extracted these pitches from an assembled sample PLA; we read
    them from the same interface table the RSG uses, which is exactly
    the paper's observation that the assembled sample was superfluous.
    """
    if rsg is None:
        rsg = load_pla_library()
    description = HplaDescription()
    for name in (
        "andsq",
        "orsq",
        "connectao",
        "andpull",
        "orpull",
        "inbuf",
        "outbuf",
        "xtrue",
        "xfalse",
        "xout",
    ):
        description.cells[name] = rsg.cells.lookup(name)
    description.square_pitch = rsg.interfaces.lookup("andsq", "andsq", 1).vector.x
    description.connect_width = rsg.interfaces.lookup("connectao", "orsq", 1).vector.x
    description.row_pitch = rsg.interfaces.lookup("andpull", "andpull", 2).vector.y
    description.xtrue_offset = rsg.interfaces.lookup("andsq", "xtrue", 1).vector
    description.xfalse_offset = rsg.interfaces.lookup("andsq", "xfalse", 1).vector
    description.xout_offset = rsg.interfaces.lookup("orsq", "xout", 1).vector
    description.buffer_drop = -rsg.interfaces.lookup("andsq", "inbuf", 1).vector.y
    return description


class HplaGenerator:
    """The three-phase HPLA flow on a compiled description file."""

    def __init__(
        self,
        description: Optional[HplaDescription] = None,
        compactor: Optional["HierarchicalCompactor"] = None,
    ) -> None:
        """``compactor`` (a
        :class:`~repro.compact.pipeline.HierarchicalCompactor`) is
        applied by :meth:`generate` — even the flat relocation scheme
        benefits, since its skeleton stamps the same handful of
        description cells at every grid position."""
        self.description = description if description else compile_description()
        self.compactor = compactor

    # ------------------------------------------------------------------
    # Phase 1: skeleton (sized but unencoded PLA)
    # ------------------------------------------------------------------
    def make_skeleton(
        self, num_inputs: int, num_outputs: int, num_terms: int, name: str = "hpla"
    ) -> CellDefinition:
        """Place every structural cell at an arithmetic position.

        This is the relocation scheme: absolute coordinates computed from
        indices and pitches — no interfaces, no hierarchy, one flat cell.
        """
        d = self.description
        pla = CellDefinition(name)
        pitch = d.square_pitch
        and_x0 = pitch  # pull-up occupies column 0
        or_x0 = and_x0 + num_inputs * pitch + d.connect_width
        for term in range(num_terms):
            y = term * d.row_pitch
            pla.add_instance(d.cells["andpull"], Vec2(0, y), NORTH)
            for column in range(num_inputs):
                pla.add_instance(
                    d.cells["andsq"], Vec2(and_x0 + column * pitch, y), NORTH
                )
            pla.add_instance(
                d.cells["connectao"], Vec2(and_x0 + num_inputs * pitch, y), NORTH
            )
            for column in range(num_outputs):
                pla.add_instance(
                    d.cells["orsq"], Vec2(or_x0 + column * pitch, y), NORTH
                )
            pla.add_instance(
                d.cells["orpull"], Vec2(or_x0 + num_outputs * pitch, y), NORTH
            )
        for column in range(num_inputs):
            pla.add_instance(
                d.cells["inbuf"],
                Vec2(and_x0 + column * pitch, -d.buffer_drop),
                NORTH,
            )
        for column in range(num_outputs):
            pla.add_instance(
                d.cells["outbuf"],
                Vec2(or_x0 + column * pitch, -d.buffer_drop),
                NORTH,
            )
        return pla

    # ------------------------------------------------------------------
    # Phase 2: encoding (delayed binding of the personality)
    # ------------------------------------------------------------------
    def encode(self, skeleton: CellDefinition, table: TruthTable) -> CellDefinition:
        """Add crosspoint masks for ``table`` to a phase-1 skeleton.

        HPLA's three-part flow let the PLA be recoded "after the PLA is
        fully installed into the rest of a layout"; encoding mutates the
        skeleton in place and returns it.
        """
        d = self.description
        pitch = d.square_pitch
        and_x0 = pitch
        or_x0 = and_x0 + table.num_inputs * pitch + d.connect_width
        for term in range(table.num_terms):
            y = term * d.row_pitch
            for column, literal in enumerate(table.and_plane[term]):
                if literal == "-":
                    continue
                offset = d.xtrue_offset if literal == "1" else d.xfalse_offset
                mask = d.cells["xtrue"] if literal == "1" else d.cells["xfalse"]
                skeleton.add_instance(
                    mask, Vec2(and_x0 + column * pitch, y) + offset, NORTH
                )
            for column, wired in enumerate(table.or_plane[term]):
                if wired == "1":
                    skeleton.add_instance(
                        d.cells["xout"],
                        Vec2(or_x0 + column * pitch, y) + d.xout_offset,
                        NORTH,
                    )
        return skeleton

    # ------------------------------------------------------------------
    # Convenience: the whole flow
    # ------------------------------------------------------------------
    def generate(self, table: TruthTable, name: str = "hpla") -> CellDefinition:
        skeleton = self.make_skeleton(
            table.num_inputs, table.num_outputs, table.num_terms, name=name
        )
        cell = self.encode(skeleton, table)
        if self.compactor is not None:
            cell = self.compactor.compact(cell)
        return cell
