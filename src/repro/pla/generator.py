"""RSG-based PLA generator (section 1.2.2: "The RSG can generate any PLA
that HPLA can").

The PLA is built hierarchically: one connectivity-graph row per product
term spanning pull-up, AND plane, connect_ao spacer, OR plane and
OR-side pull-up, with crosspoint masks personalising the plane squares
from the truth table; rows are stacked via the pull-up cells; input and
output buffers hang below the bottom row.  Also includes the decoder
generator built from the *same* sample cells — the paper's argument that
not requiring "the sample layout look like the finished product" widens
the scope of a given sample.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, List, Optional, Tuple

if TYPE_CHECKING:  # pragma: no cover - annotation-only import
    from ..compact.pipeline import HierarchicalCompactor

from ..core.cell import CellDefinition
from ..core.graph import Node
from ..core.operators import Rsg
from ..geometry import Transform, Vec2
from ..verify.netlist import SwitchNetlist
from .cells import load_pla_library
from .truthtable import TruthTable

__all__ = [
    "generate_pla",
    "generate_decoder",
    "extract_personality",
    "intended_pla_netlist",
    "intended_decoder_netlist",
]


def _build_term_row(rsg: Rsg, table: TruthTable, term: int) -> Tuple[Node, List[Node]]:
    """One product-term row: pull-up, AND squares, spacer, OR squares."""
    pull = rsg.mk_instance("andpull")
    previous = pull
    and_cells: List[Node] = []
    for column in range(table.num_inputs):
        square = rsg.mk_instance("andsq")
        rsg.connect(previous, square, 1)
        literal = table.and_plane[term][column]
        if literal == "1":
            rsg.connect(square, rsg.mk_instance("xtrue"), 1)
        elif literal == "0":
            rsg.connect(square, rsg.mk_instance("xfalse"), 1)
        and_cells.append(square)
        previous = square
    spacer = rsg.mk_instance("connectao")
    rsg.connect(previous, spacer, 1)
    previous = spacer
    or_cells: List[Node] = []
    for column in range(table.num_outputs):
        square = rsg.mk_instance("orsq")
        rsg.connect(previous, square, 1)
        if table.or_plane[term][column] == "1":
            rsg.connect(square, rsg.mk_instance("xout"), 1)
        or_cells.append(square)
        previous = square
    rsg.connect(previous, rsg.mk_instance("orpull"), 1)
    return pull, and_cells + or_cells


def generate_pla(
    table: TruthTable,
    rsg: Optional[Rsg] = None,
    name: str = "pla",
    compactor: Optional["HierarchicalCompactor"] = None,
) -> CellDefinition:
    """Generate a complete PLA layout for ``table``.

    ``compactor`` (a
    :class:`~repro.compact.pipeline.HierarchicalCompactor`) compacts
    each distinct plane/crosspoint cell exactly once — cached and
    optionally in parallel — and re-stamps every instance; the
    compacted cell replaces ``name`` in the workspace.
    """
    if rsg is None:
        rsg = load_pla_library()
    pulls: List[Node] = []
    bottom_squares: List[Node] = []
    for term in range(table.num_terms):
        pull, squares = _build_term_row(rsg, table, term)
        if pulls:
            rsg.connect(pulls[-1], pull, 2)
        else:
            bottom_squares = squares
        pulls.append(pull)
    # Buffers below the bottom row.
    for column, square in enumerate(bottom_squares):
        if column < table.num_inputs:
            rsg.connect(square, rsg.mk_instance("inbuf"), 1)
        else:
            rsg.connect(square, rsg.mk_instance("outbuf"), 1)
    cell = rsg.mk_cell(name, pulls[0])
    if compactor is not None:
        cell = compactor.compact(cell)
        rsg.cells.define(cell, replace=True)
    return cell


def generate_decoder(
    n: int,
    rsg: Optional[Rsg] = None,
    name: str = "decoder",
    compactor: Optional["HierarchicalCompactor"] = None,
) -> CellDefinition:
    """An n-to-2^n decoder from the *same* PLA sample cells.

    A decoder is an AND plane whose product terms are all minterms, with
    output buffers directly on the AND columns — "decoders can be built
    from an AND plane with appropriate output buffers" (section 1.2.2).
    ``compactor`` applies the compact-once/stamp-many pass, as in
    :func:`generate_pla`.
    """
    if rsg is None:
        rsg = load_pla_library()
    if n < 1:
        raise ValueError("decoder needs at least one input")
    and_rows = []
    for minterm in range(1 << n):
        bits = [(minterm >> i) & 1 for i in range(n)]
        and_rows.append("".join("1" if bit else "0" for bit in bits))
    pulls: List[Node] = []
    bottom: List[Node] = []
    for term, row in enumerate(and_rows):
        pull = rsg.mk_instance("andpull")
        previous = pull
        squares = []
        for column in range(n):
            square = rsg.mk_instance("andsq")
            rsg.connect(previous, square, 1)
            mask = "xtrue" if row[column] == "1" else "xfalse"
            rsg.connect(square, rsg.mk_instance(mask), 1)
            squares.append(square)
            previous = square
        if pulls:
            rsg.connect(pulls[-1], pull, 2)
        else:
            bottom = squares
        pulls.append(pull)
    for square in bottom:
        rsg.connect(square, rsg.mk_instance("inbuf"), 1)
    cell = rsg.mk_cell(name, pulls[0])
    if compactor is not None:
        cell = compactor.compact(cell)
        rsg.cells.define(cell, replace=True)
    return cell


def _intended_and_plane(
    netlist: SwitchNetlist, and_rows: List[str]
) -> Tuple[int, int, List[int]]:
    """Build the shared AND-plane structure into ``netlist``.

    Rails, one input inverter per column (enhancement pull-down plus
    depletion load), one depletion row pull-up per term, and one
    enhancement pull-down per programmed literal — gated by the
    complement column for ``'1'``, the true column for ``'0'``.  The
    input columns are appended to ``netlist.inputs``; returns
    ``(vdd, gnd, row nets)`` so callers add their output structure.
    """
    vdd = netlist.add_net("vdd!")
    gnd = netlist.add_net("gnd!")
    netlist.vdd_nets.add(vdd)
    netlist.gnd_nets.add(gnd)
    true_cols: List[int] = []
    comp_cols: List[int] = []
    for index in range(len(and_rows[0]) if and_rows else 0):
        true_col = netlist.add_net(f"in{index}")
        comp_col = netlist.add_net(f"comp{index}")
        netlist.add_transistor(true_col, comp_col, gnd)
        netlist.add_transistor(None, comp_col, vdd, depletion=True)
        true_cols.append(true_col)
        comp_cols.append(comp_col)
        netlist.inputs.append(true_col)
    rows: List[int] = []
    for term, row_bits in enumerate(and_rows):
        row = netlist.add_net(f"row{term}")
        netlist.add_transistor(None, row, vdd, depletion=True)
        rows.append(row)
        for index, literal in enumerate(row_bits):
            if literal == "1":
                netlist.add_transistor(comp_cols[index], row, gnd)
            elif literal == "0":
                netlist.add_transistor(true_cols[index], row, gnd)
    return vdd, gnd, rows


def intended_pla_netlist(table: TruthTable) -> SwitchNetlist:
    """The golden transistor netlist a PLA for ``table`` must extract to.

    Mirrors the electrical plan of the sample library
    (:mod:`repro.pla.cells`) device for device: the shared AND plane
    (:func:`_intended_and_plane`), one enhancement pull-down per
    OR-plane crosspoint, and per output a column pull-up plus an
    inverting buffer.  LVS (:mod:`repro.verify.lvs`) compares the
    extracted netlist against this one.
    """
    netlist = SwitchNetlist()
    vdd, gnd, rows = _intended_and_plane(netlist, list(table.and_plane))
    for index in range(table.num_outputs):
        column = netlist.add_net(f"col{index}")
        out = netlist.add_net(f"out{index}")
        netlist.add_transistor(None, column, vdd, depletion=True)
        netlist.add_transistor(None, out, vdd, depletion=True)
        netlist.add_transistor(column, out, gnd)
        for term, row_bits in enumerate(table.or_plane):
            if row_bits[index] == "1":
                netlist.add_transistor(rows[term], column, gnd)
        netlist.outputs.append(out)
    return netlist


def intended_decoder_netlist(n: int) -> SwitchNetlist:
    """Golden netlist of :func:`generate_decoder`'s output.

    A decoder is the AND plane of a full-minterm PLA with the rows
    themselves as outputs: the builder reuses the exact
    :func:`_intended_and_plane` structure shared with
    :func:`intended_pla_netlist`, minus OR plane and output buffers.
    """
    if n < 1:
        raise ValueError("decoder needs at least one input")
    and_rows = []
    for minterm in range(1 << n):
        bits = [(minterm >> i) & 1 for i in range(n)]
        and_rows.append("".join("1" if bit else "0" for bit in bits))
    netlist = SwitchNetlist()
    _, _, rows = _intended_and_plane(netlist, and_rows)
    netlist.outputs.extend(rows)
    return netlist


def extract_personality(cell: CellDefinition) -> TruthTable:
    """Reverse-engineer a truth table from a generated PLA layout.

    Walks the placed hierarchy, maps plane squares to (term, column)
    grid positions from their absolute coordinates and reads the
    crosspoint masks back out — the functional check that layout
    personalisation matches the specification.
    """
    squares: Dict[Tuple[int, int], str] = {}
    crosspoints: List[Tuple[str, Vec2]] = []

    def walk(node: CellDefinition, transform: Transform) -> None:
        for instance in node.instances:
            if not instance.is_placed:
                continue
            world = transform.compose(instance.transform)
            if instance.celltype in ("andsq", "orsq"):
                squares[(world.offset.x, world.offset.y)] = instance.celltype
            elif instance.celltype in ("xtrue", "xfalse", "xout"):
                crosspoints.append((instance.celltype, world.offset))
            walk(instance.definition, world)

    walk(cell, Transform())
    if not squares:
        raise ValueError("no plane squares found in layout")
    xs = sorted({x for x, _ in squares})
    ys = sorted({y for _, y in squares})
    and_xs = sorted({x for (x, y), kind in squares.items() if kind == "andsq"})
    or_xs = sorted({x for (x, y), kind in squares.items() if kind == "orsq"})
    column_of = {x: index for index, x in enumerate(and_xs)}
    or_column_of = {x: index for index, x in enumerate(or_xs)}
    term_of = {y: index for index, y in enumerate(ys)}

    and_plane = [["-"] * len(and_xs) for _ in ys]
    or_plane = [["0"] * len(or_xs) for _ in ys]
    for kind, where in crosspoints:
        # Crosspoint masks sit inside their square; snap to the square
        # whose origin is at or below-left of the mask.
        sx = max((x for x in xs if x <= where.x), default=None)
        sy = max((y for y in ys if y <= where.y), default=None)
        if sx is None or sy is None:
            raise ValueError(f"stray crosspoint at {where!r}")
        term = term_of[sy]
        if kind == "xout":
            or_plane[term][or_column_of[sx]] = "1"
        else:
            and_plane[term][column_of[sx]] = "1" if kind == "xtrue" else "0"
    return TruthTable(
        ["".join(row) for row in and_plane],
        ["".join(row) for row in or_plane],
    )
