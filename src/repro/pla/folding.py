"""Column-folded PLAs (section 1.2.3: "the RSG ... can also generate
more complex PLAs such as PLAs with folded rows or columns").

Column folding shares one physical OR-plane column between two outputs
whose product-term sets can be separated vertically: one output taps the
column from the bottom buffer, the other from a buffer at the top, with
a break mask in between.  Finding a maximum folding is NP-hard; we
implement the classical greedy: pair outputs with disjoint term sets,
maintain a row-precedence graph (all terms of the bottom output must lie
below all terms of the top output), and accept a pair only when the
precedence graph stays acyclic.

The generator reuses the standard PLA sample cells plus two additions
(``colbreak``, and the ``orsq``-above-``outbuf`` interface), so folding
is purely a design-file-level change — the paper's argument that the
sample layout does not constrain the output architecture.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple

from ..core.cell import CellDefinition
from ..core.graph import Node
from ..core.operators import Rsg
from .cells import load_pla_library
from .generator import _build_term_row
from .truthtable import TruthTable

__all__ = ["FoldingPlan", "plan_column_folding", "generate_folded_pla"]

FOLDING_EXTRAS = """\
cell colbreak
  box implant 0 0 2 2
end

# outbuf above an orsq (for the top half of a folded column)
example
  inst orsq 0 0 north
  inst outbuf 0 10 flip_south
  label 2 5 10
end

# the column-break mask inside an orsq
example
  inst orsq 0 0 north
  inst colbreak 4 7 north
  label 1 5 8
end
"""


@dataclass
class FoldingPlan:
    """A legal column folding: column assignments plus a row order."""

    #: physical column -> (bottom output, top output or None)
    columns: List[Tuple[int, Optional[int]]] = field(default_factory=list)
    #: permutation: position -> original term index (bottom to top)
    row_order: List[int] = field(default_factory=list)
    #: physical column -> break row position (first row of the top half)
    breaks: Dict[int, int] = field(default_factory=dict)

    @property
    def folded_pairs(self) -> int:
        return sum(1 for _, top in self.columns if top is not None)

    def column_count(self) -> int:
        return len(self.columns)


def _terms_of(table: TruthTable, output: int) -> Set[int]:
    return {
        term
        for term in range(table.num_terms)
        if table.or_plane[term][output] == "1"
    }


def _topological_order(n: int, before: Set[Tuple[int, int]]) -> Optional[List[int]]:
    """Order 0..n-1 respecting ``before`` pairs; None when cyclic."""
    successors: Dict[int, List[int]] = {i: [] for i in range(n)}
    indegree = [0] * n
    for a, b in before:
        successors[a].append(b)
        indegree[b] += 1
    ready = sorted(i for i in range(n) if indegree[i] == 0)
    order: List[int] = []
    while ready:
        node = ready.pop(0)
        order.append(node)
        for nxt in successors[node]:
            indegree[nxt] -= 1
            if indegree[nxt] == 0:
                ready.append(nxt)
        ready.sort()
    return order if len(order) == n else None


def plan_column_folding(table: TruthTable) -> FoldingPlan:
    """Greedy column folding with row reordering.

    Outputs are considered in index order; each unpaired output tries to
    fold with the first later output whose term set is disjoint *and*
    whose precedence requirements keep the row order realisable.
    """
    n_out = table.num_outputs
    terms = [_terms_of(table, output) for output in range(n_out)]
    paired: Dict[int, int] = {}
    used: Set[int] = set()
    before: Set[Tuple[int, int]] = set()

    for bottom in range(n_out):
        if bottom in used:
            continue
        for top in range(bottom + 1, n_out):
            if top in used or terms[bottom] & terms[top]:
                continue
            # All of bottom's terms must precede all of top's terms.
            candidate = {
                (b, t) for b in terms[bottom] for t in terms[top] if b != t
            }
            if _topological_order(table.num_terms, before | candidate) is None:
                continue
            before |= candidate
            paired[bottom] = top
            used.add(bottom)
            used.add(top)
            break

    order = _topological_order(table.num_terms, before)
    assert order is not None
    position_of = {term: position for position, term in enumerate(order)}

    plan = FoldingPlan(row_order=order)
    for output in range(n_out):
        if output in paired:
            top = paired[output]
            column = len(plan.columns)
            plan.columns.append((output, top))
            # Break above the last row that uses the bottom output.
            bottom_last = max(
                (position_of[t] for t in terms[output]), default=-1
            )
            plan.breaks[column] = min(bottom_last + 1, table.num_terms - 1)
        elif output not in used:
            plan.columns.append((output, None))
    return plan


def generate_folded_pla(
    table: TruthTable,
    rsg: Optional[Rsg] = None,
    name: str = "foldedpla",
    plan: Optional[FoldingPlan] = None,
) -> Tuple[CellDefinition, FoldingPlan]:
    """Generate a column-folded PLA layout.

    Returns the cell and the folding plan used.  The OR plane has one
    physical column per plan column; folded columns get a bottom buffer,
    a top buffer (flipped), and a ``colbreak`` mask at the break row.
    """
    if rsg is None:
        rsg = load_pla_library()
    if "colbreak" not in rsg.cells:
        from ..layout.sample import loads_sample

        loads_sample(FOLDING_EXTRAS, rsg)
    if plan is None:
        plan = plan_column_folding(table)

    # Build a reordered personality whose OR plane has one column per
    # physical column: a term drives a folded column if it belongs to
    # either constituent output.
    folded_or_rows: List[str] = []
    for term in plan.row_order:
        row = []
        for bottom, top in plan.columns:
            drive = table.or_plane[term][bottom] == "1" or (
                top is not None and table.or_plane[term][top] == "1"
            )
            row.append("1" if drive else "0")
        folded_or_rows.append("".join(row))
    folded = TruthTable(
        [table.and_plane[term] for term in plan.row_order], folded_or_rows
    )

    pulls: List[Node] = []
    rows_squares: List[List[Node]] = []
    for term in range(folded.num_terms):
        pull, squares = _build_term_row(rsg, folded, term)
        if pulls:
            rsg.connect(pulls[-1], pull, 2)
        pulls.append(pull)
        rows_squares.append(squares)

    bottom_squares = rows_squares[0]
    top_squares = rows_squares[-1]
    # Input buffers below the bottom row, as in the plain PLA.
    for column in range(folded.num_inputs):
        rsg.connect(bottom_squares[column], rsg.mk_instance("inbuf"), 1)
    # Output buffers: bottom output below; folded top output above.
    for column, (bottom, top) in enumerate(plan.columns):
        or_bottom = bottom_squares[folded.num_inputs + column]
        rsg.connect(or_bottom, rsg.mk_instance("outbuf"), 1)
        if top is not None:
            or_top = top_squares[folded.num_inputs + column]
            rsg.connect(or_top, rsg.mk_instance("outbuf"), 2)
            break_row = plan.breaks[column]
            break_square = rows_squares[break_row][folded.num_inputs + column]
            rsg.connect(break_square, rsg.mk_instance("colbreak"), 1)
    cell = rsg.mk_cell(name, pulls[0])
    return cell, plan
