"""PLA truth tables (personality matrices).

The configuration specification a PLA generator consumes: number of
inputs, outputs, product terms, and the personality — which literal of
each input appears in each product term, and which product terms feed
each output (section 1.2.1).  Includes a logic evaluator so generated
layouts can be verified functionally.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

__all__ = ["TruthTable"]

_IN_CHARS = {"0", "1", "-"}
_OUT_CHARS = {"0", "1"}


class TruthTable:
    """A PLA personality: AND-plane and OR-plane matrices.

    ``and_plane[p][i]`` is ``'1'`` (true literal), ``'0'`` (complemented
    literal) or ``'-'`` (input absent from term ``p``);
    ``or_plane[p][o]`` is ``'1'`` when product term ``p`` drives output
    ``o``.
    """

    def __init__(self, and_plane: Sequence[str], or_plane: Sequence[str]) -> None:
        if len(and_plane) != len(or_plane):
            raise ValueError("AND and OR planes must list the same product terms")
        if not and_plane:
            raise ValueError("a PLA needs at least one product term")
        self.and_plane = [str(row) for row in and_plane]
        self.or_plane = [str(row) for row in or_plane]
        widths_in = {len(row) for row in self.and_plane}
        widths_out = {len(row) for row in self.or_plane}
        if len(widths_in) != 1 or len(widths_out) != 1:
            raise ValueError("ragged personality matrix")
        for row in self.and_plane:
            if set(row) - _IN_CHARS:
                raise ValueError(f"bad AND-plane row {row!r}")
        for row in self.or_plane:
            if set(row) - _OUT_CHARS:
                raise ValueError(f"bad OR-plane row {row!r}")

    # ------------------------------------------------------------------
    @property
    def num_inputs(self) -> int:
        return len(self.and_plane[0])

    @property
    def num_outputs(self) -> int:
        return len(self.or_plane[0])

    @property
    def num_terms(self) -> int:
        return len(self.and_plane)

    # ------------------------------------------------------------------
    @classmethod
    def parse(cls, text: str) -> "TruthTable":
        """Parse an espresso-like table: ``<in part> | <out part>`` rows."""
        and_rows: List[str] = []
        or_rows: List[str] = []
        for raw in text.splitlines():
            line = raw.split("#", 1)[0].strip()
            if not line:
                continue
            if "|" in line:
                left, right = line.split("|", 1)
            else:
                parts = line.split()
                if len(parts) != 2:
                    raise ValueError(f"bad truth-table row {line!r}")
                left, right = parts
            and_rows.append(left.strip().replace(" ", ""))
            or_rows.append(right.strip().replace(" ", ""))
        return cls(and_rows, or_rows)

    # ------------------------------------------------------------------
    def evaluate(self, inputs: Sequence[int]) -> List[int]:
        """Evaluate the two-level logic for an input vector."""
        if len(inputs) != self.num_inputs:
            raise ValueError("wrong input width")
        terms = []
        for row in self.and_plane:
            active = 1
            for bit, literal in zip(inputs, row):
                if literal == "1" and not bit:
                    active = 0
                elif literal == "0" and bit:
                    active = 0
            terms.append(active)
        outputs = []
        for index in range(self.num_outputs):
            value = 0
            for term_active, row in zip(terms, self.or_plane):
                if term_active and row[index] == "1":
                    value = 1
            outputs.append(value)
        return outputs

    def crosspoints(self) -> Tuple[int, int]:
        """(AND-plane, OR-plane) crosspoint transistor counts."""
        and_count = sum(row.count("0") + row.count("1") for row in self.and_plane)
        or_count = sum(row.count("1") for row in self.or_plane)
        return and_count, or_count

    def __repr__(self) -> str:
        return (
            f"TruthTable(inputs={self.num_inputs}, outputs={self.num_outputs},"
            f" terms={self.num_terms})"
        )
