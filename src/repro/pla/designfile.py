"""A PLA design file: the language path for PLA generation.

The multiplier chapter exercises the design-file language; this module
does the same for PLAs, using the encoding-table primitives
(``table_terms`` / ``table_literal`` / ``table_output``) that mirror the
paper's "primitives for manipulating encoding tables (such as PLA truth
tables)".  The personality (a :class:`TruthTable`) is bound into the
global environment like any other parameter, so the same design file
serves every PLA — the HPLA delayed-binding convenience, recovered
within the one-shot RSG flow.
"""

from __future__ import annotations

from typing import Optional, Tuple

from ..core.cell import CellDefinition
from ..core.operators import Rsg
from ..lang.interpreter import Interpreter
from ..lang.param_file import parse_parameters
from .cells import load_pla_library
from .truthtable import TruthTable

__all__ = ["PLA_DESIGN_FILE", "PLA_PARAMETER_FILE", "generate_pla_via_language"]

PLA_DESIGN_FILE = """\
; PLA design file: one row per product term, crosspoints from the
; encoding table, buffers below the bottom row.

(macro mplarow (tbl term)
  (locals pull prev spacer temp)
  (mk_instance pull pullcell)
  (setq prev pull)
  (do (i 1 (+ 1 i) (> i (table_inputs tbl)))
    (mk_instance s.i andcell)
    (connect prev s.i 1)
    (cond ((= (table_literal tbl term i) 1)
           (connect s.i (mk_instance temp truecross) 1))
          ((= (table_literal tbl term i) 0)
           (connect s.i (mk_instance temp falsecross) 1)))
    (setq prev s.i))
  (mk_instance spacer spacercell)
  (connect prev spacer 1)
  (setq prev spacer)
  (do (j 1 (+ 1 j) (> j (table_outputs tbl)))
    (mk_instance o.j orcell)
    (connect prev o.j 1)
    (cond ((= (table_output tbl term j) 1)
           (connect o.j (mk_instance temp outcross) 1)))
    (setq prev o.j))
  (connect prev (mk_instance temp orpullcell) 1))

(macro mpla (tbl)
  (locals temp)
  (assign r.1 (mplarow tbl 1))
  (do (t 2 (+ 1 t) (> t (table_terms tbl)))
    (assign r.t (mplarow tbl t))
    (connect (subcell r.(- t 1) pull) (subcell r.t pull) 2))
  (do (i 1 (+ 1 i) (> i (table_inputs tbl)))
    (connect (subcell r.1 s.i) (mk_instance temp inbufcell) 1))
  (do (j 1 (+ 1 j) (> j (table_outputs tbl)))
    (connect (subcell r.1 o.j) (mk_instance temp outbufcell) 1))
  (mk_cell planame (subcell r.1 pull)))

(mpla platable)
"""

PLA_PARAMETER_FILE = """\
# PLA parameter file: design-file names -> sample-layout cell names.
pullcell=andpull
andcell=andsq
spacercell=connectao
orcell=orsq
orpullcell=orpull
truecross=xtrue
falsecross=xfalse
outcross=xout
inbufcell=inbuf
outbufcell=outbuf
planame="pla"
"""


def generate_pla_via_language(
    table: TruthTable,
    rsg: Optional[Rsg] = None,
    name: str = "pla",
) -> Tuple[CellDefinition, Interpreter]:
    """Generate a PLA through the design-file language front end."""
    if rsg is None:
        rsg = load_pla_library()
    interpreter = Interpreter(rsg)
    parameters = parse_parameters(PLA_PARAMETER_FILE)
    parameters.bindings["planame"] = name
    interpreter.set_parameters(parameters.bindings)
    interpreter.set_parameter("platable", table)
    interpreter.run(PLA_DESIGN_FILE)
    return rsg.cells.lookup(name), interpreter
