"""PLA generation: RSG-based generator plus the HPLA relocation baseline."""

from .cells import CONNECT_WIDTH, PLA_PITCH, PLA_SAMPLE, load_pla_library
from .designfile import (
    PLA_DESIGN_FILE,
    PLA_PARAMETER_FILE,
    generate_pla_via_language,
)
from .folding import FoldingPlan, generate_folded_pla, plan_column_folding
from .generator import (
    extract_personality,
    generate_decoder,
    generate_pla,
    intended_decoder_netlist,
    intended_pla_netlist,
)
from .hpla import HplaDescription, HplaGenerator, compile_description
from .rom import generate_rom, intended_rom_netlist, read_rom_back, rom_table
from .truthtable import TruthTable

__all__ = [
    "generate_rom",
    "read_rom_back",
    "rom_table",
    "PLA_DESIGN_FILE",
    "PLA_PARAMETER_FILE",
    "generate_pla_via_language",
    "FoldingPlan",
    "generate_folded_pla",
    "plan_column_folding",
    "TruthTable",
    "PLA_SAMPLE",
    "load_pla_library",
    "PLA_PITCH",
    "CONNECT_WIDTH",
    "generate_pla",
    "intended_pla_netlist",
    "intended_decoder_netlist",
    "intended_rom_netlist",
    "generate_decoder",
    "extract_personality",
    "HplaGenerator",
    "HplaDescription",
    "compile_description",
]
