"""Mask-level device and node extraction (the EXCL role, chapter 5).

The paper verified generated layouts by extracting a transistor netlist
from the masks and simulating it; this module is that loop's first
half.  It reuses the sweep kernel (:mod:`repro.geometry.sweep`): one
:func:`~repro.geometry.sweep.slab_decompose` pass over the expanded
physical masks yields per-slab merged runs per layer, from which the
extractor derives

* **channels** — poly-over-diffusion overlap, minus contact cuts (a
  butting-contact region is a connection, not a transistor);
* **conductors** — diffusion with the channels subtracted (a channel
  interrupts its diffusion strip), plus poly and metal1 unchanged;
* **nets** — connected components of conductor runs: runs union when
  they share an edge of positive length (corner-only contact does not
  conduct, matching the touching-coalesce convention of the kernel),
  and a contact cut unions every conductor layer it positively
  overlaps;
* **devices** — one per connected channel region: the gate is the poly
  net over the channel, the channel terminals are the diffusion nets
  edge-adjacent to it, and an implant overlapping the channel marks a
  depletion load (gate dropped, per the netlist convention).

Port and label names attach to the net whose conductor geometry
contains their position; names ending in ``!`` merge globally so
physically disjoint rails become one electrical node.
"""

from __future__ import annotations

from typing import Any, Dict, Iterable, List, Optional, Sequence, Set, Tuple

from ..compact.layers import expand_layout
from ..compact.rules import TECH_A, DesignRules
from ..core.cell import CellDefinition
from ..geometry import Box, Transform, batch
from ..geometry.sweep import Interval, slab_decompose, subtract_intervals
from .netlist import SwitchNetlist

__all__ = ["ExtractionError", "extract_netlist", "extract_layers", "CONDUCTOR_LAYERS"]

#: layers that carry signals, in drawing order
CONDUCTOR_LAYERS = ("diff", "poly", "metal1")


class ExtractionError(ValueError):
    """Raised when mask geometry cannot be read as a circuit."""


def _intersect_runs(a: Sequence[Interval], b: Sequence[Interval]) -> List[Interval]:
    """Intersection of two sorted disjoint interval lists."""
    result: List[Interval] = []
    i = j = 0
    while i < len(a) and j < len(b):
        lo = max(a[i][0], b[j][0])
        hi = min(a[i][1], b[j][1])
        if hi > lo:
            result.append((lo, hi))
        if a[i][1] <= b[j][1]:
            i += 1
        else:
            j += 1
    return result


class _UnionFind:
    """Path-halving disjoint sets, grown on demand."""

    def __init__(self) -> None:
        self.parent: List[int] = []

    def make(self) -> int:
        """New singleton; returns its id."""
        self.parent.append(len(self.parent))
        return len(self.parent) - 1

    def find(self, a: int) -> int:
        """Representative of ``a``'s set."""
        parent = self.parent
        while parent[a] != a:
            parent[a] = parent[parent[a]]
            a = parent[a]
        return a

    def union(self, a: int, b: int) -> None:
        """Merge the sets holding ``a`` and ``b``."""
        ra, rb = self.find(a), self.find(b)
        if ra != rb:
            self.parent[rb] = ra


def extract_layers(
    cell: CellDefinition, rules: Optional[DesignRules] = None
) -> Dict[str, List[Box]]:
    """Flatten ``cell`` and expand derived layers to physical masks."""
    layers: Dict[str, List[Box]] = {}
    for layer_box in cell.flatten(Transform()):
        layers.setdefault(layer_box.layer, []).append(layer_box.box)
    return expand_layout(layers, rules or TECH_A)


def _touching(a: Interval, b: Interval) -> bool:
    """Closed-interval contact: share at least a point."""
    return a[0] <= b[1] and b[0] <= a[1]


def _overlapping(a: Interval, b: Interval) -> bool:
    """Positive-length interval overlap."""
    return min(a[1], b[1]) > max(a[0], b[0])


class _RunGraph:
    """Per-slab conductor/channel runs stitched into components.

    Each run placed into the graph becomes a union-find node; runs of
    the same kind union when they share an edge of positive length
    (within a slab that merge already happened — runs are disjoint —
    so only the slab boundary stitch remains).  The graph also keeps,
    per node, the run's rectangle so later passes (ports, cuts,
    adjacency) can query geometry.
    """

    def __init__(self) -> None:
        self.sets = _UnionFind()
        #: node id -> (kind, Box)
        self.boxes: List[Tuple[str, Box]] = []
        #: kind -> runs of the previous slab: list of (interval, node)
        self._previous: Dict[str, List[Tuple[Interval, int]]] = {}
        self._previous_top: Optional[int] = None

    def start_slab(self, y0: int, y1: int) -> None:
        """Begin a new slab (the previous slab's runs stay as the
        stitch base; ``add_runs`` checks actual y-adjacency)."""
        self._current: Dict[str, List[Tuple[Interval, int]]] = {}
        self._y0, self._y1 = y0, y1

    def add_runs(self, kind: str, runs: Iterable[Interval]) -> List[int]:
        """Place ``kind`` runs for the current slab; returns node ids."""
        nodes: List[int] = []
        entries: List[Tuple[Interval, int]] = []
        previous = self._previous.get(kind, ())
        adjacent = self._previous_top == self._y0
        for run in runs:
            node = self.sets.make()
            self.boxes.append((kind, Box(run[0], self._y0, run[1], self._y1)))
            if adjacent:
                for other_run, other_node in previous:
                    if _overlapping(run, other_run):
                        self.sets.union(node, other_node)
            entries.append((run, node))
            nodes.append(node)
        self._current[kind] = entries
        return nodes

    def current_runs(self, kind: str) -> List[Tuple[Interval, int]]:
        """(interval, node) pairs of ``kind`` placed in the current slab."""
        return self._current.get(kind, [])

    def end_slab(self) -> None:
        """Seal the slab: current runs become the stitch base."""
        self._previous = self._current
        self._previous_top = self._y1


#: node-creation order of the conductor kinds within one slab
_SWEEP_KINDS = ("poly", "metal1", "diff", "channel")

#: what one sweep pass hands to the netlist-resolution phase:
#: (union-find, node boxes, gate_of, terminals_of, depletion, cut_links)
_SweepResult = Tuple[
    _UnionFind,
    List[Tuple[str, Box]],
    Dict[int, Set[int]],
    Dict[int, Set[int]],
    Set[int],
    List[List[int]],
]


def _sweep_python(sweep_input: Dict[str, List[Box]]) -> _SweepResult:
    """The interpreted slab walk over the conductor masks.

    One :func:`~repro.geometry.sweep.slab_decompose` pass feeds the
    :class:`_RunGraph`; gates, depletion markers, terminals, and cut
    links are discovered per slab with interval scans.  Serves as the
    equivalence oracle for :func:`_sweep_batch`, which reproduces its
    node numbering and union sequence exactly.
    """
    graph = _RunGraph()
    # channel component node -> flags/links discovered during the sweep
    gate_of: Dict[int, Set[int]] = {}
    terminals_of: Dict[int, Set[int]] = {}
    depletion: Set[int] = set()
    cut_links: List[List[int]] = []

    previous_channels: List[Tuple[Interval, int]] = []
    previous_diff: List[Tuple[Interval, int]] = []
    previous_top: Optional[int] = None

    for y0, y1, runs in slab_decompose(sweep_input):
        graph.start_slab(y0, y1)
        poly_runs = runs["poly"]
        diff_runs = runs["diff"]
        cut_runs = runs["cut"]
        implant_runs = runs["implant"]
        channel_runs = subtract_intervals(
            _intersect_runs(poly_runs, diff_runs), cut_runs
        )
        diff_conductor = subtract_intervals(diff_runs, channel_runs)

        graph.add_runs("poly", poly_runs)
        graph.add_runs("metal1", runs["metal1"])
        graph.add_runs("diff", diff_conductor)
        graph.add_runs("channel", channel_runs)

        channel_nodes = graph.current_runs("channel")
        diff_nodes = graph.current_runs("diff")
        poly_nodes = graph.current_runs("poly")

        for run, node in channel_nodes:
            # Gate: the poly run covering this channel.
            for poly_run, poly_node in poly_nodes:
                if _overlapping(run, poly_run):
                    gate_of.setdefault(node, set()).add(poly_node)
            # Depletion marker.
            if any(_overlapping(run, imp) for imp in implant_runs):
                depletion.add(node)
            # Horizontal channel/diff adjacency (shared endpoint).
            for diff_run, diff_node in diff_nodes:
                if _touching(run, diff_run):
                    terminals_of.setdefault(node, set()).add(diff_node)
            # Vertical adjacency against the previous slab.
            if previous_top == y0:
                for other_run, other_node in previous_diff:
                    if _overlapping(run, other_run):
                        terminals_of.setdefault(node, set()).add(other_node)
        if previous_top == y0:
            for run, node in diff_nodes:
                for other_run, other_node in previous_channels:
                    if _overlapping(run, other_run):
                        terminals_of.setdefault(other_node, set()).add(node)

        # Cuts union every conductor they positively overlap.
        for cut_run in cut_runs:
            linked: List[int] = []
            for kind in ("poly", "metal1", "diff"):
                for run, node in graph.current_runs(kind):
                    if _overlapping(cut_run, run):
                        linked.append(node)
            if len(linked) >= 2:
                cut_links.append(linked)

        previous_channels = channel_nodes
        previous_diff = diff_nodes
        previous_top = y1
        graph.end_slab()

    return (
        graph.sets, graph.boxes, gate_of, terminals_of, depletion, cut_links
    )


def _sweep_batch(sweep_input: Dict[str, List[Box]]) -> _SweepResult:
    """Numpy batch build of the slab walk.

    All slabs are materialised at once: merged runs per mask come from
    :func:`~repro.geometry.batch.merged_slab_runs`, the channel/
    conductor algebra from the keyed event-depth combinators, and every
    per-slab interval scan of :func:`_sweep_python` (slab stitching,
    gates, depletion, terminals, cut links) becomes a keyed
    ``searchsorted`` pair query.  Node ids are assigned in exactly the
    interpreted order — (slab, kind, x) — and stitch unions are applied
    in exactly the interpreted sequence, so the resulting union-find
    roots (and hence downstream net numbering) are *identical*, not
    merely isomorphic.
    """
    np = batch.require_numpy()
    sets = _UnionFind()
    boxes: List[Tuple[str, Box]] = []
    gate_of: Dict[int, Set[int]] = {}
    terminals_of: Dict[int, Set[int]] = {}
    depletion: Set[int] = set()
    cut_links: List[List[int]] = []
    result = (sets, boxes, gate_of, terminals_of, depletion, cut_links)

    arrays = {
        name: batch.boxes_to_arrays(value) for name, value in sweep_input.items()
    }
    ys = batch.slab_grid(arrays.values())
    if ys.size < 2:
        return result
    poly = batch.merged_slab_runs(ys, arrays["poly"])
    metal = batch.merged_slab_runs(ys, arrays["metal1"])
    diff = batch.merged_slab_runs(ys, arrays["diff"])
    cut = batch.merged_slab_runs(ys, arrays["cut"])
    implant = batch.merged_slab_runs(ys, arrays["implant"])
    channel = batch.runs_subtract(*batch.runs_intersect(*poly, *diff), *cut)
    diff_cond = batch.runs_subtract(*diff, *channel)

    kinds = (poly, metal, diff_cond, channel)
    sizes = [int(runs[0].size) for runs in kinds]
    total = sum(sizes)
    if total == 0:
        return result
    slab_all = np.concatenate([runs[0] for runs in kinds])
    x0_all = np.concatenate([runs[1] for runs in kinds])
    x1_all = np.concatenate([runs[2] for runs in kinds])
    rank_all = np.repeat(np.arange(4, dtype=np.int64), sizes)
    # Node ids in interpreted creation order: slab, then kind, then x.
    order = np.lexsort((x0_all, rank_all, slab_all))
    node_of = np.empty(total, dtype=np.int64)
    node_of[order] = np.arange(total, dtype=np.int64)
    offsets = np.cumsum(sizes) - sizes
    nid = [
        node_of[offsets[index]: offsets[index] + sizes[index]]
        for index in range(4)
    ]
    sets.parent = list(range(total))
    slab_sorted = slab_all[order]
    for kind_rank, box in zip(
        rank_all[order].tolist(),
        batch.boxes_from_arrays(
            x0_all[order], ys[slab_sorted], x1_all[order], ys[slab_sorted + 1]
        ),
    ):
        boxes.append((_SWEEP_KINDS[kind_rank], box))

    # Same-kind stitches across adjacent slabs, in interpreted union
    # order: ascending (new node, previous node).
    stitch_cur: List[Any] = []
    stitch_prev: List[Any] = []
    for index in range(4):
        slab, x0, x1 = kinds[index]
        if slab.size == 0:
            continue
        cur_rows, prev_rows = batch.overlap_pairs(slab, x0, x1, slab + 1, x0, x1)
        if cur_rows.size:
            stitch_cur.append(nid[index][cur_rows])
            stitch_prev.append(nid[index][prev_rows])
    if stitch_cur:
        cur = np.concatenate(stitch_cur)
        prev = np.concatenate(stitch_prev)
        sequence = np.lexsort((prev, cur))
        union = sets.union
        for node, other in zip(cur[sequence].tolist(), prev[sequence].tolist()):
            union(node, other)

    chan_nid, diff_nid, poly_nid, metal_nid = nid[3], nid[2], nid[0], nid[1]
    # Gates: poly runs positively overlapping a channel, same slab.
    rows_a, rows_b = batch.overlap_pairs(*channel, *poly)
    for node, gate in zip(chan_nid[rows_a].tolist(), poly_nid[rows_b].tolist()):
        gate_of.setdefault(node, set()).add(gate)
    # Depletion markers.
    rows_a, _ = batch.overlap_pairs(*channel, *implant)
    depletion.update(chan_nid[rows_a].tolist())
    # Horizontal channel/diff adjacency (shared endpoint counts).
    rows_a, rows_b = batch.overlap_pairs(*channel, *diff_cond, closed=True)
    for node, term in zip(chan_nid[rows_a].tolist(), diff_nid[rows_b].tolist()):
        terminals_of.setdefault(node, set()).add(term)
    # Vertical adjacency, both directions across the slab boundary.
    chan_slab, chan_x0, chan_x1 = channel
    diff_slab, diff_x0, diff_x1 = diff_cond
    rows_a, rows_b = batch.overlap_pairs(
        chan_slab, chan_x0, chan_x1, diff_slab + 1, diff_x0, diff_x1
    )
    for node, term in zip(chan_nid[rows_a].tolist(), diff_nid[rows_b].tolist()):
        terminals_of.setdefault(node, set()).add(term)
    rows_a, rows_b = batch.overlap_pairs(
        diff_slab, diff_x0, diff_x1, chan_slab + 1, chan_x0, chan_x1
    )
    for term, node in zip(diff_nid[rows_a].tolist(), chan_nid[rows_b].tolist()):
        terminals_of.setdefault(node, set()).add(term)

    # Cuts union every conductor they positively overlap, in slab/x
    # order with the linked nodes listed poly, then metal1, then diff.
    cut_slab, cut_x0, cut_x1 = cut
    if cut_slab.size:
        link_cut: List[Any] = []
        link_rank: List[Any] = []
        link_node: List[Any] = []
        for rank, (runs, ids) in enumerate(
            ((poly, poly_nid), (metal, metal_nid), (diff_cond, diff_nid))
        ):
            rows_a, rows_b = batch.overlap_pairs(cut_slab, cut_x0, cut_x1, *runs)
            if rows_a.size:
                link_cut.append(rows_a)
                link_rank.append(np.full(rows_a.size, rank, dtype=np.int64))
                link_node.append(ids[rows_b])
        if link_cut:
            cuts = np.concatenate(link_cut)
            ranks = np.concatenate(link_rank)
            nodes = np.concatenate(link_node)
            sequence = np.lexsort((nodes, ranks, cuts))
            linked_by_cut: Dict[int, List[int]] = {}
            for cut_index, node in zip(
                cuts[sequence].tolist(), nodes[sequence].tolist()
            ):
                linked_by_cut.setdefault(cut_index, []).append(node)
            for cut_index in sorted(linked_by_cut):
                linked = linked_by_cut[cut_index]
                if len(linked) >= 2:
                    cut_links.append(linked)
    return result


def extract_netlist(
    cell: CellDefinition,
    rules: Optional[DesignRules] = None,
    layers: Optional[Dict[str, List[Box]]] = None,
    ports: Optional[Sequence] = None,
    geometry: Optional[List[Tuple[str, Box, int]]] = None,
    finalise: bool = True,
) -> SwitchNetlist:
    """Extract the transistor netlist of a placed cell from its masks.

    Returns a :class:`~repro.verify.netlist.SwitchNetlist` whose nets
    carry every hierarchical port name that landed on them, with rails
    classified from ``vdd``/``gnd`` names and global (``!``) names
    merged.  ``layers``/``ports`` override the flatten step (the
    hierarchical extractor passes pre-translated tiles).

    When ``geometry`` is a list, every conductor run is appended to it
    as ``(layer, box, net)`` — channels as ``("channel", box, -1)`` —
    and with ``finalise=False`` the global-name merge, rail
    classification and floating-net prune are skipped so the recorded
    net ids stay valid; the hierarchical extractor relies on both to
    stitch tiles.
    """
    if layers is None:
        layers = extract_layers(cell, rules)
    if ports is None:
        ports = list(cell.flatten_ports(Transform())) if cell is not None else []

    sweep_input: Dict[str, List[Box]] = {
        name: list(layers.get(name, ())) for name in CONDUCTOR_LAYERS
    }
    sweep_input["cut"] = list(layers.get("cut", ()))
    sweep_input["implant"] = list(layers.get("implant", ()))

    if batch.use_numpy():
        sweep = _sweep_batch(sweep_input)
    else:
        sweep = _sweep_python(sweep_input)
    sets, boxes, gate_of, terminals_of, depletion, cut_links = sweep

    for linked in cut_links:
        for node in linked[1:]:
            sets.union(linked[0], node)

    # ------------------------------------------------------------------
    # Resolve components into nets and devices.
    # ------------------------------------------------------------------
    netlist = SwitchNetlist()
    net_of_component: Dict[int, int] = {}
    kind_of: List[str] = [kind for kind, _ in boxes]

    def net_for(node: int) -> int:
        root = sets.find(node)
        net = net_of_component.get(root)
        if net is None:
            net = netlist.add_net()
            net_of_component[root] = net
        return net

    # Channel components -> devices (deduplicated by component root).
    seen_channels: Dict[int, Tuple[Set[int], Set[int], bool]] = {}
    for node in range(len(boxes)):
        if kind_of[node] != "channel":
            continue
        root = sets.find(node)
        gates, terminals, isdep = seen_channels.setdefault(
            root, (set(), set(), False)
        )
        gates |= gate_of.get(node, set())
        terminals |= terminals_of.get(node, set())
        isdep = isdep or node in depletion
        seen_channels[root] = (gates, terminals, isdep)

    for root in sorted(seen_channels):
        gates, terminals, isdep = seen_channels[root]
        gate_nets = sorted({net_for(node) for node in gates})
        terminal_nets = sorted({net_for(node) for node in terminals})
        if len(terminal_nets) < 2:
            raise ExtractionError(
                f"channel region with {len(terminal_nets)} terminal(s); "
                "a transistor needs source and drain diffusion"
            )
        if len(terminal_nets) > 2:
            raise ExtractionError(
                f"channel region touching {len(terminal_nets)} diffusion"
                " nets; split the channel or merge the diffusion"
            )
        if isdep:
            netlist.add_transistor(None, *terminal_nets, depletion=True)
        else:
            if len(gate_nets) != 1:
                raise ExtractionError(
                    f"enhancement channel with {len(gate_nets)} gate nets"
                )
            netlist.add_transistor(gate_nets[0], *terminal_nets)

    # Materialise nets for conductor components that carry no device so
    # port attachment below can still name them.
    component_boxes: Dict[int, List[Tuple[str, Box]]] = {}
    for node, (kind, box) in enumerate(boxes):
        if kind == "channel":
            if geometry is not None:
                geometry.append(("channel", box, -1))
            continue
        component_boxes.setdefault(sets.find(node), []).append((kind, box))
    if geometry is not None:
        for root, boxes in component_boxes.items():
            net = net_for(root)
            for kind, box in boxes:
                geometry.append((kind, box, net))

    # Attach port names by position; boxes are indexed per layer so a
    # port only scans conductors it could legally land on.
    boxes_by_layer: Dict[str, List[Tuple[Box, int]]] = {}
    for root, boxes in component_boxes.items():
        for kind, box in boxes:
            boxes_by_layer.setdefault(kind, []).append((box, root))
    for port in ports:
        x, y = port.position.x, port.position.y
        if port.layer:
            candidates = boxes_by_layer.get(port.layer, ())
        else:
            candidates = [
                item for boxes in boxes_by_layer.values() for item in boxes
            ]
        for box, root in candidates:
            if box.xmin <= x <= box.xmax and box.ymin <= y <= box.ymax:
                netlist.name_net(net_for(root), port.name, (x, y))
                break

    if finalise:
        netlist.merge_global_names()
        netlist.classify_rails()
        netlist.prune_floating()
    return netlist
