"""High-level verification entry points (the ``--verify`` flow).

Dispatches a generated cell to the right verification recipe:

* **PLA family** (PLA / ROM / decoder — anything built from the
  :mod:`repro.pla` sample): full mask-level closure.  The transistor
  netlist is extracted from the masks (flat, or tile-hierarchically
  with ``hier=True``), LVS-compared against the generator's
  ``intended_*_netlist`` golden, and switch-level simulated against
  the truth table — exhaustively up to ``max_vectors`` input
  combinations, seeded-randomly sampled beyond;
* **multiplier** (stylised sample): cell-level LVS of the extracted
  cell graph against :func:`repro.multiplier.generator.intended_multiplier_netlist`,
  personality read-back against the Baugh-Wooley grid, and an
  exhaustive (or sampled) product check of the personality-derived
  arithmetic;
* anything else: extraction summary only (no golden is known).

Every recipe returns a :class:`VerificationReport`; ``report.ok`` is
the single pass/fail the CLI and the example scripts key on.
"""

from __future__ import annotations

from typing import List, Optional

from ..compact.cache import CompactionCache
from ..compact.rules import DesignRules
from ..core.cell import CellDefinition
from ..obs import trace as obs_trace
from .extract import extract_netlist
from .hier import extract_netlist_hier
from .lvs import LvsReport, compare_netlists
from .netlist import SwitchNetlist
from .switchsim import exhaustive_vectors, sample_vectors, simulate

__all__ = ["VerificationReport", "verify_cell", "verify_pla", "verify_multiplier"]

#: default ceiling on simulated input combinations before sampling
DEFAULT_MAX_VECTORS = 4096


class VerificationReport:
    """Outcome of one verification run."""

    def __init__(self, subject: str, mode: str) -> None:
        self.subject = subject
        self.mode = mode
        self.hierarchical = False
        self.lvs: Optional[LvsReport] = None
        self.vectors_checked = 0
        self.exhaustive = False
        #: human-readable functional mismatches (empty when clean)
        self.failures: List[str] = []
        self.devices = 0
        self.nets = 0

    @property
    def ok(self) -> bool:
        """True when every requested check passed."""
        if self.lvs is not None and not self.lvs.matched:
            return False
        return not self.failures

    def summary(self) -> str:
        """Printable multi-line account of the run."""
        lines = [
            f"verify {self.subject} ({self.mode},"
            f" {'hierarchical' if self.hierarchical else 'flat'} extraction):"
            f" {self.devices} devices, {self.nets} nets"
        ]
        if self.lvs is not None:
            lines.append(f"  {self.lvs.summary()}")
        if self.vectors_checked:
            regime = "exhaustive" if self.exhaustive else "sampled"
            lines.append(
                f"  simulation: {self.vectors_checked} vectors ({regime}),"
                f" {len(self.failures)} mismatches"
            )
        for failure in self.failures[:5]:
            lines.append(f"  FAIL {failure}")
        lines.append(f"  result: {'PASS' if self.ok else 'FAIL'}")
        return "\n".join(lines)

    def to_dict(self) -> dict:
        """JSON-ready form (the service stores this per job artifact)."""
        return {
            "subject": self.subject,
            "mode": self.mode,
            "hierarchical": self.hierarchical,
            "devices": self.devices,
            "nets": self.nets,
            "vectors_checked": self.vectors_checked,
            "exhaustive": self.exhaustive,
            "failures": list(self.failures),
            "lvs": self.lvs.to_dict() if self.lvs is not None else None,
            "ok": self.ok,
            "summary": self.summary(),
        }

    def __repr__(self) -> str:
        return f"VerificationReport({self.subject!r}, ok={self.ok})"


def _celltypes(cell: CellDefinition) -> set:
    names = set()

    def walk(node: CellDefinition) -> None:
        for instance in node.instances:
            names.add(instance.celltype)
            walk(instance.definition)

    walk(cell)
    return names


def _extract(
    cell: CellDefinition,
    rules: Optional[DesignRules],
    hier: bool,
    cache: Optional[CompactionCache],
) -> SwitchNetlist:
    with obs_trace.span("verify.extract", hier=hier) as extract_span:
        if hier:
            netlist = extract_netlist_hier(cell, rules, cache=cache)
        else:
            netlist = extract_netlist(cell, rules)
        extract_span.set(nets=len(netlist.net_names), devices=len(netlist.devices))
    return netlist


def pla_layout_netlist(
    cell: CellDefinition,
    rules: Optional[DesignRules] = None,
    hier: bool = False,
    cache: Optional[CompactionCache] = None,
) -> SwitchNetlist:
    """Extract a PLA-family layout and bind its primary pins.

    Inputs are the ``in`` ports left to right; outputs the ``out``
    ports (buffered PLA/ROM) or, for a decoder, the ``row`` ports
    bottom to top.
    """
    netlist = _extract(cell, rules, hier, cache)
    netlist.inputs = netlist.nets_with_suffix("in")
    outputs = netlist.nets_with_suffix("out")
    netlist.outputs = outputs or netlist.nets_with_suffix("row")
    return netlist


def verify_pla(
    cell: CellDefinition,
    table=None,
    mode: str = "all",
    max_vectors: int = DEFAULT_MAX_VECTORS,
    rules: Optional[DesignRules] = None,
    hier: bool = False,
    cache: Optional[CompactionCache] = None,
) -> VerificationReport:
    """Verify a PLA/ROM/decoder layout at the mask level.

    ``table`` is the programmed :class:`~repro.pla.truthtable.TruthTable`;
    when omitted it is recovered from the crosspoint masks with
    :func:`~repro.pla.generator.extract_personality`, which still
    closes the loop from mask geometry to the personality actually
    drawn.  ``mode`` is ``"lvs"``, ``"sim"`` or ``"all"``.
    """
    from ..pla.generator import (
        extract_personality,
        intended_decoder_netlist,
        intended_pla_netlist,
    )

    is_decoder = "outbuf" not in _celltypes(cell)
    report = VerificationReport(
        f"{cell.name} ({'decoder' if is_decoder else 'pla'})", mode
    )
    report.hierarchical = hier
    netlist = pla_layout_netlist(cell, rules, hier, cache)
    report.devices = len(netlist.devices)
    report.nets = netlist.num_nets
    if table is None:
        table = extract_personality(cell)

    if mode in ("lvs", "all"):
        if is_decoder:
            golden = intended_decoder_netlist(table.num_inputs)
        else:
            golden = intended_pla_netlist(table)
        report.lvs = compare_netlists(netlist, golden)

    if mode in ("sim", "all"):
        width = len(netlist.inputs)
        if width != table.num_inputs:
            report.failures.append(
                f"extracted {width} inputs, table has {table.num_inputs}"
            )
            return report
        if (1 << width) <= max_vectors:
            vectors = exhaustive_vectors(width)
            report.exhaustive = True
        else:
            vectors = sample_vectors(width, max_vectors, seed=width)
        for bits in vectors:
            values = simulate(netlist, dict(zip(netlist.inputs, bits)))
            got = [values[net] for net in netlist.outputs]
            if is_decoder:
                index = sum(bit << k for k, bit in enumerate(bits))
                want = [1 if k == index else 0 for k in range(len(netlist.outputs))]
            else:
                want = table.evaluate(list(bits))
            if got != want:
                report.failures.append(f"inputs {bits}: got {got}, want {want}")
        report.vectors_checked = len(vectors)
    return report


def verify_multiplier(
    cell: CellDefinition,
    mode: str = "all",
    max_vectors: int = DEFAULT_MAX_VECTORS,
) -> VerificationReport:
    """Verify a generated multiplier at the cell level.

    LVS compares the extracted cell graph (placement, personalisation
    masks, seams, register stacks) against the architecture's golden
    netlist; the functional pass reads the personality grid back from
    the masks, checks it against the Baugh-Wooley pattern, and
    multiplies every operand pair (or a seeded sample beyond
    ``max_vectors``) against the reference product.
    """
    from ..multiplier.baughwooley import (
        build_baugh_wooley,
        cell_type_grid,
        multiply,
        reference_product,
    )
    from ..multiplier.generator import intended_multiplier_netlist
    from .cellgraph import cell_graph_netlist, multiplier_personality

    report = VerificationReport(f"{cell.name} (multiplier)", mode)
    try:
        xsize, ysize, grid, cpa = multiplier_personality(cell)
    except ValueError as error:
        report.failures.append(f"personality read-back: {error}")
        return report
    netlist = cell_graph_netlist(cell)
    report.devices = len(netlist.devices)
    report.nets = netlist.num_nets

    if mode in ("lvs", "all"):
        golden = intended_multiplier_netlist(xsize, ysize)
        report.lvs = compare_netlists(netlist, golden)

    if mode in ("sim", "all"):
        if grid != cell_type_grid(xsize, ysize):
            report.failures.append(
                "personality grid does not match the Baugh-Wooley pattern"
            )
        if any(entry != "I" for entry in cpa):
            report.failures.append(
                "carry-propagate row carries a type II mask"
            )
        if not report.failures and xsize >= 2 and ysize >= 2:
            functional = build_baugh_wooley(xsize, ysize)
            total = 1 << (xsize + ysize)
            if total <= max_vectors:
                pairs = [
                    (a, b) for a in range(1 << xsize) for b in range(1 << ysize)
                ]
                report.exhaustive = True
            else:
                vectors = sample_vectors(xsize + ysize, max_vectors, seed=total)
                pairs = [
                    (
                        sum(bit << k for k, bit in enumerate(bits[:xsize])),
                        sum(bit << k for k, bit in enumerate(bits[xsize:])),
                    )
                    for bits in vectors
                ]
            for a, b in pairs:
                got = multiply(functional, a, b, xsize, ysize)
                want = reference_product(a, b, xsize, ysize)
                if got != want:
                    report.failures.append(f"{a} x {b}: got {got}, want {want}")
            report.vectors_checked = len(pairs)
    return report


def verify_cell(
    cell: CellDefinition,
    mode: str = "all",
    max_vectors: int = DEFAULT_MAX_VECTORS,
    rules: Optional[DesignRules] = None,
    hier: bool = False,
    cache: Optional[CompactionCache] = None,
    table=None,
) -> VerificationReport:
    """Verify any generated cell, dispatching on its leaf vocabulary.

    PLA-family layouts get the mask-level recipe, multipliers the
    cell-level one; unknown vocabularies get an extraction summary
    (device/net counts) with no golden comparison.
    """
    names = _celltypes(cell)
    if "andsq" in names or "orsq" in names:
        return verify_pla(
            cell, table=table, mode=mode, max_vectors=max_vectors,
            rules=rules, hier=hier, cache=cache,
        )
    if "basiccell" in names:
        return verify_multiplier(cell, mode=mode, max_vectors=max_vectors)
    report = VerificationReport(f"{cell.name} (generic)", mode)
    report.hierarchical = hier
    netlist = _extract(cell, rules, hier, cache)
    report.devices = len(netlist.devices)
    report.nets = netlist.num_nets
    return report
