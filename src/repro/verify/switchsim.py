"""Event-driven switch-level simulation (Bryant-style 0/1/X).

The simulator evaluates a transistor-level
:class:`~repro.verify.netlist.SwitchNetlist` the way MOSSIM treats an
NMOS network: signals take values ``0``, ``1`` or ``X`` at one of three
strengths —

* **rail** (3): the forced nets (VDD, GND, primary inputs);
* **drive** (2): anything reached through a conducting enhancement
  channel (a pull-down path, or a pass-transistor network);
* **pull** (1): anything reached only through a depletion load.

Every net settles to the value of its strongest contribution; equal
strongest contributions that disagree settle to ``X``, and a device
whose gate is ``X`` conducts with value ``X`` (the conservative
resolution).  Relaxation is event-driven: a worklist seeded with the
forced nets re-examines only the devices adjacent to nets that
actually changed, so a PLA plane settles in a handful of events per
crosspoint rather than whole-netlist sweeps.

:func:`exhaustive_vectors` and :func:`sample_vectors` provide the two
evaluation regimes the verifier uses: every input combination for
small designs, seeded random sampling for large ones.
"""

from __future__ import annotations

import random
from typing import Dict, Iterable, List, Optional, Tuple

from .netlist import Device, SwitchNetlist

__all__ = [
    "SimulationError",
    "X",
    "simulate",
    "exhaustive_vectors",
    "sample_vectors",
]

#: the unknown logic value
X = 2

_RAIL, _DRIVE, _PULL, _FLOAT = 3, 2, 1, 0


class SimulationError(ValueError):
    """Raised when a netlist cannot be simulated at switch level."""


def _resolve(values: Iterable[int]) -> int:
    """Combine equal-strength contributions: agreement or X."""
    result: Optional[int] = None
    for value in values:
        if result is None:
            result = value
        elif result != value:
            return X
    return X if result is None else result


def simulate(
    netlist: SwitchNetlist,
    input_values: Dict[int, int],
    max_events: Optional[int] = None,
) -> List[int]:
    """Steady-state net values for the given forced inputs.

    ``input_values`` maps net id -> 0/1; VDD/GND nets are forced from
    the netlist's rail sets.  Returns a value (0/1/``X``) per net.
    Nets never reached by any driver stay ``X`` (floating).  Raises
    :class:`SimulationError` when relaxation fails to settle within
    ``max_events`` (default: proportional to netlist size) — the
    signature of an oscillating feedback path.
    """
    for device in netlist.devices:
        if device.kind not in ("enh", "dep"):
            raise SimulationError(
                f"device kind {device.kind!r} is not a transistor; "
                "switch-level simulation needs a transistor-level netlist"
            )
    forced: Dict[int, int] = {}
    for net in netlist.vdd_nets:
        forced[net] = 1
    for net in netlist.gnd_nets:
        forced[net] = 0
    for net, value in input_values.items():
        forced[net] = value

    count = netlist.num_nets
    values = [X] * count
    strengths = [_FLOAT] * count
    for net, value in forced.items():
        values[net] = value
        strengths[net] = _RAIL

    # Adjacency: net -> devices touching it (by channel or gate).
    by_channel: List[List[Device]] = [[] for _ in range(count)]
    by_gate: List[List[Device]] = [[] for _ in range(count)]
    for device in netlist.devices:
        for net in device.pins_with_role("ch"):
            by_channel[net].append(device)
        for net in device.pins_with_role("g"):
            by_gate[net].append(device)

    def contributions(net: int) -> Tuple[int, int]:
        """(strength, value) of the strongest drive reaching ``net``."""
        if net in forced:
            return _RAIL, forced[net]
        best = _FLOAT
        best_values: List[int] = []
        for device in by_channel[net]:
            a, b = device.pins_with_role("ch")
            other = b if a == net else a
            if device.kind == "dep":
                conduct, cap = 1, _PULL
            else:
                gate = device.pins_with_role("g")[0]
                conduct, cap = values[gate], _DRIVE
            if conduct == 0:
                continue
            strength = min(strengths[other], cap)
            if strength == _FLOAT:
                continue
            value = values[other] if conduct == 1 else X
            if strength > best:
                best, best_values = strength, [value]
            elif strength == best:
                best_values.append(value)
        return best, _resolve(best_values) if best > _FLOAT else X

    worklist: List[int] = list(forced)
    queued = set(worklist)
    budget = max_events if max_events is not None else 64 * (
        count + len(netlist.devices) + 1
    )
    events = 0
    while worklist:
        events += 1
        if events > budget:
            raise SimulationError(
                f"relaxation did not settle within {budget} events"
            )
        net = worklist.pop()
        queued.discard(net)
        affected: List[int] = []
        # A changed net affects its channel neighbours...
        for device in by_channel[net]:
            a, b = device.pins_with_role("ch")
            affected.append(b if a == net else a)
        # ... and everything on the far side of devices it gates.
        for device in by_gate[net]:
            affected.extend(device.pins_with_role("ch"))
        for other in affected:
            if other in forced:
                continue
            strength, value = contributions(other)
            if (strength, value) != (strengths[other], values[other]):
                strengths[other], values[other] = strength, value
                if other not in queued:
                    queued.add(other)
                    worklist.append(other)
    return values


def exhaustive_vectors(width: int) -> List[Tuple[int, ...]]:
    """Every input combination for ``width`` bits, in counting order."""
    return [
        tuple((index >> bit) & 1 for bit in range(width))
        for index in range(1 << width)
    ]


def sample_vectors(width: int, count: int, seed: int = 0) -> List[Tuple[int, ...]]:
    """``count`` distinct-ish random vectors of ``width`` bits (seeded)."""
    rng = random.Random(seed)
    return [
        tuple(rng.randint(0, 1) for _ in range(width)) for _ in range(count)
    ]
