"""Cell-level netlist extraction for stylised sample libraries.

The multiplier sample (chapter 5) is drawn *above* the transistor
level: its basic cell abstracts the full adder to buses, ports and an
active area, and its function is selected by personalisation masks
superimposed on the cell.  Mask-level device extraction therefore has
nothing to bite on; the verifiable content of such a layout is

* **which** personalised cell sits at each array position (the masks),
* **how** the cells' ports are wired through abutment and the
  register stacks (the seams).

This module extracts exactly that as a cell-level
:class:`~repro.verify.netlist.SwitchNetlist`: one device per leaf cell
occurrence, kind encoding the cell type *and* the masks landed on it,
pins labelled with the cell's port names, and nets formed by port
coincidence (ports sharing a grid point are one node — the same
convention as :mod:`repro.layout.connectivity`, with layers ignored
because the stylised seams mix them).  LVS against the generator's
``intended_netlist`` hook then checks placement and wiring;
:func:`multiplier_personality` reads the personality grid back for the
functional product check.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Set, Tuple

from ..core.cell import CellDefinition
from ..geometry import Transform
from .netlist import SwitchNetlist

__all__ = [
    "cell_graph_netlist",
    "multiplier_personality",
    "MULTIPLIER_HOSTS",
    "MULTIPLIER_MASKS",
]

#: cells that become devices in the multiplier's cell graph
MULTIPLIER_HOSTS = ("basiccell", "reg")
#: personalisation masks folded into their host's device kind
MULTIPLIER_MASKS = (
    "type1",
    "type2",
    "car1",
    "car2",
    "goboth",
    "goin",
    "goout",
    "sgoin",
    "sgoout",
    "phi1_1",
    "phi1_2",
    "phi1_3",
    "phi1_4",
    "phi2_1",
    "phi2_2",
    "phi2_3",
    "phi2_4",
)


class _Occurrence:
    """One placed host cell with its masks and world-space ports."""

    __slots__ = ("celltype", "prefix", "origin", "bbox", "masks", "ports")

    def __init__(self, celltype, prefix, origin, bbox):
        self.celltype = celltype
        self.prefix = prefix
        self.origin = origin
        self.bbox = bbox
        self.masks: List[str] = []
        #: (port name, world position)
        self.ports: List[Tuple[str, Tuple[int, int]]] = []


def _collect(
    cell: CellDefinition,
    hosts: Sequence[str],
    masks: Sequence[str],
) -> Tuple[List[_Occurrence], List[Tuple[str, Tuple[int, int]]]]:
    """Walk the placed hierarchy; return host occurrences and mask hits."""
    host_set, mask_set = set(hosts), set(masks)
    occurrences: List[_Occurrence] = []
    mask_hits: List[Tuple[str, Tuple[int, int]]] = []

    def walk(node: CellDefinition, transform: Transform, prefix: str) -> None:
        for index, instance in enumerate(node.instances):
            if not instance.is_placed:
                continue
            world = transform.compose(instance.transform)
            tag = instance.name or f"{instance.celltype}#{index}"
            if instance.celltype in host_set:
                bbox = instance.definition.bounding_box()
                occurrence = _Occurrence(
                    instance.celltype,
                    f"{prefix}{tag}",
                    (world.offset.x, world.offset.y),
                    world.apply_box(bbox) if bbox is not None else None,
                )
                for port in instance.definition.ports:
                    position = world.apply(port.position)
                    occurrence.ports.append((port.name, (position.x, position.y)))
                occurrences.append(occurrence)
            elif instance.celltype in mask_set:
                mask_hits.append(
                    (instance.celltype, (world.offset.x, world.offset.y))
                )
            walk(instance.definition, world, f"{prefix}{tag}/")

    walk(cell, Transform(), "")
    return occurrences, mask_hits


def _attach_masks(
    occurrences: List[_Occurrence],
    mask_hits: List[Tuple[str, Tuple[int, int]]],
) -> None:
    """Assign each mask to the host cell whose bbox contains it."""
    for mask, (x, y) in mask_hits:
        for occurrence in occurrences:
            bbox = occurrence.bbox
            if bbox is not None and bbox.xmin <= x < bbox.xmax and bbox.ymin <= y < bbox.ymax:
                occurrence.masks.append(mask)
                break


def _device_kind(occurrence: _Occurrence) -> str:
    """Fold the landed masks into a canonical device kind string.

    The phi clock masks collapse to their set name (``phi1``/``phi2``)
    — four corner contacts of one set always travel together.
    """
    masks: Set[str] = set()
    for mask in occurrence.masks:
        if mask.startswith("phi"):
            masks.add(mask.split("_", 1)[0])
        else:
            masks.add(mask)
    return "/".join([occurrence.celltype] + sorted(masks))


def cell_graph_netlist(
    cell: CellDefinition,
    hosts: Sequence[str] = MULTIPLIER_HOSTS,
    masks: Sequence[str] = MULTIPLIER_MASKS,
) -> SwitchNetlist:
    """Extract the cell-level netlist of a stylised layout.

    One device per placed host cell (kind = cell type plus its masks,
    pins = its ports), nets by exact port-position coincidence.
    """
    occurrences, mask_hits = _collect(cell, hosts, masks)
    _attach_masks(occurrences, mask_hits)
    netlist = SwitchNetlist()
    net_at: Dict[Tuple[int, int], int] = {}
    for occurrence in sorted(
        occurrences, key=lambda o: (o.origin[1], o.origin[0], o.celltype)
    ):
        pins = []
        for name, position in occurrence.ports:
            net = net_at.get(position)
            if net is None:
                net = netlist.add_net()
                net_at[position] = net
                netlist.net_positions[net] = position
            netlist.name_net(net, f"{occurrence.prefix}/{name}", position)
            pins.append((name, net))
        netlist.add_device(_device_kind(occurrence), pins)
    return netlist


def multiplier_personality(
    cell: CellDefinition,
) -> Tuple[int, int, List[List[str]], List[str]]:
    """Read the multiplier's personality grid back from the layout.

    Returns ``(xsize, ysize, array_grid, cpa_row)``: the carry-save
    grid of ``"I"``/``"II"`` cell types indexed ``[row][column]`` with
    row 0 the *top* array row, plus the carry-propagate row's types.
    Raises :class:`ValueError` when the placed cells do not form a full
    rectangular grid or a cell carries no (or conflicting) type masks.
    """
    occurrences, mask_hits = _collect(
        cell, ("basiccell",), ("type1", "type2")
    )
    _attach_masks(occurrences, mask_hits)
    if not occurrences:
        raise ValueError("no basiccell instances found")
    xs = sorted({occurrence.origin[0] for occurrence in occurrences})
    ys = sorted({occurrence.origin[1] for occurrence in occurrences})
    column_of = {x: index for index, x in enumerate(xs)}
    row_of = {y: index for index, y in enumerate(reversed(ys))}
    grid: List[List[Optional[str]]] = [
        [None] * len(xs) for _ in range(len(ys))
    ]
    for occurrence in occurrences:
        types = [m for m in occurrence.masks if m in ("type1", "type2")]
        if len(types) != 1:
            raise ValueError(
                f"cell at {occurrence.origin} carries {len(types)} type masks"
            )
        row = row_of[occurrence.origin[1]]
        column = column_of[occurrence.origin[0]]
        if grid[row][column] is not None:
            raise ValueError(f"two cells at grid position {(column, row)}")
        grid[row][column] = "II" if types[0] == "type2" else "I"
    if any(entry is None for row in grid for entry in row):
        raise ValueError("basiccell grid has holes")
    xsize = len(xs)
    ysize = len(ys) - 1  # the last row is the carry-propagate row
    if ysize < 1:
        raise ValueError("multiplier needs at least one carry-save row")
    return xsize, ysize, [list(row) for row in grid[:ysize]], list(grid[ysize])
