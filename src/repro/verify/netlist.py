"""Switch-level netlists: the common substrate of extraction and LVS.

A :class:`SwitchNetlist` is a flat electrical graph: numbered nets
carrying the names that ports, labels and rails attached to them, and
:class:`Device` records connecting nets through typed, role-labelled
pins.  Two device vocabularies share the structure:

* **transistor level** — kinds ``"enh"`` (enhancement NMOS) and
  ``"dep"`` (depletion load), pins ``("g", net)`` for the gate and two
  ``("ch", net)`` channel terminals (source/drain are interchangeable,
  so both carry the same role); depletion loads drop their gate pin
  entirely (the gate is tied to a terminal by convention and carries no
  information);
* **cell level** — kinds naming a personalised leaf cell (``"csI"``,
  ``"reg"``, ...), pins labelled with the cell's port roles.  The
  multiplier study verifies at this level because its sample layout is
  stylised above the transistor level (see ``docs/architecture.md``).

The simulator (:mod:`repro.verify.switchsim`) consumes the transistor
vocabulary; LVS (:mod:`repro.verify.lvs`) is vocabulary-agnostic — it
only compares kinds, roles and graph shape.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

__all__ = ["Device", "SwitchNetlist", "GLOBAL_SUFFIX"]

#: net names ending with this character are power-style globals: every
#: net carrying the same global name is one electrical node even when
#: the mask geometry leaves the rails physically disjoint.
GLOBAL_SUFFIX = "!"


class Device:
    """One netlist element: a kind plus role-labelled pins.

    ``pins`` is a tuple of ``(role, net)`` pairs.  Pins sharing a role
    are interchangeable (a transistor's two channel terminals both use
    role ``"ch"``); distinct roles are ordered connections.
    """

    __slots__ = ("kind", "pins")

    def __init__(self, kind: str, pins: Sequence[Tuple[str, int]]) -> None:
        self.kind = kind
        self.pins = tuple(pins)

    def nets(self) -> Tuple[int, ...]:
        """Every net this device touches, in pin order."""
        return tuple(net for _, net in self.pins)

    def pins_with_role(self, role: str) -> Tuple[int, ...]:
        """Nets attached through pins of the given role."""
        return tuple(net for r, net in self.pins if r == role)

    def __repr__(self) -> str:
        joined = ", ".join(f"{role}={net}" for role, net in self.pins)
        return f"Device({self.kind!r}, {joined})"


class SwitchNetlist:
    """A flat electrical graph of numbered nets and typed devices."""

    def __init__(self) -> None:
        #: net id -> sorted set of names attached to the net
        self.net_names: List[Set[str]] = []
        #: net id -> representative (x, y) position of a name attachment
        self.net_positions: Dict[int, Tuple[int, int]] = {}
        self.devices: List[Device] = []
        #: ordered primary input net ids (set by the extractor/builder)
        self.inputs: List[int] = []
        #: ordered primary output net ids
        self.outputs: List[int] = []
        #: nets forced high / low (power rails)
        self.vdd_nets: Set[int] = set()
        self.gnd_nets: Set[int] = set()

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    def add_net(self, *names: str) -> int:
        """Append a net (optionally named); returns its id."""
        self.net_names.append(set(names))
        return len(self.net_names) - 1

    def name_net(self, net: int, name: str, position: Optional[Tuple[int, int]] = None) -> None:
        """Attach a name (and optionally a position) to a net."""
        self.net_names[net].add(name)
        if position is not None and net not in self.net_positions:
            self.net_positions[net] = position

    def add_device(self, kind: str, pins: Sequence[Tuple[str, int]]) -> Device:
        """Append a device; returns it."""
        device = Device(kind, pins)
        self.devices.append(device)
        return device

    def add_transistor(self, gate: Optional[int], a: int, b: int, depletion: bool = False) -> Device:
        """Append a transistor; depletion loads drop the gate pin."""
        if depletion:
            return self.add_device("dep", [("ch", a), ("ch", b)])
        if gate is None:
            raise ValueError("enhancement device needs a gate net")
        return self.add_device("enh", [("g", gate), ("ch", a), ("ch", b)])

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    @property
    def num_nets(self) -> int:
        return len(self.net_names)

    def names_of(self, net: int) -> Tuple[str, ...]:
        """Sorted names attached to a net."""
        return tuple(sorted(self.net_names[net]))

    def find_net(self, name: str) -> Optional[int]:
        """First net carrying ``name`` exactly, or None."""
        for net, names in enumerate(self.net_names):
            if name in names:
                return net
        return None

    def nets_with_suffix(self, suffix: str) -> List[int]:
        """Nets with a name whose last path component equals ``suffix``.

        Hierarchical names look like ``inst#3/sub/out``; the query
        matches on the component after the final ``/``.  Results are
        ordered by the net's recorded position (x, then y, then id) so
        callers get a stable left-to-right pin order.
        """
        hits = []
        for net, names in enumerate(self.net_names):
            if any(name.rsplit("/", 1)[-1] == suffix for name in names):
                hits.append(net)
        return sorted(
            hits, key=lambda n: (self.net_positions.get(n, (0, 0)), n)
        )

    def device_count(self, kind: Optional[str] = None) -> int:
        """Number of devices (of one kind, when given)."""
        if kind is None:
            return len(self.devices)
        return sum(1 for device in self.devices if device.kind == kind)

    # ------------------------------------------------------------------
    # Global-name merging
    # ------------------------------------------------------------------
    def merge_global_names(self) -> "SwitchNetlist":
        """Union nets that share a power-style global name (in place).

        A name whose final path component ends with :data:`GLOBAL_SUFFIX`
        (``vdd!``, ``gnd!``) is global: every net carrying it collapses
        into one.  Returns ``self`` for chaining.
        """
        groups: Dict[str, List[int]] = {}
        for net, names in enumerate(self.net_names):
            for name in names:
                leaf = name.rsplit("/", 1)[-1].lower()
                if leaf.endswith(GLOBAL_SUFFIX):
                    groups.setdefault(leaf, []).append(net)
        parent = list(range(self.num_nets))

        def find(a: int) -> int:
            while parent[a] != a:
                parent[a] = parent[parent[a]]
                a = parent[a]
            return a

        for nets in groups.values():
            for other in nets[1:]:
                parent[find(other)] = find(nets[0])
        if all(parent[i] == i for i in range(self.num_nets)):
            return self
        self.remap({net: find(net) for net in range(self.num_nets)})
        return self

    def remap(self, mapping: Dict[int, int]) -> None:
        """Apply a net-id mapping (ids may collapse), compacting ids."""
        dense: Dict[int, int] = {}
        for old in range(self.num_nets):
            target = mapping.get(old, old)
            if target not in dense:
                dense[target] = len(dense)
        translate = {
            old: dense[mapping.get(old, old)] for old in range(self.num_nets)
        }
        names: List[Set[str]] = [set() for _ in range(len(dense))]
        positions: Dict[int, Tuple[int, int]] = {}
        for old, new in translate.items():
            names[new] |= self.net_names[old]
            if old in self.net_positions and new not in positions:
                positions[new] = self.net_positions[old]
        self.net_names = names
        self.net_positions = positions
        self.devices = [
            Device(d.kind, [(role, translate[net]) for role, net in d.pins])
            for d in self.devices
        ]
        self.inputs = _stable_unique(translate[n] for n in self.inputs)
        self.outputs = _stable_unique(translate[n] for n in self.outputs)
        self.vdd_nets = {translate[n] for n in self.vdd_nets}
        self.gnd_nets = {translate[n] for n in self.gnd_nets}

    def prune_floating(self) -> "SwitchNetlist":
        """Drop unnamed nets that touch no device.

        Extraction leaves behind electrically meaningless conductors —
        a depletion load's floating gate stub, marker-adjacent scraps —
        that a golden netlist never contains; pruning them makes the
        two comparable.  Named nets survive even without devices (a
        port on a plain wire is still an observation point).  Returns
        ``self`` for chaining.
        """
        used: Set[int] = set(self.inputs) | set(self.outputs)
        used.update(
            net for net, names in enumerate(self.net_names) if names
        )
        for device in self.devices:
            used.update(device.nets())
        if len(used) == self.num_nets:
            return self
        translate: Dict[int, int] = {}
        for net in range(self.num_nets):
            if net in used:
                translate[net] = len(translate)
        self.net_names = [
            names
            for net, names in enumerate(self.net_names)
            if net in translate
        ]
        self.net_positions = {
            translate[net]: position
            for net, position in self.net_positions.items()
            if net in translate
        }
        self.devices = [
            Device(d.kind, [(role, translate[net]) for role, net in d.pins])
            for d in self.devices
        ]
        self.inputs = [translate[n] for n in self.inputs]
        self.outputs = [translate[n] for n in self.outputs]
        self.vdd_nets = {translate[n] for n in self.vdd_nets if n in translate}
        self.gnd_nets = {translate[n] for n in self.gnd_nets if n in translate}
        return self

    def classify_rails(self) -> None:
        """Fill ``vdd_nets``/``gnd_nets`` from attached rail names."""
        for net, names in enumerate(self.net_names):
            for name in names:
                leaf = name.rsplit("/", 1)[-1].lower().rstrip(GLOBAL_SUFFIX)
                if leaf == "vdd":
                    self.vdd_nets.add(net)
                elif leaf == "gnd":
                    self.gnd_nets.add(net)

    def __repr__(self) -> str:
        return (
            f"SwitchNetlist(nets={self.num_nets},"
            f" devices={len(self.devices)})"
        )


def _stable_unique(items: Iterable[int]) -> List[int]:
    seen: Set[int] = set()
    result: List[int] = []
    for item in items:
        if item not in seen:
            seen.add(item)
            result.append(item)
    return result
