"""Silicon verification: extraction, switch-level simulation, LVS.

The subsystem closes the loop the paper closed with EXCL and SPICE:
from generated mask geometry back to logical function.

* :mod:`repro.verify.netlist` — the switch-level netlist substrate;
* :mod:`repro.verify.extract` — sweep-kernel device/node extraction;
* :mod:`repro.verify.switchsim` — event-driven 0/1/X simulation;
* :mod:`repro.verify.lvs` — canonical-form netlist comparison;
* :mod:`repro.verify.hier` — extract-once/stamp-many hierarchical
  extraction with content-fingerprint caching;
* :mod:`repro.verify.driver` — the high-level ``verify_*`` entry
  points the CLI and the examples call.
"""

from .cellgraph import cell_graph_netlist, multiplier_personality
from .driver import (
    VerificationReport,
    verify_cell,
    verify_multiplier,
    verify_pla,
)
from .extract import ExtractionError, extract_layers, extract_netlist
from .hier import TileExtraction, extract_netlist_hier
from .lvs import LvsReport, compare_netlists
from .netlist import Device, SwitchNetlist
from .switchsim import SimulationError, X, exhaustive_vectors, sample_vectors, simulate

__all__ = [
    "Device",
    "SwitchNetlist",
    "ExtractionError",
    "extract_layers",
    "extract_netlist",
    "TileExtraction",
    "extract_netlist_hier",
    "cell_graph_netlist",
    "multiplier_personality",
    "LvsReport",
    "compare_netlists",
    "SimulationError",
    "X",
    "simulate",
    "exhaustive_vectors",
    "sample_vectors",
    "VerificationReport",
    "verify_cell",
    "verify_multiplier",
    "verify_pla",
]
