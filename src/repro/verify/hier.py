"""Extract-once/stamp-many hierarchical verification.

Mirrors the compaction pipeline's economy (PR 4): a generated array is
a handful of *distinct* leaf-cell combinations stamped hundreds of
times, so the expensive mask-level extraction should run once per
distinct content, not once per instance.  The pipeline:

1. **fragment collection** — walk the placed hierarchy; every
   definition contributes its own boxes (and ports) under its world
   transform;
2. **tile clustering** — fragments whose bounding boxes positively
   overlap union into a *tile* (a personalisation mask and its host
   square are one electrical unit; abutting squares are separate
   tiles, because abutment-only contact is resolved by stitching);
3. **extract once** — each distinct tile content (fingerprinted with
   the compaction cache's
   :func:`~repro.compact.cache.fingerprint_cell` discipline, plus the
   rule fingerprint) is extracted flat exactly once; the result — a
   local netlist, port attachment points, and the conductor runs
   touching the tile frame — is reused for every instance and can be
   memoized across runs in a :class:`~repro.compact.cache.CompactionCache`;
4. **stamp + stitch** — every tile instance stamps fresh net ids and
   translated boundary runs; a sweep over the boundary runs unions
   nets that share an edge of positive length across tiles, exactly
   the flat extractor's same-layer contact rule.

The result is LVS-identical to :func:`repro.verify.extract.extract_netlist`
on the same cell (asserted by the equivalence tests); the one modelled
restriction is that a transistor channel may not straddle a tile
boundary — the stitch detects and rejects that geometry rather than
mis-extracting it.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from ..compact.cache import CompactionCache, cache_key, fingerprint_cell, fingerprint_rules
from ..compact.rules import TECH_A, DesignRules
from ..core.cell import CellDefinition, Port
from ..geometry import Box, Transform, Vec2
from .extract import ExtractionError, extract_netlist
from .netlist import SwitchNetlist

__all__ = ["TileExtraction", "extract_netlist_hier"]


class _Fragment:
    """One definition's own geometry placed in the world."""

    __slots__ = ("definition", "transform", "prefix", "bbox")

    def __init__(self, definition: CellDefinition, transform: Transform, prefix: str) -> None:
        self.definition = definition
        self.transform = transform
        self.prefix = prefix
        bbox: Optional[Box] = None
        for layer_box in definition.boxes:
            box = transform.apply_box(layer_box.box)
            bbox = box if bbox is None else bbox.union(box)
        for port in definition.ports:
            position = transform.apply(port.position)
            point = Box(position.x, position.y, position.x, position.y)
            bbox = point if bbox is None else bbox.union(point)
        self.bbox = bbox


def _collect_fragments(cell: CellDefinition) -> List[_Fragment]:
    """Every definition with own geometry, with its world transform."""
    fragments: List[_Fragment] = []

    def walk(node: CellDefinition, transform: Transform, prefix: str) -> None:
        if node.boxes or node.ports:
            fragments.append(_Fragment(node, transform, prefix))
        for index, instance in enumerate(node.instances):
            if not instance.is_placed:
                continue
            tag = instance.name or f"{instance.celltype}#{index}"
            walk(
                instance.definition,
                transform.compose(instance.transform),
                f"{prefix}{tag}/",
            )

    walk(cell, Transform(), "")
    return fragments


def _cluster(
    fragments: List[_Fragment], margins: Optional[List[int]] = None
) -> List[List[int]]:
    """Group fragment indices whose (margin-grown) bboxes overlap.

    ``margins`` grows a fragment's bbox before the overlap test —
    non-zero for fragments whose derived layers expand past their
    drawn extent, zero otherwise so plain abutment never merges.
    """
    boxes: List[Optional[Box]] = [
        None
        if f.bbox is None
        else (f.bbox.grown(margins[i]) if margins and margins[i] else f.bbox)
        for i, f in enumerate(fragments)
    ]
    order = sorted(
        (i for i in range(len(fragments)) if boxes[i] is not None),
        key=lambda i: (boxes[i].xmin, boxes[i].ymin),
    )
    parent = list(range(len(fragments)))

    def find(a: int) -> int:
        while parent[a] != a:
            parent[a] = parent[parent[a]]
            a = parent[a]
        return a

    active: List[int] = []
    for index in order:
        box = boxes[index]
        active = [j for j in active if boxes[j].xmax > box.xmin]
        for j in active:
            if box.overlaps_open(boxes[j]):
                ra, rb = find(index), find(j)
                if ra != rb:
                    parent[rb] = ra
        active.append(index)
    groups: Dict[int, List[int]] = {}
    for index in order:
        groups.setdefault(find(index), []).append(index)
    return [sorted(group) for group in groups.values()]


class TileExtraction:
    """The reusable extraction of one distinct tile content.

    ``netlist`` is the tile-local, unfinalised netlist; ``port_nets``
    maps the k-th tile port (member order, then port order) to its
    local net (or None when the port missed all conductors); ``runs``
    lists every conductor run as ``(layer, box, local net)`` in
    tile-local coordinates — channels as ``("channel", box, -1)`` —
    with ``boundary`` the subset touching the tile frame; ``bbox`` is
    the *physical* extent (derived layers expanded), which is what the
    frame is measured against.
    """

    __slots__ = ("netlist", "port_nets", "runs", "boundary", "bbox")

    def __init__(
        self,
        netlist: SwitchNetlist,
        port_nets: List[Optional[int]],
        runs: List[Tuple[str, Box, int]],
        boundary: List[Tuple[str, Box, int]],
        bbox: Optional[Box],
    ) -> None:
        self.netlist = netlist
        self.port_nets = port_nets
        self.runs = runs
        self.boundary = boundary
        self.bbox = bbox


def _tile_ports(
    fragments: List[_Fragment], members: Sequence[int], origin: Vec2
) -> List[Tuple[str, str, Vec2]]:
    """(full name, layer, tile-local position) of every member port."""
    ports: List[Tuple[str, str, Vec2]] = []
    for member in members:
        fragment = fragments[member]
        for port in fragment.definition.ports:
            position = fragment.transform.apply(port.position) - origin
            ports.append((fragment.prefix + port.name, port.layer, position))
    return ports


def _extract_tile(
    fragments: List[_Fragment], members: Sequence[int], origin: Vec2, rules: DesignRules
) -> TileExtraction:
    """Flat-extract one tile's content in tile-local coordinates."""
    from ..compact.layers import expand_layout

    layers: Dict[str, List[Box]] = {}
    for member in members:
        fragment = fragments[member]
        offset = Vec2(-origin.x, -origin.y)
        for layer_box in fragment.definition.boxes:
            box = fragment.transform.apply_box(layer_box.box).translated(offset)
            layers.setdefault(layer_box.layer, []).append(box)
    physical = expand_layout(layers, rules)
    # The frame must be measured against the *expanded* extent: derived
    # gate/contact geometry reaches past the drawn boxes, and a run on
    # that overhang still participates in cross-tile stitching.
    bbox: Optional[Box] = None
    for boxes in physical.values():
        for box in boxes:
            bbox = box if bbox is None else bbox.union(box)
    synthetic = [
        Port(f"p{index}", position, layer)
        for index, (_, layer, position) in enumerate(
            _tile_ports(fragments, members, origin)
        )
    ]
    geometry: List[Tuple[str, Box, int]] = []
    netlist = extract_netlist(
        None, rules, layers=physical, ports=synthetic,
        geometry=geometry, finalise=False,
    )
    port_nets: List[Optional[int]] = [
        netlist.find_net(f"p{index}") for index in range(len(synthetic))
    ]
    # Synthetic names served their purpose; drop them so stamping can
    # attach the real hierarchical names cleanly.
    for names in netlist.net_names:
        names.difference_update({f"p{i}" for i in range(len(synthetic))})
    netlist.net_positions.clear()
    boundary = [
        (layer, box, net)
        for layer, box, net in geometry
        if bbox is not None
        and (
            box.xmin == bbox.xmin
            or box.xmax == bbox.xmax
            or box.ymin == bbox.ymin
            or box.ymax == bbox.ymax
        )
    ]
    return TileExtraction(netlist, port_nets, geometry, boundary, bbox)


def _tuple_runs_touch(a: Tuple[int, int, int, int], b: Tuple[int, int, int, int]) -> bool:
    """Edge contact of positive length (the flat extractor's rule)."""
    x_overlap = min(a[2], b[2]) - max(a[0], b[0])
    y_overlap = min(a[3], b[3]) - max(a[1], b[1])
    return (x_overlap > 0 and y_overlap >= 0) or (x_overlap >= 0 and y_overlap > 0)


def extract_netlist_hier(
    cell: CellDefinition,
    rules: Optional[DesignRules] = None,
    cache: Optional[CompactionCache] = None,
) -> SwitchNetlist:
    """Hierarchically extract ``cell``: one extraction per distinct tile.

    LVS-equivalent to the flat extractor on every supported layout; a
    :class:`~repro.compact.cache.CompactionCache` makes re-verification
    of unchanged designs near-free, in memory and (with a cache
    directory) across runs.
    """
    rules = rules or TECH_A
    rules_key = fingerprint_rules(rules)
    all_fragments = _collect_fragments(cell)
    fragments = [f for f in all_fragments if f.definition.boxes]
    # Ports of box-less definitions (annotations on a composite root)
    # have no tile of their own; they attach to whatever conductor run
    # they land on after stamping.
    orphan_ports: List[Tuple[str, str, Vec2]] = [
        (fragment.prefix + port.name, port.layer, fragment.transform.apply(port.position))
        for fragment in all_fragments
        if not fragment.definition.boxes
        for port in fragment.definition.ports
    ]
    # Derived layers expand past their drawn boxes (gate grows diff and
    # widens poly, contact centres a cut grid that can overhang), so a
    # fragment carrying them must cluster with anything its *expanded*
    # geometry could reach — grow its bbox by the worst-case margin.
    # Plain fragments keep their exact bbox, so abutting tiles stay
    # separate and the tiling (and its economy) is unchanged.
    derived_margin = max(
        rules.gate_width or rules.width("poly"),
        rules.contact.cut_size,
        1,
    )
    margins = [
        derived_margin
        if any(b.layer in ("gate", "contact") for b in f.definition.boxes)
        else 0
        for f in fragments
    ]
    clusters = _cluster(fragments, margins)

    definition_fp: Dict[int, str] = {}

    def fingerprint(definition: CellDefinition) -> str:
        known = definition_fp.get(id(definition))
        if known is None:
            shallow = CellDefinition(definition.name)
            shallow.boxes = definition.boxes
            shallow.ports = definition.ports
            known = fingerprint_cell(shallow)
            definition_fp[id(definition)] = known
        return known

    tiles: Dict[str, TileExtraction] = {}
    result = SwitchNetlist()
    stamped_boundary: List[Tuple[str, Box, int, int]] = []
    channel_boundary: List[Tuple[Box, int]] = []
    #: (world bbox, origin, net base, tile) per stamped instance
    stamped: List[Tuple[Optional[Box], Vec2, int, TileExtraction]] = []

    for tile_index, members in enumerate(clusters):
        origin_x = min(fragments[m].bbox.xmin for m in members)
        origin_y = min(fragments[m].bbox.ymin for m in members)
        origin = Vec2(origin_x, origin_y)
        key = cache_key(
            "verify-tile-v2",
            rules_key,
            tuple(
                (
                    fingerprint(fragments[m].definition),
                    fragments[m].transform.orientation.r,
                    fragments[m].transform.orientation.k,
                    fragments[m].transform.offset.x - origin_x,
                    fragments[m].transform.offset.y - origin_y,
                )
                for m in members
            ),
        )
        tile = tiles.get(key)
        if tile is None and cache is not None:
            tile = cache.get(key)
            if tile is not None:
                tiles[key] = tile
        if tile is None:
            tile = _extract_tile(fragments, members, origin, rules)
            tiles[key] = tile
            if cache is not None:
                cache.put(key, tile)

        base = result.num_nets
        for names in tile.netlist.net_names:
            net = result.add_net()
            result.net_names[net].update(names)
        for device in tile.netlist.devices:
            result.add_device(
                device.kind, [(role, base + net) for role, net in device.pins]
            )
        for (name, _, position), local in zip(
            _tile_ports(fragments, members, origin), tile.port_nets
        ):
            if local is not None:
                world = (position.x + origin.x, position.y + origin.y)
                result.name_net(base + local, name, world)
        offset = Vec2(origin.x, origin.y)
        dx, dy = origin.x, origin.y
        for layer, box, net in tile.boundary:
            coords = (box.xmin + dx, box.ymin + dy, box.xmax + dx, box.ymax + dy)
            if layer == "channel":
                channel_boundary.append((coords, tile_index))
            else:
                stamped_boundary.append((layer, coords, base + net, tile_index))
        world_bbox = (
            tile.bbox.translated(offset) if tile.bbox is not None else None
        )
        stamped.append((world_bbox, offset, base, tile))

    # Tiles whose physical extents overlap (an L-shaped cluster with a
    # neighbour in its notch) can touch at edges *interior* to a frame;
    # feed their complete run sets into the stitch so no contact is
    # missed.  Disjoint grids — every generated array — pay nothing.
    overlapping = set()
    by_x = sorted(
        (i for i in range(len(stamped)) if stamped[i][0] is not None),
        key=lambda i: stamped[i][0].xmin,
    )
    live: List[int] = []
    for index in by_x:
        box = stamped[index][0]
        live = [j for j in live if stamped[j][0].xmax > box.xmin]
        for j in live:
            if box.overlaps_open(stamped[j][0]):
                overlapping.add(index)
                overlapping.add(j)
        live.append(index)
    for tile_index in sorted(overlapping):
        _, offset, base, tile = stamped[tile_index]
        boundary_set = set(tile.boundary)
        dx, dy = offset.x, offset.y
        for item in tile.runs:
            if item in boundary_set:
                continue
            layer, box, net = item
            coords = (box.xmin + dx, box.ymin + dy, box.xmax + dx, box.ymax + dy)
            if layer == "channel":
                channel_boundary.append((coords, tile_index))
            else:
                stamped_boundary.append((layer, coords, base + net, tile_index))

    # Orphan ports attach through the tile containing them — interior
    # conductors included, exactly as the flat extractor would.
    for name, layer, position in orphan_ports:
        attached = False
        for world_bbox, offset, base, tile in stamped:
            if world_bbox is None or not (
                world_bbox.xmin <= position.x <= world_bbox.xmax
                and world_bbox.ymin <= position.y <= world_bbox.ymax
            ):
                continue
            local_x, local_y = position.x - offset.x, position.y - offset.y
            for run_layer, box, net in tile.runs:
                if run_layer == "channel" or (layer and run_layer != layer):
                    continue
                if (
                    box.xmin <= local_x <= box.xmax
                    and box.ymin <= local_y <= box.ymax
                ):
                    result.name_net(base + net, name, (position.x, position.y))
                    attached = True
                    break
            if attached:
                break

    _stitch(result, stamped_boundary, channel_boundary)
    result.merge_global_names()
    result.classify_rails()
    result.prune_floating()
    return result


def _stitch(
    result: SwitchNetlist,
    boundary: List[Tuple[str, Tuple[int, int, int, int], int, int]],
    channels: List[Tuple[Tuple[int, int, int, int], int]],
) -> None:
    """Union nets whose boundary runs meet edge-on across tiles.

    Tiles are pairwise disjoint, so cross-tile electrical contact is
    always *edge* contact: two runs sharing an edge coordinate with
    positive overlap along it.  Runs are bucketed by ``(layer, edge
    coordinate)`` per side and opposite sides merge-scanned as sorted
    interval lists — ``O(n log n)`` against the quadratic plane sweep
    this replaces (same-tile contacts were already unioned during tile
    extraction, so skipping them loses nothing).
    """
    parent = list(range(result.num_nets))

    def find(a: int) -> int:
        while parent[a] != a:
            parent[a] = parent[parent[a]]
            a = parent[a]
        return a

    tops: Dict[Tuple[str, int], List[Tuple[int, int, int]]] = {}
    bottoms: Dict[Tuple[str, int], List[Tuple[int, int, int]]] = {}
    rights: Dict[Tuple[str, int], List[Tuple[int, int, int]]] = {}
    lefts: Dict[Tuple[str, int], List[Tuple[int, int, int]]] = {}
    for layer, (x0, y0, x1, y1), net, _ in boundary:
        tops.setdefault((layer, y1), []).append((x0, x1, net))
        bottoms.setdefault((layer, y0), []).append((x0, x1, net))
        rights.setdefault((layer, x1), []).append((y0, y1, net))
        lefts.setdefault((layer, x0), []).append((y0, y1, net))

    def scan(a_side: Dict, b_side: Dict) -> None:
        for key, a_runs in a_side.items():
            b_runs = b_side.get(key)
            if not b_runs:
                continue
            a_runs.sort()
            b_runs.sort()
            j = 0
            for lo, hi, net in a_runs:
                while j and b_runs[j - 1][1] > lo:
                    j -= 1
                k = j
                while k < len(b_runs) and b_runs[k][0] < hi:
                    if min(hi, b_runs[k][1]) > max(lo, b_runs[k][0]):
                        ra, rb = find(net), find(b_runs[k][2])
                        if ra != rb:
                            parent[rb] = ra
                    k += 1
                while j < len(b_runs) and b_runs[j][1] <= lo:
                    j += 1

    scan(tops, bottoms)
    scan(rights, lefts)
    # Channel straddle check: a channel touching *another tile's*
    # diffusion or channel across the frame would extract differently
    # flat; refuse rather than silently diverge.  Edge-bucketed like
    # the stitch itself: only runs sharing an edge coordinate with the
    # channel are candidates.
    diff_edges: Dict[Tuple[str, int], List[Tuple[int, int, int]]] = {}
    for layer, (x0, y0, x1, y1), _, tile in boundary:
        if layer != "diff":
            continue
        for edge in (y0, y1):
            diff_edges.setdefault(("y", edge), []).append((x0, x1, tile))
        for edge in (x0, x1):
            diff_edges.setdefault(("x", edge), []).append((y0, y1, tile))
    for channel, tile in channels:
        cx0, cy0, cx1, cy1 = channel
        for side_key, edges, along in (
            ("y", (cy0, cy1), (cx0, cx1)),
            ("x", (cx0, cx1), (cy0, cy1)),
        ):
            for edge in edges:
                for lo, hi, other_tile in diff_edges.get((side_key, edge), ()):
                    if other_tile != tile and min(hi, along[1]) > max(lo, along[0]):
                        raise ExtractionError(
                            "transistor channel straddles a tile boundary;"
                            " hierarchical extraction cannot stitch devices"
                        )
        for other, other_tile in channels:
            if other_tile != tile and _tuple_runs_touch(channel, other):
                raise ExtractionError(
                    "transistor channel straddles a tile boundary;"
                    " hierarchical extraction cannot stitch devices"
                )
    result.remap({net: find(net) for net in range(result.num_nets)})
