"""Layout-versus-schematic: canonical-form netlist comparison.

Compares two :class:`~repro.verify.netlist.SwitchNetlist` graphs by
iterated neighbourhood refinement (the classic LVS canonicalization, a
Weisfeiler-Leman colouring over the bipartite net/device graph):

1. seed net colours from their electrical role — VDD, GND, the k-th
   primary input, the k-th primary output, ordinary internal net —
   and device colours from their kind;
2. repeatedly rehash every device over ``(kind, sorted multiset of
   (pin role, neighbour colour))`` and every net over its sorted
   multiset of ``(device colour, pin role)`` incidences, until the
   partition stops refining;
3. the netlists match when the final colour multisets (nets and
   devices) coincide.

Colours are rolled through a content hash so they stay fixed-size and
are comparable *between* netlists.  Pins sharing a role are compared
as multisets, so a transistor's interchangeable source/drain never
produce a spurious mismatch, while gate-versus-channel swaps always
do.  Refinement cannot distinguish certain pathological automorphic
graphs, but any local edit — a device added, dropped, retyped or
rewired — changes a colour and is caught; :class:`LvsReport` explains
mismatches as class-population differences.
"""

from __future__ import annotations

import hashlib
from collections import Counter
from typing import List, Tuple

from .netlist import SwitchNetlist

__all__ = ["LvsReport", "compare_netlists"]


class LvsReport:
    """Outcome of one LVS comparison."""

    def __init__(self) -> None:
        self.matched = False
        #: human-readable mismatch descriptions (empty when matched)
        self.mismatches: List[str] = []
        self.net_counts: Tuple[int, int] = (0, 0)
        self.device_counts: Tuple[int, int] = (0, 0)
        self.rounds = 0

    def summary(self) -> str:
        """One printable line of the comparison outcome."""
        verdict = "match" if self.matched else "MISMATCH"
        detail = (
            f"{self.net_counts[0]}/{self.net_counts[1]} nets,"
            f" {self.device_counts[0]}/{self.device_counts[1]} devices,"
            f" {self.rounds} refinement rounds"
        )
        if self.mismatches:
            detail += "; " + "; ".join(self.mismatches[:3])
        return f"LVS {verdict} ({detail})"

    def to_dict(self) -> dict:
        """JSON-ready form (the service stores this per job artifact)."""
        return {
            "matched": self.matched,
            "mismatches": list(self.mismatches),
            "net_counts": list(self.net_counts),
            "device_counts": list(self.device_counts),
            "rounds": self.rounds,
            "summary": self.summary(),
        }

    def __repr__(self) -> str:
        return f"LvsReport(matched={self.matched})"


def _digest(value: object) -> str:
    """Stable fixed-size colour from any repr-able value."""
    return hashlib.sha256(repr(value).encode("utf-8")).hexdigest()[:16]


def _refine(netlist: SwitchNetlist) -> Tuple[Counter, Counter, int]:
    """Stable (net-colour multiset, device-colour multiset, rounds)."""
    input_rank = {net: k for k, net in enumerate(netlist.inputs)}
    output_rank = {net: k for k, net in enumerate(netlist.outputs)}
    net_colour = [
        _digest(
            (
                "seed",
                net in netlist.vdd_nets,
                net in netlist.gnd_nets,
                input_rank.get(net, -1),
                output_rank.get(net, -1),
            )
        )
        for net in range(netlist.num_nets)
    ]
    device_colour = [_digest(("seed", d.kind)) for d in netlist.devices]
    incident: List[List[Tuple[int, str]]] = [[] for _ in range(netlist.num_nets)]
    for index, device in enumerate(netlist.devices):
        for role, net in device.pins:
            incident[net].append((index, role))

    classes = len(set(net_colour)) + len(set(device_colour))
    rounds = 0
    limit = netlist.num_nets + len(netlist.devices) + 2
    while rounds < limit:
        rounds += 1
        device_colour = [
            _digest(
                (
                    device.kind,
                    tuple(sorted((role, net_colour[net]) for role, net in device.pins)),
                )
            )
            for device in netlist.devices
        ]
        net_colour = [
            _digest(
                (
                    net_colour[net],
                    tuple(sorted((device_colour[i], role) for i, role in incident[net])),
                )
            )
            for net in range(netlist.num_nets)
        ]
        refined = len(set(net_colour)) + len(set(device_colour))
        if refined == classes:
            break
        classes = refined
    return Counter(net_colour), Counter(device_colour), rounds


def compare_netlists(
    extracted: SwitchNetlist, golden: SwitchNetlist
) -> LvsReport:
    """Compare two netlists up to canonical form; returns a report.

    Primary inputs/outputs are matched by *order* (the k-th input of
    one side pairs with the k-th of the other), rails by role; internal
    nets need no correspondence — refinement finds it or proves there
    is none.
    """
    report = LvsReport()
    report.net_counts = (extracted.num_nets, golden.num_nets)
    report.device_counts = (len(extracted.devices), len(golden.devices))
    if len(extracted.inputs) != len(golden.inputs):
        report.mismatches.append(
            f"input count {len(extracted.inputs)} != {len(golden.inputs)}"
        )
    if len(extracted.outputs) != len(golden.outputs):
        report.mismatches.append(
            f"output count {len(extracted.outputs)} != {len(golden.outputs)}"
        )
    kinds_a = Counter(device.kind for device in extracted.devices)
    kinds_b = Counter(device.kind for device in golden.devices)
    if kinds_a != kinds_b:
        for kind in sorted(set(kinds_a) | set(kinds_b)):
            if kinds_a.get(kind, 0) != kinds_b.get(kind, 0):
                report.mismatches.append(
                    f"{kind} count {kinds_a.get(kind, 0)} != {kinds_b.get(kind, 0)}"
                )
    if report.mismatches:
        return report

    nets_a, devices_a, rounds_a = _refine(extracted)
    nets_b, devices_b, rounds_b = _refine(golden)
    report.rounds = max(rounds_a, rounds_b)
    if devices_a != devices_b:
        difference = (devices_a - devices_b) + (devices_b - devices_a)
        report.mismatches.append(
            f"{sum(difference.values())} device(s) in unmatched"
            " neighbourhood classes"
        )
    if nets_a != nets_b:
        difference = (nets_a - nets_b) + (nets_b - nets_a)
        report.mismatches.append(
            f"{sum(difference.values())} net(s) in unmatched"
            " neighbourhood classes"
        )
    report.matched = not report.mismatches
    return report
