# Convenience targets; everything also runs as plain pytest commands
# (see README.md).  PYTHONPATH=src keeps the targets usable without an
# editable install.

PY := PYTHONPATH=src python

.PHONY: test chaos bench bench-smoke docs-check all

test:
	$(PY) -m pytest tests/ -q

# The fault-injection suite by itself: seeded FaultPlans (crashes at
# commit boundaries, torn artifact writes, injected ENOSPC/EIO,
# SIGKILLed workers, dropped HTTP responses) swept through the live
# service, with the invariant checker asserting no wedged jobs, no
# torn artifact served, dedup preserved, and every failure classified
# (docs/architecture.md section 11).  Included in `make test` too;
# this target is the fast loop while working on robustness code.
chaos:
	$(PY) -m pytest tests/test_service_chaos.py -q

# The glob matters: bench_*.py does not match pytest's default
# test_*.py collection pattern, so naming the files explicitly is what
# makes them collect (a bare `pytest benchmarks/` silently runs none).
# Benchmarks that call the `record` fixture also write their timing
# rows to BENCH_compaction.json at the repo root on session finish —
# the machine-readable perf trajectory (docs/architecture.md).
bench:
	$(PY) -m pytest benchmarks/bench_*.py -q

# One pass over every benchmark at its smallest size: the benchmark
# fixture runs each workload once without timing loops, and the
# REPRO_BENCH_SMOKE knob trims size-parameterised benchmarks (routing,
# connectivity) to their smallest case.  The scaling guards still run
# here: the sweep-kernel guards (bench_scanline, bench_sweep — doubling
# the box count must stay sub-quadratic), the hierarchy-pipeline
# flatten guard (bench_hierarchy — doubling the instance count must
# grow flatten time < 3x), and the verification guard (bench_verify —
# doubling the stamped instances must grow hierarchical extraction
# < 3x), so a regression to the O(n^2) rescans or to
# instance-proportional work fails CI.  The bench_hierarchy
# parallel case asserts jobs=2 output is identical to serial at every
# size; bench_verify asserts hier extraction is LVS-identical to flat;
# bench_batch asserts every numpy batch pass (scanline_vec, drc_vec,
# merge_vec, extract_vec, verify_extract_vec) matches its interpreted
# oracle output exactly (the >= 3x speedup guards run at full sizes
# via `make bench`).
# BENCH_compaction.json is written here too (at the smoke
# sizes) so CI can upload the trajectory per run.
bench-smoke:
	REPRO_BENCH_SMOKE=1 $(PY) -m pytest benchmarks/bench_*.py -q --benchmark-disable

# Fails when public modules in src/repro/compact/, src/repro/route/ or
# src/repro/verify/ lack docstrings — the documentation surface the
# architecture notes depend on.
docs-check:
	$(PY) -m pytest tests/test_docstrings.py -q

all: test bench docs-check
