# Convenience targets; everything also runs as plain pytest commands
# (see README.md).  PYTHONPATH=src keeps the targets usable without an
# editable install.

PY := PYTHONPATH=src python

.PHONY: test bench docs-check all

test:
	$(PY) -m pytest tests/ -q

bench:
	$(PY) -m pytest benchmarks/ -q

# Fails when public modules in src/repro/compact/ lack docstrings —
# the documentation surface the architecture notes depend on.
docs-check:
	$(PY) -m pytest tests/test_docstrings.py -q

all: test bench docs-check
