"""Tests for the layout database: flattening, merging, statistics."""

from hypothesis import given, settings, strategies as st

from repro.core import CellDefinition
from repro.geometry import Box, NORTH, SOUTH, Vec2
from repro.layout import FlatLayout, flatten_cell, merge_boxes
from repro.layout.database import FlatLayout as FL


small = st.integers(min_value=0, max_value=30)
boxes_strategy = st.lists(
    st.builds(lambda x, y, w, h: Box(x, y, x + w + 1, y + h + 1), small, small,
              st.integers(0, 10), st.integers(0, 10)),
    min_size=0,
    max_size=12,
)


def covered_cells(boxes):
    cells = set()
    for box in boxes:
        for x in range(box.xmin, box.xmax):
            for y in range(box.ymin, box.ymax):
                cells.add((x, y))
    return cells


class TestMergeBoxes:
    def test_empty(self):
        assert merge_boxes([]) == []

    def test_single(self):
        assert merge_boxes([Box(0, 0, 4, 4)]) == [Box(0, 0, 4, 4)]

    def test_abutting_merge(self):
        merged = merge_boxes([Box(0, 0, 2, 10), Box(2, 0, 4, 10)])
        assert merged == [Box(0, 0, 4, 10)]

    def test_fragmented_wire_becomes_one_box(self):
        """The Figure 6.5 preprocessing: n abutting fragments merge."""
        fragments = [Box(2 * k, 0, 2 * (k + 1), 5) for k in range(8)]
        assert merge_boxes(fragments) == [Box(0, 0, 16, 5)]

    def test_disjoint_preserved(self):
        merged = merge_boxes([Box(0, 0, 2, 2), Box(10, 0, 12, 2)])
        assert len(merged) == 2

    def test_overlap_no_double_area(self):
        merged = merge_boxes([Box(0, 0, 10, 10), Box(5, 5, 15, 15)])
        assert sum(box.area for box in merged) == 175

    def test_l_shape(self):
        merged = merge_boxes([Box(0, 0, 10, 2), Box(0, 0, 2, 10)])
        assert sum(box.area for box in merged) == 20 + 16

    @given(boxes_strategy)
    @settings(max_examples=60, deadline=None)
    def test_merge_preserves_covered_area_exactly(self, boxes):
        merged = merge_boxes(boxes)
        assert covered_cells(merged) == covered_cells(boxes)

    @given(boxes_strategy)
    @settings(max_examples=60, deadline=None)
    def test_merged_boxes_do_not_overlap(self, boxes):
        merged = merge_boxes(boxes)
        total = sum(box.area for box in merged)
        assert total == len(covered_cells(boxes))

    @given(boxes_strategy)
    @settings(max_examples=30, deadline=None)
    def test_merge_is_idempotent(self, boxes):
        once = merge_boxes(boxes)
        assert merge_boxes(once) == once


class TestFlatLayout:
    def make(self):
        flat = FlatLayout("t")
        flat.add("metal", Box(0, 0, 10, 2))
        flat.add("metal", Box(0, 0, 2, 10))
        flat.add("poly", Box(5, 5, 7, 7))
        return flat

    def test_counts_and_bbox(self):
        flat = self.make()
        assert flat.box_count() == 3
        assert flat.bounding_box() == Box(0, 0, 10, 10)

    def test_area_by_layer_uses_merged_geometry(self):
        flat = self.make()
        areas = flat.area_by_layer()
        assert areas["metal"] == 36  # L-shape, not 20+20
        assert areas["poly"] == 4

    def test_utilisation(self):
        flat = self.make()
        assert abs(flat.utilisation() - 40 / 100) < 1e-9

    def test_same_geometry_order_independent(self):
        a = FlatLayout("a")
        a.add("m", Box(0, 0, 2, 2))
        a.add("m", Box(2, 0, 4, 2))
        b = FlatLayout("b")
        b.add("m", Box(0, 0, 4, 2))
        assert a.same_geometry(b)

    def test_same_geometry_detects_difference(self):
        a = FlatLayout("a")
        a.add("m", Box(0, 0, 2, 2))
        b = FlatLayout("b")
        b.add("m", Box(0, 0, 2, 3))
        assert not a.same_geometry(b)

    def test_empty_layout(self):
        flat = FlatLayout("e")
        assert flat.bounding_box() is None
        assert flat.utilisation() == 0.0


class TestFlattenCell:
    def test_flatten_with_orientation(self):
        leaf = CellDefinition("leaf")
        leaf.add_box("m", 0, 0, 4, 2)
        top = CellDefinition("top")
        top.add_instance(leaf, Vec2(0, 0), NORTH)
        top.add_instance(leaf, Vec2(10, 10), SOUTH)
        flat = flatten_cell(top)
        assert Box(0, 0, 4, 2) in flat.layers["m"]
        assert Box(6, 8, 10, 10) in flat.layers["m"]

    def test_flatten_merge_option(self):
        leaf = CellDefinition("leaf")
        leaf.add_box("m", 0, 0, 2, 2)
        top = CellDefinition("top")
        top.add_instance(leaf, Vec2(0, 0), NORTH)
        top.add_instance(leaf, Vec2(2, 0), NORTH)
        flat = flatten_cell(top, merge=True)
        assert flat.layers["m"] == [Box(0, 0, 4, 2)]

    def test_flatten_collects_ports(self):
        leaf = CellDefinition("leaf")
        leaf.add_port("p", 1, 1)
        top = CellDefinition("top")
        top.add_instance(leaf, Vec2(10, 0), NORTH, name="u0")
        flat = flatten_cell(top)
        assert flat.ports[0].name == "u0/p"
        assert flat.ports[0].position == Vec2(11, 1)
