"""Equivalence of the memoized stamp-flatten and the reference walkers.

The array-aware flatten (:class:`repro.core.cell.CellDefinition`)
computes each definition's flattened geometry once per orientation and
stamps instances by integer translation; the pre-memo recursive walkers
are retained as ``flatten_reference`` / ``flatten_ports_reference`` /
``flatten_labels_reference`` / ``bounding_box_reference``.  These
property tests drive randomized hierarchies — random depth, shared
sub-definitions, all eight orientations, unplaced instances, degenerate
boxes — through both builds, under random outer transforms, and require
*identical* results.  Mutation mid-stream (the memo-invalidation path)
and the hierarchical compactor's stamped rebuild under both
technologies are covered the same way.
"""

import random
from collections import Counter

import pytest

from repro.compact import TECH_A, TECH_B, HierarchicalCompactor
from repro.core.cell import CellDefinition
from repro.geometry import ALL_ORIENTATIONS, Box, Transform, Vec2

LAYERS = ["diff", "poly", "metal1", "implant"]

SEEDS = [1, 2, 3, 4, 5, 6, 7, 8]


def random_hierarchy(seed, depth=3, breadth=4):
    """A randomized DAG of cells: shared leaves, all orientations."""
    rng = random.Random(seed)
    level = []
    for index in range(3):
        leaf = CellDefinition(f"leaf{index}")
        for _ in range(rng.randrange(1, 6)):
            x = rng.randrange(-20, 20)
            y = rng.randrange(-20, 20)
            leaf.add_box(
                rng.choice(LAYERS), x, y, x + rng.randrange(0, 8), y + rng.randrange(0, 8)
            )
        leaf.add_port(f"p{index}", rng.randrange(-5, 5), rng.randrange(-5, 5), "metal1")
        leaf.add_label(f"txt{index}", rng.randrange(-5, 5), rng.randrange(-5, 5))
        level.append(leaf)
    for tier in range(depth):
        next_level = []
        for index in range(2):
            cell = CellDefinition(f"mid{tier}_{index}")
            if rng.random() < 0.4:
                x = rng.randrange(-30, 30)
                cell.add_box(rng.choice(LAYERS), x, 0, x + 4, 6)
            if rng.random() < 0.4:
                cell.add_port(f"q{tier}{index}", 0, 0)
            for position in range(breadth):
                cell.add_instance(
                    rng.choice(level),
                    Vec2(rng.randrange(-100, 100), rng.randrange(-100, 100)),
                    rng.choice(ALL_ORIENTATIONS),
                    name=f"u{position}" if rng.random() < 0.5 else "",
                )
            if rng.random() < 0.3:
                cell.add_instance(rng.choice(level))  # partial instance
            next_level.append(cell)
        level = next_level
    top = CellDefinition("top")
    for position in range(breadth):
        top.add_instance(
            rng.choice(level),
            Vec2(rng.randrange(-200, 200), rng.randrange(-200, 200)),
            rng.choice(ALL_ORIENTATIONS),
            name=f"t{position}",
        )
    return top


def random_transform(seed):
    rng = random.Random(seed * 7919)
    return Transform(
        Vec2(rng.randrange(-50, 50), rng.randrange(-50, 50)),
        rng.choice(ALL_ORIENTATIONS),
    )


@pytest.mark.parametrize("seed", SEEDS)
class TestFlattenEquivalence:
    def test_boxes_identical_sequence(self, seed):
        top = random_hierarchy(seed)
        for transform in (Transform(), random_transform(seed)):
            assert list(top.flatten(transform)) == list(
                top.flatten_reference(transform)
            )

    def test_boxes_identical_under_every_orientation(self, seed):
        top = random_hierarchy(seed)
        for orientation in ALL_ORIENTATIONS:
            transform = Transform(Vec2(seed, -seed), orientation)
            assert Counter(top.flatten(transform)) == Counter(
                top.flatten_reference(transform)
            )

    def test_ports_identical_names_and_positions(self, seed):
        top = random_hierarchy(seed)
        transform = random_transform(seed)
        assert list(top.flatten_ports(transform, prefix="x/")) == list(
            top.flatten_ports_reference(transform, prefix="x/")
        )

    def test_labels_identical(self, seed):
        top = random_hierarchy(seed)
        transform = random_transform(seed)
        assert list(top.flatten_labels(transform)) == list(
            top.flatten_labels_reference(transform)
        )

    def test_bounding_box_matches_reference(self, seed):
        top = random_hierarchy(seed)
        assert top.bounding_box() == top.bounding_box_reference()

    def test_memo_survives_repeated_queries(self, seed):
        top = random_hierarchy(seed)
        first = list(top.flatten())
        assert list(top.flatten()) == first
        assert list(top.flatten()) == list(top.flatten_reference())

    def test_mutation_between_queries_invalidates(self, seed):
        """Flatten, mutate a shared leaf, flatten again: both must track."""
        rng = random.Random(seed + 1000)
        top = random_hierarchy(seed)
        list(top.flatten())  # warm every memo
        top.bounding_box()
        # Find a leaf buried in the hierarchy and mutate it.
        node = top
        while node.instances:
            node = rng.choice(node.instances).definition
        node.add_box("metal1", 500, 500, 520, 520)
        assert list(top.flatten()) == list(top.flatten_reference())
        assert top.bounding_box() == top.bounding_box_reference()

    def test_replacement_after_instance_move(self, seed):
        """Re-placing an instance through the property setter tracks."""
        top = random_hierarchy(seed)
        list(top.flatten())
        instance = top.instances[0]
        instance.location = Vec2(999, -999)
        assert list(top.flatten()) == list(top.flatten_reference())
        assert top.bounding_box() == top.bounding_box_reference()


@pytest.mark.parametrize("seed", SEEDS[:4])
@pytest.mark.parametrize("rules", [TECH_A, TECH_B], ids=lambda r: r.name)
def test_hierarchical_compactor_stamped_flatten_consistent(seed, rules):
    """The stamped rebuild flattens identically via memo and reference."""
    rng = random.Random(seed * 31)
    leaves = []
    for index in range(3):
        leaf = CellDefinition(f"cell{index}")
        for _ in range(6):
            x = rng.randrange(0, 60, 2)
            y = rng.randrange(0, 30, 2)
            leaf.add_box(
                rng.choice(["diff", "poly", "metal1"]),
                x, y, x + rng.randrange(2, 8), y + rng.randrange(2, 8),
            )
        leaves.append(leaf)
    top = CellDefinition("top")
    for i in range(4):
        for j in range(4):
            top.add_instance(leaves[(i + j) % 3], Vec2(i * 90, j * 45))
    compacted = HierarchicalCompactor(rules).compact(top)
    assert list(compacted.flatten()) == list(compacted.flatten_reference())
    assert compacted.bounding_box() == compacted.bounding_box_reference()
    assert compacted.count_instances(recursive=True) == top.count_instances(
        recursive=True
    )


def test_flatten_matches_known_transform_composition():
    """Pin the stamp math to the classical composed-transform semantics."""
    leaf = CellDefinition("leaf")
    leaf.add_box("metal", 0, 0, 10, 4)
    mid = CellDefinition("mid")
    mid.add_instance(leaf, Vec2(20, 0), ALL_ORIENTATIONS[0])
    top = CellDefinition("top")
    top.add_instance(mid, Vec2(0, 100), ALL_ORIENTATIONS[2])  # SOUTH
    expected = (
        Box(0, 0, 10, 4)
        .translated(Vec2(20, 0))
        .transformed(ALL_ORIENTATIONS[2], Vec2(0, 100))
    )
    assert [item.box for item in top.flatten()] == [expected]
