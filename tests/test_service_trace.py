"""End-to-end flight-recorder coverage against a live service.

One ``repro submit`` must produce one single-rooted span tree spanning
client, server, store claim, worker, and pipeline stages, persisted as
a digest-verified ``trace.jsonl`` artifact; ``GET /metrics`` must
serve well-formed Prometheus text folding in every service counter;
and the ``repro stats`` / ``repro trace`` verbs must render both from
the CLI with the service exit family on failure.
"""

import json
import re

import pytest

from repro.cli import EXIT_SERVICE, main
from repro.core.errors import ServiceError
from repro.obs import Tracer, activated, render_trace, spans_from_jsonl
from repro.obs import trace as obs_trace
from repro.service.client import ServiceClient
from repro.service.jobs import JobSpec
from repro.service.server import LayoutServer

SAMPLE = """
cell tiny
  box metal1 0 0 8 8
  port a 0 4 metal1
end
"""

DESIGN = """
(mk_instance t tiny)
(mk_cell "top" t)
"""


def spec(**overrides):
    base = dict(kind="custom", sample_text=SAMPLE, design_text=DESIGN)
    base.update(overrides)
    return JobSpec(**base)


@pytest.fixture(scope="class")
def service(tmp_path_factory):
    root = tmp_path_factory.mktemp("traced-service")
    with LayoutServer(str(root), port=0, workers=2) as server:
        yield ServiceClient(server.url)


def traced_submission(service, job_spec):
    """Submit like ``repro submit`` does: rooted, propagated, posted."""
    tracer = Tracer()
    with activated(tracer):
        with tracer.span("client.submit") as root:
            submitted = service.submit(job_spec)
            result = service.wait(submitted["job"], timeout=60.0)
            root.set(state=result["state"])
    service.post_trace(submitted["job"], tracer.drain())
    return submitted["job"], result


class TestTraceArtifact:
    def test_one_submission_one_span_tree(self, service):
        job, result = traced_submission(service, spec(parameters="t=1\n", compact="x"))
        assert result["state"] == "done"
        spans = spans_from_jsonl(service.artifact(job, "trace.jsonl"))

        names = {span.name for span in spans}
        assert {
            "client.submit",
            "client.request",
            "client.wait",
            "server.submit",
            "store.claim",
            "worker.execute",
            "job.generate",
            "job.compact",
            "job.emit",
        } <= names

        # Single trace, single root, every other span parented inside it.
        assert len({span.trace_id for span in spans}) == 1
        ids = {span.span_id for span in spans}
        roots = [span for span in spans if span.parent_id is None]
        assert [root.name for root in roots] == ["client.submit"]
        for span in spans:
            if span.parent_id is not None:
                assert span.parent_id in ids
        assert all(span.status == "ok" for span in spans)

        by_name = {span.name: span for span in spans}
        assert "worker_pid" in by_name["worker.execute"].attributes
        assert by_name["job.compact"].attributes.get("kernel") in ("numpy", "python")
        solver = by_name.get("solver.solve")
        assert solver is not None and solver.attributes.get("backend")
        assert solver.attributes.get("passes", 0) >= 1
        # The worker roots under the client's request span.
        assert by_name["worker.execute"].parent_id == by_name["client.request"].span_id

    def test_untraced_client_still_gets_worker_trace(self, service):
        assert obs_trace.active() is None
        submitted = service.submit(spec(parameters="serverside=1\n"))
        service.wait(submitted["job"], timeout=60.0)
        spans = spans_from_jsonl(service.artifact(submitted["job"], "trace.jsonl"))
        names = {span.name for span in spans}
        assert "worker.execute" in names and "job.generate" in names
        executed = next(span for span in spans if span.name == "worker.execute")
        assert executed.parent_id is None  # no client trace to join

    def test_trace_survives_warm_resubmission(self, service):
        job_spec = spec(parameters="warmtrace=1\n")
        first = service.submit(job_spec)
        service.wait(first["job"], timeout=60.0)
        before = service.artifact(first["job"], "trace.jsonl")
        again = service.submit(job_spec)
        assert again["deduplicated"] is True
        assert service.artifact(first["job"], "trace.jsonl") == before

    def test_post_trace_unknown_job_is_404(self, service):
        with pytest.raises(ServiceError, match="HTTP 404"):
            service.post_trace("no-such-job", [])


class TestMetricsEndpoint:
    def test_prometheus_text_shape(self, service):
        submitted = service.submit(spec(parameters="m=1\n"))
        service.wait(submitted["job"], timeout=60.0)
        text = service.metrics()
        assert "# TYPE repro_jobs gauge" in text
        assert "# TYPE repro_executions_total counter" in text
        assert "# TYPE repro_stage_latency_seconds histogram" in text
        assert re.search(r'repro_jobs\{state="done"\} [1-9]', text)
        assert re.search(
            r'repro_stage_latency_seconds_bucket\{stage="generate",le="\+Inf"\} [1-9]',
            text,
        )
        assert "repro_workers_alive 2" in text
        sample = re.compile(
            r'^[a-zA-Z_:][a-zA-Z0-9_:]*(\{[a-zA-Z_]+="[^"]*"(,[a-zA-Z_]+="[^"]*")*\})?'
            r" (\+Inf|-Inf|-?[0-9.e+-]+)$"
        )
        for line in text.strip().splitlines():
            if not line.startswith("#"):
                assert sample.match(line), line

    def test_stats_carries_metrics_json(self, service):
        stats = service.stats()
        assert stats["metrics"]["repro_queue_depth"]["type"] == "gauge"
        assert any(key.startswith("repro_jobs{") for key in stats["metrics"])


class TestCliVerbs:
    def test_trace_verb_renders_tree(self, service, capsys):
        job, _ = traced_submission(service, spec(parameters="clitrace=1\n"))
        assert main(["trace", job, "--url", service.url]) == 0
        out = capsys.readouterr().out
        assert out.startswith("trace ")
        assert "worker.execute" in out and "job.generate" in out
        # The rendered tree matches a local render of the artifact.
        payload = service.artifact(job, "trace.jsonl")
        assert out.strip() == render_trace(spans_from_jsonl(payload))

    def test_trace_verb_json_dump(self, service, capsys):
        job, _ = traced_submission(service, spec(parameters="clitrace=2\n"))
        assert main(["trace", job, "--url", service.url, "--json"]) == 0
        lines = capsys.readouterr().out.strip().splitlines()
        assert all(json.loads(line)["trace_id"] for line in lines)

    def test_trace_verb_unknown_job_exits_service_family(self, service, capsys):
        assert main(["trace", "bogus", "--url", service.url]) == EXIT_SERVICE
        assert "HTTP 404" in capsys.readouterr().err

    def test_stats_verb(self, service, capsys):
        submitted = service.submit(spec(parameters="clistats=1\n"))
        service.wait(submitted["job"], timeout=60.0)
        assert main(["stats", "--url", service.url]) == 0
        out = capsys.readouterr().out
        assert out.startswith("jobs: ")
        assert "queue: depth" in out
        assert "workers: 2 alive" in out
        assert "stage latency:" in out

    def test_stats_verb_metrics_dump(self, service, capsys):
        assert main(["stats", "--url", service.url, "--metrics"]) == 0
        out = capsys.readouterr().out
        assert "# HELP" in out and "repro_submissions_total" in out

    def test_stats_verb_unreachable_exits_service_family(self, capsys):
        assert main(["stats", "--url", "http://127.0.0.1:9"]) == EXIT_SERVICE
        assert capsys.readouterr().err


class TestTracingDisabled:
    def test_no_trace_artifact_when_disabled(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_TRACE", "0")
        with LayoutServer(str(tmp_path / "svc"), port=0, workers=1) as server:
            client = ServiceClient(server.url)
            submitted = client.submit(spec(parameters="dark=1\n"))
            result = client.wait(submitted["job"], timeout=60.0)
            assert result["state"] == "done"
            with pytest.raises(ServiceError, match="HTTP 404"):
                client.artifact(submitted["job"], "trace.jsonl")
            # The layout artifacts are unaffected.
            assert client.artifact(submitted["job"], "layout.cif")
