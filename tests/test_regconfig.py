"""Tests for register configuration tables and the retimed design file."""

import pytest

from repro.lang import parse_parameters
from repro.layout import flatten_cell
from repro.multiplier import (
    RegisterConfiguration,
    generate_retimed_multiplier,
    generate_via_language,
    register_configuration,
    report_for,
)


class TestConfiguration:
    def test_beta_one_matches_appendix_b_profile(self):
        config = register_configuration(4, 4, beta=1)
        assert [config.top[i] for i in range(1, 5)] == [1, 2, 3, 4]
        assert [config.bottom[i] for i in range(1, 5)] == [4, 3, 2, 1]
        assert config.right_length == (3 * 4 + 1 + 1) // 2

    def test_beta_two_halves_heights(self):
        config = register_configuration(6, 6, beta=2)
        assert [config.top[i] for i in range(1, 7)] == [1, 1, 2, 2, 3, 3]

    def test_heights_never_below_one(self):
        config = register_configuration(3, 3, beta=10)
        assert all(height == 1 for height in config.top.values())
        assert config.right_length == 1

    def test_total_registers_decreases_with_beta(self):
        totals = [
            register_configuration(8, 8, beta).total_registers()
            for beta in (1, 2, 4)
        ]
        assert totals[0] > totals[1] > totals[2]

    def test_bad_beta(self):
        with pytest.raises(ValueError):
            register_configuration(4, 4, beta=0)


class TestParameterRoundTrip:
    def test_bindings_keys(self):
        config = register_configuration(3, 3, beta=1)
        bindings = config.as_parameter_bindings()
        assert bindings[("topcount", (2,))] == 2
        assert bindings[("bottomcount", (1,))] == 3
        assert ("rightlen", (1,)) in bindings

    def test_parameter_text_parses_back(self):
        config = register_configuration(3, 3, beta=2)
        parsed = parse_parameters(config.as_parameter_text())
        assert parsed.bindings == config.as_parameter_bindings()

    def test_indexed_binding_syntax(self):
        parsed = parse_parameters("topcount.4=7\nmatrix.2.3=9")
        assert parsed.bindings[("topcount", (4,))] == 7
        assert parsed.bindings[("matrix", (2, 3))] == 9

    def test_indexed_binding_rejects_non_integer(self):
        from repro.core.errors import ParseError

        with pytest.raises(ParseError):
            parse_parameters('topcount.1="x"')


class TestRetimedDesignFile:
    def test_beta_one_equals_original_design_file(self):
        """The configuration-table path at beta=1 reproduces the
        Appendix B layout exactly."""
        retimed, _ = generate_retimed_multiplier(4, 4, beta=1)
        original, _ = generate_via_language(4, 4)
        assert flatten_cell(retimed).same_geometry(flatten_cell(original))

    @pytest.mark.parametrize("beta", [2, 3])
    def test_higher_beta_fewer_registers(self, beta):
        systolic, _ = generate_retimed_multiplier(4, 4, beta=1)
        relaxed, _ = generate_retimed_multiplier(4, 4, beta=beta)
        assert (
            report_for(relaxed, 4, 4).registers
            < report_for(systolic, 4, 4).registers
        )

    def test_inner_array_unchanged_by_beta(self):
        """Retiming 'preserves the regularity of the inner array, but
        adds irregularity to the periphery' — basic cell count constant."""
        for beta in (1, 2, 4):
            top, _ = generate_retimed_multiplier(3, 3, beta=beta)
            assert report_for(top, 3, 3).basic_cells == 3 * 4

    def test_register_count_matches_configuration(self):
        beta = 2
        top, _ = generate_retimed_multiplier(5, 5, beta=beta)
        config = register_configuration(5, 5, beta=beta)
        assert report_for(top, 5, 5).registers == config.total_registers()
