"""Tests for the pluggable solver subsystem (registry, incremental
re-solve, hints, SolveStats reporting)."""

import random

import pytest

from repro.compact import (
    ConstraintSystem,
    SolveStats,
    TECH_A,
    available_solvers,
    compact_layout,
    get_solver,
    register_solver,
    solve_longest_path,
)
from repro.compact.solvers import DEFAULT_SOLVER
from repro.core.errors import (
    InfeasibleConstraintsError,
    SolverConfigurationError,
)
from repro.geometry import Box
from repro.layout.database import FlatLayout


def random_system(n, extra, seed, cyclic=False):
    rng = random.Random(seed)
    system = ConstraintSystem()
    for i in range(n):
        system.add_variable(f"v{i}", initial=rng.randint(0, 100))
    for i in range(n - 1):
        system.add(f"v{i}", f"v{i+1}", rng.randint(-3, 5))
    for _ in range(extra):
        a, b = rng.sample(range(n), 2)
        if not cyclic and a > b:
            a, b = b, a
        system.add(f"v{a}", f"v{b}", rng.randint(0, 4))
    if cyclic:
        system.require_equal("v0", f"v{n // 2}", 7)
    return system


class TestRegistry:
    def test_builtins_registered(self):
        names = available_solvers()
        assert {"bellman-ford", "topological", "incremental"} <= set(names)
        assert DEFAULT_SOLVER in names

    def test_unknown_backend_rejected(self):
        with pytest.raises(SolverConfigurationError):
            get_solver("simplex")

    def test_fresh_instance_per_lookup(self):
        assert get_solver("incremental") is not get_solver("incremental")

    def test_custom_backend_registration(self):
        class Echo:
            name = "echo-test"

            def solve(self, system, **kwargs):
                return get_solver("bellman-ford").solve(system, **kwargs)

        register_solver(Echo.name, Echo)
        try:
            system = random_system(5, 2, seed=0)
            assert (
                get_solver("echo-test").solve(system).solution
                == get_solver("bellman-ford").solve(system).solution
            )
        finally:
            from repro.compact.solvers.base import _REGISTRY

            _REGISTRY.pop("echo-test", None)


class TestSolveStats:
    def test_str_names_backend_and_width(self):
        system = random_system(6, 2, seed=1)
        stats = solve_longest_path(system, solver="topological")
        text = str(stats)
        assert "topological" in text
        assert f"width {stats.width()}" in text
        assert "relaxations" in text

    def test_width_measured_from_lower_bound_wall(self):
        # A hinted solve can lift every variable off the wall; the width
        # must still be measured from the wall the solver was given.
        system = ConstraintSystem()
        system.add_variable("a")
        system.add_variable("b")
        system.add("a", "b", 4)
        stats = solve_longest_path(system, hint={"a": 3, "b": 3})
        assert stats.solution == {"a": 3, "b": 7}
        assert stats.lower_bound == 0
        assert stats.width() == 7

    def test_width_plain_minimal_solve_unchanged(self):
        system = ConstraintSystem()
        system.add_variable("a")
        system.add_variable("b")
        system.add("a", "b", 4)
        stats = solve_longest_path(system, lower_bound=7)
        assert stats.width() == 4

    def test_empty_solution_width(self):
        assert SolveStats().width() == 0


class TestHintSeeding:
    """``hint`` means the same thing for every backend: least solution
    at or above the hint."""

    @pytest.mark.parametrize("backend", available_solvers())
    def test_least_solution_above_hint(self, backend):
        system = random_system(30, 12, seed=3)
        hint = {f"v{i}": (i * 7) % 23 for i in range(30)}
        stats = get_solver(backend).solve(system, hint=hint)
        assert system.check(stats.solution) == []
        assert all(stats.solution[k] >= v for k, v in hint.items())
        reference = get_solver("bellman-ford").solve(system, hint=hint)
        assert stats.solution == reference.solution

    @pytest.mark.parametrize("backend", available_solvers())
    def test_empty_hint_is_plain_solve(self, backend):
        system = random_system(12, 4, seed=4)
        assert (
            get_solver(backend).solve(system, hint={}).solution
            == get_solver(backend).solve(system).solution
        )


class TestIncrementalReuse:
    def make_sweepable(self):
        """A system where a pitch change reaches only a small cone."""
        system = ConstraintSystem()
        for i in range(60):
            system.add_variable(f"v{i}", initial=i * 4)
        for i in range(59):
            system.add(f"v{i}", f"v{i+1}", 3)
        system.add_pitch("lam")
        system.add("v50", "v51", 1, pitch_terms=(("lam", 1),))
        return system

    def test_sweep_matches_full_resolve(self):
        system = self.make_sweepable()
        incremental = get_solver("incremental")
        reference = get_solver("bellman-ford")
        for value in (0, 5, 9, 2, 2, 7):
            fast = incremental.solve(system, pitches={"lam": value})
            full = reference.solve(system, pitches={"lam": value})
            assert fast.solution == full.solution

    def test_cone_reuse_reported(self):
        system = self.make_sweepable()
        incremental = get_solver("incremental")
        incremental.solve(system, pitches={"lam": 0})
        stats = incremental.solve(system, pitches={"lam": 8})
        # Only v51..v59 are reachable from the changed constraint.
        assert stats.reused == 51
        repeat = incremental.solve(system, pitches={"lam": 8})
        assert repeat.reused == 60
        assert repeat.relaxations == 0

    def test_loosened_weights_lower_the_cone(self):
        system = self.make_sweepable()
        incremental = get_solver("incremental")
        high = incremental.solve(system, pitches={"lam": 9}).solution
        low = incremental.solve(system, pitches={"lam": 0}).solution
        assert low["v51"] < high["v51"]
        assert low == get_solver("bellman-ford").solve(
            system, pitches={"lam": 0}
        ).solution

    def test_infeasible_candidate_then_recovery(self):
        system = ConstraintSystem()
        system.add_variable("a")
        system.add_variable("b")
        system.add_pitch("p")
        system.add("a", "b", 5)
        system.add("b", "a", 0, pitch_terms=(("p", -1),))
        incremental = get_solver("incremental")
        ok = incremental.solve(system, pitches={"p": 6})
        assert ok.solution["b"] - ok.solution["a"] == 5
        with pytest.raises(InfeasibleConstraintsError):
            incremental.solve(system, pitches={"p": 3})
        again = incremental.solve(system, pitches={"p": 7})
        assert again.solution["b"] - again.solution["a"] == 5

    def test_system_growth_invalidates_cache(self):
        system = random_system(10, 3, seed=5)
        incremental = get_solver("incremental")
        incremental.solve(system)
        system.add_variable("extra")
        system.add("v9", "extra", 2)
        stats = incremental.solve(system)
        assert stats.solution == get_solver("bellman-ford").solve(system).solution

    def test_different_lower_bound_not_reused(self):
        system = random_system(10, 3, seed=6)
        incremental = get_solver("incremental")
        incremental.solve(system, lower_bound=0)
        stats = incremental.solve(system, lower_bound=5)
        assert min(stats.solution.values()) == 5
        assert stats.solution == get_solver("bellman-ford").solve(
            system, lower_bound=5
        ).solution


class TestRandomEquivalence:
    @pytest.mark.parametrize("backend", available_solvers())
    @pytest.mark.parametrize("cyclic", [False, True], ids=["dag", "cyclic"])
    def test_fuzz_against_reference(self, backend, cyclic):
        for seed in range(8):
            system = random_system(35, 40, seed=seed, cyclic=cyclic)
            try:
                reference = get_solver("bellman-ford").solve(
                    system, lower_bound=2
                ).solution
            except InfeasibleConstraintsError:
                reference = "infeasible"
            try:
                stats = get_solver(backend).solve(system, lower_bound=2).solution
            except InfeasibleConstraintsError:
                stats = "infeasible"
            assert stats == reference


class TestFlatCompactionThreading:
    def layout(self):
        rng = random.Random(9)
        layout = FlatLayout("threaded")
        for i in range(60):
            x = (i % 10) * 11 + rng.randint(0, 3)
            y = (i // 10) * 9
            layer = ("metal1", "poly")[i % 2]
            layout.add(layer, Box(x, y, x + 5, y + 6))
        return layout

    @pytest.mark.parametrize("backend", available_solvers())
    def test_same_geometry_every_backend(self, backend):
        reference = compact_layout(self.layout(), TECH_A, width_mode="min")
        result = compact_layout(
            self.layout(), TECH_A, width_mode="min", solver=backend
        )
        assert result.width_after == reference.width_after
        assert result.layers == reference.layers
        assert result.stats.backend.startswith(backend)

    def test_unknown_solver_raises(self):
        with pytest.raises(SolverConfigurationError):
            compact_layout(self.layout(), TECH_A, solver="does-not-exist")
