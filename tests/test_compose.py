"""Tests for compose(): routed composites, round-trips, the net file."""

import pytest

from repro.compact import TECH_A, check_layout
from repro.core import CellDefinition, Rsg
from repro.core.errors import ParseError
from repro.geometry import Vec2
from repro.layout import flatten_cell, loads_sample, read_cif, cif_text, svg_render
from repro.route import (
    NetRequest,
    RoutingError,
    compose,
    compose_from_netfile,
    parse_net_file,
    routed_netlist,
)


def block(name, port_specs, port_y, width=80, height=20):
    """A block with ports on one horizontal edge (y=0 or y=height)."""
    cell = CellDefinition(name)
    cell.add_box("metal1", 0, 0, width, height)
    for port_name, x in port_specs:
        cell.add_port(port_name, x, port_y, "metal1")
    return cell


@pytest.fixture
def blocks():
    bottom = block("south", [("a", 7), ("b", 28), ("c", 49)], port_y=20)
    top = block("north", [("x", 7), ("y", 28), ("z", 49)], port_y=0)
    return bottom, top


ALIGNED = {
    "n0": [("south", "a"), ("north", "x")],
    "n1": [("south", "b"), ("north", "y")],
    "n2": [("south", "c"), ("north", "z")],
}
CROSSED = {
    "n0": [("south", "a"), ("north", "z")],
    "n1": [("south", "b"), ("north", "x")],
    "n2": [("south", "c"), ("north", "y")],
}


class TestCompose:
    def test_auto_picks_river_for_aligned_bus(self, blocks):
        composite, plan = compose("combo", *blocks, ALIGNED)
        assert plan.router == "river"
        assert plan.vias == 0

    def test_auto_picks_channel_for_crossings(self, blocks):
        composite, plan = compose("combo", *blocks, CROSSED)
        assert plan.router == "channel"
        assert plan.vias > 0

    @pytest.mark.parametrize("nets", [ALIGNED, CROSSED], ids=["river", "channel"])
    def test_connectivity_round_trip(self, blocks, nets):
        composite, plan = compose("combo", *blocks, nets)
        assert routed_netlist(composite, plan.style) == plan.requested_groups()

    @pytest.mark.parametrize("nets", [ALIGNED, CROSSED], ids=["river", "channel"])
    def test_routed_channel_is_drc_clean(self, blocks, nets):
        composite, plan = compose("combo", *blocks, nets)
        assert check_layout(plan.wiring.layers(), TECH_A) == []

    def test_top_cell_placed_one_channel_above(self, blocks):
        bottom, top = blocks
        composite, plan = compose("combo", bottom, top, ALIGNED)
        placed_top = next(i for i in composite.instances if i.name == "north")
        assert placed_top.location == Vec2(0, 20 + plan.height)
        bbox = composite.bounding_box()
        assert bbox.height == 20 + plan.height + 20

    def test_top_x_offset_still_routes(self, blocks):
        bottom, top = blocks
        composite, plan = compose("combo", bottom, top, ALIGNED, top_x=14)
        assert routed_netlist(composite, plan.style) == plan.requested_groups()

    def test_explicit_channel_router_on_aligned_bus(self, blocks):
        composite, plan = compose("combo", *blocks, ALIGNED, router="channel")
        assert plan.router == "channel"
        assert routed_netlist(composite, plan.style) == plan.requested_groups()

    def test_river_refused_for_crossings(self, blocks):
        with pytest.raises(RoutingError, match="river"):
            compose("combo", *blocks, CROSSED, router="river")

    def test_net_request_sequence_form(self, blocks):
        nets = [NetRequest("n0", (("south", "a"), ("north", "x")))]
        composite, plan = compose("combo", *blocks, nets)
        assert plan.requested_groups() == [["north/x", "south/a"]]

    def test_cif_round_trip_preserves_geometry_and_port_layers(self, blocks):
        composite, plan = compose("combo", *blocks, CROSSED)
        table = read_cif(cif_text(composite))
        again = table.lookup("combo")
        assert flatten_cell(again).same_geometry(flatten_cell(composite))
        assert table.lookup("south").port("a").layer == "metal1"

    def test_svg_renders_net_labels(self, blocks):
        composite, plan = compose("combo", *blocks, ALIGNED)
        svg = svg_render(composite, show_labels=True)
        assert "<text" in svg and "n1" in svg

    def test_port_off_edge_rejected(self, blocks):
        bottom, top = blocks
        bottom.add_port("inner", 60, 10, "metal1")
        nets = {"bad": [("south", "inner"), ("north", "x")]}
        with pytest.raises(RoutingError, match="top edge"):
            compose("combo", bottom, top, nets)

    def test_unknown_instance_rejected(self, blocks):
        nets = {"bad": [("nowhere", "a"), ("north", "x")]}
        with pytest.raises(RoutingError, match="unknown instance"):
            compose("combo", *blocks, nets)

    def test_colliding_instance_names_rejected(self, blocks):
        bottom, top = blocks
        with pytest.raises(RoutingError, match="collide"):
            compose("combo", bottom, top, ALIGNED,
                    bottom_name="same", top_name="same")

    def test_duplicate_net_names_rejected(self, blocks):
        nets = [
            NetRequest("w", (("south", "a"), ("north", "x"))),
            NetRequest("w", (("south", "b"), ("north", "y"))),
        ]
        with pytest.raises(RoutingError, match="duplicate net name"):
            compose("combo", *blocks, nets)

    def test_explicit_single_layer_style_is_honoured(self, blocks):
        from repro.compact.rules import TECH_B
        from repro.route import RouteStyle

        # TECH_B metal1 is wider than the default TECH_A style; the
        # routed wires must carry the caller's width, not the default.
        style = RouteStyle.single_layer(TECH_B, layer="metal1")
        assert style.wire_width == 4
        composite, plan = compose("combo", *blocks, ALIGNED, style=style)
        assert plan.router == "river"
        assert plan.style is style
        boxes = plan.wiring.layers()["metal1"]
        assert all(min(b.width, b.height) == 4 for b in boxes)

    def test_explicit_two_layer_style_forces_channel(self, blocks):
        from repro.route import RouteStyle
        from repro.compact import TECH_A

        style = RouteStyle.from_rules(TECH_A)
        composite, plan = compose("combo", *blocks, ALIGNED, style=style)
        assert plan.router == "channel"
        assert plan.style is style

    def test_style_router_kind_mismatch_rejected(self, blocks):
        from repro.route import RouteStyle
        from repro.compact import TECH_A

        with pytest.raises(RoutingError, match="single-layer style"):
            compose("combo", *blocks, ALIGNED, router="channel",
                    style=RouteStyle.single_layer(TECH_A))
        with pytest.raises(RoutingError, match="two-layer style"):
            compose("combo", *blocks, ALIGNED, router="river",
                    style=RouteStyle.from_rules(TECH_A))

    def test_single_layer_style_with_unroutable_request_rejected(self, blocks):
        from repro.route import RouteStyle
        from repro.compact import TECH_A

        with pytest.raises(RoutingError, match="not river-routable"):
            compose("combo", *blocks, CROSSED,
                    style=RouteStyle.single_layer(TECH_A))


NETFILE = """
# a comment
bottom south
top north 14
net n0 south/a north/x
net n1 south/b north/y
"""


class TestNetFile:
    def test_parse(self):
        bottom, top, top_x, requests = parse_net_file(NETFILE)
        assert (bottom, top, top_x) == ("south", "north", 14)
        assert requests[0] == NetRequest("n0", (("south", "a"), ("north", "x")))

    @pytest.mark.parametrize(
        "text",
        [
            "net n0 a/b c/d",                      # no bottom/top
            "bottom s\ntop n",                     # no nets
            "bottom s\ntop n\nnet n0 a b",         # terminal without /
            "bottom s\ntop n x\nnet",              # short net line
            "bottom s\ntop n oops\nnet n0 a/b c/d",  # bad offset
        ],
    )
    def test_malformed(self, text):
        with pytest.raises(ParseError):
            parse_net_file(text)

    def test_compose_from_netfile_uses_cell_table(self, blocks):
        bottom, top = blocks
        rsg = Rsg()
        rsg.cells.define(bottom)
        rsg.cells.define(top)
        composite, plan = compose_from_netfile(NETFILE, rsg.cells, name="combo")
        assert composite.name == "combo"
        assert routed_netlist(composite, plan.style) == plan.requested_groups()


class TestDatapathDemo:
    """The acceptance scenario: PLA controller + multiplier datapath."""

    def test_demo_composites_verify(self, capsys):
        import importlib.util
        import pathlib

        path = pathlib.Path(__file__).parent.parent / "examples" / "datapath_demo.py"
        spec = importlib.util.spec_from_file_location("datapath_demo", path)
        module = importlib.util.module_from_spec(spec)
        spec.loader.exec_module(module)
        module.main()  # asserts round-trip nets and zero DRC internally
        out = capsys.readouterr().out
        assert "DRC: 0 violations" in out
        assert "river" in out and "channel" in out
