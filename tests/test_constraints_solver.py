"""Tests for the constraint system and the Bellman-Ford solver (§6.3/6.4.2)."""

import pytest

from repro.compact import (
    Constraint,
    ConstraintSystem,
    available_solvers,
    get_solver,
    solve_longest_path,
)
from repro.core.errors import InfeasibleConstraintsError


def chain_system(n, gap=3, shuffle=False):
    """x0 <- x1 <- ... <- x_{n-1}, each at least `gap` apart."""
    system = ConstraintSystem()
    for i in range(n):
        system.add_variable(f"x{i}", initial=i * gap)
    order = list(range(n - 1))
    if shuffle:
        order = order[::-1]
    for i in order:
        system.add(f"x{i}", f"x{i+1}", gap)
    return system


def equality_system():
    """Zero-slack cycles: a rigid cluster pinned by require_equal."""
    system = ConstraintSystem()
    for name in "abcd":
        system.add_variable(name)
    system.require_equal("a", "b", 5)
    system.require_equal("b", "c", -2)
    system.add("a", "d", 7)
    system.add("c", "d", 1)
    return system


def slack_cycle_system():
    """A negative-slack cycle: b may float within [a, a+4]."""
    system = ConstraintSystem()
    system.add_variable("a", initial=0)
    system.add_variable("b", initial=9)
    system.add_variable("c", initial=20)
    system.add("a", "b", 0)
    system.add("b", "a", -4)
    system.add("b", "c", 6)
    return system


def pitch_system():
    system = ConstraintSystem()
    system.add_variable("a", initial=0)
    system.add_variable("b", initial=10)
    system.add_variable("c", initial=25)
    system.add_pitch("lam")
    system.add("a", "b", 4, pitch_terms=(("lam", -1),))
    system.add("b", "c", 6)
    system.add("a", "c", 3, pitch_terms=(("lam", 1),))
    return system


#: every ConstraintSystem fixture in this module, with solve kwargs
SOLVER_FIXTURES = [
    ("chain", lambda: chain_system(10), {}),
    ("chain-shuffled", lambda: chain_system(25, shuffle=True), {}),
    ("chain-lower-bound", lambda: chain_system(8), {"lower_bound": 5}),
    ("chain-unsorted", lambda: chain_system(25, shuffle=True), {"sort_edges": False}),
    ("equalities", equality_system, {}),
    ("slack-cycle", slack_cycle_system, {}),
    ("negative-weight", lambda: negative_weight_system(), {}),
    ("fixed-pitch", pitch_system, {"pitches": {"lam": 2}}),
]


def negative_weight_system():
    system = ConstraintSystem()
    system.add_variable("a")
    system.add_variable("b")
    system.add("a", "b", -2)
    return system


class TestConstraintSystem:
    def test_variables_and_constraints(self):
        system = chain_system(4)
        assert len(system.variables) == 4
        assert len(system) == 3

    def test_endpoints_must_exist(self):
        system = ConstraintSystem()
        system.add_variable("a")
        with pytest.raises(KeyError):
            system.add("a", "ghost", 1)

    def test_require_equal(self):
        system = ConstraintSystem()
        system.add_variable("a")
        system.add_variable("b")
        system.require_equal("a", "b", 5)
        stats = solve_longest_path(system)
        assert stats.solution["b"] - stats.solution["a"] == 5

    def test_check_reports_violations(self):
        system = chain_system(3)
        good = {"x0": 0, "x1": 3, "x2": 6}
        bad = {"x0": 0, "x1": 2, "x2": 6}
        assert system.check(good) == []
        assert len(system.check(bad)) == 1

    def test_pitch_terms_flagged(self):
        system = ConstraintSystem()
        system.add_variable("a")
        system.add_variable("b")
        system.add_pitch("lam")
        system.add("a", "b", 2, pitch_terms=(("lam", -1),))
        assert system.has_pitch_terms()


class TestSolver:
    def test_minimal_solution(self):
        stats = solve_longest_path(chain_system(5, gap=4))
        assert [stats.solution[f"x{i}"] for i in range(5)] == [0, 4, 8, 12, 16]

    def test_all_constraints_satisfied(self):
        system = chain_system(10)
        stats = solve_longest_path(system)
        assert system.check(stats.solution) == []

    def test_lower_bound(self):
        stats = solve_longest_path(chain_system(3), lower_bound=7)
        assert min(stats.solution.values()) == 7

    def test_positive_cycle_detected(self):
        system = ConstraintSystem()
        system.add_variable("a")
        system.add_variable("b")
        system.add("a", "b", 5)
        system.add("b", "a", -3)  # b - a >= 5 and a - b >= -3: a <= b - 5, a >= b - 3
        with pytest.raises(InfeasibleConstraintsError):
            solve_longest_path(system)

    def test_negative_weights_feasible(self):
        system = ConstraintSystem()
        system.add_variable("a")
        system.add_variable("b")
        system.add("a", "b", -2)  # b may sit left of a
        stats = solve_longest_path(system)
        assert system.check(stats.solution) == []

    def test_fixed_pitch_substitution(self):
        system = ConstraintSystem()
        system.add_variable("a", initial=0)
        system.add_variable("b", initial=10)
        system.add_pitch("lam")
        system.add("a", "b", 4, pitch_terms=(("lam", -1),))
        stats = solve_longest_path(system, pitches={"lam": 1})
        assert stats.solution["b"] - stats.solution["a"] >= 3

    def test_symbolic_pitch_without_value_rejected(self):
        system = ConstraintSystem()
        system.add_variable("a")
        system.add_variable("b")
        system.add_pitch("lam")
        system.add("a", "b", 4, pitch_terms=(("lam", -1),))
        with pytest.raises(InfeasibleConstraintsError):
            solve_longest_path(system)


class TestSortedEdgeOptimisation:
    """Section 6.4.2: presorting edges by initial abscissa makes a
    preserved ordering converge in one productive pass."""

    def test_sorted_single_productive_pass(self):
        system = chain_system(100, shuffle=True)
        sorted_stats = solve_longest_path(system, sort_edges=True)
        # One pass does all the work; the second detects the fixpoint.
        assert sorted_stats.passes == 2

    def test_unsorted_needs_many_passes(self):
        system = chain_system(100, shuffle=True)
        unsorted_stats = solve_longest_path(system, sort_edges=False)
        assert unsorted_stats.passes > 2

    def test_same_answer_either_way(self):
        system = chain_system(50, shuffle=True)
        a = solve_longest_path(system, sort_edges=True).solution
        b = solve_longest_path(system, sort_edges=False).solution
        assert a == b

    def test_relaxation_counts(self):
        system = chain_system(20, shuffle=True)
        stats = solve_longest_path(system, sort_edges=True)
        assert stats.relaxations == 19  # each variable settles once


class TestBackendEquivalence:
    """Every registered backend must reproduce the Bellman-Ford
    solutions exactly, fixture by fixture."""

    @pytest.mark.parametrize("backend", available_solvers())
    @pytest.mark.parametrize(
        "label,build,options",
        SOLVER_FIXTURES,
        ids=[label for label, _, _ in SOLVER_FIXTURES],
    )
    def test_identical_solutions(self, backend, label, build, options):
        system = build()
        reference = get_solver("bellman-ford").solve(system, **options)
        stats = get_solver(backend).solve(system, **options)
        assert stats.solution == reference.solution
        assert system.check(
            stats.solution, pitches=options.get("pitches")
        ) == []

    @pytest.mark.parametrize("backend", available_solvers())
    def test_positive_cycle_detected(self, backend):
        system = ConstraintSystem()
        system.add_variable("a")
        system.add_variable("b")
        system.add("a", "b", 5)
        system.add("b", "a", -3)
        with pytest.raises(InfeasibleConstraintsError):
            get_solver(backend).solve(system)

    @pytest.mark.parametrize("backend", available_solvers())
    def test_positive_self_loop_detected(self, backend):
        system = ConstraintSystem()
        system.add_variable("a")
        system.add("a", "a", 1)
        with pytest.raises(InfeasibleConstraintsError):
            get_solver(backend).solve(system)

    @pytest.mark.parametrize("backend", available_solvers())
    def test_symbolic_pitch_rejected(self, backend):
        system = pitch_system()
        with pytest.raises(InfeasibleConstraintsError):
            get_solver(backend).solve(system)

    @pytest.mark.parametrize("backend", available_solvers())
    def test_via_system_solve(self, backend):
        system = chain_system(6)
        stats = system.solve(solver=backend)
        assert stats.solution == solve_longest_path(system).solution
