"""Tests for the constraint system and the Bellman-Ford solver (§6.3/6.4.2)."""

import pytest

from repro.compact import Constraint, ConstraintSystem, solve_longest_path
from repro.core.errors import InfeasibleConstraintsError


def chain_system(n, gap=3, shuffle=False):
    """x0 <- x1 <- ... <- x_{n-1}, each at least `gap` apart."""
    system = ConstraintSystem()
    for i in range(n):
        system.add_variable(f"x{i}", initial=i * gap)
    order = list(range(n - 1))
    if shuffle:
        order = order[::-1]
    for i in order:
        system.add(f"x{i}", f"x{i+1}", gap)
    return system


class TestConstraintSystem:
    def test_variables_and_constraints(self):
        system = chain_system(4)
        assert len(system.variables) == 4
        assert len(system) == 3

    def test_endpoints_must_exist(self):
        system = ConstraintSystem()
        system.add_variable("a")
        with pytest.raises(KeyError):
            system.add("a", "ghost", 1)

    def test_require_equal(self):
        system = ConstraintSystem()
        system.add_variable("a")
        system.add_variable("b")
        system.require_equal("a", "b", 5)
        stats = solve_longest_path(system)
        assert stats.solution["b"] - stats.solution["a"] == 5

    def test_check_reports_violations(self):
        system = chain_system(3)
        good = {"x0": 0, "x1": 3, "x2": 6}
        bad = {"x0": 0, "x1": 2, "x2": 6}
        assert system.check(good) == []
        assert len(system.check(bad)) == 1

    def test_pitch_terms_flagged(self):
        system = ConstraintSystem()
        system.add_variable("a")
        system.add_variable("b")
        system.add_pitch("lam")
        system.add("a", "b", 2, pitch_terms=(("lam", -1),))
        assert system.has_pitch_terms()


class TestSolver:
    def test_minimal_solution(self):
        stats = solve_longest_path(chain_system(5, gap=4))
        assert [stats.solution[f"x{i}"] for i in range(5)] == [0, 4, 8, 12, 16]

    def test_all_constraints_satisfied(self):
        system = chain_system(10)
        stats = solve_longest_path(system)
        assert system.check(stats.solution) == []

    def test_lower_bound(self):
        stats = solve_longest_path(chain_system(3), lower_bound=7)
        assert min(stats.solution.values()) == 7

    def test_positive_cycle_detected(self):
        system = ConstraintSystem()
        system.add_variable("a")
        system.add_variable("b")
        system.add("a", "b", 5)
        system.add("b", "a", -3)  # b - a >= 5 and a - b >= -3: a <= b - 5, a >= b - 3
        with pytest.raises(InfeasibleConstraintsError):
            solve_longest_path(system)

    def test_negative_weights_feasible(self):
        system = ConstraintSystem()
        system.add_variable("a")
        system.add_variable("b")
        system.add("a", "b", -2)  # b may sit left of a
        stats = solve_longest_path(system)
        assert system.check(stats.solution) == []

    def test_fixed_pitch_substitution(self):
        system = ConstraintSystem()
        system.add_variable("a", initial=0)
        system.add_variable("b", initial=10)
        system.add_pitch("lam")
        system.add("a", "b", 4, pitch_terms=(("lam", -1),))
        stats = solve_longest_path(system, pitches={"lam": 1})
        assert stats.solution["b"] - stats.solution["a"] >= 3

    def test_symbolic_pitch_without_value_rejected(self):
        system = ConstraintSystem()
        system.add_variable("a")
        system.add_variable("b")
        system.add_pitch("lam")
        system.add("a", "b", 4, pitch_terms=(("lam", -1),))
        with pytest.raises(InfeasibleConstraintsError):
            solve_longest_path(system)


class TestSortedEdgeOptimisation:
    """Section 6.4.2: presorting edges by initial abscissa makes a
    preserved ordering converge in one productive pass."""

    def test_sorted_single_productive_pass(self):
        system = chain_system(100, shuffle=True)
        sorted_stats = solve_longest_path(system, sort_edges=True)
        # One pass does all the work; the second detects the fixpoint.
        assert sorted_stats.passes == 2

    def test_unsorted_needs_many_passes(self):
        system = chain_system(100, shuffle=True)
        unsorted_stats = solve_longest_path(system, sort_edges=False)
        assert unsorted_stats.passes > 2

    def test_same_answer_either_way(self):
        system = chain_system(50, shuffle=True)
        a = solve_longest_path(system, sort_edges=True).solution
        b = solve_longest_path(system, sort_edges=False).solution
        assert a == b

    def test_relaxation_counts(self):
        system = chain_system(20, shuffle=True)
        stats = solve_longest_path(system, sort_edges=True)
        assert stats.relaxations == 19  # each variable settles once
