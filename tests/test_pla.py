"""Tests for the PLA generators (section 1.2.2: RSG as a superset of HPLA)."""

import itertools

import pytest
from hypothesis import given, settings, strategies as st

from repro.layout import flatten_cell
from repro.pla import (
    HplaGenerator,
    TruthTable,
    compile_description,
    extract_personality,
    generate_decoder,
    generate_pla,
    load_pla_library,
)


TABLE = TruthTable.parse(
    """
    1-0 | 10
    01- | 11
    -11 | 01
    """
)


def random_tables():
    literal = st.sampled_from("01-")
    out = st.sampled_from("01")
    return st.integers(2, 4).flatmap(
        lambda n_in: st.integers(1, 3).flatmap(
            lambda n_out: st.lists(
                st.tuples(
                    st.text(alphabet="01-", min_size=n_in, max_size=n_in),
                    st.text(alphabet="01", min_size=n_out, max_size=n_out),
                ),
                min_size=1,
                max_size=5,
            ).map(lambda rows: TruthTable([r[0] for r in rows], [r[1] for r in rows]))
        )
    )


class TestTruthTable:
    def test_parse_and_dimensions(self):
        assert TABLE.num_inputs == 3
        assert TABLE.num_outputs == 2
        assert TABLE.num_terms == 3

    def test_evaluate(self):
        # term0: x0 & !x2 -> o0 ; term1: !x0 & x1 -> o0,o1 ; term2: x1 & x2 -> o1
        assert TABLE.evaluate([1, 0, 0]) == [1, 0]
        assert TABLE.evaluate([0, 1, 0]) == [1, 1]
        assert TABLE.evaluate([0, 1, 1]) == [1, 1]
        assert TABLE.evaluate([0, 0, 1]) == [0, 0]

    def test_crosspoints(self):
        assert TABLE.crosspoints() == (6, 4)

    def test_ragged_rejected(self):
        with pytest.raises(ValueError):
            TruthTable(["10", "1"], ["1", "1"])

    def test_bad_characters_rejected(self):
        with pytest.raises(ValueError):
            TruthTable(["1x"], ["1"])
        with pytest.raises(ValueError):
            TruthTable(["10"], ["-"])

    def test_mismatched_planes_rejected(self):
        with pytest.raises(ValueError):
            TruthTable(["10"], ["1", "0"])

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            TruthTable([], [])


class TestRsgPla:
    def test_personality_round_trip(self):
        pla = generate_pla(TABLE)
        back = extract_personality(pla)
        assert back.and_plane == TABLE.and_plane
        assert back.or_plane == TABLE.or_plane

    def test_layout_logic_matches_table(self):
        back = extract_personality(generate_pla(TABLE))
        for bits in itertools.product([0, 1], repeat=3):
            assert back.evaluate(list(bits)) == TABLE.evaluate(list(bits))

    @given(random_tables())
    @settings(max_examples=25, deadline=None)
    def test_random_personalities_round_trip(self, table):
        pla = generate_pla(table)
        back = extract_personality(pla)
        assert back.and_plane == table.and_plane
        assert back.or_plane == table.or_plane

    def test_structure_counts(self):
        pla = generate_pla(TABLE)
        counts = {}

        def walk(cell):
            for instance in cell.instances:
                counts[instance.celltype] = counts.get(instance.celltype, 0) + 1
                walk(instance.definition)

        walk(pla)
        assert counts["andsq"] == 9
        assert counts["orsq"] == 6
        assert counts["connectao"] == 3
        assert counts["andpull"] == 3
        assert counts["orpull"] == 3
        assert counts["inbuf"] == 3
        assert counts["outbuf"] == 2
        and_x, or_x = TABLE.crosspoints()
        assert counts.get("xtrue", 0) + counts.get("xfalse", 0) == and_x
        assert counts.get("xout", 0) == or_x


class TestHplaBaseline:
    def test_description_compiled_from_shared_sample(self):
        description = compile_description()
        assert description.square_pitch == 10
        assert description.connect_width == 6
        assert description.row_pitch == 10

    def test_same_geometry_as_rsg(self):
        """'The RSG can generate any PLA that HPLA can' — identical output."""
        rsg_pla = generate_pla(TABLE)
        hpla = HplaGenerator().generate(TABLE)
        assert flatten_cell(rsg_pla).same_geometry(flatten_cell(hpla))

    @given(random_tables())
    @settings(max_examples=15, deadline=None)
    def test_equivalence_on_random_tables(self, table):
        assert flatten_cell(generate_pla(table)).same_geometry(
            flatten_cell(HplaGenerator().generate(table))
        )

    def test_three_phase_delayed_binding(self):
        """HPLA's phases: a skeleton can be encoded later (recoding the
        PLA after installation, section 1.2.3)."""
        generator = HplaGenerator()
        skeleton = generator.make_skeleton(3, 2, 3)
        unencoded = flatten_cell(skeleton)
        generator.encode(skeleton, TABLE)
        encoded = flatten_cell(skeleton)
        # Crosspoint transistors (diff strip + cut onto the row metal)
        # appear only in the encoding phase.
        and_x, or_x = TABLE.crosspoints()
        added = encoded.box_count() - unencoded.box_count()
        assert added >= and_x + or_x
        assert flatten_cell(generate_pla(TABLE)).same_geometry(encoded)

    def test_recoding(self):
        """The same skeleton accepts a different personality."""
        generator = HplaGenerator()
        first = generator.generate(TABLE)
        other = TruthTable(["111", "000", "0-1"], ["11", "10", "01"])
        second = generator.generate(other)
        assert extract_personality(second).and_plane == other.and_plane


class TestDecoder:
    """Section 1.2.2: the PLA sample's cells build decoders too."""

    def test_decoder_structure(self):
        decoder = generate_decoder(3)
        back = extract_personality(decoder)
        assert back.num_terms == 8
        assert back.num_outputs == 0

    @pytest.mark.parametrize("n", [1, 2, 3, 4])
    def test_exactly_one_minterm_active(self, n):
        back = extract_personality(generate_decoder(n))
        for value in range(1 << n):
            bits = [(value >> i) & 1 for i in range(n)]
            active = [
                all(
                    (bits[i] == 1 if literal == "1" else bits[i] == 0)
                    for i, literal in enumerate(row)
                )
                for row in back.and_plane
            ]
            assert sum(active) == 1
            assert active.index(True) == value

    def test_decoder_and_pla_share_one_workspace(self):
        """One sample layout, several architectures — the scope argument."""
        rsg = load_pla_library()
        generate_pla(TABLE, rsg=rsg, name="pla0")
        generate_decoder(2, rsg=rsg, name="dec0")
        assert "pla0" in rsg.cells and "dec0" in rsg.cells
