"""Tests for the routers: river staircases, channel left-edge, DRC."""

import random

import pytest

from repro.compact import TECH_A, check_layout
from repro.route import (
    Pin,
    RouteStyle,
    RoutingError,
    channel_route,
    river_route,
    wire_components,
)

RIVER = RouteStyle.single_layer(TECH_A)
CHANNEL = RouteStyle.from_rules(TECH_A)


def assert_clean(wiring, expected_nets):
    """Zero DRC violations and one wire component per net."""
    violations = check_layout(wiring.layers(), TECH_A)
    assert violations == []
    components = wire_components(wiring.layers(), wiring.style)
    assert len(components) == expected_nets
    return components


class TestRouteStyle:
    def test_from_rules_takes_worst_layer(self):
        # contact width 4 and metal1 spacing 3 dominate under TECH_A
        assert CHANNEL.wire_width == 4
        assert CHANNEL.spacing == 3
        assert CHANNEL.pitch == 7
        assert CHANNEL.margin == 7

    def test_single_layer_style(self):
        assert RIVER.is_single_layer
        assert RIVER.wire_width == 3
        assert RIVER.pitch == 6
        assert not CHANNEL.is_single_layer


class TestRiverRouter:
    def test_straight_wires_need_no_tracks(self):
        wiring = river_route([("a", 0, 0), ("b", 10, 10)], RIVER)
        assert wiring.tracks == 0
        assert wiring.vias == 0
        assert_clean(wiring, 2)

    def test_constant_skew_uses_constant_tracks(self):
        for n in (4, 16, 64):
            pairs = [(f"n{i}", i * 14, i * 14 + 28) for i in range(n)]
            wiring = river_route(pairs, RIVER)
            assert wiring.tracks == river_route(pairs[:4], RIVER).tracks
            assert_clean(wiring, n)

    def test_left_and_right_shifts_coexist(self):
        pairs = [("l", 30, 6), ("r", 40, 64), ("s", 80, 80)]
        wiring = river_route(pairs, RIVER)
        assert_clean(wiring, 3)

    def test_crossing_rejected(self):
        with pytest.raises(RoutingError):
            river_route([("a", 0, 20), ("b", 10, 6)], RIVER)

    def test_close_pins_rejected(self):
        with pytest.raises(RoutingError):
            river_route([("a", 0, 0), ("b", 3, 3)], RIVER)

    def test_duplicate_net_names_rejected(self):
        with pytest.raises(RoutingError):
            river_route([("a", 0, 0), ("a", 10, 10)], RIVER)

    def test_randomised_monotone_buses_route_clean(self):
        rng = random.Random(5)
        for _ in range(25):
            n = rng.randint(1, 30)
            xb = xt = 0
            pairs = []
            for i in range(n):
                xb += rng.randint(RIVER.pitch, 30)
                xt += rng.randint(RIVER.pitch, 30)
                pairs.append((f"n{i}", xb, xt))
            wiring = river_route(pairs, RIVER)
            assert_clean(wiring, n)


class TestChannelRouter:
    def test_two_pin_swap(self):
        pins = [
            Pin(0, "bottom", "a", "metal1"),
            Pin(35, "top", "a", "metal1"),
            Pin(14, "bottom", "b", "metal1"),
            Pin(21, "top", "b", "metal1"),
        ]
        wiring = channel_route(pins, CHANNEL)
        assert wiring.tracks == 2
        assert_clean(wiring, 2)

    def test_vertical_constraint_orders_tracks(self):
        # Column 14 holds a top pin of A and a bottom pin of B: A's
        # trunk must end up above B's.
        pins = [
            Pin(0, "bottom", "A"),
            Pin(14, "top", "A"),
            Pin(14, "bottom", "B"),
            Pin(28, "top", "B"),
        ]
        wiring = channel_route(pins, CHANNEL)
        a_trunk = next(b for l, b in wiring.wires["A"] if l == CHANNEL.trunk_layer)
        b_trunk = next(b for l, b in wiring.wires["B"] if l == CHANNEL.trunk_layer)
        assert a_trunk.ymin > b_trunk.ymax
        assert_clean(wiring, 2)

    def test_pin_dogleg_breaks_cycle(self):
        # A's extra bottom pin at 20 splits its trunk: without the
        # dogleg, A-above-B (col 10) and B-above-A (col 30) would cycle.
        pins = [
            Pin(10, "top", "A"),
            Pin(20, "bottom", "A"),
            Pin(30, "bottom", "A"),
            Pin(10, "bottom", "B"),
            Pin(30, "top", "B"),
        ]
        wiring = channel_route(pins, CHANNEL)
        trunks = [b for l, b in wiring.wires["A"] if l == CHANNEL.trunk_layer]
        assert len(trunks) == 2
        assert_clean(wiring, 2)

    def test_mid_channel_dogleg_breaks_rotation_cycle(self):
        # A 3-net rotation has a cyclic VCG with no pin to split at;
        # the router must invent a dogleg column.
        pins = [
            Pin(0, "bottom", "a"), Pin(28, "top", "a"),
            Pin(14, "bottom", "b"), Pin(0, "top", "b"),
            Pin(28, "bottom", "c"), Pin(14, "top", "c"),
        ]
        wiring = channel_route(pins, CHANNEL)
        assert_clean(wiring, 3)

    def test_unbreakable_cycle_rejected(self):
        # Two nets sharing both columns in opposite order leave no room
        # for any dogleg: must refuse, not loop or emit shorts.
        pins = [
            Pin(0, "bottom", "A"), Pin(7, "top", "A"),
            Pin(7, "bottom", "B"), Pin(0, "top", "B"),
        ]
        with pytest.raises(RoutingError, match="cyclic"):
            channel_route(pins, CHANNEL)

    def test_feedthrough_single_column(self):
        pins = [
            Pin(0, "bottom", "f"), Pin(0, "top", "f"),
            Pin(14, "bottom", "g"), Pin(14, "top", "g"),
        ]
        wiring = channel_route(pins, CHANNEL)
        assert_clean(wiring, 2)

    def test_multi_pin_net(self):
        pins = [
            Pin(0, "bottom", "m"), Pin(14, "top", "m"), Pin(28, "bottom", "m"),
            Pin(42, "bottom", "n"), Pin(56, "top", "n"),
        ]
        wiring = channel_route(pins, CHANNEL)
        assert_clean(wiring, 2)

    def test_pin_pads_connect_foreign_layers(self):
        pins = [
            Pin(0, "bottom", "a", "metal1"),
            Pin(14, "top", "a", "diff"),
        ]
        wiring = channel_route(pins, CHANNEL)
        layers = wiring.layers()
        assert "diff" in layers and "metal1" in layers
        assert len(wire_components(layers, CHANNEL)) == 1

    def test_single_pin_net_rejected(self):
        with pytest.raises(RoutingError, match="single pin"):
            channel_route([Pin(0, "bottom", "x"), Pin(14, "top", "y"),
                           Pin(28, "bottom", "y")], CHANNEL)

    def test_close_columns_rejected(self):
        pins = [
            Pin(0, "bottom", "a"), Pin(3, "top", "a"),
        ]
        with pytest.raises(RoutingError, match="closer than the pitch"):
            channel_route(pins, CHANNEL)

    def test_shared_column_same_side_rejected(self):
        pins = [
            Pin(0, "bottom", "a"), Pin(0, "bottom", "b"),
        ]
        with pytest.raises(RoutingError, match="share column"):
            channel_route(pins, CHANNEL)

    def test_randomised_permutations_route_clean(self):
        rng = random.Random(7)
        for _ in range(25):
            n = rng.randint(2, 14)
            perm = list(range(n))
            rng.shuffle(perm)
            pins = []
            for i in range(n):
                pins.append(Pin(i * 14, "bottom", f"n{i}", "metal1"))
                pins.append(Pin(perm[i] * 14, "top", f"n{i}",
                                rng.choice(["metal1", "poly", ""])))
            wiring = channel_route(pins, CHANNEL)
            assert_clean(wiring, n)

    def test_randomised_multi_pin_nets_route_clean(self):
        rng = random.Random(11)
        for _ in range(15):
            n = rng.randint(2, 6)
            columns = iter(range(0, 3000, 14))
            pins = []
            for i in range(n):
                for _ in range(rng.randint(2, 5)):
                    pins.append(
                        Pin(next(columns), rng.choice(["bottom", "top"]),
                            f"m{i}", "metal1")
                    )
            wiring = channel_route(pins, CHANNEL)
            assert_clean(wiring, n)


class TestWiring:
    def test_as_cell_carries_boxes_and_labels(self):
        wiring = river_route([("sig", 0, 20)], RIVER)
        cell = wiring.as_cell("w")
        assert len(cell.boxes) == len(wiring.wires["sig"])
        assert [label.text for label in cell.labels] == ["sig"]

    def test_summary_mentions_router_and_tracks(self):
        wiring = river_route([("sig", 0, 20)], RIVER)
        text = wiring.summary()
        assert "river" in text and "tracks" in text
