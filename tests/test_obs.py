"""Unit coverage of the flight-recorder package (`repro.obs`).

Tracing: span lifecycle, tracer parenting, the no-op disabled path,
and token propagation.  Metrics: instrument semantics, merging, and
the Prometheus text rendering.  Rendering: the JSONL codec and the
indented tree.
"""

import json
import re
import threading

import pytest

from repro.obs import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    Span,
    Tracer,
    activated,
    active,
    annotate,
    is_enabled,
    parse_token,
    propagation_token,
    render_trace,
    span,
    spans_from_jsonl,
    spans_to_jsonl,
)
from repro.obs.trace import _NOOP, local_enabled, new_id, service_enabled


class TestSpan:
    def test_begin_finish_stamps_times(self):
        tested = Span(name="op", trace_id="t").begin()
        assert tested.start_s > 0
        tested.finish()
        assert tested.duration_s >= 0
        assert tested.status == "ok"

    def test_finish_can_override_status(self):
        tested = Span(name="op", trace_id="t").begin().finish(status="error")
        assert tested.status == "error"

    def test_dict_round_trip(self):
        original = Span(name="op", trace_id="t", parent_id="p").begin()
        original.set(kernel="numpy", passes=3).finish()
        rebuilt = Span.from_dict(original.to_dict())
        assert rebuilt == original

    def test_to_dict_omits_empty_attributes(self):
        assert "attributes" not in Span(name="op", trace_id="t").to_dict()

    def test_ids_are_unique_hex(self):
        ids = {new_id() for _ in range(64)}
        assert len(ids) == 64
        assert all(re.fullmatch(r"[0-9a-f]{16}", i) for i in ids)


class TestTracer:
    def test_nested_spans_parent_correctly(self):
        tracer = Tracer()
        with tracer.span("outer") as outer:
            with tracer.span("inner") as inner:
                pass
        assert outer.parent_id is None
        assert inner.parent_id == outer.span_id
        assert [s.name for s in tracer.finished()] == ["inner", "outer"]

    def test_exception_marks_error_and_propagates(self):
        tracer = Tracer()
        with pytest.raises(ValueError):
            with tracer.span("doomed"):
                raise ValueError("boom")
        (doomed,) = tracer.finished()
        assert doomed.status == "error"
        assert tracer.current() is None

    def test_drain_clears(self):
        tracer = Tracer()
        with tracer.span("op"):
            pass
        assert len(tracer.drain()) == 1
        assert tracer.finished() == []

    def test_threads_get_independent_stacks(self):
        tracer = Tracer()
        seen = {}

        def worker():
            seen["current"] = tracer.current()
            with tracer.span("threaded") as threaded:
                seen["parent"] = threaded.parent_id

        with tracer.span("main-thread"):
            thread = threading.Thread(target=worker)
            thread.start()
            thread.join()
        # The other thread neither sees nor parents under this thread's span.
        assert seen["current"] is None
        assert seen["parent"] is None

    def test_open_add_collects_manual_spans(self):
        tracer = Tracer()
        manual = tracer.open("manual", worker_pid=42)
        tracer.add(manual.finish())
        (collected,) = tracer.finished()
        assert collected.attributes == {"worker_pid": 42}


class TestActivation:
    def test_disabled_span_is_the_shared_noop(self):
        assert active() is None
        handle = span("anything", key="value")
        assert handle is _NOOP
        with handle as entered:
            entered.set(more="attrs")
        annotate(ignored=True)  # must not raise without a tracer

    def test_activated_routes_module_level_span(self):
        tracer = Tracer()
        with activated(tracer):
            assert is_enabled()
            assert active() is tracer
            with span("op", kernel="numpy"):
                annotate(extra=1)
        assert active() is None
        (only,) = tracer.finished()
        assert only.attributes == {"kernel": "numpy", "extra": 1}

    def test_activation_restores_previous_tracer(self):
        outer, inner = Tracer(), Tracer()
        with activated(outer):
            with activated(inner):
                assert active() is inner
            assert active() is outer

    def test_policy_helpers_read_environment(self, monkeypatch):
        monkeypatch.delenv("REPRO_TRACE", raising=False)
        assert service_enabled() and not local_enabled()
        monkeypatch.setenv("REPRO_TRACE", "0")
        assert not service_enabled() and not local_enabled()
        monkeypatch.setenv("REPRO_TRACE", "1")
        assert service_enabled() and local_enabled()


class TestPropagation:
    def test_token_round_trip(self):
        tracer = Tracer()
        with tracer.span("client.request") as request:
            token = propagation_token(tracer)
        assert parse_token(token) == (tracer.trace_id, request.span_id)

    def test_token_without_open_span_has_no_parent(self):
        tracer = Tracer()
        assert parse_token(propagation_token(tracer)) == (tracer.trace_id, None)

    @pytest.mark.parametrize("bad", [None, "", ":", ":orphan", 42, b"x:y"])
    def test_malformed_tokens_decode_to_fresh_trace(self, bad):
        assert parse_token(bad) == (None, None)


class TestMetrics:
    def test_counter_only_goes_up(self):
        counter = Counter()
        counter.inc()
        counter.inc(2.5)
        assert counter.value == 3.5
        with pytest.raises(ValueError):
            counter.inc(-1)

    def test_gauge_sets_and_merges(self):
        gauge = Gauge()
        gauge.set(4)
        assert gauge.merge(Gauge(value=2)).value == 6

    def test_histogram_buckets_sum_count(self):
        histogram = Histogram(buckets=(0.1, 1.0))
        for value in (0.05, 0.5, 5.0):
            histogram.observe(value)
        assert histogram.counts == [1, 1, 1]
        assert histogram.count == 3
        assert histogram.total == pytest.approx(5.55)
        assert histogram.mean() == pytest.approx(1.85)

    def test_histogram_merge_requires_same_buckets(self):
        merged = Histogram(buckets=(0.1, 1.0))
        other = Histogram(buckets=(0.1, 1.0))
        other.observe(0.5)
        assert merged.merge(other).count == 1
        with pytest.raises(ValueError):
            merged.merge(Histogram(buckets=(0.2,)))

    def test_registry_get_or_create_by_name_and_labels(self):
        registry = MetricsRegistry()
        first = registry.counter("repro_x_total", "x", labels={"k": "a"})
        again = registry.counter("repro_x_total", labels={"k": "a"})
        other = registry.counter("repro_x_total", labels={"k": "b"})
        assert first is again and first is not other

    def test_prometheus_text_is_well_formed(self):
        registry = MetricsRegistry()
        registry.counter("repro_jobs_total", "Total jobs.").inc(3)
        registry.gauge("repro_queue_depth", "Depth.").set(2)
        histogram = registry.histogram(
            "repro_stage_latency_seconds",
            "Stage wall time.",
            labels={"stage": "compact"},
            buckets=(0.1, 1.0),
        )
        histogram.observe(0.05)
        histogram.observe(0.5)
        text = registry.to_prometheus()
        assert "# HELP repro_jobs_total Total jobs.\n" in text
        assert "# TYPE repro_jobs_total counter\n" in text
        assert "repro_jobs_total 3\n" in text
        assert 'repro_stage_latency_seconds_bucket{stage="compact",le="0.1"} 1' in text
        assert 'repro_stage_latency_seconds_bucket{stage="compact",le="+Inf"} 2' in text
        assert 'repro_stage_latency_seconds_count{stage="compact"} 2' in text
        # Every non-comment line is "<name>[{labels}] <value>".
        sample = re.compile(
            r'^[a-zA-Z_:][a-zA-Z0-9_:]*(\{[a-zA-Z_]+="[^"]*"(,[a-zA-Z_]+="[^"]*")*\})?'
            r" (\+Inf|-Inf|-?[0-9.e+-]+)$"
        )
        for line in text.strip().splitlines():
            if not line.startswith("#"):
                assert sample.match(line), line

    def test_label_values_are_escaped(self):
        registry = MetricsRegistry()
        registry.counter("repro_x_total", labels={"k": 'a"b\\c\nd'}).inc()
        assert r'k="a\"b\\c\nd"' in registry.to_prometheus()

    def test_to_dict_shapes(self):
        registry = MetricsRegistry()
        registry.counter("repro_x_total").inc(2)
        registry.histogram("repro_h", labels={"stage": "emit"}).observe(0.2)
        as_dict = registry.to_dict()
        assert as_dict["repro_x_total"]["value"] == 2
        entry = as_dict['repro_h{stage="emit"}']
        assert entry["count"] == 1 and entry["labels"] == {"stage": "emit"}


class TestRendering:
    def _tree(self):
        tracer = Tracer()
        with tracer.span("client.submit"):
            with tracer.span("client.request", retries=0):
                pass
            with tracer.span("client.wait", state="done"):
                pass
        return tracer.finished()

    def test_jsonl_round_trip(self):
        spans = self._tree()
        payload = spans_to_jsonl(spans)
        lines = payload.decode("utf-8").strip().split("\n")
        assert len(lines) == 3
        assert all(isinstance(json.loads(line), dict) for line in lines)
        assert sorted(
            spans_from_jsonl(payload), key=lambda s: s.span_id
        ) == sorted(spans, key=lambda s: s.span_id)

    def test_render_trace_indents_children(self):
        rendered = render_trace(self._tree())
        lines = rendered.splitlines()
        assert lines[0].startswith("trace ") and "(3 spans)" in lines[0]
        root_indent = len(lines[1]) - len(lines[1].lstrip())
        child_indent = len(lines[2]) - len(lines[2].lstrip())
        assert lines[1].lstrip().startswith("client.submit")
        assert lines[2].lstrip().startswith("client.request")
        assert child_indent > root_indent
        assert "[retries=0]" in lines[2]
        assert lines[3].lstrip().startswith("client.wait")
        assert len(lines[3]) - len(lines[3].lstrip()) == child_indent

    def test_render_trace_marks_errors_and_orphans(self):
        orphan = Span(
            name="lost", trace_id="t", parent_id="gone", status="error"
        )
        rendered = render_trace([orphan])
        assert "lost" in rendered and "!error" in rendered

    def test_render_empty(self):
        assert render_trace([]) == "(empty trace)"
