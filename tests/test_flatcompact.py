"""Tests for the flat compaction driver, rubber band, and DRC."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.compact import (
    TECH_A,
    TECH_B,
    check_layout,
    compact_cell,
    compact_layout,
)
from repro.core import CellDefinition
from repro.geometry import Box
from repro.layout.database import FlatLayout


def make_layout(pairs):
    flat = FlatLayout("t")
    for layer, box in pairs:
        flat.add(layer, box)
    return flat


class TestCompactLayout:
    def test_width_reduced(self):
        layout = make_layout(
            [("diff", Box(0, 0, 2, 10)), ("diff", Box(30, 0, 32, 10))]
        )
        result = compact_layout(layout, TECH_A)
        assert result.width_after < result.width_before
        assert result.width_after == 2 + 3 + 2

    def test_output_legal(self):
        layout = make_layout(
            [
                ("diff", Box(0, 0, 2, 10)),
                ("poly", Box(10, 0, 12, 10)),
                ("metal1", Box(30, 0, 33, 10)),
            ]
        )
        result = compact_layout(layout, TECH_A)
        assert result.violations(TECH_A) == []

    def test_y_axis(self):
        layout = make_layout(
            [("diff", Box(0, 0, 10, 2)), ("diff", Box(0, 30, 10, 32))]
        )
        result = compact_layout(layout, TECH_A, axis="y")
        boxes = sorted(result.layers["diff"], key=lambda box: box.ymin)
        assert boxes[1].ymin - boxes[0].ymax == TECH_A.min_spacing["diff"]

    def test_merge_rejects_sizing(self):
        layout = make_layout([("diff", Box(0, 0, 2, 2))])
        with pytest.raises(ValueError):
            compact_layout(layout, TECH_A, merge=True, sizing={("c", "diff"): 5})

    def test_unknown_method(self):
        layout = make_layout([("diff", Box(0, 0, 2, 2))])
        with pytest.raises(ValueError):
            compact_layout(layout, TECH_A, method="magic")

    def test_technology_transport(self):
        """Design in TECH_A, compact into TECH_B: spacing re-solves to
        the new rules (section 6.1's motivation)."""
        layout = make_layout(
            [("metal1", Box(0, 0, 3, 10)), ("metal1", Box(6, 0, 9, 10))]
        )
        # Legal in A (spacing 3) but illegal in B (spacing 4).
        assert check_layout(layout.layers, TECH_A) == []
        assert check_layout(layout.layers, TECH_B)
        result = compact_layout(layout, TECH_B, width_mode="min")
        assert result.violations(TECH_B) == []


class TestRubberBand:
    def layout(self):
        return make_layout(
            [
                ("metal1", Box(10, 0, 13, 10)),
                ("metal1", Box(10, 10, 13, 20)),  # aligned continuation
                ("metal1", Box(0, 0, 3, 10)),     # pushes only the lower one
            ]
        )

    def test_greedy_introduces_jog(self):
        result = compact_layout(self.layout(), TECH_A, rubber_band=False)
        assert result.jog_before > 0

    def test_rubber_band_removes_jog(self):
        result = compact_layout(self.layout(), TECH_A, rubber_band=True)
        assert result.jog_after == 0

    def test_rubber_band_keeps_width(self):
        greedy = compact_layout(self.layout(), TECH_A, rubber_band=False)
        smooth = compact_layout(self.layout(), TECH_A, rubber_band=True)
        assert smooth.width_after == greedy.width_after

    def test_rubber_band_output_legal(self):
        result = compact_layout(self.layout(), TECH_A, rubber_band=True)
        assert result.violations(TECH_A) == []


class TestCompactCell:
    def test_round_trip(self):
        cell = CellDefinition("wide")
        cell.add_box("diff", 0, 0, 2, 8)
        cell.add_box("diff", 40, 0, 42, 8)
        compacted, result = compact_cell(cell, TECH_A)
        assert compacted.name == "wide_compacted"
        assert compacted.bounding_box().width == result.width_after

    def test_named_output(self):
        cell = CellDefinition("c")
        cell.add_box("poly", 0, 0, 2, 2)
        compacted, _ = compact_cell(cell, TECH_A, name="tight")
        assert compacted.name == "tight"


class TestDrc:
    def test_width_violation(self):
        violations = check_layout({"metal1": [Box(0, 0, 1, 10)]}, TECH_A)
        assert any(v.kind == "width" for v in violations)

    def test_spacing_violation(self):
        violations = check_layout(
            {"diff": [Box(0, 0, 2, 10), Box(3, 0, 5, 10)]}, TECH_A
        )
        assert any(v.kind == "spacing" for v in violations)

    def test_touching_same_layer_legal(self):
        assert (
            check_layout({"diff": [Box(0, 0, 2, 10), Box(2, 0, 4, 10)]}, TECH_A)
            == []
        )

    def test_inter_layer_violation(self):
        violations = check_layout(
            {"poly": [Box(0, 0, 2, 10)], "diff": [Box(2, 0, 4, 10)]}, TECH_B
        )
        # poly-diff needs 1 in TECH_B but gap 0 is intentional contact.
        assert violations == []
        violations = check_layout(
            {"poly": [Box(0, 0, 2, 10)], "diff": [Box(2, 5, 4, 15)]}, TECH_B
        )
        assert violations == []

    def test_inter_layer_gap_too_small(self):
        # TECH_A requires poly-diff spacing 1; a gap of exactly 1 passes...
        ok = check_layout(
            {"poly": [Box(0, 0, 2, 10)], "diff": [Box(3, 0, 5, 10)]}, TECH_A
        )
        assert ok == []

    def test_violation_str(self):
        violations = check_layout({"metal1": [Box(0, 0, 1, 10)]}, TECH_A)
        assert "width violation" in str(violations[0])


class TestCompactGeneratedCells:
    def test_multiplier_leaf_cell_compacts_legally(self):
        """Compact the multiplier's basic cell into both technologies."""
        from repro.multiplier import load_multiplier_library

        rsg = load_multiplier_library()
        basic = rsg.cells.lookup("basiccell")
        for rules in (TECH_A, TECH_B):
            compacted, result = compact_cell(basic, rules, width_mode="min")
            flat_layers = {
                layer_box.layer: [] for layer_box in compacted.boxes
            }
            for layer_box in compacted.boxes:
                flat_layers[layer_box.layer].append(layer_box.box)
            assert check_layout(flat_layers, rules) == []
