"""Tests for environments and Figure 4.1 scoping."""

import pytest

from repro.core import CellTable
from repro.core.errors import UnboundVariableError
from repro.lang import Alias, GlobalEnvironment


@pytest.fixture
def setup():
    cells = CellTable()
    cells.new_cell("basiccell")
    globals_ = GlobalEnvironment(cell_table=cells)
    return cells, globals_


class TestLookupChain:
    def test_frame_first(self, setup):
        cells, globals_ = setup
        globals_.bind("x", 1)
        frame = globals_.frame("proc")
        frame.bind("x", 2)
        assert frame.lookup("x") == 2

    def test_falls_to_global(self, setup):
        _, globals_ = setup
        globals_.bind("x", 7)
        assert globals_.frame().lookup("x") == 7

    def test_falls_to_cell_table(self, setup):
        cells, globals_ = setup
        frame = globals_.frame()
        assert frame.lookup("basiccell") is cells.lookup("basiccell")

    def test_unbound(self, setup):
        _, globals_ = setup
        with pytest.raises(UnboundVariableError):
            globals_.frame().lookup("ghost")

    def test_figure_41_sequence(self, setup):
        """corecell = basiccell: five lookups ending at the cell table."""
        cells, globals_ = setup
        globals_.bind("corecell", Alias("basiccell"))
        frame = globals_.frame("mcell")
        assert frame.lookup("corecell") is cells.lookup("basiccell")

    def test_alias_chain(self, setup):
        cells, globals_ = setup
        globals_.bind("a", Alias("b"))
        globals_.bind("b", Alias("basiccell"))
        assert globals_.frame().lookup("a") is cells.lookup("basiccell")

    def test_alias_loop_detected(self, setup):
        _, globals_ = setup
        globals_.bind("a", Alias("b"))
        globals_.bind("b", Alias("a"))
        with pytest.raises(UnboundVariableError):
            globals_.frame().lookup("a")

    def test_frame_binding_shadows_cell(self, setup):
        cells, globals_ = setup
        frame = globals_.frame()
        frame.bind("basiccell", 42)
        assert frame.lookup("basiccell") == 42


class TestIndexedKeys:
    def test_indexed_binding(self, setup):
        _, globals_ = setup
        frame = globals_.frame()
        frame.bind(("l", (1,)), "first")
        frame.bind(("l", (2,)), "second")
        assert frame.lookup(("l", (1,))) == "first"
        assert frame.local(("l", (2,))) == "second"

    def test_indexed_distinct_from_simple(self, setup):
        _, globals_ = setup
        frame = globals_.frame()
        frame.bind("l", "simple")
        frame.bind(("l", (1,)), "indexed")
        assert frame.lookup("l") == "simple"
        assert frame.lookup(("l", (1,))) == "indexed"

    def test_two_dimensional(self, setup):
        _, globals_ = setup
        frame = globals_.frame()
        frame.bind(("a", (2, 3)), "cell23")
        assert frame.local(("a", (2, 3))) == "cell23"


class TestSubcellAccess:
    def test_local_reads_frame_only(self, setup):
        _, globals_ = setup
        globals_.bind("x", "global")
        frame = globals_.frame("mrow")
        with pytest.raises(UnboundVariableError) as excinfo:
            frame.local("x")
        assert "mrow" in str(excinfo.value)

    def test_environment_outlives_procedure(self, setup):
        """Macros return their environment; bindings stay readable."""
        _, globals_ = setup
        frame = globals_.frame("mstack")
        frame.bind("base", "node0")
        # Long after the 'call', the returned environment still answers.
        assert frame.local("base") == "node0"
