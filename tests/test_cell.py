"""Tests for cells, instances, and the cell table (sections 2.1, 4.3)."""

import pytest

from repro.core import CellDefinition, CellTable, Instance
from repro.core.errors import DuplicateCellError, UnknownCellError
from repro.geometry import Box, EAST, NORTH, SOUTH, Transform, Vec2


def make_leaf(name="leaf"):
    cell = CellDefinition(name)
    cell.add_box("metal", 0, 0, 10, 4)
    cell.add_box("poly", 2, 0, 4, 8)
    cell.add_port("in", 0, 2, "metal")
    return cell


class TestCellDefinition:
    def test_bounding_box_over_geometry(self):
        cell = make_leaf()
        assert cell.bounding_box() == Box(0, 0, 10, 8)

    def test_empty_cell_has_no_bbox(self):
        assert CellDefinition("empty").bounding_box() is None

    def test_bounding_box_includes_placed_instances(self):
        leaf = make_leaf()
        parent = CellDefinition("parent")
        parent.add_instance(leaf, Vec2(100, 0), NORTH)
        assert parent.bounding_box() == Box(100, 0, 110, 8)

    def test_unplaced_instances_ignored_by_bbox(self):
        leaf = make_leaf()
        parent = CellDefinition("parent")
        parent.add_instance(leaf)  # partial instance
        assert parent.bounding_box() is None

    def test_port_lookup(self):
        cell = make_leaf()
        assert cell.port("in").position == Vec2(0, 2)
        with pytest.raises(KeyError):
            cell.port("nope")

    def test_layers(self):
        assert make_leaf().layers() == ("metal", "poly")


class TestFlatten:
    def test_flatten_applies_hierarchy_of_transforms(self):
        leaf = make_leaf()
        mid = CellDefinition("mid")
        mid.add_instance(leaf, Vec2(20, 0), NORTH)
        top = CellDefinition("top")
        top.add_instance(mid, Vec2(0, 100), SOUTH)
        boxes = list(top.flatten())
        # leaf metal box (0,0,10,4) -> +20 -> South about origin -> +(0,100)
        expected = Box(0, 0, 10, 4).translated(Vec2(20, 0)).transformed(SOUTH, Vec2(0, 100))
        assert any(b.layer == "metal" and b.box == expected for b in boxes)

    def test_flatten_counts(self):
        leaf = make_leaf()
        top = CellDefinition("top")
        for i in range(5):
            top.add_instance(leaf, Vec2(i * 12, 0), NORTH)
        assert len(list(top.flatten())) == 10  # 2 boxes x 5 instances

    def test_flatten_ports_hierarchical_names(self):
        leaf = make_leaf()
        top = CellDefinition("top")
        top.add_instance(leaf, Vec2(0, 0), NORTH, name="u1")
        ports = list(top.flatten_ports())
        assert ports[0].name == "u1/in"

    def test_count_instances_recursive(self):
        leaf = make_leaf()
        mid = CellDefinition("mid")
        mid.add_instance(leaf, Vec2(0, 0), NORTH)
        mid.add_instance(leaf, Vec2(12, 0), NORTH)
        top = CellDefinition("top")
        top.add_instance(mid, Vec2(0, 0), NORTH)
        top.add_instance(mid, Vec2(0, 20), NORTH)
        assert top.count_instances() == 2
        assert top.count_instances(recursive=True) == 6


class TestBoundingBoxCache:
    """The cached bbox must invalidate on every mutation path."""

    def test_repeated_queries_are_stable(self):
        cell = make_leaf()
        assert cell.bounding_box() == cell.bounding_box()
        assert cell.bounding_box() == cell.bounding_box_reference()

    def test_invalidates_after_add_box(self):
        cell = make_leaf()
        assert cell.bounding_box() == Box(0, 0, 10, 8)
        cell.add_box("metal", -5, -5, 0, 0)
        assert cell.bounding_box() == Box(-5, -5, 10, 8)
        assert cell.bounding_box() == cell.bounding_box_reference()

    def test_invalidates_after_add_instance(self):
        leaf = make_leaf()
        parent = CellDefinition("parent")
        parent.add_instance(leaf, Vec2(0, 0), NORTH)
        assert parent.bounding_box() == Box(0, 0, 10, 8)
        parent.add_instance(leaf, Vec2(100, 0), NORTH)
        assert parent.bounding_box() == Box(0, 0, 110, 8)
        assert parent.bounding_box() == parent.bounding_box_reference()

    def test_invalidates_after_place(self):
        leaf = make_leaf()
        parent = CellDefinition("parent")
        instance = parent.add_instance(leaf)  # partial instance
        assert parent.bounding_box() is None
        instance.place(Vec2(50, 0), NORTH)
        assert parent.bounding_box() == Box(50, 0, 60, 8)
        assert parent.bounding_box() == parent.bounding_box_reference()

    def test_invalidates_after_location_assignment(self):
        leaf = make_leaf()
        parent = CellDefinition("parent")
        instance = parent.add_instance(leaf, Vec2(0, 0), NORTH)
        parent.bounding_box()
        instance.location = Vec2(30, 0)
        assert parent.bounding_box() == Box(30, 0, 40, 8)

    def test_invalidates_after_definition_swap(self):
        leaf = make_leaf()
        bigger = CellDefinition("bigger")
        bigger.add_box("metal", 0, 0, 100, 80)
        parent = CellDefinition("parent")
        instance = parent.add_instance(leaf, Vec2(0, 0), NORTH)
        assert parent.bounding_box() == Box(0, 0, 10, 8)
        instance.definition = bigger
        assert parent.bounding_box() == Box(0, 0, 100, 80)
        assert parent.bounding_box() == parent.bounding_box_reference()
        assert list(parent.flatten()) == list(parent.flatten_reference())

    def test_invalidates_through_shared_child_mutation(self):
        leaf = make_leaf()
        parent = CellDefinition("parent")
        parent.add_instance(leaf, Vec2(0, 0), NORTH)
        grandparent = CellDefinition("grandparent")
        grandparent.add_instance(parent, Vec2(0, 0), NORTH)
        assert grandparent.bounding_box() == Box(0, 0, 10, 8)
        leaf.add_box("metal", 0, 0, 40, 2)
        assert grandparent.bounding_box() == Box(0, 0, 40, 8)

    def test_shared_instance_invalidates_every_owner(self):
        """adopt() must not steal tracking from a previous owner: a
        later placement change invalidates both cells' caches."""
        leaf = make_leaf()
        first = CellDefinition("first")
        instance = first.add_instance(leaf, Vec2(0, 0), NORTH)
        second = CellDefinition("second")
        second.adopt(instance)
        assert first.bounding_box() == Box(0, 0, 10, 8)
        assert second.bounding_box() == Box(0, 0, 10, 8)
        instance.location = Vec2(100, 0)
        assert first.bounding_box() == Box(100, 0, 110, 8)
        assert first.bounding_box() == first.bounding_box_reference()
        assert second.bounding_box() == Box(100, 0, 110, 8)

    def test_graph_expansion_adopts_instances(self):
        """mk_cell goes through adopt(): re-placing a node's instance
        afterwards must invalidate the owning cell's bbox."""
        from repro.core import Rsg
        from repro.core.interface import Interface

        rsg = Rsg()
        cell = rsg.define_cell("unit")
        cell.add_box("metal", 0, 0, 4, 4)
        rsg.interfaces.declare("unit", "unit", 1, Interface(Vec2(10, 0), NORTH))
        a = rsg.mk_instance("unit")
        rsg.connect(a, rsg.mk_instance("unit"), 1)
        built = rsg.mk_cell("pair", a)
        assert built.bounding_box() == Box(0, 0, 14, 4)
        built.instances[1].location = Vec2(20, 0)
        assert built.bounding_box() == Box(0, 0, 24, 4)


class TestInstance:
    def test_partial_instance(self):
        instance = Instance(make_leaf())
        assert not instance.is_placed
        with pytest.raises(ValueError):
            _ = instance.transform

    def test_place(self):
        instance = Instance(make_leaf())
        instance.place(Vec2(5, 5), EAST)
        assert instance.is_placed
        assert instance.transform == Transform(Vec2(5, 5), EAST)

    def test_bounding_box_transforms(self):
        instance = Instance(make_leaf(), Vec2(100, 100), SOUTH)
        assert instance.bounding_box() == Box(90, 92, 100, 100)

    def test_default_orientation_north(self):
        parent = CellDefinition("p")
        instance = parent.add_instance(make_leaf(), Vec2(1, 1))
        assert instance.orientation == NORTH


class TestCellTable:
    def test_define_and_lookup(self):
        table = CellTable()
        cell = table.new_cell("x")
        assert table.lookup("x") is cell
        assert "x" in table
        assert len(table) == 1

    def test_duplicate_rejected(self):
        table = CellTable()
        table.new_cell("x")
        with pytest.raises(DuplicateCellError):
            table.new_cell("x")

    def test_replace(self):
        table = CellTable()
        table.new_cell("x")
        replacement = table.new_cell("x", replace=True)
        assert table.lookup("x") is replacement

    def test_unknown(self):
        with pytest.raises(UnknownCellError):
            CellTable().lookup("ghost")

    def test_get_returns_none(self):
        assert CellTable().get("ghost") is None

    def test_names_in_insertion_order(self):
        table = CellTable()
        table.new_cell("b")
        table.new_cell("a")
        assert table.names() == ("b", "a")
