"""Tests for the ASCII and SVG renderers."""

from repro.core import CellDefinition
from repro.geometry import Box
from repro.layout import ascii_render, svg_render
from repro.layout.database import FlatLayout


def sample_layout():
    flat = FlatLayout("t")
    flat.add("metal", Box(0, 0, 10, 4))
    flat.add("poly", Box(2, 0, 4, 8))
    return flat


class TestAscii:
    def test_contains_legend(self):
        art = ascii_render(sample_layout())
        assert "metal" in art and "poly" in art

    def test_empty(self):
        assert ascii_render(FlatLayout("e")) == "(empty layout)"

    def test_decimation(self):
        flat = FlatLayout("big")
        flat.add("m", Box(0, 0, 1000, 1000))
        art = ascii_render(flat, max_width=20, max_height=20)
        body = art.splitlines()[0]
        assert len(body) <= 20
        assert "scale 1:" in art

    def test_cell_input(self):
        cell = CellDefinition("c")
        cell.add_box("m", 0, 0, 4, 4)
        assert "#" in ascii_render(cell)

    def test_later_layers_overwrite(self):
        art = ascii_render(sample_layout(), max_width=40, max_height=20)
        assert "*" in art  # poly drawn over metal


class TestSvg:
    def test_valid_structure(self):
        svg = svg_render(sample_layout())
        assert svg.startswith("<svg")
        assert svg.rstrip().endswith("</svg>")
        assert svg.count("<g ") == 2
        assert svg.count("<rect") >= 3  # background + 2 boxes

    def test_empty(self):
        assert "<svg" in svg_render(FlatLayout("e"))

    def test_y_flip(self):
        flat = FlatLayout("t")
        flat.add("m", Box(0, 0, 2, 2))
        flat.add("m", Box(0, 8, 2, 10))
        svg = svg_render(flat, scale=1.0)
        # The higher box (y 8..10) must appear nearer the SVG top (y=0).
        import re

        ys = [float(m) for m in re.findall(r'<rect x="[\d.]+" y="([\d.]+)"', svg)]
        assert ys[1] < ys[0] or ys[0] < ys[1]  # both present, distinct
        assert 0.0 in ys
