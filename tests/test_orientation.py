"""Tests for the D4 orientation group (paper section 2.6, Figure 2.5)."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.geometry import (
    ALL_ORIENTATIONS,
    EAST,
    FLIP_EAST,
    FLIP_NORTH,
    FLIP_SOUTH,
    FLIP_WEST,
    NORTH,
    REFLECTIONS,
    ROTATIONS,
    SOUTH,
    WEST,
    Orientation,
)

orientations = st.sampled_from(ALL_ORIENTATIONS)
coords = st.integers(min_value=-1000, max_value=1000)


class TestFigure25:
    """The coordinate-mapping table of Figure 2.5, verbatim."""

    def test_north_is_identity(self):
        assert NORTH.apply(3, 5) == (3, 5)

    def test_south_negates_both(self):
        assert SOUTH.apply(3, 5) == (-3, -5)

    def test_east_maps_x_to_y(self):
        # East: x coordinate <- y, y coordinate <- -x
        assert EAST.apply(3, 5) == (5, -3)

    def test_west_maps_x_to_minus_y(self):
        assert WEST.apply(3, 5) == (-5, 3)

    @pytest.mark.parametrize(
        "orientation, expected",
        [(NORTH, (3, 5)), (SOUTH, (-3, -5)), (EAST, (5, -3)), (WEST, (-5, 3))],
    )
    def test_table_rows(self, orientation, expected):
        assert orientation.apply(3, 5) == expected


class TestGroupStructure:
    def test_exactly_eight_orientations(self):
        assert len(ALL_ORIENTATIONS) == 8
        assert len(set(ALL_ORIENTATIONS)) == 8

    def test_rotations_and_reflections_partition(self):
        assert set(ROTATIONS) | set(REFLECTIONS) == set(ALL_ORIENTATIONS)
        assert not set(ROTATIONS) & set(REFLECTIONS)

    def test_interning(self):
        assert Orientation(1, 0) is WEST
        assert Orientation(5, 0) is WEST  # r mod 4
        assert Orientation(0, 2) is FLIP_NORTH  # k normalised to bool

    def test_immutability(self):
        with pytest.raises(AttributeError):
            NORTH.r = 2

    @given(orientations, orientations)
    def test_closure(self, a, b):
        assert a.compose(b) in ALL_ORIENTATIONS

    @given(orientations, orientations, orientations)
    def test_associativity(self, a, b, c):
        assert a.compose(b).compose(c) == a.compose(b.compose(c))

    @given(orientations)
    def test_identity_element(self, a):
        assert NORTH.compose(a) == a
        assert a.compose(NORTH) == a

    @given(orientations)
    def test_inverse(self, a):
        assert a.compose(a.inverse()) == NORTH
        assert a.inverse().compose(a) == NORTH

    @given(orientations)
    def test_reflections_are_involutions(self, a):
        """Section 2.6.1: if k = 1 then O^-1 = O."""
        if a.is_reflection:
            assert a.inverse() == a
            assert a.compose(a) == NORTH

    @given(orientations, orientations)
    def test_composition_matches_matrices(self, a, b):
        ma = np.array(a.matrix())
        mb = np.array(b.matrix())
        mc = np.array(a.compose(b).matrix())
        assert (ma @ mb == mc).all()

    @given(orientations, coords, coords)
    def test_apply_matches_matrix(self, a, x, y):
        matrix = np.array(a.matrix())
        assert tuple(matrix @ np.array([x, y])) == a.apply(x, y)

    @given(orientations)
    def test_determinant_signs(self, a):
        det = int(np.linalg.det(np.array(a.matrix())))
        assert det == (-1 if a.is_reflection else 1)

    def test_group_is_nonabelian(self):
        assert EAST.compose(FLIP_NORTH) != FLIP_NORTH.compose(EAST)

    @given(orientations, orientations)
    def test_inverse_of_composition(self, a, b):
        assert a.compose(b).inverse() == b.inverse().compose(a.inverse())


class TestCompositionRules:
    """The explicit composition formulas of section 2.6.2."""

    @given(orientations, orientations)
    def test_rotation_part(self, o2, o1):
        composed = o2.compose(o1)
        if o2.k:
            assert composed.r == (o2.r - o1.r) % 4
        else:
            assert composed.r == (o2.r + o1.r) % 4

    @given(orientations, orientations)
    def test_reflection_part_is_xor(self, o2, o1):
        assert o2.compose(o1).k == (o2.k ^ o1.k)


class TestNames:
    @pytest.mark.parametrize(
        "name, orientation",
        [
            ("north", NORTH),
            ("south", SOUTH),
            ("east", EAST),
            ("west", WEST),
            ("flip_north", FLIP_NORTH),
            ("flip_east", FLIP_EAST),
            ("flip_south", FLIP_SOUTH),
            ("flip_west", FLIP_WEST),
            ("fnorth", FLIP_NORTH),
            ("NORTH", NORTH),
            (" East ", EAST),
        ],
    )
    def test_from_name(self, name, orientation):
        assert Orientation.from_name(name) == orientation

    def test_from_name_rejects_garbage(self):
        with pytest.raises(ValueError):
            Orientation.from_name("northwest")

    @given(orientations)
    def test_name_round_trip(self, a):
        assert Orientation.from_name(a.name) == a

    def test_repr(self):
        assert repr(FLIP_WEST) == "Orientation.FLIP_WEST"


class TestAxisBehaviour:
    @given(orientations)
    def test_swaps_axes_iff_odd_rotation(self, a):
        vertical = a.apply(0, 1)
        swapped = vertical[1] == 0
        assert a.swaps_axes() == swapped

    def test_manhattan_preserving(self):
        for a in ALL_ORIENTATIONS:
            x, y = a.apply(3, 7)
            assert abs(x) + abs(y) == 10
