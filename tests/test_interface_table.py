"""Tests for the interface table (paper section 2.4)."""

import pytest

from repro.core import Interface, InterfaceTable
from repro.core.errors import DuplicateInterfaceError, UnknownInterfaceError
from repro.geometry import EAST, NORTH, SOUTH, WEST, Vec2


@pytest.fixture
def table():
    return InterfaceTable()


class TestBilaterality:
    """Loading I_ab also loads I_ba (section 2.4's key property)."""

    def test_reverse_loaded_automatically(self, table):
        i = Interface(Vec2(10, 0), EAST)
        table.declare("a", "b", 1, i)
        assert table.lookup("b", "a", 1) == i.inverse()

    def test_reverse_of_reverse(self, table):
        i = Interface(Vec2(3, 4), WEST)
        table.declare("a", "b", 2, i)
        assert table.lookup("a", "b", 2) == i
        assert table.lookup("b", "a", 2).inverse() == i

    def test_same_celltype_keeps_reference_direction(self, table):
        """For A-A interfaces only the declared direction is stored; the
        inverse is reachable via lookup_reverse (section 3.4)."""
        i = Interface(Vec2(5, 0), NORTH)
        table.declare("a", "a", 1, i)
        assert table.lookup("a", "a", 1) == i
        assert table.lookup_reverse("a", "a", 1) == i.inverse()

    def test_len_counts_both_directions(self, table):
        table.declare("a", "b", 1, Interface(Vec2(1, 0), NORTH))
        assert len(table) == 2
        table.declare("c", "c", 1, Interface(Vec2(1, 0), NORTH))
        assert len(table) == 3


class TestFamilies:
    """Figure 2.3: several distinct legal interfaces per cell pair."""

    def test_multiple_indices(self, table):
        first = Interface(Vec2(10, 0), WEST)
        second = Interface(Vec2(0, -10), SOUTH)
        table.declare("a", "b", 1, first)
        table.declare("a", "b", 2, second)
        assert table.lookup("a", "b", 1) == first
        assert table.lookup("a", "b", 2) == second
        assert table.indices_between("a", "b") == [1, 2]

    def test_next_index_fills_gaps(self, table):
        table.declare("a", "b", 1, Interface(Vec2(1, 0), NORTH))
        table.declare("a", "b", 3, Interface(Vec2(2, 0), NORTH))
        assert table.next_index("a", "b") == 2

    def test_next_index_empty(self, table):
        assert table.next_index("x", "y") == 1


class TestErrors:
    def test_unknown_interface(self, table):
        with pytest.raises(UnknownInterfaceError):
            table.lookup("a", "b", 1)

    def test_duplicate_rejected(self, table):
        table.declare("a", "b", 1, Interface(Vec2(1, 0), NORTH))
        with pytest.raises(DuplicateInterfaceError):
            table.declare("a", "b", 1, Interface(Vec2(2, 0), NORTH))

    def test_replace_allows_overwrite(self, table):
        table.declare("a", "b", 1, Interface(Vec2(1, 0), NORTH))
        table.declare("a", "b", 1, Interface(Vec2(2, 0), NORTH), replace=True)
        assert table.lookup("a", "b", 1).vector == Vec2(2, 0)

    def test_reverse_key_collision_detected(self, table):
        """Declaring (a,b) then (b,a) under the same index collides with
        the auto-loaded inverse."""
        table.declare("a", "b", 1, Interface(Vec2(1, 0), NORTH))
        with pytest.raises(DuplicateInterfaceError):
            table.declare("b", "a", 1, Interface(Vec2(5, 0), NORTH))


class TestQueries:
    def test_has(self, table):
        table.declare("a", "b", 1, Interface(Vec2(1, 0), NORTH))
        assert table.has("a", "b", 1)
        assert table.has("b", "a", 1)
        assert not table.has("a", "b", 2)

    def test_cells(self, table):
        table.declare("x", "y", 1, Interface(Vec2(1, 0), NORTH))
        table.declare("y", "z", 1, Interface(Vec2(1, 0), NORTH))
        assert table.cells() == ("x", "y", "z")

    def test_iteration(self, table):
        table.declare("a", "b", 1, Interface(Vec2(1, 0), NORTH))
        keys = {key for key, _ in table}
        assert keys == {("a", "b", 1), ("b", "a", 1)}
