"""Tests for derived layers and contact expansion (section 6.4.3, Fig 6.9)."""

import pytest

from repro.compact import (
    TECH_A,
    TECH_B,
    check_layout,
    cut_count,
    expand_contact,
    expand_gate,
    expand_layout,
)
from repro.geometry import Box


class TestCutCount:
    def test_minimum_contact_single_cut(self):
        assert cut_count(4, TECH_A.contact) == 1

    def test_cuts_scale_with_extent(self):
        rule = TECH_A.contact  # cut 2, spacing 2, overlap 1
        assert cut_count(4, rule) == 1    # usable 2 -> one cut
        assert cut_count(8, rule) == 2    # usable 6 -> two cuts
        assert cut_count(12, rule) == 3
        assert cut_count(16, rule) == 4

    def test_never_zero(self):
        assert cut_count(1, TECH_A.contact) == 1


class TestExpandContact:
    def test_small_contact(self):
        out = expand_contact(Box(0, 0, 4, 4), TECH_A.contact)
        layers = [layer for layer, _ in out]
        assert layers.count("metal1") == 1
        assert layers.count("poly") == 1
        assert layers.count("cut") == 1

    def test_figure_69_large_contact(self):
        """A large derived contact expands into a grid of cuts."""
        out = expand_contact(Box(0, 0, 12, 8), TECH_A.contact)
        cuts = [box for layer, box in out if layer == "cut"]
        assert len(cuts) == 6  # 3 columns x 2 rows

    def test_cuts_inside_contact(self):
        contact = Box(0, 0, 16, 12)
        for layer, box in expand_contact(contact, TECH_A.contact):
            if layer == "cut":
                assert contact.contains_box(box)

    def test_cuts_respect_spacing(self):
        out = expand_contact(Box(0, 0, 16, 4), TECH_A.contact)
        cuts = sorted(
            (box for layer, box in out if layer == "cut"),
            key=lambda box: box.xmin,
        )
        for a, b in zip(cuts, cuts[1:]):
            if a.ymin == b.ymin:
                assert b.xmin - a.xmax >= TECH_A.contact.cut_spacing

    def test_grid_centered(self):
        out = expand_contact(Box(0, 0, 10, 10), TECH_A.contact)
        cuts = [box for layer, box in out if layer == "cut"]
        xmin = min(box.xmin for box in cuts)
        xmax = max(box.xmax for box in cuts)
        assert xmin - 0 == 10 - xmax  # symmetric margins


class TestExpandGate:
    def test_narrow_gate_widened(self):
        """Poly over diff must reach the technology gate width."""
        out = expand_gate(Box(0, 0, 2, 10), TECH_A)
        poly = next(box for layer, box in out if layer == "poly")
        assert poly.width == TECH_A.gate_width

    def test_wide_gate_unchanged(self):
        out = expand_gate(Box(0, 0, 6, 10), TECH_A)
        poly = next(box for layer, box in out if layer == "poly")
        assert poly.width == 6

    def test_diff_extends_past_gate(self):
        out = expand_gate(Box(0, 0, 3, 10), TECH_A)
        diff = next(box for layer, box in out if layer == "diff")
        assert diff.xmin < 0 and diff.xmax > 3


class TestExpandLayout:
    def test_pass_through(self):
        layers = {"metal1": [Box(0, 0, 4, 4)]}
        out = expand_layout(layers, TECH_A)
        assert out == layers

    def test_mixed_expansion(self):
        layers = {
            "contact": [Box(0, 0, 4, 4)],
            "gate": [Box(10, 0, 12, 8)],
            "metal1": [Box(20, 0, 24, 4)],
        }
        out = expand_layout(layers, TECH_A)
        assert "cut" in out
        assert "diff" in out
        assert len(out["metal1"]) == 2  # contact overlap + passthrough
        assert len(out["poly"]) == 2    # contact overlap + widened gate

    def test_technology_dependence(self):
        """The same derived layout expands differently per technology —
        the transportability payoff."""
        layers = {"contact": [Box(0, 0, 12, 12)]}
        cuts_a = len(expand_layout(layers, TECH_A)["cut"])
        cuts_b = len(expand_layout(layers, TECH_B)["cut"])
        assert cuts_a != cuts_b

    def test_compacted_derived_layout_expands_legally(self):
        """Compact on derived layers, then expand: the mask-level result
        keeps the contact geometry inside its overlaps."""
        from repro.compact import compact_layout
        from repro.layout.database import FlatLayout

        flat = FlatLayout("cell")
        flat.add("contact", Box(0, 0, 4, 4))
        flat.add("contact", Box(30, 0, 34, 4))
        result = compact_layout(flat, TECH_A)
        expanded = expand_layout(result.layers, TECH_A)
        for cut in expanded["cut"]:
            assert any(m.contains_box(cut) for m in expanded["metal1"])
