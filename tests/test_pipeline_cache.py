"""Correctness of the compaction-result cache and the parallel fan-out.

Covers the satellite checklist for the compact-once pipeline: a cache
hit when the identical cell content comes back (even under a different
name), a miss — with distinct results — when the rules, the solver
backend or an interface constraint changes, an on-disk cache that
round-trips and survives a fresh process, and byte-for-byte determinism
of the parallel path against the serial oracle.
"""

import random
import subprocess
import sys
from collections import Counter
from pathlib import Path

import pytest

from repro.compact import (
    TECH_A,
    TECH_B,
    CompactionCache,
    HierarchicalCompactor,
    LeafCellCompactor,
    compact_cell,
    compact_cells,
    distinct_leaf_cells,
    fingerprint_cell,
    fingerprint_rules,
)
from repro.core import Rsg
from repro.core.cell import CellDefinition
from repro.geometry import NORTH, Vec2

REPO_SRC = str(Path(__file__).resolve().parent.parent / "src")


def make_leaf(name, seed=7, boxes=12):
    rng = random.Random(seed)
    cell = CellDefinition(name)
    for _ in range(boxes):
        x = rng.randrange(0, 80, 2)
        y = rng.randrange(0, 40, 2)
        cell.add_box(
            rng.choice(["diff", "poly", "metal1"]),
            x, y, x + rng.randrange(2, 8), y + rng.randrange(2, 8),
        )
    return cell


def layer_multiset(cell):
    return Counter(cell.flatten())


class TestFingerprints:
    def test_same_content_different_name_same_fingerprint(self):
        assert fingerprint_cell(make_leaf("a")) == fingerprint_cell(make_leaf("b"))

    def test_geometry_change_changes_fingerprint(self):
        changed = make_leaf("a")
        changed.add_box("metal1", 0, 0, 2, 2)
        assert fingerprint_cell(make_leaf("a")) != fingerprint_cell(changed)

    def test_rules_fingerprint_ignores_name_not_content(self):
        renamed = TECH_A.scaled(1, 1, name="techA-renamed")
        assert fingerprint_rules(TECH_A) == fingerprint_rules(renamed)
        assert fingerprint_rules(TECH_A) != fingerprint_rules(TECH_B)

    def test_hierarchy_participates_in_fingerprint(self):
        leaf = make_leaf("leaf")
        parent_a = CellDefinition("p")
        parent_a.add_instance(leaf, Vec2(0, 0), NORTH)
        parent_b = CellDefinition("p")
        parent_b.add_instance(leaf, Vec2(4, 0), NORTH)
        assert fingerprint_cell(parent_a) != fingerprint_cell(parent_b)


class TestFlatCompactionCache:
    def test_hit_on_identical_cell_readd(self):
        cache = CompactionCache()
        first, _ = compact_cell(make_leaf("one"), TECH_A, cache=cache)
        second, _ = compact_cell(make_leaf("two"), TECH_A, cache=cache)
        assert cache.hits == 1 and cache.misses == 1
        assert Counter(
            (b.layer, b.box) for b in first.boxes
        ) == Counter((b.layer, b.box) for b in second.boxes)

    def test_miss_and_distinct_result_on_rule_change(self):
        cache = CompactionCache()
        a, result_a = compact_cell(make_leaf("x"), TECH_A, cache=cache)
        b, result_b = compact_cell(make_leaf("x"), TECH_B, cache=cache)
        assert cache.hits == 0 and cache.misses == 2
        assert result_a.width_after != result_b.width_after or (
            Counter((box.layer, box.box) for box in a.boxes)
            != Counter((box.layer, box.box) for box in b.boxes)
        )

    def test_miss_on_solver_backend_change(self):
        cache = CompactionCache()
        compact_cell(make_leaf("x"), TECH_A, solver="bellman-ford", cache=cache)
        compact_cell(make_leaf("x"), TECH_A, solver="topological", cache=cache)
        assert cache.hits == 0 and cache.misses == 2

    def test_miss_on_option_change(self):
        cache = CompactionCache()
        compact_cell(make_leaf("x"), TECH_A, width_mode="preserve", cache=cache)
        compact_cell(make_leaf("x"), TECH_A, width_mode="min", cache=cache)
        assert cache.hits == 0 and cache.misses == 2

    def test_cached_result_equals_uncached_oracle(self):
        cache = CompactionCache()
        compact_cell(make_leaf("x"), TECH_A, cache=cache)
        cached, cached_result = compact_cell(make_leaf("x"), TECH_A, cache=cache)
        plain, plain_result = compact_cell(make_leaf("x"), TECH_A)
        assert layer_multiset(cached) == layer_multiset(plain)
        assert cached_result.width_after == plain_result.width_after
        assert cached_result.layers == plain_result.layers

    def test_cached_value_is_isolated_from_caller_mutation(self):
        cache = CompactionCache()
        _, result = compact_cell(make_leaf("x"), TECH_A, cache=cache)
        result.layers.clear()  # vandalise the returned copy
        _, again = compact_cell(make_leaf("x"), TECH_A, cache=cache)
        assert again.layers  # the cache kept its own copy


class TestLeafCellCache:
    @staticmethod
    def workspace(gap=8, pitch=14):
        rsg = Rsg()
        cell = rsg.define_cell("A")
        cell.add_box("diff", 0, 0, 2, 10)
        cell.add_box("diff", gap, 0, gap + 2, 10)
        rsg.interface_by_example(
            "A", Vec2(0, 0), NORTH, "A", Vec2(pitch, 0), NORTH, index=1
        )
        return rsg

    @staticmethod
    def solve(rsg, cache, rules=TECH_A, solver=None):
        compactor = LeafCellCompactor(rsg, rules, solver=solver)
        compactor.add_cell("A")
        compactor.add_interface("A", "A", 1)
        return compactor.solve(cache=cache)

    def test_hit_on_identical_resolve(self):
        cache = CompactionCache()
        first = self.solve(self.workspace(), cache)
        second = self.solve(self.workspace(), cache)
        assert cache.hits == 1 and cache.misses == 1
        assert first.pitches == second.pitches
        assert first.edge_positions == second.edge_positions

    def test_miss_on_rule_change(self):
        cache = CompactionCache()
        a = self.solve(self.workspace(), cache, rules=TECH_A)
        b = self.solve(self.workspace(), cache, rules=TECH_B)
        assert cache.hits == 0 and cache.misses == 2
        assert a.pitches != b.pitches  # diff spacing differs across techs

    def test_miss_on_interface_constraint_change(self):
        cache = CompactionCache()
        self.solve(self.workspace(pitch=14), cache)
        self.solve(self.workspace(pitch=20), cache)
        assert cache.hits == 0 and cache.misses == 2

    def test_miss_on_solver_backend_change(self):
        cache = CompactionCache()
        self.solve(self.workspace(), cache, solver="bellman-ford")
        self.solve(self.workspace(), cache, solver="incremental")
        assert cache.hits == 0 and cache.misses == 2

    def test_key_snapshots_geometry_at_registration(self):
        """A workspace mutation between add_cell and solve must not
        poison the cache: the key describes the registered snapshot."""
        cache = CompactionCache()
        rsg = self.workspace()
        compactor = LeafCellCompactor(rsg, TECH_A)
        compactor.add_cell("A")
        compactor.add_interface("A", "A", 1)
        rsg.cells.lookup("A").add_box("diff", 30, 0, 32, 10)  # post-registration
        stale = compactor.solve(cache=cache)
        # A fresh compactor sees the mutated cell: different key, miss,
        # and a result that includes the third bar.
        fresh = LeafCellCompactor(rsg, TECH_A)
        fresh.add_cell("A")
        fresh.add_interface("A", "A", 1)
        current = fresh.solve(cache=cache)
        assert cache.misses == 2 and cache.hits == 0
        assert len(current.cells["A"].boxes) == 3
        assert len(stale.cells["A"].boxes) == 2


class TestOnDiskCache:
    def test_round_trip_through_fresh_cache_instance(self, tmp_path):
        directory = tmp_path / "cache"
        writer = CompactionCache(str(directory))
        compact_cell(make_leaf("x"), TECH_A, cache=writer)
        assert writer.disk_hits == 0
        reader = CompactionCache(str(directory))
        cell, result = compact_cell(make_leaf("x"), TECH_A, cache=reader)
        assert reader.hits == 1 and reader.disk_hits == 1
        plain, _ = compact_cell(make_leaf("x"), TECH_A)
        assert layer_multiset(cell) == layer_multiset(plain)

    def test_survives_a_fresh_process(self, tmp_path):
        directory = tmp_path / "cache"
        script = (
            "import sys, random\n"
            f"sys.path.insert(0, {REPO_SRC!r})\n"
            "from repro.compact import TECH_A, CompactionCache, compact_cell\n"
            "from repro.core.cell import CellDefinition\n"
            "rng = random.Random(7)\n"
            "cell = CellDefinition('x')\n"
            "for _ in range(12):\n"
            "    x = rng.randrange(0, 80, 2); y = rng.randrange(0, 40, 2)\n"
            "    cell.add_box(rng.choice(['diff', 'poly', 'metal1']),"
            " x, y, x + rng.randrange(2, 8), y + rng.randrange(2, 8))\n"
            f"compact_cell(cell, TECH_A, cache=CompactionCache({str(directory)!r}))\n"
        )
        subprocess.run([sys.executable, "-c", script], check=True)
        reader = CompactionCache(str(directory))
        compact_cell(make_leaf("anything"), TECH_A, cache=reader)
        assert reader.disk_hits == 1

    def test_corrupt_entry_degrades_to_miss(self, tmp_path):
        directory = tmp_path / "cache"
        writer = CompactionCache(str(directory))
        compact_cell(make_leaf("x"), TECH_A, cache=writer)
        for entry in directory.iterdir():
            entry.write_bytes(b"not a pickle")
        reader = CompactionCache(str(directory))
        cell, _ = compact_cell(make_leaf("x"), TECH_A, cache=reader)
        assert reader.misses == 1 and reader.hits == 0
        assert cell.boxes


class TestParallelFanout:
    @staticmethod
    def batch():
        return [(f"cell{index}", make_leaf(f"cell{index}", seed=index)) for index in range(5)]

    def test_jobs2_identical_to_serial(self):
        serial = compact_cells(self.batch(), TECH_A, jobs=1)
        parallel = compact_cells(self.batch(), TECH_A, jobs=2)
        assert [name for name, _, _ in serial] == [name for name, _, _ in parallel]
        for (_, cell_s, result_s), (_, cell_p, result_p) in zip(serial, parallel):
            assert layer_multiset(cell_s) == layer_multiset(cell_p)
            assert result_s.layers == result_p.layers
            assert result_s.width_after == result_p.width_after

    def test_deterministic_ordering_with_cache_mix(self):
        cache = CompactionCache()
        compact_cells(self.batch()[:2], TECH_A, jobs=1, cache=cache)
        mixed = compact_cells(self.batch(), TECH_A, jobs=2, cache=cache)
        assert [name for name, _, _ in mixed] == [name for name, _ in self.batch()]
        assert cache.hits == 2

    def test_rejects_bad_jobs(self):
        with pytest.raises(ValueError):
            compact_cells(self.batch(), TECH_A, jobs=0)


class TestHierarchicalCompactor:
    @staticmethod
    def tiled(n=4, distinct=3):
        leaves = [make_leaf(f"leaf{k}", seed=k) for k in range(distinct)]
        top = CellDefinition("top")
        for i in range(n):
            for j in range(n):
                top.add_instance(leaves[(i + j) % distinct], Vec2(i * 100, j * 50))
        return top

    def test_distinct_leaf_collection(self):
        top = self.tiled()
        assert [leaf.name for leaf in distinct_leaf_cells(top)] == [
            "leaf0", "leaf1", "leaf2",
        ]

    def test_cached_path_equals_uncached_oracle(self):
        cache = CompactionCache()
        oracle = HierarchicalCompactor(TECH_A).compact(self.tiled())
        warm = HierarchicalCompactor(TECH_A, cache=cache)
        warm.compact(self.tiled())
        cached = warm.compact(self.tiled())
        assert layer_multiset(cached) == layer_multiset(oracle)
        assert warm.last_report.cache_hits == 3
        assert warm.last_report.cache_misses == 0

    def test_parallel_path_equals_serial_oracle(self):
        serial = HierarchicalCompactor(TECH_A, jobs=1).compact(self.tiled())
        parallel = HierarchicalCompactor(TECH_A, jobs=2).compact(self.tiled())
        assert layer_multiset(serial) == layer_multiset(parallel)
        assert list(serial.flatten()) == list(parallel.flatten())

    def test_report_keeps_both_results_on_name_collision(self):
        """Distinct-content leaves sharing a name must not overwrite
        each other's CompactionResult in the report."""
        top = CellDefinition("top")
        top.add_instance(make_leaf("same", seed=1), Vec2(0, 0), NORTH)
        top.add_instance(make_leaf("same", seed=2), Vec2(300, 0), NORTH)
        compactor = HierarchicalCompactor(TECH_A)
        compactor.compact(top)
        report = compactor.last_report
        assert report.unique_contents == 2
        assert set(report.results) == {"same", "same#2"}

    def test_content_dedup_compacts_once(self):
        """Same-content leaves under different names share one solve."""
        top = CellDefinition("top")
        top.add_instance(make_leaf("a", seed=3), Vec2(0, 0), NORTH)
        top.add_instance(make_leaf("b", seed=3), Vec2(200, 0), NORTH)
        compactor = HierarchicalCompactor(TECH_A)
        compactor.compact(top)
        assert compactor.last_report.distinct_cells == 2
        assert compactor.last_report.unique_contents == 1

    def test_ports_and_labels_survive(self):
        leaf = make_leaf("leaf")
        leaf.add_port("in", 0, 0, "metal1")
        leaf.add_label("note", 1, 1)
        top = CellDefinition("top")
        top.add_instance(leaf, Vec2(0, 0), NORTH, name="u0")
        compacted = HierarchicalCompactor(TECH_A).compact(top)
        assert [port.name for port in compacted.flatten_ports()] == ["u0/in"]
        assert [label.text for label in compacted.flatten_labels()] == ["note"]

    def test_rejects_bad_axes(self):
        with pytest.raises(ValueError):
            HierarchicalCompactor(TECH_A, axes="z")

    def test_report_counts(self):
        compactor = HierarchicalCompactor(TECH_A, jobs=1)
        compactor.compact(self.tiled(n=4, distinct=3))
        report = compactor.last_report
        assert report.instance_count == 16
        assert report.distinct_cells == 3
        assert set(report.results) == {"leaf0", "leaf1", "leaf2"}
        assert "3 distinct leaf cell(s)" in report.summary()


class TestCacheStats:
    def test_counters_track_lookups_and_disk_traffic(self, tmp_path):
        directory = tmp_path / "cache"
        writer = CompactionCache(str(directory))
        compact_cell(make_leaf("x"), TECH_A, cache=writer)
        stats = writer.cache_stats
        assert stats.misses == 1 and stats.hits == 0
        assert stats.bytes_written > 0 and stats.bytes_read == 0

        reader = CompactionCache(str(directory))
        compact_cell(make_leaf("x"), TECH_A, cache=reader)
        stats = reader.cache_stats
        assert stats.hits == 1 and stats.disk_hits == 1
        assert stats.bytes_read == writer.cache_stats.bytes_written
        assert stats.hit_rate == 1.0

    def test_hit_rate_is_zero_when_idle(self):
        from repro.compact import CacheStats

        assert CacheStats().hit_rate == 0.0
        assert CacheStats().lookups == 0

    def test_merge_accumulates(self):
        from repro.compact import CacheStats

        total = CacheStats(hits=1, misses=2, bytes_read=10)
        total.merge(CacheStats(hits=3, disk_hits=1, bytes_written=5, locks_broken=1))
        assert total.to_dict() == {
            "hits": 4,
            "misses": 2,
            "disk_hits": 1,
            "bytes_read": 10,
            "bytes_written": 5,
            "locks_broken": 1,
            "write_errors": 0,
        }

    def test_diff_returns_the_delta(self):
        from repro.compact import CacheStats

        earlier = CacheStats(hits=1, misses=2, bytes_read=10)
        later = CacheStats(hits=4, misses=2, bytes_read=25, write_errors=1)
        delta = later.diff(earlier)
        assert delta.to_dict() == {
            "hits": 3,
            "misses": 0,
            "disk_hits": 0,
            "bytes_read": 15,
            "bytes_written": 0,
            "locks_broken": 0,
            "write_errors": 1,
        }

    def test_legacy_attributes_view_the_stats(self):
        cache = CompactionCache()
        compact_cell(make_leaf("x"), TECH_A, cache=cache)
        compact_cell(make_leaf("x"), TECH_A, cache=cache)
        assert (cache.hits, cache.misses) == (
            cache.cache_stats.hits,
            cache.cache_stats.misses,
        ) == (1, 1)

    def test_pipeline_report_carries_cache_stats(self):
        top = CellDefinition("top")
        top.add_instance(make_leaf("a", seed=3), Vec2(0, 0), NORTH)
        top.add_instance(make_leaf("b", seed=3), Vec2(200, 0), NORTH)
        compactor = HierarchicalCompactor(TECH_A, cache=CompactionCache())
        compactor.compact(top)
        report = compactor.last_report.to_dict()
        assert report["cache_stats"]["misses"] >= 1
        assert set(report["cache_stats"]) == {
            "hits", "misses", "disk_hits", "bytes_read", "bytes_written",
            "locks_broken", "write_errors",
        }


class TestConcurrentWrites:
    """The multi-process safety satellite: lock files guard the store."""

    def test_held_lock_skips_the_disk_write(self, tmp_path):
        directory = tmp_path / "cache"
        cache = CompactionCache(str(directory))
        cache.put("somekey", {"value": 1})
        path = directory / "somekey.pkl"
        written = path.read_bytes()

        # another process is mid-write: its lock makes us skip disk
        lock = directory / "somekey.lock"
        lock.touch()
        cache.put("somekey", {"value": 2})
        assert path.read_bytes() == written  # disk untouched
        assert cache.get("somekey") == {"value": 2}  # memory updated
        lock.unlink()

    def test_stale_lock_is_broken(self, tmp_path):
        import os

        directory = tmp_path / "cache"
        cache = CompactionCache(str(directory))
        lock = directory / "somekey.lock"
        lock.touch()
        ancient = 1_000_000.0
        os.utime(lock, (ancient, ancient))
        cache.put("somekey", {"value": 3})
        assert not lock.exists()
        assert cache.cache_stats.locks_broken == 1
        assert CompactionCache(str(directory)).get("somekey") == {"value": 3}

    def test_stale_window_is_configurable(self, tmp_path):
        import os
        import time

        directory = tmp_path / "cache"
        cache = CompactionCache(str(directory), stale_lock_seconds=0.1)
        assert cache.stale_lock_seconds == 0.1
        lock = directory / "somekey.lock"
        lock.touch()
        recent = time.time() - 1.0  # stale for 0.1s, fresh for 30s
        os.utime(lock, (recent, recent))
        cache.put("somekey", {"value": 4})
        assert not lock.exists()
        assert cache.cache_stats.locks_broken == 1

    def test_stale_window_reads_the_environment(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_STALE_LOCK_S", "7.5")
        assert CompactionCache(str(tmp_path)).stale_lock_seconds == 7.5
        monkeypatch.delenv("REPRO_CACHE_STALE_LOCK_S")
        assert CompactionCache(str(tmp_path)).stale_lock_seconds == 30.0
        # an explicit constructor value beats the environment
        monkeypatch.setenv("REPRO_CACHE_STALE_LOCK_S", "7.5")
        explicit = CompactionCache(str(tmp_path), stale_lock_seconds=2.0)
        assert explicit.stale_lock_seconds == 2.0

    def test_many_processes_hammer_one_directory(self, tmp_path):
        """N processes write and read the same keys; nobody crashes and
        every surviving entry is intact."""
        directory = tmp_path / "cache"
        script = (
            "import sys\n"
            f"sys.path.insert(0, {REPO_SRC!r})\n"
            "from repro.compact import CompactionCache\n"
            f"cache = CompactionCache({str(directory)!r})\n"
            "for round in range(20):\n"
            "    for key in ('alpha', 'beta', 'gamma'):\n"
            "        cache.put(key, {'key': key, 'payload': list(range(200))})\n"
            "        value = CompactionCache("
            f"{str(directory)!r}).get(key)\n"
            "        assert value is None or value['key'] == key\n"
        )
        processes = [
            subprocess.Popen([sys.executable, "-c", script])
            for _ in range(4)
        ]
        assert all(process.wait() == 0 for process in processes)
        reader = CompactionCache(str(directory))
        for key in ("alpha", "beta", "gamma"):
            assert reader.get(key)["key"] == key
        assert not list(Path(directory).glob("*.lock"))
        assert not list(Path(directory).glob("*.tmp*"))
