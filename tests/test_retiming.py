"""Tests for retiming and the pipelined simulator (chapter 5, Figure 5.2)."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.multiplier import (
    PipelinedSimulator,
    build_baugh_wooley,
    from_bits,
    reference_product,
    retime,
    to_bits,
    to_signed,
)

_NET44 = build_baugh_wooley(4, 4)
_NET66 = build_baugh_wooley(6, 6)


def drive(sim, pairs, m, n):
    stream = []
    for a, b in pairs:
        vector = {}
        for index, bit in enumerate(to_bits(a, m)):
            vector[f"a{index}"] = bit
        for index, bit in enumerate(to_bits(b, n)):
            vector[f"b{index}"] = bit
        stream.append(vector)
    outputs = sim.run_stream(stream)
    products = []
    for out in outputs:
        products.append(to_signed(from_bits([out[f"p{k}"] for k in range(m + n)]), m + n))
    return products


class TestRegisterAssignment:
    def test_combinational_case(self):
        assignment = retime(_NET44, None)
        assert assignment.latency == 0
        assert assignment.total_registers() == 0

    def test_beta_ge_critical_path_is_combinational(self):
        assignment = retime(_NET44, 100)
        assert assignment.total_registers() == 0

    def test_bit_systolic_run_length_one(self):
        """Figure 5.2a: at most one full-adder delay between registers."""
        assignment = retime(_NET44, 1)
        assert assignment.max_combinational_run() == 1

    def test_beta_two_run_length(self):
        """Figure 5.2b: at most two combinational delays."""
        assignment = retime(_NET66, 2)
        assert assignment.max_combinational_run() <= 2

    @pytest.mark.parametrize("beta", [1, 2, 3, 4])
    def test_run_length_never_exceeds_beta(self, beta):
        assignment = retime(_NET66, beta)
        assert assignment.max_combinational_run() <= beta

    def test_latency_scales_inversely_with_beta(self):
        l1 = retime(_NET66, 1).latency
        l2 = retime(_NET66, 2).latency
        l3 = retime(_NET66, 3).latency
        assert l1 > l2 > l3

    def test_register_count_decreases_with_beta(self):
        """The Figure 5.2 tradeoff: deeper pipelining, more registers."""
        r1 = retime(_NET66, 1).total_registers()
        r2 = retime(_NET66, 2).total_registers()
        r3 = retime(_NET66, 3).total_registers()
        assert r1 > r2 > r3

    def test_peripheral_registers_exist(self):
        """Input skew and output deskew stacks are nonempty (the edge
        effects of chapter 5)."""
        assignment = retime(_NET44, 1)
        assert assignment.peripheral_registers() > 0
        assert assignment.internal_registers() > 0

    def test_path_register_balance(self):
        """Every input-to-output path crosses exactly `latency` registers
        (the retiming invariant) — checked via stage consistency."""
        assignment = retime(_NET66, 2)
        net = _NET66
        for name, cell in net.cells.items():
            for position, (kind, target) in enumerate(cell.inputs):
                count = assignment.edge_registers[(name, position)]
                if kind == "cell":
                    assert count == assignment.stage[name] - assignment.stage[target]
                elif kind == "input":
                    assert count == assignment.stage[name] - 1

    def test_beta_zero_rejected(self):
        with pytest.raises(ValueError):
            retime(_NET44, 0)


class TestPipelinedSimulator:
    @pytest.mark.parametrize("beta", [1, 2, 3, None])
    def test_stream_correctness(self, beta):
        assignment = retime(_NET44, beta)
        sim = PipelinedSimulator(assignment)
        pairs = [(a, b) for a in (-8, -3, 0, 5, 7) for b in (-8, -1, 2, 7)]
        products = drive(sim, pairs, 4, 4)
        assert products == [reference_product(a, b, 4, 4) for a, b in pairs]

    def test_throughput_one_per_cycle(self):
        """Pipelining preserves single-cycle throughput: N inputs need
        exactly N + latency cycles."""
        assignment = retime(_NET44, 1)
        sim = PipelinedSimulator(assignment)
        cycles = 0
        vector = {name: 0 for name in _NET44.inputs}
        for _ in range(10 + assignment.latency):
            sim.step(vector)
            cycles += 1
        assert cycles == 10 + assignment.latency

    @given(
        st.lists(
            st.tuples(st.integers(-32, 31), st.integers(-32, 31)),
            min_size=1,
            max_size=12,
        ),
        st.sampled_from([1, 2, 4]),
    )
    @settings(max_examples=25, deadline=None)
    def test_random_streams_6x6(self, pairs, beta):
        assignment = retime(_NET66, beta)
        sim = PipelinedSimulator(assignment)
        products = drive(sim, pairs, 6, 6)
        assert products == [reference_product(a, b, 6, 6) for a, b in pairs]

    def test_back_to_back_dependency(self):
        """Consecutive inputs must not interfere (no structural hazards)."""
        assignment = retime(_NET44, 1)
        sim = PipelinedSimulator(assignment)
        pairs = [(7, 7), (-8, -8), (7, -8), (-8, 7), (0, 0)]
        products = drive(sim, pairs, 4, 4)
        assert products == [reference_product(a, b, 4, 4) for a, b in pairs]
