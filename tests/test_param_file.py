"""Tests for parameter files (Appendix C)."""

import pytest

from repro.core.errors import ParseError
from repro.lang import Alias, parse_parameters


class TestBindings:
    def test_integers(self):
        params = parse_parameters("vinum=2\nhinum = 1\nneg=-3")
        assert params.bindings == {"vinum": 2, "hinum": 1, "neg": -3}

    def test_strings(self):
        params = parse_parameters('mularrayname="array"')
        assert params.bindings["mularrayname"] == "array"

    def test_bare_identifiers_become_aliases(self):
        params = parse_parameters("corecell=basiccell")
        assert params.bindings["corecell"] == Alias("basiccell")

    def test_mixed_appendix_c_style(self):
        text = """
        .example_file:/u/bamji/demo/mult.def
        .output_file:/u/bamji/demo/multout.cif
        vinum=2
        corecell=cell
        topregisters = "topregs"
        xsize=asize
        asize=16
        """
        params = parse_parameters(text)
        assert params.directives["example_file"] == "/u/bamji/demo/mult.def"
        assert params.directives["output_file"] == "/u/bamji/demo/multout.cif"
        assert params.bindings["asize"] == 16
        assert params.bindings["xsize"] == Alias("asize")
        assert params.bindings["topregisters"] == "topregs"

    def test_comments_and_blank_lines(self):
        params = parse_parameters("# header\n\n; lisp comment\nn=1\n")
        assert params.bindings == {"n": 1}

    def test_trailing_comment_on_value(self):
        params = parse_parameters("n=4  # four\n")
        assert params.bindings["n"] == 4

    def test_bad_line_raises(self):
        with pytest.raises(ParseError):
            parse_parameters("this is not a binding")

    def test_bad_value_raises(self):
        with pytest.raises(ParseError):
            parse_parameters("x=1.5")


class TestAliasChaining:
    def test_alias_chain_through_interpreter(self):
        """xsize=asize, asize=16 resolves through the global environment."""
        from repro.lang import Interpreter

        interp = Interpreter()
        params = parse_parameters("xsize=asize\nasize=16")
        interp.set_parameters(params.bindings)
        assert interp.run("xsize") == 16
