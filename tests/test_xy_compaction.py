"""Tests for two-pass x/y compaction (the greedy 1-D baseline of §6.1)."""

import pytest

from repro.compact import TECH_A, check_layout, compact_layout_xy
from repro.geometry import Box
from repro.layout.database import FlatLayout


def scattered_layout():
    flat = FlatLayout("scatter")
    flat.add("diff", Box(0, 0, 2, 8))
    flat.add("diff", Box(30, 0, 32, 8))
    flat.add("diff", Box(0, 40, 2, 48))
    flat.add("poly", Box(15, 20, 17, 30))
    return flat


class TestTwoPass:
    def test_both_dimensions_shrink(self):
        layout = scattered_layout()
        bbox = layout.bounding_box()
        first, second = compact_layout_xy(layout, TECH_A)
        assert first.width_after < bbox.width
        assert second.width_after < bbox.height

    def test_final_geometry_legal(self):
        _, second = compact_layout_xy(scattered_layout(), TECH_A)
        assert check_layout(second.layers, TECH_A) == []

    def test_pass_order_matters(self):
        """The greedy-per-dimension limitation: xy and yx orders can
        reach different bounding boxes."""
        flat = FlatLayout("corner")
        flat.add("diff", Box(0, 0, 2, 20))
        flat.add("diff", Box(10, 0, 12, 2))
        flat.add("diff", Box(10, 14, 12, 16))
        _, xy = compact_layout_xy(flat, TECH_A, order="xy")
        _, yx = compact_layout_xy(flat, TECH_A, order="yx")
        assert check_layout(xy.layers, TECH_A) == []
        assert check_layout(yx.layers, TECH_A) == []

    def test_bad_order_rejected(self):
        with pytest.raises(ValueError):
            compact_layout_xy(scattered_layout(), TECH_A, order="xx")

    def test_rubber_band_composes(self):
        flat = FlatLayout("jog2d")
        flat.add("metal1", Box(10, 0, 13, 10))
        flat.add("metal1", Box(10, 10, 13, 20))
        flat.add("metal1", Box(0, 0, 3, 10))
        _, second = compact_layout_xy(flat, TECH_A, rubber_band=True)
        assert check_layout(second.layers, TECH_A) == []


class TestLanguageErrorPaths:
    """Extra coverage of interpreter failure modes."""

    def test_subcell_on_non_environment(self):
        from repro.core.errors import EvalError
        from repro.lang import Interpreter

        interp = Interpreter()
        with pytest.raises(EvalError):
            interp.run("(setq x 5) (subcell x y)")

    def test_cond_with_malformed_clause(self):
        from repro.core.errors import EvalError
        from repro.lang import Interpreter

        with pytest.raises(EvalError):
            Interpreter().run("(cond 5)")

    def test_do_with_bad_header(self):
        from repro.core.errors import EvalError
        from repro.lang import Interpreter

        with pytest.raises(EvalError):
            Interpreter().run("(do (i 1) 5)")

    def test_form_head_must_be_symbol(self):
        from repro.core.errors import EvalError
        from repro.lang import Interpreter

        with pytest.raises(EvalError):
            Interpreter().run("((+ 1 2) 3)")

    def test_assign_to_non_variable(self):
        from repro.core.errors import EvalError
        from repro.lang import Interpreter

        with pytest.raises(EvalError):
            Interpreter().run("(assign 5 6)")

    def test_empty_form_is_nil(self):
        from repro.lang import Interpreter

        assert Interpreter().run("()") is None

    def test_declare_interface_arity(self):
        from repro.core.errors import EvalError
        from repro.lang import Interpreter

        with pytest.raises(EvalError):
            Interpreter().run("(declare_interface a b 1)")
