"""Tests for the tokenizer and parser (Appendix A grammar)."""

import pytest

from repro.core.errors import ParseError
from repro.lang import Form, IndexedVar, Symbol, parse_program, parse_statement, tokenize


class TestTokenizer:
    def test_basic_tokens(self):
        kinds = [t.kind for t in tokenize('(foo 12 -3 "bar")')]
        assert kinds == ["lparen", "symbol", "int", "int", "string", "rparen"]

    def test_dot_is_a_token(self):
        tokens = tokenize("l.i")
        assert [t.kind for t in tokens] == ["symbol", "dot", "symbol"]

    def test_comments_stripped(self):
        tokens = tokenize("(a) ; comment\n(b)")
        assert len(tokens) == 6

    def test_line_numbers(self):
        tokens = tokenize("(a\n b)")
        assert tokens[2].line == 2

    def test_unterminated_string(self):
        with pytest.raises(ParseError):
            tokenize('(print "oops)')

    def test_negative_numbers_vs_minus_symbol(self):
        tokens = tokenize("(- 5 -3)")
        assert [t.kind for t in tokens] == ["lparen", "symbol", "int", "int", "rparen"]
        assert tokens[3].text == "-3"

    def test_empty_input(self):
        assert tokenize("") == []

    def test_underscore_symbols(self):
        assert tokenize("mk_instance")[0].text == "mk_instance"


class TestParser:
    def test_atoms(self):
        assert parse_statement("42") == 42
        assert parse_statement('"hello"') == "hello"
        assert parse_statement("foo") == Symbol("foo")

    def test_nested_forms(self):
        form = parse_statement("(a (b c) 3)")
        assert isinstance(form, Form)
        assert form[0] == Symbol("a")
        assert isinstance(form[1], Form)
        assert form[2] == 3

    def test_indexed_variable_literal(self):
        var = parse_statement("l.1")
        assert isinstance(var, IndexedVar)
        assert var.base == "l"
        assert var.indices == [1]

    def test_indexed_variable_symbol(self):
        var = parse_statement("c.i")
        assert var.indices == [Symbol("i")]

    def test_indexed_variable_expression(self):
        """The Appendix B idiom: l.(- i 1)."""
        var = parse_statement("l.(- i 1)")
        assert isinstance(var.indices[0], Form)
        assert var.indices[0][0] == Symbol("-")

    def test_double_indexed(self):
        var = parse_statement("a.i.j")
        assert var.base == "a"
        assert len(var.indices) == 2

    def test_triple_index_rejected(self):
        with pytest.raises(ParseError):
            parse_statement("a.1.2.3")

    def test_integer_cannot_be_indexed(self):
        with pytest.raises(ParseError):
            parse_statement("1.2")

    def test_program_sequence(self):
        program = parse_program("(a) (b) 7")
        assert len(program) == 3

    def test_unterminated_form(self):
        with pytest.raises(ParseError):
            parse_program("(a (b)")

    def test_stray_rparen(self):
        with pytest.raises(ParseError):
            parse_program(")")

    def test_trailing_input_rejected_by_parse_statement(self):
        with pytest.raises(ParseError):
            parse_statement("(a) (b)")

    def test_appendix_b_fragment_parses(self):
        """A representative slice of the real design file."""
        text = """
        (macro mline (xsize ysize currentline)
          (locals ref)
          (assign l.1 (mcell xsize ysize 1 currentline))
          (setq ref (subcell l.1 c))
          (do (i 2 (+ 1 i) (> i xsize))
            (assign l.i (mcell xsize ysize i currentline))
            (connect (subcell l.(- i 1) c) (subcell l.i c) hinum)))
        """
        (form,) = parse_program(text)
        assert form[0] == Symbol("macro")
        assert form[1] == Symbol("mline")

    def test_empty_form(self):
        form = parse_statement("()")
        assert isinstance(form, Form) and len(form) == 0
