"""Tests for the multiplier layout generators (chapter 5, Appendices B/C)."""

import pytest

from repro.layout import flatten_cell
from repro.multiplier import (
    CELL_PITCH,
    build_baugh_wooley,
    generate_multiplier,
    generate_via_language,
    load_multiplier_library,
    report_for,
)


class TestLibrary:
    def test_all_cells_present(self):
        rsg = load_multiplier_library()
        for name in (
            "basiccell",
            "type1",
            "type2",
            "reg",
            "car1",
            "car2",
            "goboth",
            "goin",
            "goout",
            "sgoin",
            "sgoout",
        ):
            assert name in rsg.cells
        for index in range(1, 5):
            assert f"phi1_{index}" in rsg.cells.names() or f"phi1_{index}" in rsg.cells

    def test_interface_family_between_basic_and_reg(self):
        """Figure 2.3: three distinct interfaces for the same cell pair."""
        rsg = load_multiplier_library()
        assert rsg.interfaces.indices_between("basiccell", "reg") == [1, 2, 3]

    def test_array_pitches(self):
        rsg = load_multiplier_library()
        assert rsg.interfaces.lookup("basiccell", "basiccell", 1).vector.x == CELL_PITCH
        assert rsg.interfaces.lookup("basiccell", "basiccell", 2).vector.y == -CELL_PITCH


class TestGenerator:
    def test_basic_cell_count(self):
        """xsize columns x (ysize carry-save + 1 CPA) rows."""
        for xsize, ysize in [(2, 2), (4, 3), (5, 5)]:
            report = report_for(generate_multiplier(xsize, ysize), xsize, ysize)
            assert report.basic_cells == xsize * (ysize + 1)

    def test_type2_mask_count_matches_netlist(self):
        """Layout personalisation equals the arithmetic structure: the
        number of type II masks is (m-1)+(n-1), same as the netlist."""
        for m, n in [(3, 3), (4, 6), (6, 4)]:
            report = report_for(generate_multiplier(m, n), m, n)
            net = build_baugh_wooley(m, n)
            assert report.type2_masks == net.count_kind("csII")

    def test_clock_masks_four_per_cell(self):
        report = report_for(generate_multiplier(4, 4), 4, 4)
        assert report.clock_masks == 4 * report.basic_cells

    def test_carry_masks_one_per_cell(self):
        report = report_for(generate_multiplier(3, 5), 3, 5)
        assert report.carry_masks == report.basic_cells

    def test_register_counts(self):
        """Top triangle 1..n, bottom triangle n..1, right rows."""
        xsize = ysize = 4
        report = report_for(generate_multiplier(xsize, ysize), xsize, ysize)
        triangle = xsize * (xsize + 1) // 2
        regnum = 3 * ysize + 1
        right = ysize * ((regnum + 1) // 2)
        assert report.registers == 2 * triangle + right

    def test_direction_masks_cover_right_rows(self):
        ysize = 5
        report = report_for(generate_multiplier(4, ysize), 4, ysize)
        regnum = 3 * ysize + 1
        assert report.direction_masks == ysize * ((regnum + 1) // 2)

    def test_no_overlapping_basic_cells(self):
        """Array cells tile without collision (interfaces, not abutment,
        but the result must still be a clean grid)."""
        top = generate_multiplier(3, 3)
        origins = set()

        def walk(cell, offset_x, offset_y):
            for instance in cell.instances:
                if instance.celltype == "basiccell":
                    origins.add(
                        (offset_x + instance.location.x, offset_y + instance.location.y)
                    )
                walk(
                    instance.definition,
                    offset_x + instance.location.x,
                    offset_y + instance.location.y,
                )

        walk(top, 0, 0)
        assert len(origins) == 3 * 4  # all distinct

    def test_size_one_rejected_gracefully(self):
        with pytest.raises(ValueError):
            generate_multiplier(0, 3)


class TestLanguagePathEquivalence:
    """The strongest integration check: the Appendix B design file and
    the Python API construct byte-identical flattened layouts."""

    @pytest.mark.parametrize("size", [(2, 2), (3, 4), (5, 3), (6, 6)])
    def test_flat_equality(self, size):
        top_lang, _ = generate_via_language(*size)
        top_api = generate_multiplier(*size)
        assert flatten_cell(top_lang).same_geometry(flatten_cell(top_api))

    def test_language_path_cell_inventory(self):
        _, interp = generate_via_language(3, 3)
        names = interp.rsg.cells.names()
        for expected in ("array", "topregs", "bottomregs", "rightregs", "thewholething"):
            assert expected in names

    def test_parameter_override(self):
        top, _ = generate_via_language(2, 3)
        report = report_for(top, 2, 3)
        assert report.basic_cells == 2 * 4


class TestScaling:
    def test_area_scales_quadratically(self):
        small = report_for(generate_multiplier(4, 4), 4, 4)
        large = report_for(generate_multiplier(8, 8), 8, 8)
        def area(report):
            x0, y0, x1, y1 = report.bounding_box
            return (x1 - x0) * (y1 - y0)
        ratio = area(large) / area(small)
        assert 2.5 < ratio < 5.0  # ~4x for doubled linear size

    def test_32x32_generates(self):
        """The paper's headline case (5 s on a DEC-2060)."""
        report = report_for(generate_multiplier(32, 32), 32, 32)
        assert report.basic_cells == 32 * 33
