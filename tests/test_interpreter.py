"""Tests for the design-file interpreter (chapter 4)."""

import pytest

from repro.core import Rsg
from repro.core.errors import EvalError, UnboundVariableError
from repro.geometry import NORTH, Vec2
from repro.lang import Alias, Environment, Interpreter


@pytest.fixture
def interp():
    return Interpreter()


@pytest.fixture
def rsg_interp():
    rsg = Rsg()
    tile = rsg.define_cell("tile")
    tile.add_box("metal", 0, 0, 10, 10)
    rsg.interface_by_example(
        "tile", Vec2(0, 0), NORTH, "tile", Vec2(12, 0), NORTH, index=1
    )
    return Interpreter(rsg)


class TestArithmetic:
    @pytest.mark.parametrize(
        "expr, value",
        [
            ("(+ 1 2 3)", 6),
            ("(- 10 3)", 7),
            ("(- 5)", -5),
            ("(* 2 3 4)", 24),
            ("(// 7 2)", 3),
            ("(// -7 2)", -3),  # truncation toward zero
            ("(mod 7 2)", 1),
            ("(mod 10 4)", 2),
            ("(min 3 1 2)", 1),
            ("(max 3 1 2)", 3),
            ("(abs -4)", 4),
        ],
    )
    def test_expressions(self, interp, expr, value):
        assert interp.run(expr) == value

    @pytest.mark.parametrize(
        "expr, value",
        [
            ("(= 1 1)", True),
            ("(= 1 2)", False),
            ("(/= 1 2)", True),
            ("(> 3 2)", True),
            ("(< 3 2)", False),
            ("(>= 2 2)", True),
            ("(<= 3 2)", False),
        ],
    )
    def test_comparisons(self, interp, expr, value):
        assert interp.run(expr) == value

    def test_division_by_zero(self, interp):
        with pytest.raises(EvalError):
            interp.run("(// 1 0)")

    def test_logic_short_circuit(self, interp):
        assert interp.run("(and 1 2 3)") == 3
        assert interp.run("(and 1 false 3)") is False
        assert interp.run("(or false 5)") == 5
        assert interp.run("(not false)") is True


class TestControlFlow:
    def test_cond_first_match(self, interp):
        assert interp.run("(cond ((= 1 2) 10) ((= 1 1) 20) (true 30))") == 20

    def test_cond_true_default(self, interp):
        assert interp.run("(cond ((= 1 2) 10) (true 99))") == 99

    def test_cond_no_match_returns_nil(self, interp):
        assert interp.run("(cond ((= 1 2) 10))") is None

    def test_cond_multiple_body_statements(self, interp):
        assert interp.run("(cond (true (print 1) (print 2) 3))") == 3

    def test_do_loop(self, interp):
        code = """
        (defun sumto (n)
          (locals acc)
          (setq acc 0)
          (do (i 1 (+ 1 i) (> i n))
            (setq acc (+ acc i)))
          acc)
        (sumto 10)
        """
        assert interp.run(code) == 55

    def test_do_loop_zero_iterations(self, interp):
        code = """
        (defun f ()
          (locals acc)
          (setq acc 0)
          (do (i 5 (+ 1 i) (> i 3)) (setq acc 99))
          acc)
        (f)
        """
        assert interp.run(code) == 0

    def test_prog_returns_last(self, interp):
        assert interp.run("(prog 1 2 3)") == 3

    def test_recursion(self, interp):
        code = """
        (defun fact (n)
          (locals)
          (cond ((= n 0) 1) (true (* n (fact (- n 1))))))
        (fact 10)
        """
        assert interp.run(code) == 3628800

    def test_runaway_recursion_bounded(self, interp):
        code = "(defun boom (n) (locals) (boom (+ n 1))) (boom 0)"
        with pytest.raises(EvalError):
            interp.run(code)


class TestProceduresAndMacros:
    def test_function_returns_last_value(self, interp):
        assert interp.run("(defun f (x) (locals) (+ x 1) (* x 2)) (f 5)") == 10

    def test_macro_returns_environment(self, interp):
        result = interp.run("(macro mthing () (locals a) (setq a 42)) (mthing)")
        assert isinstance(result, Environment)
        assert result.local("a") == 42

    def test_subcell_reads_macro_environment(self, interp):
        code = """
        (macro mpair ()
          (locals first second)
          (setq first 10)
          (setq second 20))
        (setq e (mpair))
        (+ (subcell e first) (subcell e second))
        """
        assert interp.run(code) == 30

    def test_subcell_with_indexed_variable(self, interp):
        """The Appendix B idiom: (subcell l.1 c.2) with caller indices."""
        code = """
        (macro mrow ()
          (locals)
          (assign c.1 100)
          (assign c.2 200))
        (setq r (mrow))
        (setq k 2)
        (subcell r c.k)
        """
        assert interp.run(code) == 200

    def test_macro_name_must_start_with_m(self, interp):
        with pytest.raises(EvalError):
            interp.run("(macro thing () (locals))")

    def test_function_name_must_not_start_with_m(self, interp):
        with pytest.raises(EvalError):
            interp.run("(defun mfun (x) (locals) x)")

    def test_arity_checked(self, interp):
        interp.run("(defun f (x y) (locals) (+ x y))")
        with pytest.raises(EvalError):
            interp.run("(f 1)")

    def test_locals_initialised_to_nil(self, interp):
        assert interp.run("(defun f () (locals a) a) (f)") is None

    def test_procedures_are_not_first_class(self, interp):
        """Section 4.1: procedures cannot be passed as values."""
        interp.run("(defun f (x) (locals) x)")
        with pytest.raises(UnboundVariableError):
            interp.run("(setq g f)")

    def test_unknown_procedure(self, interp):
        with pytest.raises(EvalError):
            interp.run("(nosuch 1 2)")

    def test_environments_independent_per_call(self, interp):
        code = """
        (macro mbox (v) (locals x) (setq x v))
        (setq a (mbox 1))
        (setq b (mbox 2))
        (+ (subcell a x) (subcell b x))
        """
        assert interp.run(code) == 3


class TestScoping:
    def test_parameter_file_global(self, interp):
        interp.set_parameter("n", 9)
        assert interp.run("(defun f () (locals) n) (f)") == 9

    def test_formal_shadows_global(self, interp):
        interp.set_parameter("n", 9)
        assert interp.run("(defun f (n) (locals) n) (f 1)") == 1

    def test_alias_resolves_to_cell(self, rsg_interp):
        rsg_interp.set_parameter("corecell", Alias("tile"))
        result = rsg_interp.run("(defun f () (locals) corecell) (f)")
        assert result is rsg_interp.rsg.cells.lookup("tile")

    def test_unbound_variable(self, interp):
        with pytest.raises(UnboundVariableError):
            interp.run("ghost")

    def test_indexed_assignment_and_lookup(self, interp):
        assert interp.run("(assign x.3 7) x.3") == 7

    def test_indexed_with_expression_index(self, interp):
        assert interp.run("(setq i 4) (assign x.i 5) x.(+ 2 2)") == 5

    def test_non_integer_index_rejected(self, interp):
        with pytest.raises(EvalError):
            interp.run('(setq i "one") (assign x.i 5)')


class TestGraphPrimitives:
    def test_mk_instance_binds_and_returns(self, rsg_interp):
        node = rsg_interp.run("(mk_instance n tile) n")
        assert node.celltype == "tile"

    def test_mk_instance_by_string_name(self, rsg_interp):
        node = rsg_interp.run('(mk_instance n "tile")')
        assert node.celltype == "tile"

    def test_connect_and_mk_cell(self, rsg_interp):
        cell = rsg_interp.run(
            """
            (mk_instance a tile)
            (mk_instance b tile)
            (connect a b 1)
            (mk_cell "pair" a)
            """
        )
        assert cell.name == "pair"
        assert len(cell.instances) == 2
        assert cell.instances[1].location == Vec2(12, 0)

    def test_legacy_spellings(self, rsg_interp):
        """Appendix B uses mkinstance/mkcell without underscores."""
        cell = rsg_interp.run(
            '(mkinstance a tile) (mkcell "one" a)'
        )
        assert cell.name == "one"

    def test_mk_cell_requires_string_name(self, rsg_interp):
        with pytest.raises(EvalError):
            rsg_interp.run("(mk_instance a tile) (mk_cell 7 a)")

    def test_connect_type_errors(self, rsg_interp):
        with pytest.raises(EvalError):
            rsg_interp.run("(connect 1 2 3)")

    def test_declare_interface_via_language(self, rsg_interp):
        env = rsg_interp.run(
            """
            (macro mpair ()
              (locals a b)
              (mk_instance a tile)
              (mk_instance b tile)
              (connect a b 1)
              (mk_cell "pair" a))
            (setq p (mpair))
            (declare_interface pair pair 1 (subcell p b) (subcell p a) 1)
            p
            """
        )
        interface = rsg_interp.rsg.interfaces.lookup("pair", "pair", 1)
        # b at (12,0) inside the first pair; a of the second pair abuts
        # it at interface #1: L_d = 12 + 12 - 0 = 24.
        assert interface.vector == Vec2(24, 0)


class TestIO:
    def test_print_collects_output(self, interp):
        interp.run("(print 1) (print (+ 2 3))")
        assert interp.output == [1, 5]

    def test_read_consumes_queue(self, interp):
        interp.input_queue = [41]
        assert interp.run("(+ 1 (read))") == 42

    def test_read_empty_queue(self, interp):
        with pytest.raises(EvalError):
            interp.run("(read)")

    def test_quote(self, interp):
        assert interp.run("(quote foo)") == "foo"
