"""End-to-end integration tests: the full Figure 1.1 pipeline.

design file + layout file (sample) + parameter file -> RSG -> CIF.
"""

import pytest

from repro.compact import TECH_B, LeafCellCompactor, check_layout
from repro.core import Rsg
from repro.geometry import Vec2
from repro.lang import Interpreter, parse_parameters
from repro.layout import (
    cif_text,
    dump_sample,
    flatten_cell,
    loads_sample,
    read_cif,
)
from repro.multiplier import (
    DESIGN_FILE,
    PARAMETER_FILE,
    build_baugh_wooley,
    generate_via_language,
    report_for,
    retime,
)


class TestFullPipeline:
    def test_figure_11_flow(self, tmp_path):
        """Sample layout + design file + parameter file -> CIF output."""
        top, interp = generate_via_language(4, 4)
        path = tmp_path / "mult.cif"
        from repro.layout import write_cif

        write_cif(top, str(path))
        with open(path) as handle:
            table = read_cif(handle)
        assert flatten_cell(table.lookup("thewholething")).same_geometry(
            flatten_cell(top)
        )

    def test_parameter_file_drives_design_file(self):
        """Running the shipped parameter file verbatim (6x6 default)."""
        from repro.multiplier import load_multiplier_library

        rsg = load_multiplier_library()
        interp = Interpreter(rsg)
        params = parse_parameters(PARAMETER_FILE)
        interp.set_parameters(params.bindings)
        interp.run(DESIGN_FILE)
        report = report_for(rsg.cells.lookup("thewholething"), 6, 6)
        assert report.basic_cells == 6 * 7

    def test_same_design_file_different_size(self):
        """One design file, many personalities — the delayed-binding
        payoff: only the parameter file changes."""
        small, _ = generate_via_language(2, 2)
        large, _ = generate_via_language(5, 5)
        assert report_for(small, 2, 2).basic_cells == 6
        assert report_for(large, 5, 5).basic_cells == 30

    def test_layout_matches_arithmetic_structure(self):
        """The generated layout's personalisation equals the verified
        arithmetic netlist, tying chapter 5's two halves together."""
        xsize = ysize = 5
        top, _ = generate_via_language(xsize, ysize)
        report = report_for(top, xsize, ysize)
        net = build_baugh_wooley(xsize, ysize)
        assert report.type2_masks == net.count_kind("csII")
        assert report.basic_cells == xsize * ysize + net.count_kind("cpa")

    def test_register_budget_consistency(self):
        """Peripheral layout registers must cover the bit-systolic skew:
        the top and bottom triangles of the layout match the input-skew
        register profile shape (monotone 1..n and n..1)."""
        top, _ = generate_via_language(4, 4)
        report = report_for(top, 4, 4)
        assert report.registers >= retime(build_baugh_wooley(4, 4), 1).latency


class TestCompactThenRegenerate:
    def test_leaf_cell_compaction_then_new_sample(self):
        """Chapter 6's closing loop: compact a library, emit a new sample
        layout, and rebuild a structure in the new technology."""
        rsg = Rsg()
        cell = rsg.define_cell("tile")
        cell.add_box("metal1", 0, 0, 4, 4)
        cell.add_box("metal1", 10, 0, 14, 4)
        from repro.geometry import NORTH

        rsg.interface_by_example(
            "tile", Vec2(0, 0), NORTH, "tile", Vec2(20, 0), NORTH, index=1
        )
        compactor = LeafCellCompactor(rsg, TECH_B, width_mode="min")
        compactor.add_cell("tile")
        compactor.add_interface("tile", "tile", 1)
        result = compactor.solve()

        # Build a new workspace from the compacted library.
        new_rsg = Rsg()
        new_cell = new_rsg.define_cell("tile")
        for layer_box in result.cells["tile"].boxes:
            box = layer_box.box
            new_cell.add_box(layer_box.layer, box.xmin, box.ymin, box.xmax, box.ymax)
        interface = result.interfaces[("tile", "tile", 1)]
        new_rsg.interfaces.declare("tile", "tile", 1, interface)

        nodes = [new_rsg.mk_instance("tile") for _ in range(6)]
        new_rsg.chain(nodes, 1)
        row = new_rsg.mk_cell("row", nodes[0])
        flat = flatten_cell(row)
        assert check_layout(flat.layers, TECH_B) == []
        # And tighter than the original pitch (20) times 6.
        assert flat.bounding_box().width < 20 * 6

    def test_dump_sample_of_compacted_cells(self):
        rsg = Rsg()
        cell = rsg.define_cell("c")
        cell.add_box("poly", 0, 0, 2, 2)
        text = dump_sample(rsg, ["c"])
        fresh = Rsg()
        loads_sample(text, fresh)
        assert "c" in fresh.cells


class TestCifForAllGenerators:
    def test_decoder_cif(self):
        from repro.pla import generate_decoder

        decoder = generate_decoder(2)
        table = read_cif(cif_text(decoder))
        assert flatten_cell(table.lookup("decoder")).same_geometry(
            flatten_cell(decoder)
        )
