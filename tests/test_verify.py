"""Tests for the silicon-verification subsystem (extraction, sim, LVS).

The tentpole coverage: device extraction reads real transistors out of
mask geometry, the switch-level simulator evaluates them correctly,
LVS canonicalization matches structure and catches every local edit,
and the hierarchical tile extractor is LVS-identical to the flat one.
"""

import pytest

from repro import CellDefinition
from repro.compact.cache import CompactionCache
from repro.compact.rules import TECH_A
from repro.pla import (
    TruthTable,
    generate_decoder,
    generate_pla,
    generate_rom,
    intended_decoder_netlist,
    intended_pla_netlist,
    intended_rom_netlist,
)
from repro.verify import (
    ExtractionError,
    SwitchNetlist,
    X,
    compare_netlists,
    extract_netlist,
    extract_netlist_hier,
    simulate,
    verify_cell,
    verify_pla,
)
from repro.verify.driver import pla_layout_netlist

TABLE = TruthTable.parse(
    """
    1-0 | 10
    01- | 11
    -11 | 01
    00- | 10
    """
)


def make_cell(boxes, ports=()):
    cell = CellDefinition("dut")
    for layer, x0, y0, x1, y1 in boxes:
        cell.add_box(layer, x0, y0, x1, y1)
    for name, x, y, layer in ports:
        cell.add_port(name, x, y, layer)
    return cell


class TestDeviceExtraction:
    def test_poly_over_diff_is_one_transistor(self):
        cell = make_cell(
            [
                ("diff", 0, 0, 10, 2),       # source strip .. drain strip
                ("poly", 4, -2, 6, 4),       # gate crossing it
            ],
            [("s", 0, 1, "diff"), ("d", 10, 1, "diff"), ("g", 5, -2, "poly")],
        )
        netlist = extract_netlist(cell, TECH_A)
        assert netlist.device_count("enh") == 1
        device = netlist.devices[0]
        assert netlist.names_of(device.pins_with_role("g")[0]) == ("g",)
        channel_names = sorted(
            netlist.names_of(net)[0] for net in device.pins_with_role("ch")
        )
        assert channel_names == ["d", "s"]

    def test_implant_marks_depletion(self):
        cell = make_cell(
            [
                ("diff", 0, 0, 10, 2),
                ("poly", 4, -2, 6, 4),
                ("implant", 4, 0, 6, 2),
            ]
        )
        netlist = extract_netlist(cell, TECH_A)
        assert netlist.device_count("dep") == 1
        assert netlist.device_count("enh") == 0

    def test_cut_region_is_connection_not_channel(self):
        """A contact cut suppresses the channel under it (butting contact)."""
        cell = make_cell(
            [
                ("diff", 0, 0, 10, 2),
                ("poly", 4, 0, 6, 2),        # fully over diff ...
                ("cut", 4, 0, 6, 2),         # ... but it is a contact
            ]
        )
        netlist = extract_netlist(cell, TECH_A)
        assert netlist.device_count() == 0

    def test_cut_connects_layers(self):
        cell = make_cell(
            [
                ("metal1", 0, 0, 10, 2),
                ("poly", 0, 4, 10, 6),
                ("cut", 2, 0, 4, 2),
            ],
            [("m", 0, 1, "metal1"), ("p", 0, 5, "poly")],
        )
        netlist = extract_netlist(cell, TECH_A)
        # metal and the disjoint poly stay separate (no overlap with cut).
        assert netlist.find_net("m") != netlist.find_net("p")
        cell2 = make_cell(
            [
                ("metal1", 0, 0, 10, 2),
                ("poly", 0, 0, 10, 2),
                ("cut", 2, 0, 4, 2),
            ],
            [("m", 0, 1, "metal1"), ("p", 9, 1, "poly")],
        )
        netlist2 = extract_netlist(cell2, TECH_A)
        assert netlist2.find_net("m") == netlist2.find_net("p")

    def test_corner_touch_does_not_conduct(self):
        cell = make_cell(
            [("metal1", 0, 0, 2, 2), ("metal1", 2, 2, 4, 4)],
            [("a", 0, 0, "metal1"), ("b", 4, 4, "metal1")],
        )
        netlist = extract_netlist(cell, TECH_A)
        assert netlist.find_net("a") != netlist.find_net("b")

    def test_edge_touch_conducts(self):
        cell = make_cell(
            [("metal1", 0, 0, 2, 2), ("metal1", 2, 0, 4, 2)],
            [("a", 0, 1, "metal1"), ("b", 4, 1, "metal1")],
        )
        netlist = extract_netlist(cell, TECH_A)
        assert netlist.find_net("a") == netlist.find_net("b")

    def test_channel_with_one_terminal_rejected(self):
        cell = make_cell(
            [
                ("diff", 0, 0, 6, 2),
                ("poly", 4, -2, 8, 4),      # gate at the strip's end
            ]
        )
        with pytest.raises(ExtractionError):
            extract_netlist(cell, TECH_A)

    def test_derived_gate_layer_expands_to_device(self):
        """The compactor's derived ``gate`` layer extracts as poly/diff."""
        cell = make_cell([("gate", 4, 0, 6, 2), ("diff", -4, 0, 12, 2)])
        netlist = extract_netlist(cell, TECH_A)
        assert netlist.device_count("enh") == 1


class TestSwitchSimulation:
    @staticmethod
    def inverter():
        netlist = SwitchNetlist()
        vdd, gnd = netlist.add_net("vdd!"), netlist.add_net("gnd!")
        netlist.vdd_nets.add(vdd)
        netlist.gnd_nets.add(gnd)
        a, out = netlist.add_net("a"), netlist.add_net("out")
        netlist.add_transistor(a, out, gnd)
        netlist.add_transistor(None, out, vdd, depletion=True)
        return netlist, a, out

    def test_inverter(self):
        netlist, a, out = self.inverter()
        assert simulate(netlist, {a: 1})[out] == 0
        assert simulate(netlist, {a: 0})[out] == 1

    def test_x_gate_propagates_x(self):
        netlist, a, out = self.inverter()
        assert simulate(netlist, {a: X})[out] == X

    def test_nor_gate(self):
        netlist = SwitchNetlist()
        vdd, gnd = netlist.add_net("vdd!"), netlist.add_net("gnd!")
        netlist.vdd_nets.add(vdd)
        netlist.gnd_nets.add(gnd)
        a, b, out = (netlist.add_net() for _ in range(3))
        netlist.add_transistor(a, out, gnd)
        netlist.add_transistor(b, out, gnd)
        netlist.add_transistor(None, out, vdd, depletion=True)
        for va in (0, 1):
            for vb in (0, 1):
                got = simulate(netlist, {a: va, b: vb})[out]
                assert got == (0 if (va or vb) else 1)

    def test_series_pulldown(self):
        netlist = SwitchNetlist()
        vdd, gnd = netlist.add_net("vdd!"), netlist.add_net("gnd!")
        netlist.vdd_nets.add(vdd)
        netlist.gnd_nets.add(gnd)
        a, b, mid, out = (netlist.add_net() for _ in range(4))
        netlist.add_transistor(a, out, mid)
        netlist.add_transistor(b, mid, gnd)
        netlist.add_transistor(None, out, vdd, depletion=True)
        for va in (0, 1):
            for vb in (0, 1):
                got = simulate(netlist, {a: va, b: vb})[out]
                assert got == (0 if (va and vb) else 1)

    def test_pass_transistor_passes_value(self):
        netlist = SwitchNetlist()
        src, gate, out = (netlist.add_net() for _ in range(3))
        netlist.add_transistor(gate, src, out)
        assert simulate(netlist, {src: 1, gate: 1})[out] == 1
        assert simulate(netlist, {src: 0, gate: 1})[out] == 0
        assert simulate(netlist, {src: 1, gate: 0})[out] == X  # floating

    def test_drive_beats_pull(self):
        """An enhancement path to GND overrides the depletion pull-up."""
        netlist, a, out = self.inverter()
        values = simulate(netlist, {a: 1})
        assert values[out] == 0


class TestLvs:
    def test_identical_netlists_match(self):
        a = intended_pla_netlist(TABLE)
        b = intended_pla_netlist(TABLE)
        assert compare_netlists(a, b).matched

    def test_different_personality_mismatch(self):
        other = TruthTable.parse("1-0 | 10\n01- | 11\n-11 | 01\n001 | 10")
        report = compare_netlists(
            intended_pla_netlist(TABLE), intended_pla_netlist(other)
        )
        assert not report.matched

    def test_gate_channel_swap_caught(self):
        def build(swap):
            netlist = SwitchNetlist()
            vdd, gnd = netlist.add_net("vdd!"), netlist.add_net("gnd!")
            netlist.vdd_nets.add(vdd)
            netlist.gnd_nets.add(gnd)
            a, b, out = (netlist.add_net() for _ in range(3))
            netlist.inputs = [a, b]
            netlist.outputs = [out]
            if swap:
                netlist.add_transistor(out, a, gnd)
            else:
                netlist.add_transistor(a, out, gnd)
            netlist.add_transistor(b, out, gnd)
            netlist.add_transistor(None, out, vdd, depletion=True)
            return netlist

        assert compare_netlists(build(False), build(False)).matched
        assert not compare_netlists(build(True), build(False)).matched

    def test_source_drain_swap_is_not_a_mismatch(self):
        def build(order):
            netlist = SwitchNetlist()
            a, b, g = (netlist.add_net() for _ in range(3))
            netlist.inputs = [g]
            netlist.outputs = [a]
            if order:
                netlist.add_transistor(g, a, b)
            else:
                netlist.add_transistor(g, b, a)
            return netlist

        assert compare_netlists(build(True), build(False)).matched


class TestPlaFamilyClosure:
    """Acceptance: mask geometry -> devices -> logic, end to end."""

    def test_pla_lvs_and_exhaustive_sim(self):
        report = verify_pla(generate_pla(TABLE), table=TABLE, mode="all")
        assert report.ok
        assert report.exhaustive
        assert report.vectors_checked == 2 ** TABLE.num_inputs

    def test_decoder(self):
        report = verify_cell(generate_decoder(3))
        assert report.ok and report.exhaustive

    def test_rom_against_intended_hook(self):
        words = [5, 0, 7, 2, 6, 1]
        rom, table = generate_rom(words, 3)
        netlist = pla_layout_netlist(rom)
        assert compare_netlists(netlist, intended_rom_netlist(words, 3)).matched
        report = verify_cell(rom, table=table)
        assert report.ok

    def test_eight_input_pla_exhaustive(self):
        """The acceptance bound: <= 8 inputs simulate exhaustively."""
        rows = ["1-------", "-0------", "--11----", "----1-0-", "------01"]
        outs = ["10", "01", "11", "10", "01"]
        table = TruthTable(rows, outs)
        report = verify_pla(generate_pla(table), table=table)
        assert report.ok
        assert report.exhaustive and report.vectors_checked == 256

    def test_sampling_beyond_cap(self):
        report = verify_pla(
            generate_pla(TABLE), table=TABLE, max_vectors=4
        )
        assert report.ok
        assert not report.exhaustive
        assert report.vectors_checked == 4

    def test_sim_catches_wrong_table(self):
        lying = TruthTable.parse("1-0 | 01\n01- | 11\n-11 | 01\n00- | 10")
        report = verify_pla(generate_pla(TABLE), table=lying, mode="sim")
        assert not report.ok

    def test_intended_netlist_counts(self):
        golden = intended_pla_netlist(TABLE)
        and_x, or_x = TABLE.crosspoints()
        expected_enh = TABLE.num_inputs + TABLE.num_outputs + and_x + or_x
        expected_dep = (
            TABLE.num_inputs + TABLE.num_terms + 2 * TABLE.num_outputs
        )
        assert golden.device_count("enh") == expected_enh
        assert golden.device_count("dep") == expected_dep

    def test_decoder_intended_matches_layout(self):
        netlist = pla_layout_netlist(generate_decoder(2))
        assert compare_netlists(netlist, intended_decoder_netlist(2)).matched


class TestHierarchicalExtraction:
    def test_lvs_identical_to_flat(self):
        for cell in (generate_pla(TABLE), generate_decoder(3)):
            flat = extract_netlist(cell)
            hier = extract_netlist_hier(cell)
            assert compare_netlists(hier, flat).matched

    def test_rom_equivalence(self):
        rom, _ = generate_rom(list(range(8)), 4)
        assert compare_netlists(
            extract_netlist_hier(rom), extract_netlist(rom)
        ).matched

    def test_cache_hit_gives_same_answer(self):
        cache = CompactionCache()
        pla = generate_pla(TABLE)
        first = extract_netlist_hier(pla, cache=cache)
        assert cache.misses > 0
        second = extract_netlist_hier(pla, cache=cache)
        assert cache.hits > 0
        assert compare_netlists(first, second).matched

    def test_hier_verify_report(self):
        report = verify_pla(generate_pla(TABLE), table=TABLE, hier=True)
        assert report.ok and report.hierarchical

    def test_derived_gate_overhang_stitches_across_seam(self):
        """A derived gate's expanded diffusion reaches past the drawn
        tile frame; the overhang must still stitch to the abutting
        tile (regression: boundary was measured on drawn extent)."""
        from repro import Vec2, NORTH

        a = CellDefinition("a")
        a.add_box("gate", 4, 0, 6, 2)      # expand_gate grows diff by 1
        a.add_box("diff", 0, 0, 4, 2)
        b = CellDefinition("b")
        b.add_box("diff", 7, 0, 12, 2)     # meets the expanded overhang
        b.add_port("gnd!", 10, 1, "diff")
        top = CellDefinition("top")
        top.add_instance(a, Vec2(0, 0), NORTH, name="a")
        top.add_instance(b, Vec2(0, 0), NORTH, name="b")
        flat = extract_netlist(top)
        hier = extract_netlist_hier(top)
        assert hier.gnd_nets and compare_netlists(hier, flat).matched

    def test_orphan_port_over_interior_conductor(self):
        """A box-less root's port lands on a tile-interior wire; it
        must attach exactly as flat extraction attaches it
        (regression: only frame-touching runs were searched)."""
        from repro import Vec2, NORTH

        child = CellDefinition("child")
        child.add_box("metal1", 2, 2, 8, 8)
        root = CellDefinition("root")
        root.add_instance(child, Vec2(0, 0), NORTH, name="child")
        root.add_port("vdd!", 5, 5, "metal1")
        flat = extract_netlist(root)
        hier = extract_netlist_hier(root)
        assert flat.vdd_nets and hier.vdd_nets
        assert compare_netlists(hier, flat).matched
