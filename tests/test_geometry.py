"""Tests for vectors, boxes, and transforms."""

import pytest
from hypothesis import given, strategies as st

from repro.geometry import (
    ALL_ORIENTATIONS,
    EAST,
    IDENTITY,
    NORTH,
    ORIGIN,
    SOUTH,
    Box,
    Transform,
    Vec2,
)

coords = st.integers(min_value=-500, max_value=500)
vectors = st.builds(Vec2, coords, coords)
orientations = st.sampled_from(ALL_ORIENTATIONS)
boxes = st.builds(Box, coords, coords, coords, coords)
transforms = st.builds(Transform, vectors, orientations)


class TestVec2:
    def test_arithmetic(self):
        assert Vec2(1, 2) + Vec2(3, 4) == Vec2(4, 6)
        assert Vec2(3, 4) - Vec2(1, 2) == Vec2(2, 2)
        assert -Vec2(1, -2) == Vec2(-1, 2)
        assert Vec2(1, 2) * 3 == Vec2(3, 6)
        assert 3 * Vec2(1, 2) == Vec2(3, 6)

    def test_immutability(self):
        with pytest.raises(AttributeError):
            ORIGIN.x = 1

    def test_manhattan(self):
        assert Vec2(-3, 4).manhattan() == 7

    def test_iteration_and_tuple(self):
        assert tuple(Vec2(5, 6)) == (5, 6)
        assert Vec2(5, 6).as_tuple() == (5, 6)

    @given(vectors, orientations)
    def test_transform_preserves_norm(self, v, o):
        assert v.transformed(o).manhattan() == v.manhattan()

    @given(vectors)
    def test_additive_inverse(self, v):
        assert v + (-v) == ORIGIN

    def test_hash_consistency(self):
        assert hash(Vec2(1, 2)) == hash(Vec2(1, 2))
        assert Vec2(1, 2) != Vec2(2, 1)


class TestBox:
    def test_normalisation(self):
        box = Box(10, 20, 0, 5)
        assert (box.xmin, box.ymin, box.xmax, box.ymax) == (0, 5, 10, 20)

    def test_measures(self):
        box = Box(1, 2, 5, 10)
        assert box.width == 4
        assert box.height == 8
        assert box.area == 32

    def test_degenerate_box_is_legal(self):
        box = Box(3, 3, 3, 9)
        assert box.width == 0 and box.area == 0

    def test_contains_point(self):
        box = Box(0, 0, 10, 10)
        assert box.contains_point(Vec2(0, 0))
        assert box.contains_point(Vec2(10, 10))
        assert not box.contains_point(Vec2(11, 5))

    def test_overlap_predicates(self):
        a = Box(0, 0, 10, 10)
        assert a.overlaps(Box(10, 0, 20, 10))       # touching counts
        assert not a.overlaps_open(Box(10, 0, 20, 10))
        assert a.overlaps_open(Box(9, 9, 20, 20))
        assert not a.overlaps(Box(11, 0, 20, 10))

    def test_union_intersection(self):
        a = Box(0, 0, 10, 10)
        b = Box(5, 5, 20, 20)
        assert a.union(b) == Box(0, 0, 20, 20)
        assert a.intersection(b) == Box(5, 5, 10, 10)
        assert a.intersection(Box(11, 11, 12, 12)) is None

    def test_translated_and_grown(self):
        assert Box(0, 0, 2, 2).translated(Vec2(5, -1)) == Box(5, -1, 7, 1)
        assert Box(2, 2, 4, 4).grown(1) == Box(1, 1, 5, 5)

    @given(boxes, orientations)
    def test_transform_preserves_area(self, box, o):
        assert box.transformed(o).area == box.area

    @given(boxes, orientations, vectors)
    def test_transform_matches_corner_transform(self, box, o, v):
        out = box.transformed(o, v)
        corners = [
            Vec2(box.xmin, box.ymin).transformed(o) + v,
            Vec2(box.xmax, box.ymax).transformed(o) + v,
        ]
        assert out == Box.from_corners(corners[0], corners[1])

    @given(boxes, boxes)
    def test_union_contains_both(self, a, b):
        u = a.union(b)
        assert u.contains_box(a) and u.contains_box(b)

    def test_from_size(self):
        assert Box.from_size(Vec2(1, 1), 3, 4) == Box(1, 1, 4, 5)


class TestTransform:
    def test_identity(self):
        assert IDENTITY.apply(Vec2(7, 8)) == Vec2(7, 8)
        assert IDENTITY.is_identity

    def test_apply_order_reflect_then_rotate_then_translate(self):
        t = Transform(Vec2(10, 0), EAST)
        # EAST maps (0, 1) -> (1, 0); plus offset -> (11, 0)
        assert t.apply(Vec2(0, 1)) == Vec2(11, 0)

    @given(transforms, vectors)
    def test_inverse_round_trip(self, t, v):
        assert t.inverse().apply(t.apply(v)) == v
        assert t.apply(t.inverse().apply(v)) == v

    @given(transforms, transforms, vectors)
    def test_composition_semantics(self, t2, t1, v):
        assert t2.compose(t1).apply(v) == t2.apply(t1.apply(v))

    @given(transforms, transforms, boxes)
    def test_composition_on_boxes(self, t2, t1, box):
        assert t2.compose(t1).apply_box(box) == t2.apply_box(t1.apply_box(box))

    @given(transforms)
    def test_inverse_composition_is_identity(self, t):
        assert t.compose(t.inverse()).is_identity

    def test_instance_call_semantics(self):
        """Section 2.1: isometry about the origin, then placement."""
        t = Transform(Vec2(100, 50), SOUTH)
        assert t.apply_box(Box(0, 0, 4, 2)) == Box(96, 48, 100, 50)
