"""Job canonicalisation: semantically identical specs are one job.

The deduplication contract of the layout service rests entirely on
:meth:`repro.service.jobs.JobSpec.canonical`: if two spellings of the
same request fingerprint differently the fleet does the work twice; if
two *different* requests collide they share artifacts.  These tests pin
both directions.
"""

import pytest

from repro.core.errors import ServiceError, VerificationError
from repro.service.jobs import JobResult, JobSpec, execute_job, fingerprint_spec

SAMPLE = """
cell tiny
  box metal1 0 0 8 8
  box poly 2 0 4 8
  port a 0 4 metal1
end
"""

DESIGN = """
(mk_instance t tiny)
(mk_cell "top" t)
"""


def custom(**overrides):
    base = dict(kind="custom", sample_text=SAMPLE, design_text=DESIGN)
    base.update(overrides)
    return JobSpec(**base)


class TestEqualSpecsHashEqual:
    def test_parameter_key_order_is_irrelevant(self):
        assert (
            custom(parameters="a=1\nb=2\nc=hello\n").fingerprint
            == custom(parameters="c=hello\nb=2\na=1\n").fingerprint
        )

    def test_parameter_whitespace_and_comments_are_irrelevant(self):
        assert (
            custom(parameters="a=1\nb=2\n").fingerprint
            == custom(
                parameters="# a comment\n\n  a = 1   ; trailing\n\nb =2\n"
            ).fingerprint
        )

    def test_indexed_bindings_canonicalise(self):
        assert (
            custom(parameters="top.1=3\ntop.2=4\n").fingerprint
            == custom(parameters="top.2 = 4\ntop.1 = 3\n").fingerprint
        )

    def test_default_solver_equals_explicit_default(self):
        assert (
            custom(compact="hier").fingerprint
            == custom(compact="hier", solver="bellman-ford").fingerprint
        )

    def test_default_sim_vectors_equals_driver_default(self):
        from repro.verify.driver import DEFAULT_MAX_VECTORS

        assert (
            custom(verify="all").fingerprint
            == custom(verify="all", sim_vectors=DEFAULT_MAX_VECTORS).fingerprint
        )

    def test_tech_case_is_irrelevant(self):
        assert custom(tech="a").fingerprint == custom(tech="A").fingerprint

    def test_later_binding_wins_like_cli_set(self):
        assert (
            custom(parameters="a=1\na=2\n").fingerprint
            == custom(parameters="a=2\n").fingerprint
        )

    def test_fingerprint_spec_accepts_raw_payloads(self):
        spec = custom(parameters="a=1\n")
        assert fingerprint_spec(spec.to_dict()) == spec.fingerprint


class TestDistinctSpecsHashDistinct:
    def test_binding_value_changes_fingerprint(self):
        assert (
            custom(parameters="a=1\n").fingerprint
            != custom(parameters="a=2\n").fingerprint
        )

    def test_alias_and_string_values_differ(self):
        # a=foo (alias) resolves through the cell table; a="foo" is text
        assert (
            custom(parameters="a=foo\n").fingerprint
            != custom(parameters='a="foo"\n').fingerprint
        )

    def test_tech_changes_fingerprint(self):
        assert custom(tech="A").fingerprint != custom(tech="B").fingerprint

    def test_compact_mode_changes_fingerprint(self):
        fingerprints = {
            custom(compact=mode).fingerprint
            for mode in (None, "x", "xy", "hier", "hier:xy")
        }
        assert len(fingerprints) == 5

    def test_solver_changes_fingerprint(self):
        assert (
            custom(compact="x", solver="topological").fingerprint
            != custom(compact="x").fingerprint
        )

    def test_verify_mode_changes_fingerprint(self):
        assert custom(verify="lvs").fingerprint != custom(verify="all").fingerprint

    def test_sample_text_changes_fingerprint(self):
        other = SAMPLE.replace("0 0 8 8", "0 0 9 8")
        assert custom().fingerprint != custom(sample_text=other).fingerprint

    def test_kind_resolves_library_texts(self):
        multiplier = JobSpec(kind="multiplier", parameters="xsize=2\nysize=2\n")
        assert multiplier.fingerprint != custom().fingerprint
        assert (
            multiplier.fingerprint
            != JobSpec(kind="multiplier", parameters="xsize=3\nysize=2\n").fingerprint
        )

    def test_delay_is_part_of_the_fingerprint(self):
        assert custom(delay=0.5).fingerprint != custom().fingerprint


class TestValidation:
    def test_unknown_kind_rejected(self):
        with pytest.raises(ServiceError, match="unknown generator kind"):
            JobSpec(kind="nonesuch").fingerprint

    def test_custom_without_texts_rejected(self):
        with pytest.raises(ServiceError, match="sample_text"):
            JobSpec(kind="custom").fingerprint

    def test_unknown_tech_rejected(self):
        with pytest.raises(ServiceError, match="technology"):
            custom(tech="Z").fingerprint

    def test_bad_compact_mode_rejected(self):
        with pytest.raises(ServiceError, match="compact"):
            custom(compact="sideways").fingerprint

    def test_solver_without_compact_rejected(self):
        with pytest.raises(ServiceError, match="solver"):
            custom(solver="topological").fingerprint

    def test_sim_vectors_without_sim_rejected(self):
        with pytest.raises(ServiceError, match="sim_vectors"):
            custom(verify="lvs", sim_vectors=8).fingerprint

    def test_compact_and_route_rejected(self):
        with pytest.raises(ServiceError, match="combined"):
            custom(compact="x", route_text="bottom a\ntop b\n").fingerprint

    def test_unknown_payload_field_rejected(self):
        with pytest.raises(ServiceError, match="unknown job-spec field"):
            JobSpec.from_dict({"kind": "custom", "bogus": 1})

    def test_non_dict_payload_rejected(self):
        with pytest.raises(ServiceError, match="JSON object"):
            JobSpec.from_dict(["not", "a", "dict"])

    def test_bad_parameter_text_is_a_service_error(self):
        with pytest.raises(ServiceError, match="bad parameter text"):
            custom(parameters="!!! nope\n").fingerprint


class TestExecuteJob:
    def test_tiny_custom_job_produces_cif(self):
        result = execute_job(custom())
        assert result.cell_name == "top"
        assert result.instance_count == 1
        assert result.cif.startswith("( CIF generated by repro RSG")
        assert set(result.timings) == {"generate", "emit"}

    def test_multiplier_kind_matches_batch_flow(self):
        from repro.layout import flatten_cell, read_cif
        from repro.multiplier import report_for

        result = execute_job(JobSpec(kind="multiplier", parameters="xsize=2\nysize=2\n"))
        assert result.cell_name == "thewholething"
        cell = read_cif(result.cif).lookup("thewholething")
        assert report_for(cell, 2, 2).basic_cells == 2 * 3
        assert flatten_cell(cell) is not None

    def test_compact_hier_records_pipeline_report(self):
        result = execute_job(
            JobSpec(kind="multiplier", parameters="xsize=2\nysize=2\n", compact="hier")
        )
        assert result.pipeline is not None
        assert result.pipeline["distinct_cells"] > 0
        assert "compact" in result.timings

    def test_flat_compaction_records_axis_widths(self):
        result = execute_job(custom(compact="xy"))
        assert [entry["axis"] for entry in result.compaction] == ["x", "y"]

    def test_verification_failure_raises_verification_error(self):
        # A PLA-free, multiplier-free cell takes the generic recipe (no
        # golden, always ok); force a failure through the multiplier
        # recipe with a personality-breaking size instead.
        spec = JobSpec(kind="multiplier", parameters="xsize=2\nysize=2\n", verify="all")
        result = execute_job(spec)  # sanity: the real layout verifies
        assert result.verification is not None and result.verification["ok"]
        with pytest.raises(VerificationError):
            broken = JobSpec(
                kind="custom",
                sample_text=SAMPLE,
                design_text=DESIGN,
                verify="all",
            )
            from unittest import mock

            with mock.patch(
                "repro.verify.verify_cell",
                side_effect=lambda cell, **kw: _failing_report(cell),
            ):
                execute_job(broken)

    def test_result_round_trips_through_json(self):
        result = execute_job(custom())
        payload = result.to_dict()
        assert "cif" not in payload
        rebuilt = JobResult.from_dict(payload)
        assert rebuilt.cell_name == result.cell_name
        assert rebuilt.timings == result.timings


def _failing_report(cell):
    from repro.verify.driver import VerificationReport

    report = VerificationReport(cell.name, "all")
    report.failures.append("injected failure")
    return report
